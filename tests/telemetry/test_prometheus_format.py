"""Prometheus text-format correctness: names, label escaping, ordering."""

from repro import telemetry
from repro.telemetry.export import (
    escape_label_value,
    format_labels,
    to_prometheus,
)
from repro.telemetry.health import HEALTH
from repro.telemetry.metrics import sanitize_metric_name


class TestMetricNameSanitization:
    def test_legal_names_pass_through(self):
        assert sanitize_metric_name("repro_tcu_mma_ops_total") == (
            "repro_tcu_mma_ops_total"
        )
        assert sanitize_metric_name("ns:metric_1") == "ns:metric_1"

    def test_illegal_characters_become_underscores(self):
        assert sanitize_metric_name("a.b-c d") == "a_b_c_d"
        assert sanitize_metric_name("latency(ms)") == "latency_ms_"

    def test_digit_prefix_gets_guarded(self):
        assert sanitize_metric_name("2d9p_sweeps") == "_2d9p_sweeps"

    def test_empty_name_survives(self):
        assert sanitize_metric_name("") == "_"


class TestLabelEscaping:
    def test_plain_value_unchanged(self):
        assert escape_label_value("sweep-1") == "sweep-1"

    def test_quotes_escaped(self):
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'

    def test_backslashes_escaped_first(self):
        # a raw backslash must not eat the quote escape after it
        assert escape_label_value('C:\\path"x') == 'C:\\\\path\\"x'

    def test_newlines_escaped(self):
        assert escape_label_value("line1\nline2") == "line1\\nline2"

    def test_everything_at_once(self):
        assert escape_label_value('\\"\n') == '\\\\\\"\\n'

    def test_non_strings_coerced(self):
        assert escape_label_value(3) == "3"


class TestFormatLabels:
    def test_empty_set_is_empty_string(self):
        assert format_labels({}) == ""

    def test_keys_sorted_for_stable_output(self):
        assert format_labels({"b": "2", "a": "1"}) == '{a="1",b="2"}'

    def test_values_escaped_inside_the_set(self):
        assert format_labels({"k": 'v"w'}) == '{k="v\\"w"}'


class TestExposition:
    def test_registry_metrics_sorted_by_name(self):
        telemetry.REGISTRY.counter("z_last", help="z").inc()
        telemetry.REGISTRY.counter("a_first", help="a").inc()
        text = to_prometheus(telemetry.REGISTRY)
        assert text.index("a_first") < text.index("z_last")

    def test_output_is_stable_across_calls(self):
        telemetry.REGISTRY.counter("stable_counter").inc(3)
        sweep = HEALTH.start_sweep("stable")
        with HEALTH.bind(sweep.shard(0)) as shard:
            shard.beat(1, 2)
        first = to_prometheus(telemetry.REGISTRY)
        second = to_prometheus(telemetry.REGISTRY)
        # last_beat_age moves with wall time; everything else is frozen
        stable = [
            line
            for line in first.splitlines()
            if "last_beat_age" not in line
        ]
        stable2 = [
            line
            for line in second.splitlines()
            if "last_beat_age" not in line
        ]
        assert stable == stable2

    def test_health_gauges_render_labeled_per_shard(self):
        sweep = HEALTH.start_sweep("expo")
        with HEALTH.bind(sweep.shard(0, rows="0:16")) as shard:
            shard.beat(3, 12)
        with HEALTH.bind(sweep.shard(1, rows="16:32")) as shard:
            shard.beat(12, 12)
        text = to_prometheus(telemetry.REGISTRY)
        s0 = (f'repro_health_shard_tiles_done{{name="expo",shard="0",'
              f'state="done",sweep="{sweep.sweep_id}"}} 3')
        s1 = (f'repro_health_shard_tiles_done{{name="expo",shard="1",'
              f'state="done",sweep="{sweep.sweep_id}"}} 12')
        assert s0 in text
        assert s1 in text
        assert text.index(s0) < text.index(s1)  # shard order within a gauge

    def test_sweep_name_with_hostile_characters_stays_parseable(self):
        sweep = HEALTH.start_sweep('we"ird\\name\n')
        with HEALTH.bind(sweep.shard(0)):
            pass
        text = to_prometheus(telemetry.REGISTRY)
        assert 'name="we\\"ird\\\\name\\n"' in text
        for line in text.splitlines():
            if line.startswith("#") or "{" not in line:
                continue
            # every labeled sample must still split into name{...} value
            body = line[line.index("{") + 1 : line.rindex("}")]
            assert line.rindex("}") < len(line) - 1
            assert body.count('="') >= 1

    def test_no_health_section_when_registry_empty(self):
        text = to_prometheus(telemetry.REGISTRY)
        assert "repro_health_shard_" not in text

    def test_event_log_ring_gauges_always_present(self):
        text = to_prometheus(telemetry.REGISTRY)
        assert "# TYPE repro_event_log_events gauge" in text
        assert "repro_event_log_max_events 1024" in text
