"""The structured event log: levels, ring bounds, trace joins, export."""

import json

import pytest

from repro import telemetry
from repro.telemetry.log import (
    EVENT_LOG,
    EVENT_SCHEMA,
    LEVELS,
    Event,
    EventLog,
    emit,
    write_event_log,
)
from repro.telemetry.validate import (
    TelemetryError,
    validate_event,
    validate_file,
)


class TestEmission:
    def test_emit_records_kind_message_and_fields(self):
        event = emit("backend.downgrade", message="fell back",
                     requested="vectorized", resolved="interpreter")
        assert event is EVENT_LOG.events()[-1]
        assert event.kind == "backend.downgrade"
        assert event.fields == {
            "requested": "vectorized", "resolved": "interpreter"
        }
        assert event.level == "info"

    def test_debug_is_filtered_by_default(self):
        assert emit("noise", level="debug") is None
        assert len(EVENT_LOG) == 0

    def test_min_level_ordering_matches_levels(self):
        log = EventLog(min_level="warning")
        assert log.emit("a", level="info") is None
        assert log.emit("b", level="warning") is not None
        assert log.emit("c", level="error") is not None
        assert [e.kind for e in log.events()] == ["b", "c"]
        assert LEVELS == ("debug", "info", "warning", "error")

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            emit("x", level="fatal")
        with pytest.raises(ValueError):
            EventLog(min_level="loud")

    def test_always_on_without_tracing(self):
        # the log's whole point: decisions recorded with spans off
        assert not telemetry.is_enabled()
        event = emit("shard.timeout", level="warning", shard=2)
        assert event is not None
        assert event.trace_id is None
        assert event.span_id is None

    def test_events_join_the_enclosing_span(self):
        telemetry.enable()
        with telemetry.span("work") as sp:
            event = emit("recovery.tile_retry", tile=[0, 8])
        assert event.trace_id == sp.trace_id
        assert event.span_id == sp.span_id


class TestRing:
    def test_ring_eviction_counts_dropped(self):
        log = EventLog(max_events=3)
        for i in range(5):
            log.emit(f"k{i}")
        assert len(log) == 3
        assert log.dropped == 2
        assert [e.kind for e in log.events()] == ["k2", "k3", "k4"]

    def test_count_by_kind(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("a")
        assert log.count() == 3
        assert log.count("a") == 2
        assert log.count("missing") == 0

    def test_clear_zeroes_everything(self):
        log = EventLog(max_events=1)
        log.emit("a")
        log.emit("b")
        log.clear()
        assert len(log) == 0
        assert log.dropped == 0

    def test_reset_clears_the_process_log(self):
        emit("stale")
        telemetry.reset()
        assert len(EVENT_LOG) == 0


class TestSchema:
    def test_as_dict_is_schema_tagged_and_validates(self):
        event = Event("fault.injected", level="warning", message="boom",
                      fields={"site": 3})
        doc = event.as_dict()
        assert doc["schema"] == EVENT_SCHEMA
        validate_event(doc)

    def test_validate_rejects_missing_kind(self):
        doc = Event("x").as_dict()
        del doc["kind"]
        with pytest.raises(TelemetryError):
            validate_event(doc)

    def test_validate_rejects_bad_level(self):
        doc = Event("x").as_dict()
        doc["level"] = "screaming"
        with pytest.raises(TelemetryError):
            validate_event(doc)

    def test_snapshot_shape(self):
        log = EventLog(max_events=2)
        log.emit("a")
        log.emit("b")
        log.emit("c")
        snap = log.snapshot()
        assert [e["kind"] for e in snap["events"]] == ["b", "c"]
        assert snap["dropped"] == 1
        assert snap["max_events"] == 2
        for doc in snap["events"]:
            validate_event(doc)


class TestExport:
    def test_write_event_log_jsonl_roundtrip(self, tmp_path):
        emit("one", message="first")
        emit("two", level="warning", shard=1)
        path = write_event_log(tmp_path / "events.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        docs = [json.loads(line) for line in lines]
        assert [d["kind"] for d in docs] == ["one", "two"]
        assert validate_file(path) == EVENT_SCHEMA

    def test_validate_file_rejects_a_corrupt_line(self, tmp_path):
        emit("ok")
        path = write_event_log(tmp_path / "events.jsonl")
        path.write_text(path.read_text() + "not json\n")
        with pytest.raises(TelemetryError):
            validate_file(path)

    def test_run_record_folds_the_log_in(self):
        emit("backend.downgrade", level="warning")
        record = telemetry.run_record("t", health=False)
        assert record["log"]["events"][0]["kind"] == "backend.downgrade"
        telemetry.validate_run_record(record)

    def test_run_record_omits_an_empty_log(self):
        record = telemetry.run_record("t")
        assert "log" not in record
        telemetry.validate_run_record(record)

    def test_run_record_log_false_opts_out(self):
        emit("something")
        record = telemetry.run_record("t", log=False)
        assert "log" not in record

    def test_prometheus_exposes_ring_health(self):
        emit("a")
        emit("b")
        text = telemetry.to_prometheus(telemetry.REGISTRY)
        assert "repro_event_log_events 2" in text
        assert "repro_event_log_dropped 0" in text
