"""Tracer and warp-trace buffer health in the exporters.

Bounded buffers (the tracer's finished-span ring, the warp-trace
recorder ring) silently shed data once saturated; the exporters must
surface retained/dropped/capacity so consumers can tell a quiet run
from a truncated one.
"""

import numpy as np

from repro import telemetry
from repro.tcu import trace
from repro.tcu.counters import EventCounters
from repro.telemetry.export import run_record, to_prometheus
from repro.telemetry.spans import Tracer
from repro.telemetry.validate import validate_run_record


def _saturated_tracer(max_finished=2, spans=5):
    tracer = Tracer(max_finished=max_finished)
    tracer.enable()
    for i in range(spans):
        with tracer.span(f"s{i}"):
            pass
    return tracer


class TestRunRecordTracerBlock:
    def test_record_reports_retained_and_dropped_spans(self):
        tracer = _saturated_tracer(max_finished=2, spans=5)
        record = run_record("t", tracer=tracer)
        assert record["tracer"]["finished_spans"] == 2
        assert record["tracer"]["dropped_spans"] == 3
        assert record["tracer"]["max_finished"] == 2
        validate_run_record(record)

    def test_record_reports_warp_trace_ring(self):
        counters = EventCounters()
        recorder = trace.install(counters, max_events=3)
        try:
            for i in range(10):
                recorder.record("op", str(i))
            record = run_record("t")
            warp = record["tracer"]["warp_trace"]
            assert warp["recorders"] == 1
            assert warp["events_total"] == 10
            assert warp["events_retained"] == 3
            assert warp["events_dropped"] == 7
            assert warp["max_events"] == 3
            validate_run_record(record)
        finally:
            trace.uninstall(counters)

    def test_quiet_process_reports_zeroes(self):
        record = run_record("quiet")
        assert record["tracer"]["dropped_spans"] == 0
        assert record["tracer"]["warp_trace"]["recorders"] == 0
        validate_run_record(record)


class TestPrometheusTracerGauges:
    def test_tracer_gauges_exposed(self):
        tracer = _saturated_tracer(max_finished=2, spans=5)
        text = to_prometheus(telemetry.REGISTRY, tracer=tracer)
        assert "# TYPE repro_tracer_finished_spans gauge" in text
        assert "repro_tracer_finished_spans 2" in text
        assert "repro_tracer_dropped_spans 3" in text
        assert "repro_tracer_max_finished 2" in text

    def test_warp_trace_gauges_exposed(self):
        counters = EventCounters()
        recorder = trace.install(counters, max_events=4)
        try:
            for _ in range(6):
                recorder.record("op")
            text = to_prometheus(telemetry.REGISTRY)
            assert "repro_warp_trace_recorders 1" in text
            assert "repro_warp_trace_events_dropped 2" in text
            assert "repro_warp_trace_max_events 4" in text
        finally:
            trace.uninstall(counters)

    def test_gauges_coexist_with_registry_metrics(self):
        telemetry.REGISTRY.counter("repro_demo_total").inc(3)
        text = to_prometheus(telemetry.REGISTRY)
        assert "repro_demo_total 3" in text
        assert "repro_tracer_finished_spans" in text
