"""MetricsRegistry: counters, gauges, histograms, and absorption."""

import threading

import pytest

from repro.tcu.counters import EventCounters
from repro.telemetry.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    sanitize_metric_name,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc(self, registry):
        c = registry.counter("reqs_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_monotonic(self, registry):
        with pytest.raises(ValueError):
            registry.counter("reqs_total").inc(-1)

    def test_get_or_create_returns_same_object(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_raises(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_bucketing_is_cumulative(self, registry):
        h = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.cumulative_counts() == [1, 2, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(55.55)

    def test_boundary_lands_in_its_bucket(self, registry):
        h = registry.histogram("lat", buckets=(1.0,))
        h.observe(1.0)  # le="1" is inclusive, Prometheus-style
        assert h.cumulative_counts() == [1, 1]

    def test_default_buckets_cover_sweep_range(self, registry):
        h = registry.histogram("span_seconds")
        assert h.buckets == DEFAULT_TIME_BUCKETS
        assert h.buckets[0] <= 1e-5 and h.buckets[-1] >= 30.0

    def test_empty_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=())


class TestAbsorption:
    def test_absorb_events_creates_prefixed_totals(self, registry):
        events = EventCounters()
        events.mma_ops = 36
        events.shared_load_requests = 100
        registry.absorb_events(events)
        assert registry.get("repro_tcu_mma_ops_total").value == 36
        assert registry.get("repro_tcu_shared_load_requests_total").value == 100
        # zero-valued fields do not clutter the registry
        assert registry.get("repro_tcu_shuffle_ops_total") is None

    def test_absorb_events_accumulates(self, registry):
        events = EventCounters()
        events.mma_ops = 10
        registry.absorb_events(events)
        registry.absorb_events(events)
        assert registry.get("repro_tcu_mma_ops_total").value == 20

    def test_absorb_cache_stats_is_duck_typed(self, registry):
        class FakeStats:
            hits, misses, evictions, size, maxsize = 3, 1, 0, 2, 128

        registry.absorb_cache_stats(FakeStats())
        assert registry.get("repro_plan_cache_hits").value == 3
        assert registry.get("repro_plan_cache_maxsize").value == 128

    def test_observe_span_sanitizes_name(self, registry):
        registry.observe_span("runtime.apply", "runtime", 0.01)
        hist = registry.get("repro_span_runtime_apply_seconds")
        assert hist is not None and hist.count == 1


class TestRegistryIntrospection:
    def test_snapshot_shape(self, registry):
        registry.counter("c", help="a counter").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["c"] == {"kind": "counter", "help": "a counter", "value": 2}
        assert snap["g"]["kind"] == "gauge"
        assert snap["h"]["counts"] == [1, 0]
        assert list(snap) == sorted(snap)

    def test_render_and_clear(self, registry):
        assert "no metrics" in registry.render()
        registry.counter("c").inc()
        assert "c" in registry.render()
        registry.clear()
        assert len(registry) == 0

    def test_thread_safety_no_lost_increments(self, registry):
        c = registry.counter("hot")

        def hammer():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestSanitize:
    @pytest.mark.parametrize(
        "raw,clean",
        [
            ("runtime.apply", "runtime_apply"),
            ("9lives", "_9lives"),
            ("ok_name:total", "ok_name:total"),
            ("", "_"),
        ],
    )
    def test_names(self, raw, clean):
        assert sanitize_metric_name(raw) == clean
