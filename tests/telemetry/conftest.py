"""Isolation for telemetry tests: every test starts and ends clean.

The tracer and registry are process-wide singletons; leaking an enabled
tracer or stale spans between tests (or into the rest of the suite)
would make results order-dependent.
"""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()
