"""TraceContext capture/propagation and WorkerTracer merge-on-join."""

import threading

import pytest

from repro import telemetry
from repro.telemetry.context import (
    NULL_CONTEXT,
    TraceContext,
    WorkerTracer,
    merge_roots,
)
from repro.telemetry.spans import NULL_SPAN, TRACER, Tracer, new_trace_id


class TestTraceIds:
    def test_new_trace_id_shape_and_uniqueness(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for tid in ids:
            assert len(tid) == 16
            int(tid, 16)  # hex

    def test_root_span_gets_a_trace_id(self):
        telemetry.enable()
        with telemetry.span("root") as sp:
            assert sp.trace_id is not None
        assert len(sp.trace_id) == 16

    def test_children_inherit_the_root_trace_id(self):
        telemetry.enable()
        with telemetry.span("root") as root:
            with telemetry.span("child") as child:
                with telemetry.span("grandchild") as grand:
                    pass
        assert child.trace_id == root.trace_id
        assert grand.trace_id == root.trace_id

    def test_sibling_roots_get_distinct_traces(self):
        telemetry.enable()
        with telemetry.span("a") as a:
            pass
        with telemetry.span("b") as b:
            pass
        assert a.trace_id != b.trace_id


class TestCapture:
    def test_disabled_capture_is_the_null_singleton(self):
        assert TraceContext.capture() is NULL_CONTEXT
        assert not NULL_CONTEXT.is_recording
        assert NULL_CONTEXT.parent_span_id is None

    def test_null_context_span_is_the_null_span(self):
        assert NULL_CONTEXT.span("anything") is NULL_SPAN

    def test_capture_inside_a_span_snapshots_it(self):
        telemetry.enable()
        with telemetry.span("spawn") as sp:
            ctx = TraceContext.capture()
        assert ctx.is_recording
        assert ctx.parent is sp
        assert ctx.parent_span_id == sp.span_id
        assert ctx.trace_id == sp.trace_id

    def test_capture_outside_any_span_mints_one_trace(self):
        telemetry.enable()
        ctx = TraceContext.capture()
        assert ctx.parent is None
        assert ctx.trace_id is not None

    def test_context_span_reparents_across_threads(self):
        telemetry.enable()
        seen = []
        with telemetry.span("parent") as parent:
            ctx = TraceContext.capture()

            def worker(i):
                with ctx.span("worker", shard=i) as sp:
                    seen.append(sp)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(parent.children) == 3
        assert {sp.trace_id for sp in seen} == {parent.trace_id}
        assert all(sp.parent is parent for sp in seen)

    def test_context_outlives_the_parent_exit(self):
        # a supervisor retry may spawn after the spawning call unwound
        telemetry.enable()
        with telemetry.span("parent") as parent:
            ctx = TraceContext.capture()
        with ctx.span("late-retry") as late:
            pass
        assert late.parent is parent
        assert late.trace_id == parent.trace_id
        assert late in parent.children

    def test_span_goes_null_if_tracer_disabled_after_capture(self):
        telemetry.enable()
        ctx = TraceContext.capture()
        telemetry.disable()
        assert ctx.span("x") is NULL_SPAN


class TestMergeRoots:
    def test_merge_into_parent_rewrites_trace_ids(self):
        telemetry.enable()
        worker = Tracer()
        worker.enable()
        with worker.span("w-root"):
            with worker.span("w-child"):
                pass
        with telemetry.span("parent") as parent:
            ctx = TraceContext.capture()
        merged = merge_roots(worker.roots(), ctx)
        assert merged == 1
        (w_root,) = parent.children
        assert w_root.name == "w-root"
        assert [s.trace_id for s in w_root.walk()] == [parent.trace_id] * 2

    def test_merge_without_parent_lands_in_finished_ring(self):
        telemetry.enable()
        worker = Tracer()
        worker.enable()
        with worker.span("w-root"):
            pass
        ctx = TraceContext.capture()  # outside any span
        assert merge_roots(worker.roots(), ctx) == 1
        (root,) = TRACER.roots()
        assert root.name == "w-root"
        assert root.trace_id == ctx.trace_id

    def test_merge_respects_the_ring_bound(self):
        telemetry.enable()
        target = Tracer(max_finished=2)
        target.enable()
        ctx = TraceContext(new_trace_id(), None, target)
        worker = Tracer()
        worker.enable()
        for i in range(4):
            with worker.span(f"w{i}"):
                pass
        assert merge_roots(worker.roots(), ctx) == 4
        assert len(target.roots()) == 2
        assert target.dropped == 2

    def test_null_context_merge_is_a_noop(self):
        worker = Tracer()
        worker.enable()
        with worker.span("w"):
            pass
        assert merge_roots(worker.roots(), NULL_CONTEXT) == 0
        assert TRACER.roots() == []


class TestWorkerTracer:
    def test_enabled_iff_context_records(self):
        assert not WorkerTracer(NULL_CONTEXT).enabled
        telemetry.enable()
        ctx = TraceContext.capture()
        wt = WorkerTracer(ctx)
        assert wt.enabled
        assert wt.epoch == TRACER.epoch

    def test_merge_into_folds_the_worker_lane(self):
        telemetry.enable()
        with telemetry.span("parent") as parent:
            ctx = TraceContext.capture()
        wt = WorkerTracer(ctx)
        with wt.span("lane"):
            with wt.span("inner"):
                pass
        assert wt.merge_into() == 1
        (lane,) = parent.children
        assert [s.name for s in lane.walk()] == ["lane", "inner"]
        assert {s.trace_id for s in lane.walk()} == {parent.trace_id}

    def test_double_merge_does_not_duplicate(self):
        telemetry.enable()
        with telemetry.span("parent") as parent:
            ctx = TraceContext.capture()
        wt = WorkerTracer(ctx)
        with wt.span("lane"):
            pass
        assert wt.merge_into() == 1
        assert wt.merge_into() == 0
        assert len(parent.children) == 1

    def test_disabled_worker_collects_nothing(self):
        wt = WorkerTracer(NULL_CONTEXT)
        with wt.span("lane") as sp:
            assert sp is NULL_SPAN
        assert wt.merge_into() == 0


class TestExports:
    def test_trace_id_survives_the_chrome_roundtrip(self, tmp_path):
        telemetry.enable()
        with telemetry.span("root") as root:
            with telemetry.span("child"):
                pass
        path = telemetry.write_chrome_trace(tmp_path / "trace.json")
        loaded = telemetry.load_chrome_trace(path)
        assert [s.trace_id for s in loaded[0].walk()] == [root.trace_id] * 2

    def test_run_record_spans_carry_trace_ids(self):
        telemetry.enable()
        with telemetry.span("root") as root:
            pass
        record = telemetry.run_record("t", log=False, health=False)
        assert record["spans"][0]["trace_id"] == root.trace_id
        telemetry.validate_run_record(record)

    def test_validate_rejects_bad_trace_id_type(self):
        telemetry.enable()
        with telemetry.span("root"):
            pass
        record = telemetry.run_record("t", log=False, health=False)
        record["spans"][0]["trace_id"] = 123
        with pytest.raises(telemetry.TelemetryError):
            telemetry.validate_run_record(record)
