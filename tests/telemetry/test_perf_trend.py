"""Statistical trend gating: median/MAD math and the rolling gate."""

import pytest

from repro.telemetry.export import run_record
from repro.telemetry.perf import RunRecordStore
from repro.telemetry.perf.trend import (
    DEFAULT_WINDOW,
    MIN_HISTORY,
    mad,
    measure_trend_point,
    median,
    timing_history,
    trend_gate,
)


def _stamp(store, timing, name="w"):
    store.append(
        run_record(
            name,
            log=False,
            health=False,
            extra={"timing_s": timing},
        )
    )


class TestStatistics:
    def test_median_odd_and_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 3.0, 2.0]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_mad_is_robust_to_one_outlier(self):
        values = [1.0, 1.1, 0.9, 1.0, 100.0]
        assert mad(values) == pytest.approx(0.1)

    def test_mad_explicit_center(self):
        assert mad([1.0, 3.0], center=2.0) == 1.0

    def test_timing_history_skips_untimed_records(self):
        records = [
            {"extra": {"timing_s": 1.0}},
            {"extra": {}},
            {"extra": {"timing_s": True}},  # bool is not a timing
            {"extra": {"timing_s": 2.0}},
        ]
        assert timing_history(records) == [1.0, 2.0]


class TestGate:
    def test_empty_history_is_insufficient(self, tmp_path):
        stats = trend_gate(RunRecordStore(tmp_path), "w")
        assert stats.insufficient
        assert stats.ok is None
        assert stats.n_history == 0

    def test_too_short_history_is_insufficient(self, tmp_path):
        store = RunRecordStore(tmp_path)
        for t in (1.0, 1.1, 1.0):  # latest + 2 prior < MIN_HISTORY
            _stamp(store, t)
        stats = trend_gate(store, "w")
        assert stats.insufficient
        assert stats.n_history == 2
        assert MIN_HISTORY == 3

    def test_steady_history_passes(self, tmp_path):
        store = RunRecordStore(tmp_path)
        for t in (1.0, 1.05, 0.95, 1.0, 1.02):
            _stamp(store, t)
        stats = trend_gate(store, "w")
        assert stats.ok is True
        assert stats.center == pytest.approx(1.0, abs=0.05)
        assert "OK" in stats.render()

    def test_big_jump_regresses(self, tmp_path):
        store = RunRecordStore(tmp_path)
        for t in (1.0, 1.01, 0.99, 1.0):
            _stamp(store, t)
        _stamp(store, 2.0)  # the gated point: 2x the median
        stats = trend_gate(store, "w")
        assert stats.ok is False
        assert stats.latest == 2.0
        assert "REGRESSED" in stats.render()

    def test_rel_floor_tolerates_jitter_on_quiet_history(self, tmp_path):
        store = RunRecordStore(tmp_path)
        for _ in range(4):
            _stamp(store, 1.0)  # MAD is exactly zero
        _stamp(store, 1.04)  # +4% < the 5% relative floor
        assert trend_gate(store, "w").ok is True
        _stamp(store, 1.2)  # +20% > the floor
        assert trend_gate(store, "w").ok is False

    def test_window_bounds_the_lookback(self, tmp_path):
        store = RunRecordStore(tmp_path)
        for _ in range(20):
            _stamp(store, 1.0)
        _stamp(store, 1.0)
        stats = trend_gate(store, "w")
        assert stats.n_history == DEFAULT_WINDOW

    def test_explicit_latest_overrides_the_stored_point(self, tmp_path):
        store = RunRecordStore(tmp_path)
        for t in (1.0, 1.0, 1.0, 1.0):
            _stamp(store, t)
        stats = trend_gate(store, "w", latest=5.0)
        assert stats.ok is False
        assert stats.n_history == 4  # nothing held out

    def test_as_dict_roundtrips_the_verdict(self, tmp_path):
        store = RunRecordStore(tmp_path)
        for t in (1.0, 1.0, 1.0, 1.0):
            _stamp(store, t)
        doc = trend_gate(store, "w").as_dict()
        assert doc["ok"] is True
        assert doc["metric"] == "timing_s"
        assert doc["threshold"] > doc["center"]
        assert doc["direction"] == "above"


class TestDirectionBelow:
    """Gating metrics that must not *fall* — overlap efficiency."""

    def test_steady_efficiency_passes(self, tmp_path):
        store = RunRecordStore(tmp_path)
        for eff in (0.95, 0.96, 0.94, 0.95, 0.95):
            _stamp(store, eff)
        stats = trend_gate(store, "w", direction="below")
        assert stats.ok is True
        assert stats.threshold < stats.center
        assert "min allowed" in stats.render()

    def test_efficiency_collapse_regresses(self, tmp_path):
        store = RunRecordStore(tmp_path)
        for eff in (0.95, 0.96, 0.94, 0.95):
            _stamp(store, eff)
        _stamp(store, 0.3)  # overlap stopped hiding the transfers
        stats = trend_gate(store, "w", direction="below")
        assert stats.ok is False
        assert "falls below" in stats.render()

    def test_rising_value_never_regresses_below_gate(self, tmp_path):
        store = RunRecordStore(tmp_path)
        for eff in (0.5, 0.5, 0.5, 0.5):
            _stamp(store, eff)
        _stamp(store, 0.99)  # improvement is fine in this direction
        assert trend_gate(store, "w", direction="below").ok is True

    def test_bad_direction_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="direction"):
            trend_gate(RunRecordStore(tmp_path), "w", direction="sideways")


class TestMeasurement:
    def test_measure_trend_point_appends_a_validated_record(self, tmp_path):
        store = RunRecordStore(tmp_path)
        record = measure_trend_point(
            store, repeats=1, kernel="Box-2D9P", size=32, seed=0
        )
        assert record["extra"]["timing_s"] > 0
        (stored,) = store.load(record["name"])
        assert stored["extra"]["timing_s"] == record["extra"]["timing_s"]

    def test_repeats_stamp_the_median_and_spans(self, tmp_path):
        from repro.telemetry.perf import measure_reference

        record = measure_reference("Box-2D9P", size=32, seed=0, repeats=3)
        assert record["extra"]["timing_repeats"] == 3
        # satellite: the reference record carries its trace now
        assert record["tracer"]["finished_spans"] > 0
        assert record["spans"]

    def test_bad_repeats_raises(self):
        from repro.telemetry.perf import measure_reference

        with pytest.raises(ValueError):
            measure_reference("Box-2D9P", size=32, repeats=0)
