"""Shard health registry: heartbeats, binding, snapshots, publishing."""

import json
import threading

from repro import telemetry
from repro.telemetry.health import (
    ENV_HEALTH_FILE,
    HEALTH,
    HealthRegistry,
    current_beat,
    render_snapshot,
)


class TestShardLifecycle:
    def test_beat_advances_progress_and_clock(self):
        reg = HealthRegistry()
        sweep = reg.start_sweep("s")
        shard = sweep.shard(0, rows="0:16")
        shard.beat(0, 12)
        shard.beat(4)
        shard.beat(4)
        assert shard.tiles_done == 8
        assert shard.tiles_total == 12
        assert shard.beats == 3

    def test_bind_marks_terminal_states(self):
        reg = HealthRegistry()
        sweep = reg.start_sweep("s")
        with reg.bind(sweep.shard(0)) as shard:
            assert shard.state == "running"
        assert shard.state == "done"
        try:
            with reg.bind(sweep.shard(1)):
                raise RuntimeError("worker died")
        except RuntimeError:
            pass
        assert sweep.shard(1).state == "failed"
        assert sweep.shard(0).state == "done"
        assert sweep.done  # done means all terminal; failed counts

    def test_retry_restarts_progress_but_keeps_history(self):
        reg = HealthRegistry()
        sweep = reg.start_sweep("s")
        shard = sweep.shard(0)
        with reg.bind(shard):
            shard.beat(6, 12)
        shard.bump_retries()
        assert shard.state == "retrying"
        with reg.bind(shard):
            assert shard.state == "running"
            assert shard.tiles_done == 0  # progress restarted
        assert shard.retries == 1

    def test_sweep_done_requires_every_shard_terminal(self):
        reg = HealthRegistry()
        sweep = reg.start_sweep("s")
        assert not sweep.done  # no shards yet
        a, b = sweep.shard(0), sweep.shard(1)
        with reg.bind(a):
            pass
        assert not sweep.done
        with reg.bind(b):
            pass
        assert sweep.done


class TestThreadBinding:
    def test_current_beat_is_none_unbound(self):
        assert current_beat() is None

    def test_current_beat_is_thread_local(self):
        # current_beat reads the process-wide HEALTH registry
        sweep = HEALTH.start_sweep("s")
        other: list = []

        def probe():
            other.append(current_beat())

        with HEALTH.bind(sweep.shard(0)):
            assert current_beat() is not None
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert other == [None]
        assert current_beat() is None

    def test_sharded_sweep_reports_real_progress(self, rng):
        import numpy as np

        import repro
        from repro.stencil.kernels import get_kernel

        k = get_kernel("Box-2D9P")
        padded = np.pad(rng.normal(size=(48, 48)), k.weights.radius)
        compiled = repro.compile(k.weights)
        telemetry.reset()
        compiled.apply_simulated(padded, shards=3)
        (sweep,) = HEALTH.sweeps()
        assert sweep.done
        shards = sweep.as_dict()["shards"]
        assert len(shards) == 3
        for shard in shards:
            assert shard["state"] == "done"
            assert shard["tiles_done"] == shard["tiles_total"] > 0


class TestSnapshots:
    def test_snapshot_shape_and_render(self):
        reg = HealthRegistry()
        sweep = reg.start_sweep("demo")
        with reg.bind(sweep.shard(0, rows="0:16")) as shard:
            shard.beat(3, 12)
        snap = reg.snapshot()
        assert "generated" in snap
        (s,) = snap["sweeps"]
        assert s["name"] == "demo"
        assert s["done"] is True
        text = render_snapshot(snap)
        assert "demo" in text
        assert "3/12" in text
        # the registry's own render goes through the same snapshot shape
        assert reg.render().splitlines()[0] == text.splitlines()[0]

    def test_empty_registry_renders_placeholder(self):
        assert HealthRegistry().render() == "(no sweeps registered)"

    def test_file_publishing_is_atomic_json(self, tmp_path):
        path = tmp_path / "health.json"
        reg = HealthRegistry()
        reg.configure_file(path, min_interval_s=0.0)
        sweep = reg.start_sweep("s")
        with reg.bind(sweep.shard(0)) as shard:
            shard.beat(1, 4)
        doc = json.loads(path.read_text())
        assert doc["sweeps"][0]["shards"][0]["state"] == "done"
        assert not path.with_suffix(".json.tmp").exists()

    def test_env_var_configures_publishing(self, tmp_path, monkeypatch):
        path = tmp_path / "live.json"
        monkeypatch.setenv(ENV_HEALTH_FILE, str(path))
        reg = HealthRegistry()
        reg.start_sweep("from-env")
        assert path.exists()  # the env var alone opted publishing in
        reg.write_file()
        assert json.loads(path.read_text())["sweeps"][0]["name"] == "from-env"

    def test_eviction_keeps_only_recent_finished_sweeps(self):
        reg = HealthRegistry(max_finished=2)
        for i in range(4):
            sweep = reg.start_sweep(f"s{i}")
            with reg.bind(sweep.shard(0)):
                pass
        assert len(reg.sweeps()) <= 3  # ring: evicts finished beyond max


class TestPublishing:
    def test_publish_folds_aggregates_into_metrics(self):
        reg = HealthRegistry()
        sweep = reg.start_sweep("s")
        with reg.bind(sweep.shard(0)) as shard:
            shard.beat(5, 10)
        shard2 = sweep.shard(1)
        shard2.bump_retries()
        reg.publish(telemetry.REGISTRY)
        get = telemetry.REGISTRY.get
        assert get("repro_health_sweeps").value == 1
        assert get("repro_health_tiles_done").value == 5
        assert get("repro_health_tiles_total").value == 10
        assert get("repro_health_shard_retries").value == 1
        assert get("repro_health_shards_running").value == 1  # shard2

    def test_run_record_folds_health_in(self):
        sweep = HEALTH.start_sweep("record-me")
        with HEALTH.bind(sweep.shard(0)) as shard:
            shard.beat(2, 4)
        record = telemetry.run_record("t", log=False)
        (s,) = record["health"]["sweeps"]
        assert s["name"] == "record-me"
        telemetry.validate_run_record(record)

    def test_run_record_omits_empty_health(self):
        record = telemetry.run_record("t")
        assert "health" not in record
