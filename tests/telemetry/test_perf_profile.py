"""Per-instruction IR profiling: attribution must close the books.

The profile's defining contract is conservation: the per-opcode event
deltas plus the driver residue must equal the uninstrumented sweep's
totals **bit-exactly** — otherwise attribution is inventing or leaking
events and every downstream consumer (fidelity, regression gating) is
built on sand.
"""

import numpy as np
import pytest

from repro.errors import PerfError
from repro.runtime import compile as compile_stencil
from repro.stencil.kernels import get_kernel
from repro.tcu.counters import EventCounters
from repro.telemetry.perf import (
    PLAN_PROFILE_SCHEMA,
    SHARED_BUCKET,
    InstrProfiler,
    profile_plan,
    profile_shape,
)


def _padded(plan, size=32, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=profile_shape(plan.ndim, size))
    return np.pad(x, plan.radius)


@pytest.fixture()
def box_plan():
    return compile_stencil(get_kernel("Box-2D9P").weights).plan


class TestBitExactAttribution:
    @pytest.mark.parametrize(
        "kernel", ["Heat-1D", "Box-2D9P", "Star-2D13P", "Heat-3D"]
    )
    def test_profiled_total_matches_uninstrumented_sweep(self, kernel):
        plan = compile_stencil(get_kernel(kernel).weights).plan
        padded = _padded(plan)
        _, bare = plan.engine.apply_simulated(padded)
        profile = profile_plan(plan, padded)
        assert profile.total_events.as_dict() == bare.as_dict()

    def test_per_opcode_sum_plus_driver_equals_total(self, box_plan):
        profile = profile_plan(box_plan, _padded(box_plan))
        recomputed = EventCounters()
        for stats in profile.by_op.values():
            recomputed += stats.events
        recomputed += profile.driver_events
        assert recomputed.as_dict() == profile.total_events.as_dict()

    def test_per_term_sum_equals_per_opcode_sum(self, box_plan):
        profile = profile_plan(box_plan, _padded(box_plan))
        by_term = EventCounters()
        for stats in profile.by_term.values():
            by_term += stats.events
        assert by_term.as_dict() == profile.program_events.as_dict()

    def test_instruction_counts_cover_whole_program(self, box_plan):
        padded = _padded(box_plan)
        profile = profile_plan(box_plan, padded)
        rows, cols = (s - 2 * box_plan.radius for s in padded.shape)
        tile = box_plan.engine.tile
        tiles = -(-rows // tile.out_rows) * (-(-cols // tile.out_cols))
        assert profile.instr_count == tiles * len(box_plan.program.instrs)
        assert sum(s.count for s in profile.by_term.values()) == (
            profile.instr_count
        )

    def test_profiling_does_not_change_the_result(self, box_plan):
        padded = _padded(box_plan)
        bare_out, _ = box_plan.engine.apply_simulated(padded)
        profiler = InstrProfiler()
        prof_out, _ = box_plan.engine.apply_simulated(
            padded, profiler=profiler
        )
        np.testing.assert_array_equal(prof_out, bare_out)
        assert profiler.instr_count() > 0


class TestAttributionSemantics:
    def test_mma_events_charged_to_mma_opcodes_only(self, box_plan):
        profile = profile_plan(box_plan, _padded(box_plan))
        mma_total = profile.total_events.mma_ops
        charged = sum(
            s.events.mma_ops
            for op, s in profile.by_op.items()
            if op in ("mma", "mma2")
        )
        assert mma_total > 0 and charged == mma_total

    def test_load_x_lands_in_shared_bucket(self, box_plan):
        profile = profile_plan(box_plan, _padded(box_plan))
        assert SHARED_BUCKET in profile.by_term
        assert (
            profile.by_term[SHARED_BUCKET].count
            == profile.by_op["load_x"].count
        )

    def test_rank1_terms_are_separated(self):
        # Star-2D13P decomposes to multiple rank-1 terms
        plan = compile_stencil(get_kernel("Star-2D13P").weights).plan
        profile = profile_plan(plan, _padded(plan))
        term_rows = [t for t in profile.by_term if t.startswith("term ")]
        assert len(term_rows) >= 2

    def test_driver_books_global_traffic(self, box_plan):
        profile = profile_plan(box_plan, _padded(box_plan))
        # the program never touches DRAM; staging and stores are driver work
        assert profile.program_events.global_store_bytes == 0
        assert profile.driver_events.global_store_bytes > 0


class TestPlanProfileSurface:
    def test_profile_keyed_by_plan_hash_and_schedule(self, box_plan):
        profile = box_plan.profile(size=16)
        assert profile.plan_key == box_plan.key
        assert profile.schedule == box_plan.schedule
        assert profile.pass_times == tuple(box_plan.lowered.pass_times)

    def test_as_dict_is_schema_tagged_and_joinable(self, box_plan):
        d = box_plan.profile(size=16).as_dict()
        assert d["schema"] == PLAN_PROFILE_SCHEMA
        assert d["plan"]["key"] == box_plan.key
        assert d["plan"]["schedule"] == box_plan.schedule
        assert set(d["by_op"]) == {"load_x", "mma", "split", "mma2", "apex"}

    def test_render_mentions_every_opcode(self, box_plan):
        text = box_plan.profile(size=16).render()
        for op in ("load_x", "mma", "split", "apex", "[driver]", "[total]"):
            assert op in text

    def test_facade_profile_delegates(self):
        compiled = compile_stencil(get_kernel("Box-2D9P").weights)
        profile = compiled.profile(size=16)
        assert profile.plan_key == compiled.key


class TestRefusals:
    def test_cuda_core_plan_refused(self):
        from repro.core.config import OptimizationConfig

        compiled = compile_stencil(
            get_kernel("Box-2D9P").weights,
            config=OptimizationConfig(use_tensor_cores=False),
        )
        with pytest.raises(PerfError, match="tensor-core"):
            compiled.profile(size=16)

    def test_sharded_profiling_refused(self):
        compiled = compile_stencil(get_kernel("Box-2D9P").weights)
        padded = _padded(compiled.plan)
        with pytest.raises(PerfError, match="shard"):
            compiled.apply_simulated(
                padded, shards=2, profiler=InstrProfiler()
            )
