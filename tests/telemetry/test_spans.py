"""Span/Tracer behaviour: nesting, zero-overhead disabled path, threads."""

import threading

import pytest

from repro import telemetry
from repro.tcu.counters import EventCounters
from repro.telemetry.spans import NULL_SPAN, Tracer


class TestDisabledPath:
    def test_disabled_span_is_the_null_singleton(self):
        assert telemetry.span("anything") is NULL_SPAN
        assert telemetry.TRACER.span("anything", category="x") is NULL_SPAN

    def test_null_span_absorbs_the_full_protocol(self):
        with telemetry.span("off") as sp:
            assert sp is NULL_SPAN
            assert sp.annotate(k="v") is sp
            assert sp.add_events(EventCounters()) is sp
        assert not sp.is_recording
        assert sp.duration_ns == 0

    def test_nothing_collected_while_disabled(self):
        with telemetry.span("off"):
            pass
        assert telemetry.TRACER.roots() == []
        assert len(telemetry.REGISTRY) == 0

    def test_absorb_helpers_gate_on_enabled(self):
        events = EventCounters()
        events.mma_ops = 7
        telemetry.absorb_events(events)
        assert len(telemetry.REGISTRY) == 0
        telemetry.enable()
        telemetry.absorb_events(events)
        assert telemetry.REGISTRY.get("repro_tcu_mma_ops_total").value == 7


class TestNesting:
    def test_child_attaches_to_open_parent(self):
        telemetry.enable()
        with telemetry.span("parent") as p:
            with telemetry.span("child") as c:
                pass
        assert c.parent is p
        assert p.children == [c]
        (root,) = telemetry.TRACER.roots()
        assert root is p

    def test_current_tracks_innermost(self):
        telemetry.enable()
        assert telemetry.TRACER.current() is None
        with telemetry.span("a") as a:
            assert telemetry.TRACER.current() is a
            with telemetry.span("b") as b:
                assert telemetry.TRACER.current() is b
            assert telemetry.TRACER.current() is a
        assert telemetry.TRACER.current() is None

    def test_explicit_parent_overrides_stack(self):
        telemetry.enable()
        with telemetry.span("outer") as outer:
            pass
        with telemetry.span("adopted", parent=outer) as sp:
            pass
        assert sp.parent is outer
        assert sp in outer.children
        # the adopted span did not become a root of its own
        assert telemetry.TRACER.roots() == [outer]

    def test_explicit_none_parent_makes_a_root(self):
        telemetry.enable()
        with telemetry.span("outer"):
            with telemetry.span("detached", parent=None):
                pass
        assert [r.name for r in telemetry.TRACER.roots()] == [
            "detached",
            "outer",
        ]

    def test_walk_is_depth_first(self):
        telemetry.enable()
        with telemetry.span("r"):
            with telemetry.span("a"):
                with telemetry.span("a1"):
                    pass
            with telemetry.span("b"):
                pass
        root = telemetry.TRACER.last_root()
        assert [s.name for s in root.walk()] == ["r", "a", "a1", "b"]

    def test_self_time_accounts_for_children(self):
        telemetry.enable()
        with telemetry.span("r") as r:
            with telemetry.span("a"):
                pass
        assert r.duration_ns >= r.child_ns
        assert r.self_ns == r.duration_ns - r.child_ns

    def test_exception_annotates_and_propagates(self):
        telemetry.enable()
        with pytest.raises(RuntimeError):
            with telemetry.span("boom") as sp:
                raise RuntimeError("x")
        assert sp.attrs["error"] == "RuntimeError"
        assert telemetry.TRACER.roots() == [sp]


class TestThreads:
    def test_stacks_are_thread_local(self):
        telemetry.enable()
        seen = {}

        def worker():
            seen["current"] = telemetry.TRACER.current()
            with telemetry.span("in-thread") as sp:
                seen["span"] = sp

        with telemetry.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # the worker does not inherit the main thread's open span
        assert seen["current"] is None
        assert seen["span"].parent is None

    def test_cross_thread_parenting_via_explicit_parent(self):
        telemetry.enable()
        with telemetry.span("sweep") as sweep:
            parent = telemetry.TRACER.current()

            def shard(i):
                with telemetry.span("shard", parent=parent, shard=i):
                    pass

            threads = [
                threading.Thread(target=shard, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(sweep.children) == 4
        assert {c.attrs["shard"] for c in sweep.children} == {0, 1, 2, 3}

    def test_finished_ring_bounds_memory(self):
        tracer = Tracer(max_finished=3)
        tracer.enable()
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [r.name for r in tracer.roots()] == ["s2", "s3", "s4"]
        assert tracer.dropped == 2


class TestRenderTree:
    def test_percentages_and_unaccounted(self):
        telemetry.enable()
        with telemetry.span("root"):
            with telemetry.span("phase-a"):
                pass
            with telemetry.span("phase-b"):
                pass
        root = telemetry.TRACER.last_root()
        text = root.render_tree()
        assert "root" in text and "├─ phase-a" in text and "└─ phase-b" in text
        assert "(unaccounted)" in text
        assert "100.0%" in text

    def test_child_percentages_sum_to_root(self):
        """Acceptance: direct children + unaccounted == root (±5%)."""
        telemetry.enable()
        with telemetry.span("root") as root:
            with telemetry.span("a"):
                sum(range(20_000))
            with telemetry.span("b"):
                sum(range(20_000))
        accounted = root.child_ns + root.self_ns
        assert accounted == pytest.approx(root.duration_ns, rel=0.05)

    def test_mma_tag(self):
        telemetry.enable()
        events = EventCounters()
        events.mma_ops = 1234
        with telemetry.span("sweep") as sp:
            sp.add_events(events)
        assert "[1,234 MMAs]" in sp.render_tree()


class TestDecorator:
    def test_wrap_records_when_enabled(self):
        calls = []

        @telemetry.trace("named.fn")
        def fn(x):
            calls.append(x)
            return x * 2

        assert fn(3) == 6  # disabled: no span
        assert telemetry.TRACER.roots() == []
        telemetry.enable()
        assert fn(4) == 8
        assert [r.name for r in telemetry.TRACER.roots()] == ["named.fn"]
        assert calls == [3, 4]

    def test_wrap_default_name(self):
        telemetry.enable()

        @telemetry.trace()
        def some_function():
            return 1

        some_function()
        (root,) = telemetry.TRACER.roots()
        assert root.name.endswith("some_function")


class TestCapture:
    def test_capture_enables_then_restores(self):
        assert not telemetry.is_enabled()
        with telemetry.capture() as tracer:
            assert telemetry.is_enabled()
            with telemetry.span("inside"):
                pass
            assert tracer is telemetry.TRACER
        assert not telemetry.is_enabled()
        assert [r.name for r in telemetry.TRACER.roots()] == ["inside"]

    def test_capture_fresh_clears_history(self):
        telemetry.enable()
        with telemetry.span("stale"):
            pass
        with telemetry.capture():
            pass
        assert telemetry.TRACER.roots() == []

    def test_span_durations_feed_registry(self):
        telemetry.enable()
        with telemetry.span("timed.phase"):
            pass
        hist = telemetry.REGISTRY.get("repro_span_timed_phase_seconds")
        assert hist is not None and hist.count == 1
