"""Exporter round-trips: Chrome traces, run-records, Prometheus text."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.tcu.counters import EventCounters
from repro.telemetry.export import (
    CHROME_TRACE_SCHEMA,
    RUN_RECORD_SCHEMA,
    load_chrome_trace,
    span_to_dict,
    to_chrome_trace,
    to_prometheus,
)
from repro.telemetry.validate import (
    TelemetryError,
    validate_chrome_trace,
    validate_file,
    validate_run_record,
)


def _sample_forest():
    """One root with a sweep child (carrying events) and a shard grandchild."""
    telemetry.enable()
    events = EventCounters()
    events.mma_ops = 36
    events.global_load_bytes = 4096
    with telemetry.span("runtime.compile", category="runtime", key="abc") as r:
        with telemetry.span("tcu.sweep", category="tcu") as sweep:
            sweep.add_events(events)
            with telemetry.span("runtime.shard", shard=0):
                pass
    return r


class TestChromeTrace:
    def test_document_shape(self):
        root = _sample_forest()
        doc = to_chrome_trace([root])
        assert doc["schema"] == CHROME_TRACE_SCHEMA
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases.count("X") == 3
        assert "M" in phases  # process/thread name metadata
        validate_chrome_trace(doc)

    def test_round_trip_preserves_structure(self):
        root = _sample_forest()
        doc = to_chrome_trace([root])
        # through actual JSON, as a file on disk would
        (loaded_root,) = load_chrome_trace(json.loads(json.dumps(doc)))
        assert loaded_root.name == "runtime.compile"
        assert loaded_root.attrs == {"key": "abc"}
        (sweep,) = loaded_root.children
        assert sweep.name == "tcu.sweep"
        assert sweep.events["mma_ops"] == 36
        (shard,) = sweep.children
        assert shard.attrs == {"shard": 0}
        # timing survives to the microsecond the format stores
        assert loaded_root.dur_us == pytest.approx(
            root.duration_ns / 1e3, abs=0.001
        )
        assert [s.name for s in loaded_root.walk()] == [
            s.name for s in root.walk()
        ]

    def test_write_and_validate_file(self, tmp_path):
        _sample_forest()
        path = telemetry.write_chrome_trace(tmp_path / "trace.json")
        assert validate_file(path) == CHROME_TRACE_SCHEMA
        (loaded,) = load_chrome_trace(path)
        assert loaded.name == "runtime.compile"

    def test_empty_trace_is_invalid(self):
        with pytest.raises(TelemetryError, match="no complete"):
            validate_chrome_trace(to_chrome_trace([]))


class TestRunRecord:
    def test_minimal_record_validates(self):
        record = telemetry.run_record("smoke")
        validate_run_record(record)
        assert record["schema"] == RUN_RECORD_SCHEMA
        assert record["spans"] == [] and record["metrics"] == {}

    def test_full_record_round_trips_through_disk(self, tmp_path):
        root = _sample_forest()
        telemetry.REGISTRY.counter("repro_runs_total").inc()

        class FakeStats:
            hits, misses, evictions, size, maxsize = 2, 1, 0, 1, 128
            hit_rate = 2 / 3

        events = EventCounters()
        events.mma_ops = 36
        record = telemetry.run_record(
            "full",
            registry=telemetry.REGISTRY,
            cache_stats=FakeStats(),
            counters=events,
            extra={"size": 64, "shape": (64, 64)},
        )
        path = telemetry.write_run_record(tmp_path / "rec.json", record)
        loaded = json.loads(path.read_text())
        validate_run_record(loaded)
        assert loaded["cache"]["hit_rate"] == pytest.approx(2 / 3)
        assert loaded["events"]["mma_ops"] == 36
        assert loaded["extra"] == {"size": 64, "shape": [64, 64]}
        (span,) = loaded["spans"]
        assert span["name"] == "runtime.compile"
        assert span["children"][0]["events"]["mma_ops"] == 36
        assert span_to_dict(root)["name"] == span["name"]

    def test_write_rejects_invalid_record(self, tmp_path):
        with pytest.raises(TelemetryError):
            telemetry.write_run_record(tmp_path / "bad.json", {"schema": "nope"})
        assert not (tmp_path / "bad.json").exists()

    def test_validator_names_offending_path(self):
        record = telemetry.run_record("x")
        record["spans"] = [{"name": 3}]
        with pytest.raises(TelemetryError, match=r"record\.spans\[0\]"):
            validate_run_record(record)

    def test_validate_file_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"schema": "something/else"}')
        with pytest.raises(TelemetryError, match="unknown or missing"):
            validate_file(path)


class TestPrometheus:
    def test_exposition_format(self):
        reg = telemetry.MetricsRegistry()
        reg.counter("repro_runs_total", help="runs").inc(3)
        reg.gauge("repro_cache_size").set(2)
        h = reg.histogram("repro_sweep_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = to_prometheus(reg)
        assert "# HELP repro_runs_total runs" in text
        assert "# TYPE repro_runs_total counter" in text
        assert "repro_runs_total 3" in text
        assert "repro_cache_size 2" in text
        assert 'repro_sweep_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_sweep_seconds_bucket{le="1"} 2' in text
        assert 'repro_sweep_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_sweep_seconds_sum 0.55" in text
        assert "repro_sweep_seconds_count 2" in text
        assert text.endswith("\n")

    def test_numpy_values_render_plain(self):
        reg = telemetry.MetricsRegistry()
        reg.gauge("g").set(np.float64(1.0))
        assert "g 1" in to_prometheus(reg)
