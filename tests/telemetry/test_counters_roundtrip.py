"""EventCounters algebra round-trips through the telemetry layer.

The observatory leans on three counter operations — ``snapshot``/
``diff`` (per-instruction deltas), ``__iadd__`` (profile aggregation)
and ``scaled`` (model extrapolation) — and on the MetricsRegistry
absorbing the results.  These tests pin the algebra: composing the
operations and absorbing the outcome must be indistinguishable from
absorbing the original, field for field.
"""

import numpy as np
import pytest

from repro.runtime import compile as compile_stencil
from repro.stencil.kernels import get_kernel
from repro.tcu.counters import EventCounters
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.perf import InstrProfiler


@pytest.fixture()
def measured():
    """Real counters from a small Box-2D9P sweep (not synthetic)."""
    plan = compile_stencil(get_kernel("Box-2D9P").weights).plan
    rng = np.random.default_rng(0)
    padded = np.pad(rng.normal(size=(16, 16)), plan.radius)
    _, events = plan.engine.apply_simulated(padded)
    return events


class TestAlgebraRoundTrips:
    def test_diff_of_snapshot_recovers_delta(self, measured):
        base = measured.snapshot()
        base.mma_ops += 7
        base.global_load_bytes += 64
        delta = base.diff(measured)
        assert delta.mma_ops == 7
        assert delta.global_load_bytes == 64
        assert delta.shared_load_requests == 0

    def test_iadd_of_diffs_reassembles_total(self, measured):
        # split the total into two snapshots and re-accumulate
        half = measured.scaled(0.5)
        rest = measured.diff(half)
        total = EventCounters()
        total += half
        total += rest
        assert total.as_dict() == measured.as_dict()

    def test_scaled_roundtrip_is_exact_for_integers(self, measured):
        doubled = measured.scaled(2).scaled(0.5)
        assert doubled.as_dict() == measured.as_dict()

    def test_scaled_preserves_derived_quantities(self, measured):
        s = measured.scaled(3)
        assert s.dram_bytes == 3 * measured.dram_bytes
        assert s.tensor_core_flops == 3 * measured.tensor_core_flops


class TestRegistryAbsorption:
    def test_absorbing_reassembled_equals_absorbing_original(self, measured):
        direct, rebuilt = MetricsRegistry(), MetricsRegistry()
        direct.absorb_events(measured)
        half = measured.scaled(0.5)
        rebuilt.absorb_events(half)
        rebuilt.absorb_events(measured.diff(half))
        assert direct.snapshot() == rebuilt.snapshot()

    def test_absorbing_per_instruction_deltas_equals_sweep_total(self):
        plan = compile_stencil(get_kernel("Box-2D9P").weights).plan
        rng = np.random.default_rng(1)
        padded = np.pad(rng.normal(size=(16, 16)), plan.radius)

        profiler = InstrProfiler()
        _, events = plan.engine.apply_simulated(padded, profiler=profiler)

        from_total, from_parts = MetricsRegistry(), MetricsRegistry()
        from_total.absorb_events(events)
        for stats in profiler.by_op.values():
            from_parts.absorb_events(stats.events)
        from_parts.absorb_events(events.diff(profiler.program_events()))
        assert from_total.snapshot() == from_parts.snapshot()
