"""The cluster observatory: report invariants, ledger reconciliation,
model agreement, rendering, and exporter surfaces."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.faults import FaultPlan, FaultSpec, RecoveryPolicy
from repro.parallel.cluster import ClusterRuntime
from repro.parallel.plan import distribute
from repro.stencil.kernels import get_kernel
from repro.telemetry.cluster import (
    CLUSTER_REPORT_SCHEMA,
    LANE_NAMES,
    build_cluster_report,
    last_report,
    modeled_transfer_s,
    render_gantt,
    to_lane_trace,
)
from repro.telemetry.validate import (
    TelemetryError,
    validate_cluster_report,
    validate_run_record,
)

FAST_POLICY = RecoveryPolicy(
    shard_timeout_s=20.0, shard_retries=2, backoff_base_s=0.001,
    backoff_cap_s=0.01,
)


def _run(rng, *, size=32, mesh=(2, 2), steps=4, block_steps=2,
         overlap=True, executor="thread", faults=None):
    w = get_kernel("Heat-2D").weights
    x = rng.normal(size=(size, size))
    plan = distribute(w, x.shape, mesh, block_steps=block_steps)
    runtime = ClusterRuntime(plan)
    kwargs = dict(
        block_steps=block_steps, overlap=overlap, executor=executor
    )
    if faults is not None:
        kwargs.update(faults=faults, policy=FAST_POLICY)
    with telemetry.capture() as tracer:
        result = runtime.run(x, steps, **kwargs)
    return result, tracer


class TestReportInvariants:
    def test_schema_and_structure(self, rng):
        result, tracer = _run(rng)
        report = build_cluster_report(result, tracer=tracer)
        assert report["schema"] == CLUSTER_REPORT_SCHEMA
        assert report["trace_id"] == result.trace_id
        assert report["run"]["rounds"] == len(result.phases)
        assert len(report["ranks"]) == 4
        validate_cluster_report(report)
        assert last_report() is report

    def test_lanes_sum_exactly_to_rank_wall(self, rng):
        result, tracer = _run(rng)
        report = build_cluster_report(result, tracer=tracer)
        for row in report["ranks"]:
            assert set(row["lanes_ns"]) == set(LANE_NAMES)
            assert sum(row["lanes_ns"].values()) == row["wall_ns"]

    def test_critical_path_dominates_every_rank(self, rng):
        result, tracer = _run(rng)
        report = build_cluster_report(result, tracer=tracer)
        crit = report["critical_path"]
        assert crit["ns"] >= max(r["wall_ns"] for r in report["ranks"])
        # one node per round, each naming the round's straggler
        assert [n["round"] for n in crit["nodes"]] == sorted(
            n["round"] for n in crit["nodes"]
        )
        assert len(crit["nodes"]) == report["run"]["rounds"]

    def test_result_report_method_delegates(self, rng):
        result, tracer = _run(rng)
        report = result.report(tracer=tracer)
        assert report["schema"] == CLUSTER_REPORT_SCHEMA
        validate_cluster_report(report)


class TestHaloReconciliation:
    def test_three_ledgers_agree_bit_exactly(self, rng):
        result, tracer = _run(rng, steps=5, block_steps=2)
        report = build_cluster_report(result, tracer=tracer)
        halo = report["halo"]
        assert halo["reconciled"] is True
        per_round = sum(e["halo_bytes"] for e in halo["per_round"])
        assert per_round == halo["total_bytes"]
        assert halo["total_bytes"] == result.exchanged_bytes
        assert halo["total_bytes"] == result.halo_counter_delta
        # ragged tail round (5 steps / block 2) is in the ledger too
        assert [e["steps"] for e in halo["per_round"]] == [2, 2, 1]

    def test_per_round_transfer_uses_the_shared_model(self, rng):
        result, tracer = _run(rng)
        report = build_cluster_report(result, tracer=tracer)
        for entry in report["halo"]["per_round"]:
            assert entry["transfer_s"] == modeled_transfer_s(
                entry["comm_bytes_max"]
            )


class TestOverlapEfficiency:
    def test_efficiency_in_unit_interval_and_positive(self, rng):
        result, tracer = _run(rng, overlap=True)
        report = build_cluster_report(result, tracer=tracer)
        eff = report["overlap"]["efficiency"]
        assert 0.0 <= eff <= 1.0
        # functional thread runs hide sub-microsecond modeled transfers
        # behind millisecond interior sweeps: always some hiding
        assert eff > 0.0
        assert report["overlap"]["hidden_s"] <= (
            report["overlap"]["transfer_s"] + 1e-12
        )

    def test_no_overlap_means_nothing_hidden(self, rng):
        result, tracer = _run(rng, overlap=False)
        report = build_cluster_report(result, tracer=tracer)
        assert report["overlap"]["enabled"] is False
        assert report["overlap"]["efficiency"] == 0.0
        assert report["overlap"]["hidden_s"] == 0.0

    def test_modeled_section_matches_cluster_timings(self, rng):
        result, tracer = _run(rng, steps=4, block_steps=2)
        report = build_cluster_report(result, tracer=tracer)
        modeled = report["overlap"]["modeled"]
        timings = ClusterRuntime(result.plan).timings(
            steps=4, overlap=True, block_steps=2
        )
        assert modeled["comm_s"] == timings.comm_s
        assert modeled["interior_s"] == timings.interior_s
        assert 0.0 <= modeled["efficiency"] <= 1.0
        # the same formula ClusterTimings charges per blocked round
        round0 = report["halo"]["per_round"][0]
        assert round0["transfer_s"] == pytest.approx(
            timings.comm_s * 2, rel=1e-12
        )


class TestFaultsAndErrors:
    def test_crash_shows_up_as_retry_lane(self, rng):
        faults = FaultPlan(specs=(FaultSpec(kind="shard_crash", site=1),))
        result, tracer = _run(
            rng, mesh=(2, 1), steps=2, block_steps=1, overlap=False,
            executor="serial", faults=faults,
        )
        report = build_cluster_report(result, tracer=tracer)
        validate_cluster_report(report)
        retried = [r for r in report["ranks"] if r["lanes_ns"]["retry"] > 0]
        assert retried
        rounds = report["run"]["rounds"]
        assert any(r["attempts"] > rounds for r in report["ranks"])

    def test_untraced_run_raises(self, rng):
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(16, 16))
        plan = distribute(w, x.shape, (2, 1))
        result = ClusterRuntime(plan).run(x, 1)  # telemetry off
        with pytest.raises(TelemetryError, match="no trace"):
            build_cluster_report(result)

    def test_evicted_trace_raises(self, rng):
        result, tracer = _run(rng, mesh=(2, 1), steps=1, block_steps=1)
        tracer.clear()
        with pytest.raises(TelemetryError, match="trace_id"):
            build_cluster_report(result, tracer=tracer)


class TestRenderingAndExport:
    def test_gantt_headlines(self, rng):
        result, tracer = _run(rng)
        report = build_cluster_report(result, tracer=tracer)
        text = render_gantt(report, width=48)
        lines = text.splitlines()
        assert sum(1 for ln in lines if ln.startswith("rank ")) == 4
        assert "legend:" in text
        assert "critical path" in text
        assert "overlap efficiency" in text
        assert "ledger reconciled: True" in text

    def test_lane_trace_is_schema_valid_chrome_trace(self, rng, tmp_path):
        from repro.telemetry.export import CHROME_TRACE_SCHEMA
        from repro.telemetry.validate import validate_file

        result, tracer = _run(rng)
        report = build_cluster_report(result, tracer=tracer)
        doc = to_lane_trace(report)
        assert doc["schema"] == CHROME_TRACE_SCHEMA
        path = tmp_path / "lanes.json"
        path.write_text(json.dumps(doc))
        assert validate_file(path) == CHROME_TRACE_SCHEMA
        tids = {
            e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert tids == {r["rank"] + 1 for r in report["ranks"]}

    def test_prometheus_exposes_cluster_gauges(self, rng):
        result, tracer = _run(rng)
        build_cluster_report(result, tracer=tracer)
        text = telemetry.to_prometheus(telemetry.REGISTRY)
        assert "repro_cluster_overlap_efficiency" in text
        assert "repro_cluster_imbalance_max_over_mean" in text
        assert "repro_cluster_critical_path_seconds" in text
        assert 'repro_cluster_rank_busy_seconds{rank="0"}' in text
        assert "repro_cluster_round_halo_bytes" in text

    def test_prometheus_exposes_event_drop_counter(self):
        with telemetry.capture():
            text = telemetry.to_prometheus(telemetry.REGISTRY)
        assert "# TYPE repro_events_dropped_total counter" in text
        assert "repro_events_dropped_total 0" in text


class TestRunRecordV4:
    def test_cluster_section_folds_into_v4_record(self, rng, tmp_path):
        from repro.telemetry.validate import validate_file

        result, tracer = _run(rng)
        report = build_cluster_report(result, tracer=tracer)
        record = telemetry.run_record(
            "cluster-obs", log=False, health=False, cluster=report
        )
        assert record["schema"] == "repro.telemetry.run-record/v5"
        assert record["cluster"]["schema"] == CLUSTER_REPORT_SCHEMA
        validate_run_record(record)
        path = tmp_path / "rec.json"
        path.write_text(json.dumps(record))
        assert validate_file(path) == "repro.telemetry.run-record/v5"

    def test_bad_cluster_section_rejected(self):
        record = telemetry.run_record("bad", log=False, health=False)
        record["cluster"] = {"schema": "nope"}
        with pytest.raises(TelemetryError):
            validate_run_record(record)

    @pytest.mark.parametrize("version", ["v1", "v2", "v3"])
    def test_older_schema_versions_still_validate(self, version):
        record = telemetry.run_record("legacy", log=False, health=False)
        record["schema"] = f"repro.telemetry.run-record/{version}"
        record.pop("cluster", None)
        validate_run_record(record)
