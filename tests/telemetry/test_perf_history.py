"""Run-record history and the regression gate.

Counters on the simulator are deterministic, so the gate's contract is
sharp: identical records pass, any counter growth beyond the threshold
(or a counter appearing from nowhere) fails, and the CLI turns that
verdict into exit codes CI can act on — 0 ok, 1 regressed, 2 no
baseline.
"""

import copy
import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.telemetry.perf import (
    RunRecordStore,
    compare_records,
    load_record,
    measure_reference,
)
from repro.telemetry.validate import TelemetryError


@pytest.fixture(scope="module")
def reference_record():
    """One measured 64x64 reference record, shared across this module."""
    return measure_reference(size=64)


@pytest.fixture()
def record(reference_record):
    return copy.deepcopy(reference_record)


class TestRunRecordStore:
    def test_append_load_latest_roundtrip(self, tmp_path, record):
        store = RunRecordStore(tmp_path)
        store.append(record)
        record2 = copy.deepcopy(record)
        record2["extra"]["timing_s"] = 1.0
        store.append(record2)
        loaded = store.load(record["name"])
        assert len(loaded) == 2
        assert loaded[0] == json.loads(json.dumps(record))
        assert store.latest(record["name"])["extra"]["timing_s"] == 1.0

    def test_names_and_len(self, tmp_path, record):
        store = RunRecordStore(tmp_path)
        assert store.names() == [] and len(store) == 0
        store.append(record)
        assert store.names() == [record["name"]] and len(store) == 1

    def test_invalid_record_rejected(self, tmp_path):
        with pytest.raises(TelemetryError):
            RunRecordStore(tmp_path).append({"schema": "nonsense"})

    def test_slug_keeps_filenames_safe(self, tmp_path, record):
        record["name"] = "weird name/with:stuff"
        path = RunRecordStore(tmp_path).append(record)
        assert path.name == "weird-name-with-stuff.jsonl"


class TestCompareRecords:
    def test_identical_records_pass(self, record):
        assert compare_records(record, record).ok

    def test_counter_growth_beyond_threshold_regresses(self, record):
        worse = copy.deepcopy(record)
        worse["events"]["mma_ops"] = int(record["events"]["mma_ops"] * 1.5)
        comparison = compare_records(record, worse)
        assert not comparison.ok
        assert [d.name for d in comparison.regressions] == ["mma_ops"]
        assert "REGRESSED" in comparison.render()

    def test_growth_within_threshold_tolerated(self, record):
        slightly = copy.deepcopy(record)
        slightly["events"]["shared_store_requests"] += 1
        assert compare_records(record, slightly, threshold=0.5).ok

    def test_counter_appearing_from_zero_regresses(self, record):
        worse = copy.deepcopy(record)
        worse["events"]["shuffle_ops"] = 4  # BVS claim broken
        comparison = compare_records(record, worse)
        assert [d.name for d in comparison.regressions] == ["shuffle_ops"]

    def test_timing_is_advisory_unless_gated(self, record):
        slow = copy.deepcopy(record)
        slow["extra"]["timing_s"] = record["extra"]["timing_s"] * 100
        assert compare_records(record, slow).ok
        gated = compare_records(record, slow, time_threshold=0.25)
        assert [d.name for d in gated.regressions] == ["timing_s"]

    def test_improvement_never_regresses(self, record):
        better = copy.deepcopy(record)
        better["events"] = {
            k: int(v * 0.5) for k, v in record["events"].items()
        }
        assert compare_records(record, better).ok


class TestLoadRecord:
    def test_json_and_jsonl_sources(self, tmp_path, record):
        json_path = tmp_path / "rec.json"
        json_path.write_text(json.dumps(record))
        assert load_record(json_path)["name"] == record["name"]
        store = RunRecordStore(tmp_path)
        jsonl_path = store.append(record)
        assert load_record(jsonl_path)["name"] == record["name"]

    def test_empty_history_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_record(path)


class TestPerfCheckCli:
    """`repro perf check` exit codes: 0 ok, 1 regression, 2 no baseline."""

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        rc = main(["perf", "check", "--baseline", str(tmp_path / "no.json")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_update_then_check_passes(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_baseline.json"
        assert main([
            "perf", "check", "--baseline", str(baseline),
            "--size", "64", "--update-baseline",
        ]) == 0
        assert baseline.exists()
        assert main(["perf", "check", "--baseline", str(baseline)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_doctored_baseline_exits_nonzero(self, tmp_path, record, capsys):
        doctored = copy.deepcopy(record)
        doctored["events"]["mma_ops"] = int(
            record["events"]["mma_ops"] * 0.5
        )  # current run will exceed this by 2x
        baseline = tmp_path / "doctored.json"
        baseline.write_text(json.dumps(doctored))
        rc = main(["perf", "check", "--baseline", str(baseline)])
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_check_reruns_the_baselines_workload(self, tmp_path, record):
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps(record))
        # baseline extra says size=64; the check measures the same
        # workload, so the deterministic counters match exactly
        rc = main(["perf", "check", "--baseline", str(baseline)])
        assert rc == 0

    def test_check_appends_history(self, tmp_path, record):
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps(record))
        hist = tmp_path / "history"
        assert main([
            "perf", "check", "--baseline", str(baseline),
            "--record", str(hist),
        ]) == 0
        store = RunRecordStore(hist)
        assert store.names() == [record["name"]]

    def test_diff_cli_exit_codes(self, tmp_path, record, capsys):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(record))
        worse = copy.deepcopy(record)
        worse["events"]["mma_ops"] *= 2
        b = tmp_path / "b.json"
        b.write_text(json.dumps(worse))
        assert main(["perf", "diff", str(a), str(a)]) == 0
        assert main(["perf", "diff", str(a), str(b)]) == 1
        out = json.loads(
            _capture_json(capsys, ["perf", "diff", str(a), str(b), "--json"])
        )
        assert out["ok"] is False

    def test_committed_repo_baseline_passes(self, capsys):
        # the acceptance gate: the checked-in baseline must be green
        import pathlib

        baseline = pathlib.Path(__file__).parents[2] / "BENCH_baseline.json"
        assert baseline.exists()
        assert main(["perf", "check", "--baseline", str(baseline)]) == 0


def _capture_json(capsys, argv):
    capsys.readouterr()  # drain
    assert main(argv) in (0, 1)
    return capsys.readouterr().out


class TestMeasureReference:
    def test_record_is_joinable_with_plan_cache(self, record):
        from repro.runtime import DEFAULT_PLAN_CACHE

        key = record["extra"]["plan_key"]
        assert key in DEFAULT_PLAN_CACHE
        assert record["extra"]["schedule"]
        telemetry.validate_run_record(record)
