"""End-to-end telemetry over the real pipeline, and the benchmark
run-record contract (``benchmarks/conftest.py`` stamps one of these next
to every reproduced artifact)."""

import numpy as np
import pytest

from repro import telemetry
from repro.runtime import PlanCache
from repro.runtime import compile as compile_stencil
from repro.stencil.kernels import get_kernel
from repro.telemetry.validate import validate_file


@pytest.fixture
def traced_run():
    """Compile + one simulated sweep of Heat-2D under capture."""
    with telemetry.capture() as tracer:
        cache = PlanCache(maxsize=8)
        compiled = compile_stencil(get_kernel("Heat-2D").weights, cache=cache)
        rng = np.random.default_rng(0)
        padded = rng.normal(size=(16 + 2 * compiled.radius,) * 2)
        out, events = compiled.apply_simulated(padded)
    return tracer, cache, compiled, events


class TestPipelineSpans:
    def test_compile_tree_contains_cache_phases(self, traced_run):
        tracer, *_ = traced_run
        names = {s.name for r in tracer.roots() for s in r.walk()}
        assert {
            "runtime.compile",
            "runtime.plan_cache.get_or_build",
            "runtime.plan_cache.build",
            "runtime.apply_simulated",
            "tcu.sweep",
        } <= names

    def test_sweep_events_attach_and_absorb_once(self, traced_run):
        tracer, _, _, events = traced_run
        sweep = next(
            s
            for r in tracer.roots()
            for s in r.walk()
            if s.name == "tcu.sweep"
        )
        assert sweep.events.mma_ops == events.mma_ops > 0
        total = telemetry.REGISTRY.get("repro_tcu_mma_ops_total")
        assert total.value == events.mma_ops  # absorbed exactly once

    def test_children_sum_to_root_within_5pct(self, traced_run):
        """Acceptance: per-phase durations account for the root ±5%."""
        tracer, *_ = traced_run
        for root in tracer.roots():
            if not root.children:
                continue
            accounted = root.child_ns + root.self_ns
            assert accounted == pytest.approx(root.duration_ns, rel=0.05)

    def test_cache_outcome_annotations(self, traced_run):
        tracer, cache, compiled, _ = traced_run
        lookup = next(
            s
            for r in tracer.roots()
            for s in r.walk()
            if s.name == "runtime.plan_cache.get_or_build"
        )
        assert lookup.attrs["outcome"] == "miss"
        with telemetry.capture(fresh=True) as tracer2:
            compile_stencil(get_kernel("Heat-2D").weights, cache=cache)
        lookup2 = next(
            s
            for r in tracer2.roots()
            for s in r.walk()
            if s.name == "runtime.plan_cache.get_or_build"
        )
        assert lookup2.attrs["outcome"] == "hit"


class TestBenchmarkRecordContract:
    def test_conftest_shaped_record_validates(self, traced_run, tmp_path):
        """The exact shape ``benchmarks/conftest._stamp_run_record`` emits."""
        _, cache, _, _ = traced_run
        record = telemetry.run_record(
            "fig8",
            registry=telemetry.REGISTRY,
            cache_stats=cache.stats(),
            extra={"benchmark": "fig8", "artifact": "results/fig8.txt"},
        )
        path = telemetry.write_run_record(
            tmp_path / "records" / "fig8.json", record
        )
        from repro.telemetry.export import RUN_RECORD_SCHEMA

        assert validate_file(path) == RUN_RECORD_SCHEMA
        assert record["cache"]["misses"] == 1
        assert "repro_tcu_mma_ops_total" in record["metrics"]
        assert record["extra"]["benchmark"] == "fig8"

    def test_record_with_tracing_off_still_validates(self, tmp_path):
        """Benchmarks run with telemetry off: records must still be valid
        (empty spans, whatever metrics the process accumulated)."""
        record = telemetry.run_record(
            "quiet",
            registry=telemetry.REGISTRY,
            cache_stats=PlanCache(maxsize=4).stats(),
            extra={},
        )
        assert record["spans"] == []
        telemetry.write_run_record(tmp_path / "quiet.json", record)


class TestFaultsSection:
    def test_fault_report_stamps_and_validates(self, tmp_path):
        from repro.faults import FaultReport
        from repro.telemetry.export import RUN_RECORD_SCHEMA

        report = FaultReport()
        report.record_injection("flip_a")
        report.bump("tile_detections")
        report.bump("tile_recoveries")
        record = telemetry.run_record(
            "chaos",
            registry=telemetry.REGISTRY,
            extra={},
            faults=report,
        )
        assert record["schema"] == RUN_RECORD_SCHEMA
        assert record["faults"]["injected"] == {"flip_a": 1}
        assert record["faults"]["detected"]["tile"] == 1
        path = telemetry.write_run_record(tmp_path / "chaos.json", record)
        assert validate_file(path) == RUN_RECORD_SCHEMA

    def test_v1_record_without_faults_still_validates(self, tmp_path):
        """Records stamped by older builds must keep validating."""
        import json

        record = telemetry.run_record(
            "legacy", registry=telemetry.REGISTRY, extra={}
        )
        record["schema"] = "repro.telemetry.run-record/v1"
        assert "faults" not in record
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(record))
        assert validate_file(path) == "repro.telemetry.run-record/v1"

    def test_malformed_faults_section_rejected(self):
        from repro.telemetry.validate import validate_run_record

        record = telemetry.run_record(
            "bad", registry=telemetry.REGISTRY, extra={}
        )
        record["faults"] = {"injected": {"flip_a": "lots"}}
        with pytest.raises(ValueError, match="faults"):
            validate_run_record(record)
