"""Model fidelity: the paper's equations must match the simulator exactly.

The simulator *implements* the model, so every prediction derived from
the plan's decomposition (Eq. 12 fragment loads, Eq. 16 MMA count, the
Sec. III-B apex axpy, the Sec. III-C zero-shuffle claim) must measure
with zero relative error — a nonzero error is a bug in the model or the
interpreter, which is precisely what the fidelity report exists to
surface.
"""

import pytest

from repro.errors import PerfError
from repro.runtime import compile as compile_stencil
from repro.stencil.kernels import get_kernel
from repro.telemetry.perf import (
    FIDELITY_REPORT_SCHEMA,
    fidelity_report,
    predicted_components,
)
from repro.telemetry.validate import (
    TelemetryError,
    validate_fidelity_report,
)


def _plan(kernel):
    return compile_stencil(get_kernel(kernel).weights).plan


class TestExactness:
    @pytest.mark.parametrize(
        "kernel", ["Box-2D9P", "Heat-2D", "Star-2D13P", "Box-2D49P"]
    )
    def test_zero_relative_error_on_simulator(self, kernel):
        report = fidelity_report(_plan(kernel), size=32)
        assert report["max_rel_error"] == 0.0
        for comp in report["components"]:
            assert comp["measured"] == comp["predicted"], comp["name"]

    def test_bvs_zero_shuffle_claim_is_checked(self):
        report = fidelity_report(_plan("Box-2D9P"), size=16)
        split = {c["name"]: c for c in report["components"]}["shuffle_ops"]
        assert split["predicted"] == 0 and split["measured"] == 0
        assert "III-C" in split["equation"]

    def test_equations_are_cited(self):
        names = {
            c["equation"]
            for c in predicted_components(_plan("Box-2D9P"), (16, 16))
        }
        assert any("Eq. 12" in e for e in names)
        assert any("Eq. 16" in e for e in names)


class TestReportShape:
    def test_report_validates_and_is_joinable(self):
        plan = _plan("Box-2D9P")
        report = fidelity_report(plan, size=16)
        validate_fidelity_report(report)
        assert report["schema"] == FIDELITY_REPORT_SCHEMA
        assert report["plan"]["key"] == plan.key
        assert report["plan"]["schedule"] == plan.schedule

    def test_model_context_matches_analysis_closed_forms(self):
        from repro.analysis.compute_model import mma_ratio
        from repro.analysis.memory_model import memory_ratio

        plan = _plan("Box-2D49P")
        report = fidelity_report(plan, size=32)
        h = plan.radius
        assert report["model"]["memory_ratio_eq14"] == float(memory_ratio(h))
        assert report["model"]["mma_ratio_eq13_16"] == float(mma_ratio(h))

    def test_doctored_report_fails_validation(self):
        report = fidelity_report(_plan("Box-2D9P"), size=16)
        report["components"] = []
        with pytest.raises(TelemetryError, match="components"):
            validate_fidelity_report(report)

    def test_validate_file_dispatches_fidelity_schema(self, tmp_path):
        import json

        from repro.telemetry.validate import validate_file

        report = fidelity_report(_plan("Box-2D9P"), size=16)
        path = tmp_path / "fid.json"
        path.write_text(json.dumps(report))
        assert validate_file(path) == FIDELITY_REPORT_SCHEMA


class TestRefusals:
    @pytest.mark.parametrize("kernel", ["Heat-1D", "Heat-3D"])
    def test_non_2d_plans_refused(self, kernel):
        with pytest.raises(PerfError, match="2D"):
            fidelity_report(_plan(kernel), size=16)

    def test_cuda_core_plan_refused(self):
        from repro.core.config import OptimizationConfig

        compiled = compile_stencil(
            get_kernel("Box-2D9P").weights,
            config=OptimizationConfig(use_tensor_cores=False),
        )
        with pytest.raises(PerfError, match="tensor-core"):
            fidelity_report(compiled.plan, size=16)
