"""Tests for the 1D and 3D CUDA emitters."""

import pytest

from repro.codegen.cuda_nd import generate_cuda_kernel_1d, generate_cuda_kernel_3d
from repro.core.engine1d import LoRAStencil1D
from repro.stencil.kernels import get_kernel


class TestCuda1D:
    @pytest.mark.parametrize("name", ["Heat-1D", "1D5P"])
    def test_mma_count_matches_engine(self, name):
        w = get_kernel(name).weights
        src = generate_cuda_kernel_1d(w)
        assert src.mma_calls == LoRAStencil1D(w).mma_per_tile
        assert src.source.count("wmma::mma_sync") == src.mma_calls

    def test_single_gather_no_mcm(self):
        """1D has no residual dimension: no splits, no V fragments."""
        src = generate_cuda_kernel_1d(get_kernel("Heat-1D").weights)
        assert "__shfl_sync" not in src.source
        assert "V0_" not in src.source
        assert not src.uses_shuffles

    def test_async_copy_used(self):
        src = generate_cuda_kernel_1d(get_kernel("1D5P").weights)
        assert "__pipeline_memcpy_async" in src.source

    def test_weight_constants_present(self):
        w = get_kernel("Heat-1D").weights
        src = generate_cuda_kernel_1d(w)
        assert "U_K0" in src.source

    def test_braces_balanced(self):
        src = generate_cuda_kernel_1d(get_kernel("Heat-1D").weights)
        assert src.source.count("{") == src.source.count("}")

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            generate_cuda_kernel_1d(get_kernel("Heat-2D").weights)


class TestCuda3D:
    def test_heat3d_plane_dispatch(self):
        src = generate_cuda_kernel_3d(get_kernel("Heat-3D").weights)
        assert src.pointwise_planes == (0, 2)
        assert src.tensor_planes == (1,)
        assert src.plane_sources[0] is None
        assert src.plane_sources[1] is not None

    def test_box3d_all_tensor_planes(self):
        src = generate_cuda_kernel_3d(get_kernel("Box-3D27P").weights)
        assert src.tensor_planes == (0, 1, 2)
        assert src.pointwise_planes == ()

    def test_driver_contains_both_paths(self):
        src = generate_cuda_kernel_3d(get_kernel("Heat-3D").weights)
        assert "axpy_plane_kernel" in src.driver_source
        assert "lorastencil3d_plane1" in src.driver_source
        assert "CUDA cores (Alg. 2 line 5)" in src.driver_source
        assert "tensor cores (Alg. 2 line 8)" in src.driver_source

    def test_full_source_concatenates(self):
        src = generate_cuda_kernel_3d(get_kernel("Box-3D27P").weights)
        for i in src.tensor_planes:
            assert f"lorastencil3d_plane{i}(" in src.full_source

    def test_plane_mma_counts(self):
        """Each rich plane's emitted kernel matches the 2D engine."""
        from repro.core.engine2d import LoRAStencil2D

        w = get_kernel("Box-3D27P").weights
        src = generate_cuda_kernel_3d(w)
        for i in src.tensor_planes:
            eng = LoRAStencil2D(w.planes()[i])
            assert src.plane_sources[i].mma_calls == eng.tile.mma_per_tile

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            generate_cuda_kernel_3d(get_kernel("Heat-2D").weights)
