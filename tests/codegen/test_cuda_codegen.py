"""Tests for the CUDA source emitter."""

import numpy as np
import pytest

from repro.codegen import generate_cuda_kernel
from repro.core.config import OptimizationConfig
from repro.core.engine2d import LoRAStencil2D
from repro.stencil.kernels import get_kernel
from repro.stencil.weights import radially_symmetric_weights


@pytest.fixture(scope="module")
def box49_src():
    return generate_cuda_kernel(get_kernel("Box-2D49P").weights)


class TestStructure:
    def test_mma_count_matches_simulator(self, box49_src):
        """The emitted kernel issues exactly the Eq. 16 MMA count."""
        eng = LoRAStencil2D(get_kernel("Box-2D49P").weights.as_matrix())
        assert box49_src.mma_calls == eng.tile.mma_per_tile == 36
        assert box49_src.source.count("wmma::mma_sync") == 36

    def test_x_loads_match_eq12(self, box49_src):
        assert box49_src.x_fragment_loads == 8
        # 8 window loads + constant weight-fragment loads
        assert box49_src.source.count("load_matrix_sync(xfrag") == 8

    def test_bvs_emits_no_shuffles(self, box49_src):
        assert not box49_src.uses_shuffles
        assert "__shfl_sync" not in box49_src.source
        assert "t_acc.x[0]" in box49_src.source  # register aliasing

    def test_no_bvs_emits_shuffles(self):
        src = generate_cuda_kernel(
            get_kernel("Box-2D49P").weights,
            config=OptimizationConfig(use_bvs=False, use_async_copy=False),
        )
        assert src.uses_shuffles
        assert "__shfl_sync" in src.source
        assert src.mma_calls == 36  # same arithmetic either way

    def test_async_copy_toggle(self):
        with_ac = generate_cuda_kernel(get_kernel("Box-2D9P").weights)
        without = generate_cuda_kernel(
            get_kernel("Box-2D9P").weights,
            config=OptimizationConfig(use_async_copy=False),
        )
        assert "__pipeline_memcpy_async" in with_ac.source
        assert with_ac.uses_async_copy
        assert "__pipeline_memcpy_async" not in without.source
        assert "via registers" in without.source

    def test_scalar_apex_epilogue(self, box49_src):
        assert "APEX0" in box49_src.source
        assert "CUDA cores" in box49_src.source

    def test_braces_balanced(self, box49_src):
        assert box49_src.source.count("{") == box49_src.source.count("}")

    def test_kernel_signature(self, box49_src):
        assert 'extern "C" __global__' in box49_src.source
        assert "lorastencil_kernel(" in box49_src.source

    def test_custom_name(self):
        src = generate_cuda_kernel(
            get_kernel("Heat-2D").weights, kernel_name="heat2d"
        )
        assert "heat2d(" in src.source


class TestWeightEmbedding:
    def test_u_constants_contain_weight_values(self, rng):
        """The banded U constants embed the decomposed weight vectors."""
        w = radially_symmetric_weights(1, 2, rng=rng)
        src = generate_cuda_kernel(w)
        from repro.core.lowrank import decompose

        term = decompose(w.as_matrix()).matrix_terms[0]
        for value in term.v:
            assert np.format_float_positional(float(value), unique=True, trim="0") in src.source

    def test_apex_constant_value(self, rng):
        w = radially_symmetric_weights(2, 2, rng=rng)
        src = generate_cuda_kernel(w)
        from repro.core.lowrank import decompose

        apex = decompose(w.as_matrix()).scalar_terms[0]
        assert np.format_float_positional(apex.scalar_weight, unique=True, trim="0") in src.source

    def test_butterfly_permutation_baked_into_v(self):
        """With BVS the V constants are stored pre-permuted: LO holds the
        even band rows.  Verified by matching the first LO row against
        the unpermuted V matrix's row 0 (even) for Heat-2D."""
        w = get_kernel("Box-2D49P").weights
        src_bvs = generate_cuda_kernel(w)
        src_raw = generate_cuda_kernel(
            w, config=OptimizationConfig(use_bvs=False, use_async_copy=False)
        )
        # same constants appear, but in different order -> different text
        assert src_bvs.source != src_raw.source


class TestValidation:
    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            generate_cuda_kernel(get_kernel("Heat-3D").weights)

    def test_cuda_core_config_rejected(self):
        with pytest.raises(ValueError):
            generate_cuda_kernel(
                get_kernel("Box-2D9P").weights,
                config=OptimizationConfig(use_tensor_cores=False),
            )

    def test_even_matrix_rejected(self):
        with pytest.raises(ValueError):
            generate_cuda_kernel(np.ones((4, 4)))

    def test_deterministic(self):
        a = generate_cuda_kernel(get_kernel("Box-2D49P").weights)
        b = generate_cuda_kernel(get_kernel("Box-2D49P").weights)
        assert a.source == b.source


class TestAcrossKernels:
    @pytest.mark.parametrize("name", ["Heat-2D", "Box-2D9P", "Star-2D13P", "Box-2D49P"])
    def test_mma_counts_track_simulator(self, name):
        w = get_kernel(name).weights
        src = generate_cuda_kernel(w)
        eng = LoRAStencil2D(w.as_matrix())
        assert src.mma_calls == eng.tile.mma_per_tile
        assert src.x_fragment_loads == eng.tile.fragment_loads_per_tile
