"""Tests for von Neumann symbol analysis."""

import numpy as np
import pytest

from repro.stencil.kernels import get_kernel
from repro.stencil.weights import box_weights
from repro.validation.dispersion import (
    amplification_grid,
    is_von_neumann_stable,
    max_amplification,
    measured_mode_decay,
    symbol,
)


class TestSymbol:
    def test_zero_wavevector_is_weight_sum(self):
        w = get_kernel("Heat-2D").weights
        g = symbol(w, (0.0, 0.0))
        assert g == pytest.approx(w.array.sum())

    def test_heat2d_closed_form(self):
        """Heat-2D symbol: 1 - 4a + 2a cos(kx) + 2a cos(ky)."""
        w = get_kernel("Heat-2D").weights
        a = 0.125
        for kx, ky in [(0.5, 1.0), (np.pi, 0.0), (2.0, 2.0)]:
            expected = 1 - 4 * a + 2 * a * np.cos(kx) + 2 * a * np.cos(ky)
            assert symbol(w, (kx, ky)) == pytest.approx(expected, abs=1e-12)

    def test_symmetric_kernel_real_symbol(self):
        """Radially symmetric weights give a real symbol."""
        w = get_kernel("Box-2D49P").weights
        g = symbol(w, (0.7, -1.3))
        assert abs(g.imag) < 1e-12

    def test_dimension_checked(self):
        with pytest.raises(ValueError):
            symbol(get_kernel("Heat-2D").weights, (1.0,))

    def test_1d_symbol(self):
        w = get_kernel("Heat-1D").weights
        a = 0.125
        assert symbol(w, (np.pi,)) == pytest.approx(1 - 4 * a)


class TestStability:
    def test_heat_kernels_stable(self):
        """The zoo's Heat kernels satisfy the CFL condition."""
        for name in ("Heat-1D", "Heat-2D"):
            assert is_von_neumann_stable(get_kernel(name).weights)

    def test_heat3d_stable(self):
        assert is_von_neumann_stable(get_kernel("Heat-3D").weights, samples=17)

    def test_amplifying_kernel_detected(self):
        """Box-2D49P's weights sum to ~4.4: unstable as a timestepper
        (the FP16 overflow finding's root cause)."""
        w = get_kernel("Box-2D49P").weights
        assert not is_von_neumann_stable(w)
        assert max_amplification(w) == pytest.approx(w.array.sum(), rel=1e-6)

    def test_unstable_heat_ratio(self):
        """r > 1/4 breaks the 2D CFL bound."""
        from repro.validation.convergence import heat_kernel_for

        stable = heat_kernel_for(0.25)
        assert is_von_neumann_stable(stable)
        # manually build r = 0.3 (heat_kernel_for refuses it)
        from repro.stencil.weights import star_weights

        r = 0.3
        unstable = star_weights(
            1, 2, axis_values=np.full((2, 2), r), center=1 - 4 * r
        )
        assert not is_von_neumann_stable(unstable)

    def test_amplification_grid_shape(self):
        g = amplification_grid(get_kernel("Heat-2D").weights, samples=9)
        assert g.shape == (9, 9)
        assert np.all(g >= 0)


class TestMeasuredDecay:
    def test_prediction_matches_engine_2d(self):
        """The engine's measured per-step decay of a resolvable mode
        equals |g(k)| — PDE theory meets the tensorized executor."""
        w = get_kernel("Heat-2D").weights
        k = (2 * np.pi * 3 / 32, 2 * np.pi * 5 / 32)
        predicted, measured = measured_mode_decay(w, k, grid=32, steps=4)
        assert measured == pytest.approx(predicted, rel=1e-6)

    def test_prediction_matches_engine_1d(self):
        w = get_kernel("Heat-1D").weights
        k = (2 * np.pi * 4 / 64,)
        predicted, measured = measured_mode_decay(w, k, grid=64, steps=4)
        assert measured == pytest.approx(predicted, rel=1e-6)

    def test_prediction_matches_engine_3d(self):
        w = get_kernel("Heat-3D").weights
        k = (2 * np.pi / 16,) * 3
        predicted, measured = measured_mode_decay(w, k, grid=16, steps=3)
        assert measured == pytest.approx(predicted, rel=1e-6)

    def test_unresolvable_mode_rejected(self):
        w = get_kernel("Heat-2D").weights
        with pytest.raises(ValueError):
            measured_mode_decay(w, (0.1234, 0.0), grid=16)

    def test_generic_kernel_decay(self, rng):
        """Works for arbitrary (asymmetric) kernels too; |g| may exceed 1."""
        w = box_weights(1, 2, rng=rng)
        k = (2 * np.pi * 2 / 24, 2 * np.pi * 1 / 24)
        predicted, measured = measured_mode_decay(w, k, grid=24, steps=3)
        assert measured == pytest.approx(predicted, rel=1e-6)
