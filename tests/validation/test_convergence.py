"""Tests for the analytic-solution convergence study."""

import numpy as np
import pytest

from repro.validation import (
    convergence_study,
    estimated_order,
    heat_analytic_solution,
    heat_kernel_for,
)


class TestHeatKernel:
    def test_weights_sum_to_one(self):
        assert heat_kernel_for(0.2).array.sum() == pytest.approx(1.0)

    def test_star_shape(self):
        w = heat_kernel_for(0.25)
        assert w.array[0, 0] == 0.0
        assert w.array[1, 1] == pytest.approx(0.0)  # r = 1/4 -> centre 0

    def test_unstable_ratio_rejected(self):
        with pytest.raises(ValueError):
            heat_kernel_for(0.3)
        with pytest.raises(ValueError):
            heat_kernel_for(0.0)


class TestAnalyticSolution:
    def test_initial_condition_shape_and_symmetry(self):
        u0 = heat_analytic_solution(16, 0.0)
        assert u0.shape == (16, 16)
        assert np.allclose(u0, u0.T)
        assert u0.max() <= 1.0

    def test_decay_in_time(self):
        early = heat_analytic_solution(16, 0.001)
        late = heat_analytic_solution(16, 0.01)
        assert late.max() < early.max()

    def test_separable_mode(self):
        u = heat_analytic_solution(8, 0.0)
        assert np.linalg.matrix_rank(u) == 1


class TestConvergence:
    @pytest.fixture(scope="class")
    def study(self):
        return convergence_study(resolutions=(12, 24, 48))

    def test_errors_decrease_under_refinement(self, study):
        errs = [p.max_err for p in study]
        assert errs == sorted(errs, reverse=True)

    def test_second_order_convergence(self, study):
        """FTCS with fixed mesh ratio converges at order 2 — observed
        through the full LoRAStencil stack."""
        order = estimated_order(study)
        assert order == pytest.approx(2.0, abs=0.15)

    def test_simulated_engine_converges_too(self):
        """The warp-level TCU path solves the PDE just as well."""
        from repro.core.engine2d import LoRAStencil2D

        class SimEngine:
            def __init__(self, w):
                self.eng = LoRAStencil2D(w.as_matrix())

            def apply(self, padded):
                return self.eng.apply_simulated(padded)[0]

        pts = convergence_study(
            resolutions=(8, 16), t_final=0.01, engine_factory=SimEngine
        )
        assert pts[1].max_err < pts[0].max_err

    def test_single_point_order_rejected(self):
        with pytest.raises(ValueError):
            estimated_order(convergence_study(resolutions=(8,), t_final=0.01))

    def test_errors_small_in_absolute_terms(self, study):
        assert study[-1].max_err < 5e-4

    @pytest.mark.parametrize("ndim,resolutions,r", [
        (1, (16, 32, 64), 0.4),
        (3, (6, 12, 24), 1 / 8),
    ])
    def test_second_order_in_every_dimension(self, ndim, resolutions, r):
        """The 1D and 3D engines solve the heat equation at order 2 too."""
        pts = convergence_study(
            resolutions=resolutions, ndim=ndim, r=r, t_final=0.01
        )
        assert estimated_order(pts) == pytest.approx(2.0, abs=0.15)

    def test_invalid_ndim_rejected(self):
        with pytest.raises(ValueError):
            convergence_study(ndim=4)

    def test_cfl_bound_scales_with_dimension(self):
        heat_kernel_for(0.25, ndim=2)
        with pytest.raises(ValueError):
            heat_kernel_for(0.25, ndim=3)
        heat_kernel_for(1 / 6, ndim=3)
