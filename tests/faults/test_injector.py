"""FaultInjector mechanics: bit flips, copy semantics, firing ledger."""

import numpy as np
import pytest

from repro.errors import InputValidationError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    as_injector,
    flip_float64_bit,
)
from repro.tcu.counters import EventCounters
from repro.tcu.fragment import Fragment
from repro.tcu.layouts import FragmentKind
from repro.tcu.memory import SharedMemory
from repro.tcu.warp import Warp

pytestmark = [
    # corrupted operands legitimately overflow / produce NaN mid-chain
    pytest.mark.filterwarnings("ignore:invalid value encountered:RuntimeWarning"),
    pytest.mark.filterwarnings("ignore:overflow encountered:RuntimeWarning"),
]


def _injector(*specs):
    return FaultInjector(FaultPlan(specs=tuple(specs)))


def _fragments(rng):
    a = Fragment.from_matrix(FragmentKind.A, rng.normal(size=(8, 4)))
    b = Fragment.from_matrix(FragmentKind.B, rng.normal(size=(4, 8)))
    acc = Fragment.from_matrix(FragmentKind.ACC, rng.normal(size=(8, 8)))
    return a, b, acc


class TestBitFlip:
    def test_flip_is_involutive(self):
        for v in (0.0, 1.0, -3.25, 1e300, 1e-300):
            for bit in (0, 31, 52, 62, 63):
                flipped = flip_float64_bit(v, bit)
                assert flip_float64_bit(flipped, bit) == v

    def test_bit62_always_large_perturbation(self):
        # exponent MSB: the flip can never be absorbed by rounding
        for v in (0.0, 0.5, 1.0, 1.99, 2.0, -7.0, 1234.5):
            flipped = flip_float64_bit(v, 62)
            assert flipped != v
            delta = abs(flipped - v)
            assert np.isnan(flipped) or np.isinf(flipped) or delta >= 1.5

    def test_bit62_of_zero_is_two(self):
        assert flip_float64_bit(0.0, 62) == 2.0


class TestOnMMA:
    def test_fires_once_at_site(self, rng):
        inj = _injector(FaultSpec(kind="flip_a", site=2))
        frags = _fragments(rng)
        for i in range(5):
            a, b, acc = inj.on_mma(*frags)
            corrupted = not np.array_equal(
                a.registers, frags[0].registers
            )
            assert corrupted == (i == 2)
        assert [e["site"] for e in inj.events] == [2]
        assert inj.report.total_injected == 1

    def test_sticky_refires(self, rng):
        inj = _injector(FaultSpec(kind="flip_b", site=0, sticky=True))
        frags = _fragments(rng)
        inj.on_mma(*frags)
        inj.reset_thread()
        _, b, _ = inj.on_mma(*frags)
        assert not np.array_equal(b.registers, frags[1].registers)
        assert inj.report.total_injected == 2

    def test_original_fragments_untouched(self, rng):
        # transient SEU model: shared weight fragments must survive
        inj = _injector(
            FaultSpec(kind="flip_a", site=0),
            FaultSpec(kind="nan_acc", site=1),
        )
        a, b, acc = _fragments(rng)
        snap = (a.registers.copy(), b.registers.copy(), acc.registers.copy())
        inj.on_mma(a, b, acc)
        inj.on_mma(a, b, acc)
        assert np.array_equal(a.registers, snap[0])
        assert np.array_equal(b.registers, snap[1])
        assert np.array_equal(acc.registers, snap[2])

    def test_nan_acc_poisons(self, rng):
        inj = _injector(FaultSpec(kind="nan_acc", site=0, lane=3))
        a, b, acc = _fragments(rng)
        _, _, acc2 = inj.on_mma(a, b, acc)
        assert np.isnan(acc2.registers).sum() == 1

    def test_flip_acc_without_acc_hits_a(self, rng):
        inj = _injector(FaultSpec(kind="flip_acc", site=0))
        a, b, _ = _fragments(rng)
        a2, _, acc2 = inj.on_mma(a, b, None)
        assert acc2 is None
        assert not np.array_equal(a2.registers, a.registers)

    def test_warp_offers_operands(self, rng):
        inj = _injector(FaultSpec(kind="flip_a", site=0, lane=0, reg=0))
        warp = Warp(EventCounters(), injector=inj)
        clean_warp = Warp(EventCounters())
        a, b, acc = _fragments(rng)
        d_fault = warp.mma_sync(a, b, acc)
        d_clean = clean_warp.mma_sync(a, b, acc)
        assert not np.array_equal(d_fault.to_matrix(), d_clean.to_matrix())
        # counters still charge the mma
        assert warp.counters.mma_ops == 1


class TestOnStage:
    def _smem(self, rng, rows=8, cols=8):
        smem = SharedMemory((rows, cols), EventCounters())
        smem.data[:rows, :cols] = rng.normal(size=(rows, cols))
        return smem

    def test_flip_smem(self, rng):
        inj = _injector(FaultSpec(kind="flip_smem", site=0, lane=5))
        smem = self._smem(rng)
        before = smem.data.copy()
        inj.on_stage(smem, 8, 8)
        assert (smem.data != before).sum() == 1

    def test_drop_commit_zeroes_last_group(self, rng):
        inj = _injector(FaultSpec(kind="drop_commit", site=0))
        smem = self._smem(rng)
        inj.on_stage(smem, 8, 8)
        assert np.array_equal(smem.data[6:8, :8], np.zeros((2, 8)))

    def test_nan_smem(self, rng):
        inj = _injector(FaultSpec(kind="nan_smem", site=0, lane=9))
        smem = self._smem(rng)
        inj.on_stage(smem, 8, 8)
        assert np.isnan(smem.data).sum() == 1

    def test_site_ordinal_counts_stagings(self, rng):
        inj = _injector(FaultSpec(kind="flip_smem", site=2))
        smem = self._smem(rng)
        before = smem.data.copy()
        inj.on_stage(smem, 8, 8)
        inj.on_stage(smem, 8, 8)
        assert np.array_equal(smem.data, before)
        inj.on_stage(smem, 8, 8)
        assert not np.array_equal(smem.data, before)


class TestOnShard:
    def test_crash_raises(self):
        inj = _injector(FaultSpec(kind="shard_crash", site=1))
        inj.on_shard(0)  # wrong shard: no fire
        with pytest.raises(InjectedFaultError, match="shard 1"):
            inj.on_shard(1)
        assert inj.report.total_injected == 1

    def test_hang_sleeps_and_records(self):
        inj = _injector(FaultSpec(kind="shard_hang", site=0, hang_s=0.01))
        inj.on_shard(0)
        assert inj.events[0]["kind"] == "shard_hang"

    def test_shard_resets_site_clocks(self, rng):
        inj = _injector(FaultSpec(kind="flip_a", site=0, shard=1))
        frags = _fragments(rng)
        inj.on_shard(0)
        a, _, _ = inj.on_mma(*frags)  # shard 0, site 0: no match
        assert np.array_equal(a.registers, frags[0].registers)
        inj.on_shard(1)
        a, _, _ = inj.on_mma(*frags)  # shard 1, site 0: fires
        assert not np.array_equal(a.registers, frags[0].registers)


class TestAsInjector:
    def test_coercions(self):
        plan = FaultPlan.random(seed=0, count=1)
        inj = FaultInjector(plan)
        assert as_injector(None) is None
        assert as_injector(inj) is inj
        assert isinstance(as_injector(plan), FaultInjector)

    def test_rejects_garbage(self):
        with pytest.raises(InputValidationError):
            as_injector("chaos")
