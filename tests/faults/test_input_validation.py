"""Early NaN/Inf rejection and typed worker-exception wrapping."""

import numpy as np
import pytest

import repro
from repro.errors import (
    ExecutionError,
    FaultError,
    InputValidationError,
    ReproError,
    ShapeError,
)
from tests.faults.conftest import padded_grid


def _compiled(kernel_name="Box-2D9P"):
    k, x = padded_grid(kernel_name, size=32)
    return repro.compile(k.weights), x


class TestErrorTaxonomy:
    def test_input_validation_error_is_shape_error_sibling(self):
        assert issubclass(InputValidationError, ReproError)
        assert issubclass(InputValidationError, ValueError)
        assert issubclass(ShapeError, ValueError)
        assert not issubclass(InputValidationError, ShapeError)

    def test_execution_and_fault_errors_are_typed(self):
        assert issubclass(ExecutionError, ReproError)
        assert issubclass(ExecutionError, RuntimeError)
        assert issubclass(FaultError, ReproError)
        assert issubclass(FaultError, RuntimeError)


class TestNonFiniteRejection:
    @pytest.mark.parametrize("poison", [np.nan, np.inf, -np.inf])
    def test_apply_rejects(self, poison):
        compiled, x = _compiled()
        x[4, 7] = poison
        with pytest.raises(InputValidationError, match="non-finite"):
            compiled.apply(x)

    def test_apply_simulated_rejects(self):
        compiled, x = _compiled()
        x[0, 0] = np.nan
        with pytest.raises(InputValidationError, match="non-finite"):
            compiled.apply_simulated(x)

    def test_apply_simulated_sharded_rejects(self):
        compiled, x = _compiled()
        x[10, 3] = np.inf
        with pytest.raises(InputValidationError, match="non-finite"):
            compiled.apply_simulated(x, shards=2)

    def test_message_counts_poisoned_values(self):
        compiled, x = _compiled()
        x[:3, 0] = np.nan
        with pytest.raises(InputValidationError, match="3 non-finite"):
            compiled.apply(x)

    def test_clean_grid_unaffected(self):
        compiled, x = _compiled()
        out = compiled.apply(x)
        assert np.isfinite(out).all()


class TestWorkerExceptionWrapping:
    def test_threaded_batch_wraps_with_grid_index(self, rng):
        compiled, x = _compiled()
        good = [x, x.copy(), x.copy()]

        # sabotage the engine for one worker via a bad grid shape is a
        # ShapeError (ReproError, re-raised untouched); to exercise the
        # *generic* wrap we inject a non-Repro failure through a mock
        class Boom(RuntimeError):
            pass

        original = compiled.plan.engine.apply
        calls = []

        def sabotaged(grid):
            calls.append(1)
            if len(calls) == 2:
                raise Boom("spurious")
            return original(grid)

        compiled.plan.engine.apply = sabotaged
        try:
            with pytest.raises(ExecutionError, match=r"grid \d of 3"):
                compiled.runtime.apply_batch_threaded(good)
        finally:
            compiled.plan.engine.apply = original

    def test_repro_errors_pass_through_unwrapped(self):
        compiled, x = _compiled()
        bad = [x, np.nan * x]
        # the stack itself raises on the poisoned grid — typed, unwrapped
        with pytest.raises(ReproError) as excinfo:
            compiled.runtime.apply_batch_threaded(bad)
        assert not isinstance(excinfo.value, ExecutionError)

    def test_sharded_wraps_with_shard_context(self):
        compiled, x = _compiled()

        class Boom(RuntimeError):
            pass

        original = compiled.plan.engine.apply_simulated
        calls = []

        def sabotaged(*args, **kwargs):
            calls.append(1)
            if len(calls) == 1:
                raise Boom("worker died")
            return original(*args, **kwargs)

        compiled.plan.engine.apply_simulated = sabotaged
        try:
            with pytest.raises(
                ExecutionError, match=r"shard \d of \d \(rows \d+:\d+\)"
            ):
                compiled.runtime.apply_simulated_sharded(x, shards=2)
        finally:
            compiled.plan.engine.apply_simulated = original

    def test_simulated_batch_wraps_with_grid_index(self):
        compiled, x = _compiled()

        class Boom(RuntimeError):
            pass

        original = compiled.plan.engine.apply_simulated
        calls = []

        def sabotaged(*args, **kwargs):
            calls.append(1)
            if len(calls) == 2:
                raise Boom("worker died")
            return original(*args, **kwargs)

        compiled.plan.engine.apply_simulated = sabotaged
        try:
            with pytest.raises(ExecutionError, match=r"grid \d of 2"):
                compiled.runtime.apply_simulated_batch([x, x.copy()])
        finally:
            compiled.plan.engine.apply_simulated = original
