"""FaultSpec/FaultPlan: validation and seed determinism."""

import pytest

from repro.errors import InputValidationError
from repro.faults import (
    DEFAULT_FLIP_BIT,
    FAULT_KINDS,
    HALO_KINDS,
    MMA_KINDS,
    RANK_KINDS,
    SHARD_KINDS,
    STAGE_KINDS,
    FaultPlan,
    FaultSpec,
)


class TestFaultSpec:
    def test_kind_partition(self):
        assert set(FAULT_KINDS) == (
            set(MMA_KINDS) | set(STAGE_KINDS) | set(SHARD_KINDS)
            | set(HALO_KINDS) | set(RANK_KINDS)
        )
        assert len(FAULT_KINDS) == len(set(FAULT_KINDS))

    def test_defaults(self):
        s = FaultSpec(kind="flip_a", site=3)
        assert s.bit == DEFAULT_FLIP_BIT
        assert s.shard is None
        assert not s.sticky

    def test_unknown_kind_rejected(self):
        with pytest.raises(InputValidationError, match="unknown fault kind"):
            FaultSpec(kind="meltdown")

    def test_negative_site_rejected(self):
        with pytest.raises(InputValidationError, match="site"):
            FaultSpec(kind="flip_a", site=-1)

    def test_bad_bit_rejected(self):
        with pytest.raises(InputValidationError, match="bit"):
            FaultSpec(kind="flip_a", bit=64)

    def test_shard_kind_site_is_shard(self):
        s = FaultSpec(kind="shard_crash", site=2)
        assert s.shard == 2

    def test_describe_mentions_kind_and_site(self):
        s = FaultSpec(kind="flip_smem", site=1, sticky=True)
        text = s.describe()
        assert "flip_smem" in text and "site=1" in text and "sticky" in text


class TestFaultPlan:
    def test_random_is_deterministic(self):
        a = FaultPlan.random(seed=42, count=8, shards=3)
        b = FaultPlan.random(seed=42, count=8, shards=3)
        assert a.specs == b.specs

    def test_different_seeds_differ(self):
        a = FaultPlan.random(seed=1, count=8)
        b = FaultPlan.random(seed=2, count=8)
        assert a.specs != b.specs

    def test_shard_kinds_only_when_sharded(self):
        solo = FaultPlan.random(seed=5, count=32, shards=1)
        assert not solo.by_kind(*SHARD_KINDS)

    def test_unknown_kind_filter_rejected(self):
        with pytest.raises(InputValidationError, match="unknown fault kind"):
            FaultPlan.random(seed=0, kinds=["meltdown"])

    def test_by_kind_and_len(self):
        plan = FaultPlan.random(seed=7, kinds=["flip_a", "nan_smem"], count=6)
        assert len(plan) == 6
        assert set(s.kind for s in plan.specs) <= {"flip_a", "nan_smem"}
        assert len(plan.by_kind("flip_a")) + len(plan.by_kind("nan_smem")) == 6

    def test_with_specs_replaces(self):
        plan = FaultPlan.random(seed=0, count=2)
        sub = plan.with_specs(plan.specs[:1])
        assert len(sub) == 1 and sub.seed == plan.seed

    def test_describe_lists_every_spec(self):
        plan = FaultPlan.random(seed=3, count=5)
        assert plan.describe().count("\n") == 5
