"""Self-healing sharded sweeps: crashes, hangs, timeouts, backoff.

Injected shard crashes and hangs must never change the numbers: a
supervised sharded sweep retries/recomputes until the result is
bit-identical to the unsharded fault-free sweep, or raises a typed
:class:`~repro.errors.FaultError` — never a partial grid.
"""

import numpy as np
import pytest

import repro
from repro.errors import FaultError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
)
from tests.faults.conftest import padded_grid

pytestmark = [
    pytest.mark.filterwarnings("ignore:invalid value encountered:RuntimeWarning"),
    pytest.mark.filterwarnings("ignore:overflow encountered:RuntimeWarning"),
]

#: fast-failing policy so injected hangs (0.02 s) trip the timeout
FAST = RecoveryPolicy(
    shard_timeout_s=0.5,
    backoff_base_s=0.001,
    backoff_cap_s=0.01,
)


def _setup(kernel_name="Box-2D9P", size=48):
    k, x = padded_grid(kernel_name, size=size)
    compiled = repro.compile(k.weights)
    clean, clean_events = compiled.apply_simulated(x, shards=3)
    return compiled, x, clean, clean_events


class TestShardCrashRecovery:
    def test_crashed_shard_is_retried_bit_exact(self):
        compiled, x, clean, clean_events = _setup()
        inj = FaultInjector(
            FaultPlan(specs=(FaultSpec(kind="shard_crash", site=1),))
        )
        out, events = compiled.apply_simulated(
            x, shards=3, faults=inj, policy=FAST
        )
        assert np.array_equal(out, clean)
        rep = inj.report.as_dict()
        assert rep["shard"]["crashes"] == 1
        assert rep["retries"]["shard"] >= 1
        assert rep["recovered"]["shard_retry"] == 1
        assert rep["unrecovered"] == 0

    def test_every_shard_crashes_once(self):
        compiled, x, clean, _ = _setup()
        specs = tuple(
            FaultSpec(kind="shard_crash", site=i) for i in range(3)
        )
        inj = FaultInjector(FaultPlan(specs=specs))
        out, _ = compiled.apply_simulated(
            x, shards=3, faults=inj, policy=FAST
        )
        assert np.array_equal(out, clean)
        assert inj.report.as_dict()["shard"]["crashes"] == 3
        assert inj.report.as_dict()["unrecovered"] == 0

    def test_merged_counters_match_clean_sharded_sweep(self):
        # recovery work happens in the *discarded* crashed attempt only,
        # so the merged footprint equals the fault-free sharded sweep
        compiled, x, clean, clean_events = _setup()
        inj = FaultInjector(
            FaultPlan(specs=(FaultSpec(kind="shard_crash", site=0),))
        )
        out, events = compiled.apply_simulated(
            x, shards=3, faults=inj, policy=FAST
        )
        assert np.array_equal(out, clean)
        assert events.as_dict() == clean_events.as_dict()


class TestShardHangRecovery:
    def test_hung_shard_times_out_and_retries(self):
        compiled, x, clean, _ = _setup()
        inj = FaultInjector(
            FaultPlan(
                specs=(
                    FaultSpec(kind="shard_hang", site=2, hang_s=1.2),
                )
            )
        )
        policy = RecoveryPolicy(
            shard_timeout_s=0.15, backoff_base_s=0.001, backoff_cap_s=0.01
        )
        out, _ = compiled.apply_simulated(
            x, shards=3, faults=inj, policy=policy
        )
        assert np.array_equal(out, clean)
        rep = inj.report.as_dict()
        assert rep["shard"]["timeouts"] >= 1
        assert rep["unrecovered"] == 0

    def test_hang_within_budget_is_not_a_fault(self):
        compiled, x, clean, _ = _setup()
        inj = FaultInjector(
            FaultPlan(
                specs=(FaultSpec(kind="shard_hang", site=0, hang_s=0.01),)
            )
        )
        out, _ = compiled.apply_simulated(
            x, shards=3, faults=inj, policy=FAST
        )
        assert np.array_equal(out, clean)
        assert inj.report.as_dict()["shard"]["timeouts"] == 0


class TestExhaustion:
    def test_sticky_crash_exhausts_to_fault_error(self):
        compiled, x, _, _ = _setup()
        inj = FaultInjector(
            FaultPlan(
                specs=(FaultSpec(kind="shard_crash", site=0, sticky=True),)
            )
        )
        with pytest.raises(FaultError, match="backoff retries"):
            compiled.apply_simulated(x, shards=3, faults=inj, policy=FAST)
        rep = inj.report.as_dict()
        assert rep["unrecovered"] == 1
        # retried the policy's bound, then attempted inline recomputation
        assert rep["shard"]["crashes"] >= FAST.shard_retries + 1

    def test_inline_fallback_disabled_raises(self):
        compiled, x, _, _ = _setup()
        inj = FaultInjector(
            FaultPlan(
                specs=(FaultSpec(kind="shard_crash", site=1, sticky=True),)
            )
        )
        policy = RecoveryPolicy(
            shard_retries=1,
            backoff_base_s=0.001,
            backoff_cap_s=0.01,
            inline_fallback=False,
        )
        with pytest.raises(FaultError, match="inline fallback disabled"):
            compiled.apply_simulated(x, shards=3, faults=inj, policy=policy)

    def test_inline_fallback_recovers_transient_pool_poison(self):
        # crash fires on the worker rounds; the inline recomputation in
        # the caller thread sees a fresh (reset) site clock — a
        # non-sticky crash pinned to one shard is spent by then
        compiled, x, clean, _ = _setup()
        inj = FaultInjector(
            FaultPlan(
                specs=tuple(
                    FaultSpec(kind="shard_crash", site=1)
                    for _ in range(FAST.shard_retries + 1)
                )
            )
        )
        out, _ = compiled.apply_simulated(
            x, shards=3, faults=inj, policy=FAST
        )
        assert np.array_equal(out, clean)
        rep = inj.report.as_dict()
        assert rep["recovered"]["shard_inline"] == 1
        assert rep["unrecovered"] == 0


class TestShardedWithVerification:
    def test_mma_faults_inside_shards_recovered(self):
        compiled, x, clean, _ = _setup()
        specs = (
            FaultSpec(kind="flip_a", site=2, shard=0, lane=7),
            FaultSpec(kind="nan_acc", site=1, shard=1, lane=11),
            FaultSpec(kind="drop_commit", site=0, shard=2),
        )
        inj = FaultInjector(FaultPlan(specs=specs))
        out, _ = compiled.apply_simulated(
            x, shards=3, verify="abft", faults=inj, policy=FAST
        )
        assert np.array_equal(out, clean)
        assert inj.report.as_dict()["unrecovered"] == 0

    def test_crash_and_corruption_combined(self):
        compiled, x, clean, _ = _setup()
        specs = (
            FaultSpec(kind="shard_crash", site=0),
            FaultSpec(kind="flip_smem", site=0, shard=1, lane=5),
            FaultSpec(kind="nan_acc", site=3, shard=2, lane=19),
        )
        inj = FaultInjector(FaultPlan(specs=specs))
        out, _ = compiled.apply_simulated(
            x, shards=3, verify="abft", faults=inj, policy=FAST
        )
        assert np.array_equal(out, clean)
        rep = inj.report.as_dict()
        assert rep["shard"]["crashes"] == 1
        assert rep["unrecovered"] == 0

    def test_last_fault_report_exposed(self):
        compiled, x, _, _ = _setup()
        inj = FaultInjector(
            FaultPlan(specs=(FaultSpec(kind="shard_crash", site=1),))
        )
        compiled.apply_simulated(x, shards=3, faults=inj, policy=FAST)
        assert compiled.last_fault_report is inj.report
