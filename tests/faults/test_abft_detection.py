"""The chaos matrix: fault kinds × kernels × dimensionality.

The guarantee under ``verify="abft"`` is absolute, not statistical:

* the recovered output is **bit-identical** to the fault-free sweep;
* every *effective* fault (one that, without verification, corrupts
  the output — established per-spec by the negative control) is
  detected and recovered;
* nothing is ever left unrecovered without a typed
  :class:`~repro.errors.FaultError`.

Faults landing in architecturally dead register slots (halo rows or
cropped columns of intermediate accumulators) are *benign*: they sit
outside the ABFT protected domain — exactly as on real hardware — and
the same negative control proves they are also harmless.
"""

import numpy as np
import pytest

import repro
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from tests.faults.conftest import padded_grid

pytestmark = [
    # corrupted operands legitimately overflow / produce NaN mid-chain
    pytest.mark.filterwarnings("ignore:invalid value encountered:RuntimeWarning"),
    pytest.mark.filterwarnings("ignore:overflow encountered:RuntimeWarning"),
]

#: one kernel per dimensionality, plus a high-radius 2D kernel
KERNELS = ["1D5P", "Box-2D9P", "Star-2D13P", "Heat-3D"]
SIZES = {"1D5P": 32, "Box-2D9P": 32, "Star-2D13P": 32, "Heat-3D": 24}

#: the seeded fault matrix: every mechanism, early deterministic sites
SPECS = [
    FaultSpec(kind="flip_a", site=0, lane=5),
    FaultSpec(kind="flip_a", site=7, lane=13),
    FaultSpec(kind="flip_b", site=3, lane=21),
    FaultSpec(kind="flip_acc", site=1, lane=9, reg=1),
    FaultSpec(kind="flip_acc", site=11, lane=2),
    FaultSpec(kind="nan_acc", site=2, lane=17),
    FaultSpec(kind="flip_smem", site=0, lane=40),
    FaultSpec(kind="flip_smem", site=1, lane=3),
    FaultSpec(kind="drop_commit", site=0),
    FaultSpec(kind="nan_smem", site=1, lane=12),
]


def _clean(kernel_name):
    k, x = padded_grid(kernel_name, size=SIZES[kernel_name])
    compiled = repro.compile(k.weights)
    out, _ = compiled.apply_simulated(x)
    return compiled, x, out


@pytest.mark.parametrize("kernel_name", KERNELS)
class TestChaosMatrix:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.describe())
    def test_injected_fault_never_corrupts_verified_output(
        self, kernel_name, spec
    ):
        compiled, x, clean = _clean(kernel_name)
        plan = FaultPlan(specs=(spec,))

        # negative control: does this fault, unverified, reach the output?
        control = FaultInjector(plan)
        corrupted, _ = compiled.apply_simulated(x, faults=control)
        fired = control.report.total_injected > 0
        effective = fired and not np.array_equal(corrupted, clean)

        # guarded run: recovery must restore bit-exactness
        guarded = FaultInjector(plan)
        out, _ = compiled.apply_simulated(x, verify="abft", faults=guarded)
        report = guarded.report.as_dict()

        assert np.array_equal(out, clean), (
            f"{spec.describe()} on {kernel_name}: recovered output is not "
            "bit-identical to the fault-free sweep"
        )
        assert report["unrecovered"] == 0
        if effective:
            assert guarded.report.total_detected >= 1, (
                f"{spec.describe()} on {kernel_name} corrupts the "
                "unverified output but ABFT did not detect it"
            )
            assert guarded.report.total_recovered >= 1

    def test_campaign_all_mechanisms_at_once(self, kernel_name):
        compiled, x, clean = _clean(kernel_name)
        plan = FaultPlan(specs=tuple(SPECS), seed=123)
        inj = FaultInjector(plan)
        out, _ = compiled.apply_simulated(x, verify="abft", faults=inj)
        assert np.array_equal(out, clean)
        assert inj.report.total_injected >= 3
        assert inj.report.as_dict()["unrecovered"] == 0

    def test_negative_control_campaign_reaches_output(self, kernel_name):
        # without verification the same campaign corrupts the result
        compiled, x, clean = _clean(kernel_name)
        inj = FaultInjector(FaultPlan(specs=tuple(SPECS), seed=123))
        corrupted, _ = compiled.apply_simulated(x, faults=inj)
        assert inj.report.total_injected >= 3
        assert not np.array_equal(corrupted, clean)
        assert inj.report.total_detected == 0  # nobody was looking


class TestVerifiedCleanSweep:
    """Tolerance 0 means zero false positives on fault-free runs."""

    @pytest.mark.parametrize("kernel_name", KERNELS)
    def test_no_false_positives(self, kernel_name):
        compiled, x, clean = _clean(kernel_name)
        out, _ = compiled.apply_simulated(x, verify="abft")
        report = compiled.last_fault_report
        assert np.array_equal(out, clean)
        assert report.total_detected == 0
        assert report.total_recovered == 0

    def test_verify_true_means_abft(self):
        compiled, x, clean = _clean("Box-2D9P")
        out, _ = compiled.apply_simulated(x, verify=True)
        assert np.array_equal(out, clean)

    def test_unknown_verify_mode_rejected(self):
        from repro.errors import InputValidationError

        compiled, x, _ = _clean("Box-2D9P")
        with pytest.raises(InputValidationError, match="verify mode"):
            compiled.apply_simulated(x, verify="triple-modular")


class TestStickyExhaustion:
    """Sticky faults corrupt every recovery attempt → typed FaultError."""

    def test_sticky_stage_fault_exhausts_restages(self):
        from repro.errors import FaultError

        compiled, x, _ = _clean("Box-2D9P")
        spec = FaultSpec(kind="nan_smem", site=0, sticky=True)
        with pytest.raises(FaultError, match="re-stage"):
            compiled.apply_simulated(
                x, verify="abft", faults=FaultPlan(specs=(spec,))
            )
        assert compiled.last_fault_report.as_dict()["unrecovered"] == 1

    def test_sticky_mma_fault_exhausts_tile_ladder(self):
        from repro.errors import FaultError
        from repro.faults import RecoveryPolicy

        compiled, x, clean = _clean("Box-2D9P")
        # an effective site/lane (verified by the matrix above)
        spec = FaultSpec(kind="nan_acc", site=2, lane=17, sticky=True)
        once = FaultSpec(kind="nan_acc", site=2, lane=17)
        control = FaultInjector(FaultPlan(specs=(once,)))
        corrupted, _ = compiled.apply_simulated(x, faults=control)
        assert not np.array_equal(corrupted, clean), "site must be effective"
        with pytest.raises(FaultError, match="ABFT verification"):
            compiled.apply_simulated(
                x,
                verify="abft",
                faults=FaultPlan(specs=(spec,)),
                policy=RecoveryPolicy(max_tile_retries=1),
            )
        report = compiled.last_fault_report.as_dict()
        assert report["unrecovered"] == 1
        assert report["retries"]["tile"] >= 1


class TestRecoveryLedger:
    def test_counts_are_coherent(self):
        compiled, x, clean = _clean("Box-2D9P")
        plan = FaultPlan(specs=tuple(SPECS))
        inj = FaultInjector(plan)
        out, _ = compiled.apply_simulated(x, verify="abft", faults=inj)
        assert np.array_equal(out, clean)
        rep = inj.report.as_dict()
        assert rep["injected_total"] == sum(rep["injected"].values())
        # every detection resolved through one of the recovery mechanisms
        assert (
            rep["recovered"]["tile_retry"]
            + rep["recovered"]["oracle_fallback"]
            == rep["detected"]["tile"]
        )
        assert rep["recovered"]["restage"] == rep["detected"]["stage"]
        assert rep["unrecovered"] == 0
        assert compiled.last_fault_report is inj.report
