"""Shared helpers for the chaos suite."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.stencil.kernels import get_kernel


@pytest.fixture(scope="module")
def compiled_2d():
    """One compiled 2D kernel shared by the module (plans are immutable)."""
    return repro.compile(get_kernel("Box-2D9P").weights)


def padded_grid(kernel_name: str, size: int = 48, seed: int = 0xC0FFEE):
    """A seeded padded input grid following the CLI shape conventions."""
    k = get_kernel(kernel_name)
    rng = np.random.default_rng(seed)
    ndim = k.weights.ndim
    if ndim == 1:
        shape = (size * size,)
    elif ndim == 2:
        shape = (size, size)
    else:
        shape = (min(size, 8), size, size)
    return k, np.pad(rng.normal(size=shape), k.weights.radius)
