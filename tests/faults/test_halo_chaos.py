"""Halo-exchange and rank chaos: every new fault kind is injected,
detected at tolerance 0, and recovered to the fault-free bits."""

import numpy as np
import pytest

from repro.errors import FaultError
from repro.faults import (
    HALO_KINDS,
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
    halo_frame_checksums,
)
from repro.faults.supervisor import backoff_delay
from repro.parallel.cluster import ClusterRuntime
from repro.parallel.plan import distribute
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_iterate

FAST_POLICY = RecoveryPolicy(
    shard_timeout_s=20.0, shard_retries=2, backoff_base_s=0.001,
    backoff_cap_s=0.01,
)


def _run_pair(rng, faults, *, steps=9, policy=FAST_POLICY, **kwargs):
    """(clean field, faulted result) for one Heat-2D 2x2 sweep."""
    w = get_kernel("Heat-2D").weights
    x = rng.normal(size=(24, 24))
    plan = distribute(w, x.shape, (2, 2), block_steps=3)
    clean = ClusterRuntime(plan).run(x, steps).field
    result = ClusterRuntime(plan).run(
        x, steps, faults=faults, policy=policy, **kwargs
    )
    return clean, result


class TestHaloChecksum:
    def test_matches_are_exact(self, rng):
        window = rng.normal(size=(10, 12))
        assert halo_frame_checksums(window, 2) == halo_frame_checksums(
            window.copy(), 2
        )

    def test_zero_depth_empty(self, rng):
        assert halo_frame_checksums(rng.normal(size=(6, 6)), 0) == ()

    def test_exponent_bit_flip_detected(self, rng):
        from repro.faults import DEFAULT_FLIP_BIT, flip_float64_bit

        window = rng.normal(size=(10, 12))
        before = halo_frame_checksums(window, 1)
        corrupted = window.copy()
        corrupted[0, 3] = flip_float64_bit(
            corrupted[0, 3], DEFAULT_FLIP_BIT
        )
        assert halo_frame_checksums(corrupted, 1) != before


class TestHaloChaosMatrix:
    """One chaos case per halo fault kind: inject -> detect -> recover
    bit-identically, with the report ledger balanced."""

    @pytest.mark.parametrize("kind", HALO_KINDS)
    def test_kind_detected_and_recovered(self, kind, rng):
        faults = FaultPlan(
            specs=(FaultSpec(kind=kind, site=1, shard=2),)
        )
        clean, result = _run_pair(rng, faults)
        assert np.array_equal(result.field, clean)
        report = result.fault_report
        assert report.counts["halo_detections"] == 1
        assert report.counts["halo_retransmits"] == 1
        assert report.counts["halo_recoveries"] == 1
        assert report.counts["unrecovered"] == 0
        assert report.as_dict()["detected"]["halo"] == 1

    @pytest.mark.parametrize("kind", HALO_KINDS)
    def test_kind_under_overlap(self, kind, rng):
        """Halo verification forces the synchronous exchange path; the
        overlapped run still finishes bit-identically.

        Rank 2 sits at mesh position (1, 0): its leading frame strip is
        interior data, so every corruption kind actually perturbs bits
        (rank 1's leading strip is constant-boundary zeros, which a
        ``halo_drop`` would zero into themselves — undetectable because
        nothing changed).
        """
        faults = FaultPlan(
            specs=(FaultSpec(kind=kind, site=0, shard=2),)
        )
        clean, result = _run_pair(rng, faults, overlap=True)
        assert np.array_equal(result.field, clean)
        assert result.fault_report.counts["halo_recoveries"] == 1

    def test_sticky_halo_exhausts_ladder(self, rng):
        faults = FaultPlan(
            specs=(FaultSpec(kind="halo_corrupt", site=0, shard=1,
                             sticky=True),)
        )
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(24, 24))
        plan = distribute(w, x.shape, (2, 2), block_steps=3)
        with pytest.raises(FaultError):
            ClusterRuntime(plan).run(
                x, 9, faults=faults, policy=FAST_POLICY
            )

    def test_fault_free_guarded_run_matches_reference(self, rng):
        """Arming the guard without any fault firing must not perturb
        the trajectory (checksums verify at tolerance 0)."""
        faults = FaultPlan(
            specs=(FaultSpec(kind="halo_corrupt", site=99, shard=0),)
        )
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(24, 24))
        plan = distribute(w, x.shape, (2, 2), block_steps=3)
        result = ClusterRuntime(plan).run(
            x, 9, faults=faults, policy=FAST_POLICY
        )
        assert np.allclose(
            result.field, reference_iterate(x, w, 9), atol=1e-9
        )
        assert result.fault_report.counts["halo_detections"] == 0


class TestRankChaos:
    def test_rank_crash_recovers_via_supervisor(self, rng):
        faults = FaultPlan(specs=(FaultSpec(kind="rank_crash", site=1),))
        clean, result = _run_pair(rng, faults)
        assert np.array_equal(result.field, clean)
        report = result.fault_report
        assert report.counts["shard_crashes"] >= 1
        assert report.counts["unrecovered"] == 0

    def test_rank_hang_recovers(self, rng):
        faults = FaultPlan(
            specs=(FaultSpec(kind="rank_hang", site=2, hang_s=0.01),)
        )
        clean, result = _run_pair(rng, faults)
        assert np.array_equal(result.field, clean)

    def test_sticky_crash_without_elastic_raises(self, rng):
        faults = FaultPlan(
            specs=(FaultSpec(kind="rank_crash", site=1, sticky=True),)
        )
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(24, 24))
        plan = distribute(w, x.shape, (2, 2), block_steps=3)
        with pytest.raises(FaultError):
            ClusterRuntime(plan).run(
                x, 9, faults=faults, policy=FAST_POLICY
            )

    def test_sticky_crash_elastic_replans_bit_identically(self, rng):
        faults = FaultPlan(
            specs=(FaultSpec(kind="rank_crash", site=1, sticky=True),)
        )
        clean, result = _run_pair(rng, faults, elastic=True)
        assert np.array_equal(result.field, clean)
        report = result.fault_report
        assert report.counts["rank_reassignments"] == 1
        assert report.counts["unrecovered"] == 0
        assert result.resilience is not None
        assert result.resilience["reassignments"] == 1
        replan = result.resilience["replans"][0]
        assert replan["dead_rank"] == 1
        assert replan["old_mesh"] == [2, 2]
        assert sum(
            e["halo_bytes"] for e in result.round_log
        ) == result.exchanged_bytes

    def test_random_plan_with_rank_kinds_deterministic(self):
        a = FaultPlan.random(seed=11, count=6, ranks=4, max_round=3)
        b = FaultPlan.random(seed=11, count=6, ranks=4, max_round=3)
        assert a.specs == b.specs

    def test_random_plan_without_ranks_excludes_new_kinds(self):
        plan = FaultPlan.random(seed=3, count=12)
        assert all(
            s.kind not in HALO_KINDS + ("rank_crash", "rank_hang")
            for s in plan.specs
        )


class TestDeterministicBackoff:
    def test_same_inputs_same_delay(self):
        p = RecoveryPolicy(backoff_base_s=0.1, backoff_jitter=0.5)
        assert backoff_delay(p, 1, 3) == backoff_delay(p, 1, 3)

    def test_tasks_decorrelated(self):
        p = RecoveryPolicy(backoff_base_s=0.1, backoff_jitter=0.5)
        delays = {backoff_delay(p, 1, task) for task in range(8)}
        assert len(delays) == 8

    def test_seed_changes_schedule(self):
        a = RecoveryPolicy(backoff_base_s=0.1, backoff_jitter=0.5,
                           backoff_seed=0)
        b = RecoveryPolicy(backoff_base_s=0.1, backoff_jitter=0.5,
                           backoff_seed=1)
        assert backoff_delay(a, 1, 0) != backoff_delay(b, 1, 0)

    def test_zero_jitter_is_pure_exponential(self):
        p = RecoveryPolicy(backoff_base_s=0.1, backoff_jitter=0.0)
        assert backoff_delay(p, 1, 0) == backoff_delay(p, 1, 7)

    def test_bounded_by_jitter_factor(self):
        p = RecoveryPolicy(backoff_base_s=0.1, backoff_jitter=0.5)
        base = RecoveryPolicy(backoff_base_s=0.1, backoff_jitter=0.0)
        for task in range(16):
            d = backoff_delay(p, 2, task)
            d0 = backoff_delay(base, 2, task)
            assert d0 <= d <= d0 * 1.5
