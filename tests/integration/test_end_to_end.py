"""Integration tests: multi-step simulations through the public API."""

import numpy as np
import pytest

from repro import (
    Grid,
    LoRAStencil1D,
    LoRAStencil2D,
    LoRAStencil3D,
    get_kernel,
    reference_iterate,
)


class TestTimeIntegration:
    def test_heat2d_multi_step_matches_reference(self, rng):
        k = get_kernel("Heat-2D")
        eng = LoRAStencil2D(k.weights.as_matrix())
        x0 = rng.normal(size=(24, 24))
        grid = Grid(x0, k.weights.radius)
        out = grid.run(eng.apply, 20)
        ref = reference_iterate(x0, k.weights, 20)
        assert np.allclose(out, ref, atol=1e-9)

    def test_heat1d_multi_step(self, rng):
        k = get_kernel("Heat-1D")
        eng = LoRAStencil1D(k.weights)
        x0 = rng.normal(size=200)
        grid = Grid(x0, 1, boundary="periodic")
        out = grid.run(eng.apply, 50)
        ref = reference_iterate(x0, k.weights, 50, boundary="periodic")
        assert np.allclose(out, ref, atol=1e-9)

    def test_heat3d_multi_step(self, rng):
        k = get_kernel("Heat-3D")
        eng = LoRAStencil3D(k.weights)
        x0 = rng.normal(size=(8, 10, 12))
        grid = Grid(x0, 1)
        out = grid.run(eng.apply, 5)
        ref = reference_iterate(x0, k.weights, 5)
        assert np.allclose(out, ref, atol=1e-10)

    def test_simulated_multi_step(self, rng):
        """Chaining the warp-level path across timesteps stays exact."""
        k = get_kernel("Box-2D9P")
        eng = LoRAStencil2D(k.weights.as_matrix())
        x0 = rng.normal(size=(16, 16))
        grid = Grid(x0, 1)
        out = grid.run(lambda p: eng.apply_simulated(p)[0], 5)
        ref = reference_iterate(x0, k.weights, 5)
        assert np.allclose(out, ref, atol=1e-10)


class TestPhysics:
    def test_heat_smooths_spike(self):
        """A delta spike spreads and its peak decays monotonically."""
        k = get_kernel("Heat-2D")
        eng = LoRAStencil2D(k.weights.as_matrix())
        x = np.zeros((31, 31))
        x[15, 15] = 1.0
        grid = Grid(x, 1)
        peaks = []
        for _ in range(10):
            grid.step(eng.apply)
            peaks.append(grid.interior.max())
        assert all(a >= b for a, b in zip(peaks, peaks[1:]))
        assert peaks[-1] < 0.1

    def test_heat_positivity(self):
        """Explicit heat with CFL-stable alpha preserves positivity."""
        k = get_kernel("Heat-2D")
        eng = LoRAStencil2D(k.weights.as_matrix())
        rng = np.random.default_rng(5)
        x = np.abs(rng.normal(size=(20, 20)))
        grid = Grid(x, 1, boundary="periodic")
        out = grid.run(eng.apply, 30)
        assert np.all(out > 0)

    def test_periodic_mass_conservation_simulated(self, rng):
        k = get_kernel("Heat-2D")
        eng = LoRAStencil2D(k.weights.as_matrix())
        x = rng.normal(size=(16, 16))
        grid = Grid(x, 1, boundary="periodic")
        out = grid.run(lambda p: eng.apply_simulated(p)[0], 10)
        assert out.sum() == pytest.approx(x.sum(), abs=1e-8)


class TestCrossEngineConsistency:
    def test_all_methods_agree_over_time(self, rng):
        """Five steps of every Fig. 8 method produce the same field."""
        from repro.baselines.registry import all_methods

        k = get_kernel("Box-2D9P")
        x0 = rng.normal(size=(14, 14))
        ref = reference_iterate(x0, k.weights, 5)
        for method in all_methods(k):
            grid = Grid(x0, k.weights.radius)
            out = grid.run(method.apply, 5)
            assert np.allclose(out, ref, atol=1e-9), method.name

    def test_fused_vs_unfused_periodic(self, rng):
        from repro.core.fusion import fuse_kernel

        k = get_kernel("Box-2D9P")
        fk = fuse_kernel(k.weights, 3)
        eng_fused = LoRAStencil2D(fk.fused.as_matrix())
        eng_base = LoRAStencil2D(k.weights.as_matrix())
        x0 = rng.normal(size=(24, 24))
        g1 = Grid(x0, 1, boundary="periodic")
        base_out = g1.run(eng_base.apply, 6)
        g2 = Grid(x0, 3, boundary="periodic")
        fused_out = g2.run(eng_fused.apply, 2)
        assert np.allclose(base_out, fused_out, atol=1e-9)
