"""The thesis test: the paper's headline claims, checked in one place.

The benchmark harness regenerates the full artifacts; this module keeps
the claims under ``pytest tests/`` so they are exercised on every test
run (using reduced kernel subsets where the full sweep is expensive).
"""

import pytest

from repro.experiments import PAPER, run_fig8, run_fig9, run_fig10, run_table3


@pytest.fixture(scope="module")
def fig8():
    return run_fig8()


class TestHeadlineClaims:
    def test_lorastencil_wins_every_kernel(self, fig8):
        """Abstract: "outperforms state-of-the-arts"."""
        for kernel in {r.kernel for r in fig8.rows}:
            lora = fig8.perf(kernel, "LoRAStencil")
            for method in PAPER["fig8_mean_speedup"]:
                assert lora >= fig8.perf(kernel, method), (kernel, method)

    def test_max_speedup_over_convstencil(self, fig8):
        """Abstract: "up to a 2.16x speedup"."""
        _, mx = fig8.minmax_lora_speedup_over("ConvStencil")
        assert mx == pytest.approx(PAPER["fig8_convstencil_speedup_max"], rel=0.15)

    @pytest.mark.parametrize("method", list(PAPER["fig8_mean_speedup"]))
    def test_mean_speedups_within_10pct(self, fig8, method):
        """Section V-B's six mean-speedup sentences."""
        mean = fig8.mean_lora_speedup_over(method)
        assert mean == pytest.approx(PAPER["fig8_mean_speedup"][method], rel=0.10)

    def test_3d_gap_most_pronounced(self, fig8):
        """Section V-B: "in 3D, the performance improvement is
        particularly pronounced" (vs ConvStencil)."""
        gap_3d = max(
            fig8.lora_speedup_over("ConvStencil", k)
            for k in ("Heat-3D", "Box-3D27P")
        )
        gap_2d = max(
            fig8.lora_speedup_over("ConvStencil", k)
            for k in ("Heat-2D", "Box-2D9P", "Star-2D13P", "Box-2D49P")
        )
        assert gap_3d > gap_2d

    def test_fig9_breakdown_factors(self):
        """Section V-C: 2.14x TCU, 4.00x BVS, +29.7% async copy."""
        res = run_fig9(sizes=(10240,))
        cfgs = res.configs()
        assert res.gain(cfgs[1], cfgs[0], 10240) == pytest.approx(2.14, rel=0.1)
        assert res.gain(cfgs[2], cfgs[1], 10240) == pytest.approx(4.00, rel=0.1)
        assert res.gain(cfgs[3], cfgs[2], 10240) == pytest.approx(1.297, rel=0.1)

    def test_fig10_store_ratio(self):
        """Section V-D: LoRAStencil stores = 47.0% of ConvStencil's
        (2D kernels are enough to land near the paper's mean)."""
        res = run_fig10(kernels=("Star-2D13P", "Box-2D49P"))
        assert res.mean_ratio("stores") == pytest.approx(0.47, rel=0.35)
        assert res.mean_ratio("loads") < 0.5

    def test_table3_2d_directions(self):
        """Section V-D: LoRAStencil's CT and AI both higher on 2D."""
        res = run_table3(kernels=("Box-2D49P",))
        lora = res.row("Box-2D49P", "LoRAStencil")
        conv = res.row("Box-2D49P", "ConvStencil")
        assert lora.ct_pct > conv.ct_pct
        assert lora.ai > conv.ai
        assert lora.ct_pct == pytest.approx(86.42, abs=3.0)

    def test_eq14_and_eq16_constants(self):
        """Section III's analysis numbers, exactly."""
        from repro.analysis import memory_ratio, mma_ratio, redundancy_eliminated

        assert memory_ratio(3) == pytest.approx(3.25)
        assert memory_ratio(4) == pytest.approx(4.2)
        assert redundancy_eliminated(3) == pytest.approx(0.6923, abs=1e-4)
        assert mma_ratio(3) == pytest.approx(36 / 26)

    def test_fusion_saving(self):
        """Section IV-A: 61.54% of wasted window elements removed."""
        from repro.core.fusion import fusion_saving

        assert fusion_saving(1, 3) == pytest.approx(96 / 156)
