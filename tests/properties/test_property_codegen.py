"""Property-based tests for the CUDA emitter and tile programs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import generate_cuda_kernel
from repro.core.lowrank import decompose
from repro.core.rdg import RDGTileCompute
from repro.stencil.reference import reference_apply
from repro.stencil.weights import radially_symmetric_weights
from repro.tcu.device import Device
from repro.tcu.program import (
    build_tile_program,
    execute_program,
    schedule_prefetch,
)


@st.composite
def radial_weights(draw):
    h = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return radially_symmetric_weights(h, 2, rng=np.random.default_rng(seed))


class TestCodegenProperties:
    @given(radial_weights())
    @settings(max_examples=25, deadline=None)
    def test_structural_invariants(self, w):
        src = generate_cuda_kernel(w)
        tile = RDGTileCompute(decompose(w.as_matrix()), w.radius)
        assert src.mma_calls == tile.mma_per_tile
        assert src.x_fragment_loads == tile.fragment_loads_per_tile
        assert src.source.count("wmma::mma_sync") == src.mma_calls
        assert src.source.count("{") == src.source.count("}")
        assert "__shfl_sync" not in src.source  # BVS default

    @given(radial_weights())
    @settings(max_examples=15, deadline=None)
    def test_every_weight_vector_embedded(self, w):
        src = generate_cuda_kernel(w)
        d = decompose(w.as_matrix())
        for ti in range(len(d.matrix_terms)):
            assert f"U{ti}_K0" in src.source
            assert f"V{ti}_W0_LO" in src.source


class TestProgramProperties:
    @given(radial_weights(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=12, deadline=None)
    def test_program_matches_reference(self, w, seed):
        h = w.radius
        tile = RDGTileCompute(decompose(w.as_matrix()), h)
        device = Device()
        warp = device.warp()
        smem = device.shared((tile.k_rows, tile.w_cols))
        rng = np.random.default_rng(seed)
        smem.data[:] = rng.normal(size=smem.shape)
        program = schedule_prefetch(build_tile_program(tile))
        out = execute_program(program, warp, smem, 0, 0)
        ref = reference_apply(smem.data[: 8 + 2 * h, : 8 + 2 * h], w)
        scale = max(1.0, np.abs(ref).max())
        assert np.abs(out - ref[:8, :8]).max() < 1e-10 * scale
