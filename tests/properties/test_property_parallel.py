"""Property-based tests for the domain-decomposition substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import SimulatedCluster, partition
from repro.parallel.halo import HaloExchanger
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_iterate


@st.composite
def grids_and_meshes(draw):
    rows = draw(st.integers(min_value=8, max_value=40))
    cols = draw(st.integers(min_value=8, max_value=40))
    p = draw(st.integers(min_value=1, max_value=min(4, rows)))
    q = draw(st.integers(min_value=1, max_value=min(4, cols)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return (rows, cols), (p, q), seed


class TestPartitionProperties:
    @given(grids_and_meshes())
    @settings(max_examples=50, deadline=None)
    def test_exact_cover(self, case):
        shape, mesh, _ = case
        part = partition(shape, mesh)
        assert sum(s.shape[0] * s.shape[1] for s in part.subdomains) == (
            shape[0] * shape[1]
        )
        assert part.num_devices == mesh[0] * mesh[1]

    @given(grids_and_meshes())
    @settings(max_examples=50, deadline=None)
    def test_balanced(self, case):
        shape, mesh, _ = case
        part = partition(shape, mesh)
        row_sizes = {s.shape[0] for s in part.subdomains}
        col_sizes = {s.shape[1] for s in part.subdomains}
        assert max(row_sizes) - min(row_sizes) <= 1
        assert max(col_sizes) - min(col_sizes) <= 1


class TestHaloProperties:
    @given(grids_and_meshes(), st.sampled_from(["constant", "periodic"]))
    @settings(max_examples=25, deadline=None)
    def test_windows_equal_global_pad(self, case, boundary):
        shape, mesh, seed = case
        rng = np.random.default_rng(seed)
        field = rng.normal(size=shape)
        part = partition(shape, mesh)
        ex = HaloExchanger(part, radius=1, boundary=boundary)
        blocks = {
            s.rank: field[s.row_slice, s.col_slice].copy()
            for s in part.subdomains
        }
        windows = ex.exchange(blocks)
        mode = "wrap" if boundary == "periodic" else "constant"
        padded = np.pad(field, 1, mode=mode)
        for s in part.subdomains:
            expected = padded[
                s.row_slice.start : s.row_slice.stop + 2,
                s.col_slice.start : s.col_slice.stop + 2,
            ]
            assert np.array_equal(windows[s.rank], expected)


class TestClusterProperties:
    @given(grids_and_meshes(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=12, deadline=None)
    def test_any_mesh_matches_reference(self, case, steps):
        shape, mesh, seed = case
        rng = np.random.default_rng(seed)
        w = get_kernel("Box-2D9P").weights
        x = rng.normal(size=shape)
        cluster = SimulatedCluster(w, shape, mesh)
        out = cluster.run(x, steps)
        ref = reference_iterate(x, w, steps)
        assert np.allclose(out, ref, atol=1e-9)
