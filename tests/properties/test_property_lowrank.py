"""Property-based tests (hypothesis) for the low-rank machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lowrank import decompose, pyramidal_decompose, svd_decompose
from repro.stencil.weights import radially_symmetric_weights


@st.composite
def radial_matrices(draw):
    """Random radially symmetric weight matrices of radius 1..4."""
    h = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return radially_symmetric_weights(h, 2, rng=rng).as_matrix(), h


@st.composite
def generic_matrices(draw):
    """Random dense odd-sided matrices (entries bounded away from huge)."""
    h = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return rng.uniform(-2.0, 2.0, size=(2 * h + 1, 2 * h + 1))


class TestPMAProperties:
    @given(radial_matrices())
    @settings(max_examples=40, deadline=None)
    def test_exact_reconstruction(self, wm_h):
        w, _ = wm_h
        d = pyramidal_decompose(w)
        assert d.max_error(w) < 1e-10 * max(1.0, np.abs(w).max())

    @given(radial_matrices())
    @settings(max_examples=40, deadline=None)
    def test_term_budget(self, wm_h):
        """Eq. 15: at most h+1 terms, sizes 2h+1, 2h-1, ..., strictly
        decreasing, pads strictly increasing."""
        w, h = wm_h
        d = pyramidal_decompose(w)
        assert len(d.terms) <= h + 1
        sizes = [t.size for t in d.terms]
        assert sizes == sorted(sizes, reverse=True)
        assert all(s % 2 == 1 for s in sizes)
        pads = [t.pad for t in d.terms]
        assert pads == sorted(pads)

    @given(radial_matrices())
    @settings(max_examples=40, deadline=None)
    def test_matrix_terms_rank_one(self, wm_h):
        w, _ = wm_h
        for t in pyramidal_decompose(w).matrix_terms:
            assert np.linalg.matrix_rank(t.matrix(), tol=1e-9) == 1

    @given(radial_matrices(), st.floats(min_value=0.25, max_value=4.0))
    @settings(max_examples=25, deadline=None)
    def test_scaling_equivariance(self, wm_h, alpha):
        """decompose(a*W) reconstructs a*W."""
        w, _ = wm_h
        d = pyramidal_decompose(alpha * w)
        assert d.max_error(alpha * w) < 1e-9 * max(1.0, np.abs(alpha * w).max())


class TestSVDProperties:
    @given(generic_matrices())
    @settings(max_examples=40, deadline=None)
    def test_exact_reconstruction(self, w):
        d = svd_decompose(w)
        assert d.max_error(w) < 1e-9

    @given(generic_matrices())
    @settings(max_examples=40, deadline=None)
    def test_term_count_is_rank(self, w):
        d = svd_decompose(w)
        assert len(d.terms) == np.linalg.matrix_rank(w, tol=1e-9)


class TestDispatchProperties:
    @given(generic_matrices())
    @settings(max_examples=30, deadline=None)
    def test_decompose_always_reconstructs(self, w):
        d = decompose(w)
        assert d.max_error(w) < 1e-9

    @given(radial_matrices())
    @settings(max_examples=30, deadline=None)
    def test_radial_always_pma(self, wm_h):
        w, _ = wm_h
        assert decompose(w).method == "pma"
