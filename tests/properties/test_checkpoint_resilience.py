"""Property suite: checkpoint/resume is bit-identical and the halo
ledger reconciles for any mesh x tiling x kill-round combination."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.checkpoint import (
    CheckpointConfig,
    CheckpointHalt,
    list_checkpoints,
    load_checkpoint,
)
from repro.parallel.cluster import ClusterRuntime
from repro.parallel.plan import distribute
from repro.stencil.kernels import get_kernel

import pytest


@st.composite
def resume_cases(draw):
    mesh = draw(st.sampled_from([(2, 1), (1, 2), (2, 2), (3, 1)]))
    tiling = draw(st.sampled_from(["trapezoid", "diamond"]))
    block_steps = draw(st.integers(min_value=1, max_value=3))
    steps = draw(st.integers(min_value=block_steps + 1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rounds = -(-steps // block_steps)
    kill_round = draw(st.integers(min_value=0, max_value=rounds - 1))
    return mesh, tiling, block_steps, steps, seed, kill_round


class TestCheckpointResumeProperties:
    @given(case=resume_cases())
    @settings(max_examples=20, deadline=None)
    def test_resume_bit_identical_and_ledger_balanced(self, case, tmp_path_factory):
        mesh, tiling, block_steps, steps, seed, kill_round = case
        w = get_kernel("Heat-2D").weights
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(18, 18))
        plan = distribute(
            w, x.shape, mesh, block_steps=block_steps, tiling=tiling
        )
        baseline = ClusterRuntime(plan).run(x, steps)

        ckdir = str(
            tmp_path_factory.mktemp("ck")
        )
        try:
            ClusterRuntime(plan).run(
                x, steps,
                checkpoint=CheckpointConfig(
                    dir=ckdir, halt_after=kill_round
                ),
            )
            # kill_round was the final round: nothing left to resume,
            # but the snapshot must still replay to the same bits
        except CheckpointHalt:
            pass
        assert kill_round in list_checkpoints(ckdir)

        resumed = ClusterRuntime(plan).run(
            x, steps, resume_from=load_checkpoint(ckdir, kill_round)
        )
        assert np.array_equal(resumed.field, baseline.field)
        assert resumed.exchanged_bytes == baseline.exchanged_bytes
        # three-ledger reconciliation: per-round log vs total vs resumed
        assert sum(
            e["halo_bytes"] for e in resumed.round_log
        ) == resumed.exchanged_bytes
        assert resumed.resumed_halo_bytes <= resumed.exchanged_bytes

    @given(
        executor=st.sampled_from(["serial", "thread"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=8, deadline=None)
    def test_executors_resume_identically(
        self, executor, seed, tmp_path_factory
    ):
        w = get_kernel("Heat-2D").weights
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(16, 16))
        plan = distribute(w, x.shape, (2, 2), block_steps=2)
        baseline = ClusterRuntime(plan).run(x, 6, executor=executor).field

        ckdir = str(tmp_path_factory.mktemp("ck"))
        with pytest.raises(CheckpointHalt):
            ClusterRuntime(plan).run(
                x, 6, executor=executor,
                checkpoint=CheckpointConfig(dir=ckdir, halt_after=0),
            )
        resumed = ClusterRuntime(plan).run(
            x, 6, executor=executor, resume_from=ckdir
        )
        assert np.array_equal(resumed.field, baseline)
