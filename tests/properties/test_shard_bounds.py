"""Property tests for the shard-boundary splitter.

``_shard_bounds(n, shards, align)`` partitions the interior rows of a
sharded sweep; every guarantee the executor relies on is pinned here:
full coverage of ``[0, n)``, no overlap, alignment of every chunk but
the last, and sane degeneracy (``n < align``, ``shards > n``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.runtime.executor import _shard_bounds

sizes = st.integers(min_value=1, max_value=4096)
shard_counts = st.integers(min_value=1, max_value=64)
alignments = st.sampled_from([1, 4, 8, 16, 64])


class TestShardBoundsProperties:
    @given(sizes, shard_counts, alignments)
    @settings(max_examples=300, deadline=None)
    def test_covers_interval_exactly(self, n, shards, align):
        bounds = _shard_bounds(n, shards, align)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n
        for (_, e0), (s1, _) in zip(bounds, bounds[1:]):
            assert e0 == s1  # contiguous: no gap, no overlap

    @given(sizes, shard_counts, alignments)
    @settings(max_examples=300, deadline=None)
    def test_chunks_nonempty_and_ordered(self, n, shards, align):
        bounds = _shard_bounds(n, shards, align)
        for s, e in bounds:
            assert 0 <= s < e <= n

    @given(sizes, shard_counts, alignments)
    @settings(max_examples=300, deadline=None)
    def test_all_but_last_aligned(self, n, shards, align):
        bounds = _shard_bounds(n, shards, align)
        for s, e in bounds[:-1]:
            assert (e - s) % align == 0
        # every start is aligned too (tiles never straddle a boundary)
        for s, _ in bounds:
            assert s % align == 0

    @given(sizes, shard_counts, alignments)
    @settings(max_examples=300, deadline=None)
    def test_never_more_chunks_than_requested(self, n, shards, align):
        assert 1 <= len(_shard_bounds(n, shards, align)) <= shards


class TestShardBoundsDegenerate:
    def test_n_smaller_than_align_collapses_to_one_shard(self):
        assert _shard_bounds(5, 4, 8) == [(0, 5)]

    def test_more_shards_than_rows(self):
        bounds = _shard_bounds(3, 16, 1)
        assert bounds[0][0] == 0 and bounds[-1][1] == 3
        assert len(bounds) <= 3

    def test_single_shard_is_whole_interval(self):
        assert _shard_bounds(100, 1, 8) == [(0, 100)]

    def test_exact_division(self):
        assert _shard_bounds(64, 4, 8) == [
            (0, 16), (16, 32), (32, 48), (48, 64),
        ]

    def test_zero_or_negative_shards_rejected(self):
        with pytest.raises(ShapeError, match="shards"):
            _shard_bounds(64, 0, 8)
        with pytest.raises(ShapeError, match="shards"):
            _shard_bounds(64, -2, 8)
