"""Property-based tests: every engine equals the reference stencil on
random kernels, grids and shapes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine1d import LoRAStencil1D
from repro.core.engine2d import LoRAStencil2D
from repro.baselines.convstencil import ConvStencil2D
from repro.stencil.reference import reference_apply
from repro.stencil.weights import (
    box_weights,
    radially_symmetric_weights,
    star_weights,
)


@st.composite
def weights_2d(draw):
    h = draw(st.integers(min_value=1, max_value=3))
    kind = draw(st.sampled_from(["radial", "box", "star"]))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    if kind == "radial":
        return radially_symmetric_weights(h, 2, rng=rng)
    if kind == "box":
        return box_weights(h, 2, rng=rng)
    return star_weights(h, 2, rng=rng)


@st.composite
def grid_2d(draw):
    rows = draw(st.integers(min_value=1, max_value=24))
    cols = draw(st.integers(min_value=1, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return rows, cols, np.random.default_rng(seed)


class TestFunctionalEquivalence:
    @given(weights_2d(), grid_2d())
    @settings(max_examples=30, deadline=None)
    def test_lorastencil2d_functional(self, w, grid):
        rows, cols, rng = grid
        x = rng.normal(size=(rows + 2 * w.radius, cols + 2 * w.radius))
        eng = LoRAStencil2D(w.as_matrix())
        ref = reference_apply(x, w)
        scale = max(1.0, np.abs(ref).max())
        assert np.abs(eng.apply(x) - ref).max() < 1e-10 * scale


class TestSimulatedEquivalence:
    @given(weights_2d(), grid_2d())
    @settings(max_examples=12, deadline=None)
    def test_lorastencil2d_simulated(self, w, grid):
        rows, cols, rng = grid
        x = rng.normal(size=(rows + 2 * w.radius, cols + 2 * w.radius))
        eng = LoRAStencil2D(w.as_matrix())
        out, _ = eng.apply_simulated(x)
        ref = reference_apply(x, w)
        scale = max(1.0, np.abs(ref).max())
        assert np.abs(out - ref).max() < 1e-10 * scale

    @given(weights_2d(), grid_2d())
    @settings(max_examples=10, deadline=None)
    def test_convstencil2d_simulated(self, w, grid):
        rows, cols, rng = grid
        x = rng.normal(size=(rows + 2 * w.radius, cols + 2 * w.radius))
        eng = ConvStencil2D(w.as_matrix())
        out, _ = eng.apply_simulated(x)
        ref = reference_apply(x, w)
        scale = max(1.0, np.abs(ref).max())
        assert np.abs(out - ref).max() < 1e-10 * scale

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=80),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_lorastencil1d_simulated(self, h, n, seed):
        rng = np.random.default_rng(seed)
        w = star_weights(h, 1, rng=rng)
        x = rng.normal(size=n + 2 * h)
        eng = LoRAStencil1D(w)
        out, _ = eng.apply_simulated(x, block=64)
        ref = reference_apply(x, w)
        scale = max(1.0, np.abs(ref).max())
        assert np.abs(out - ref).max() < 1e-10 * scale


class Test3DEquivalence:
    @given(
        st.integers(min_value=1, max_value=2),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=4, max_value=14),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=8, deadline=None)
    def test_lorastencil3d_simulated(self, h, zs, side, seed):
        from repro.core.engine3d import LoRAStencil3D
        from repro.stencil.weights import radially_symmetric_weights

        rng = np.random.default_rng(seed)
        w = radially_symmetric_weights(h, 3, rng=rng)
        x = rng.normal(size=(zs + 2 * h, side + 2 * h, side + 2 * h))
        eng = LoRAStencil3D(w)
        out, _ = eng.apply_simulated(x)
        ref = reference_apply(x, w)
        scale = max(1.0, np.abs(ref).max())
        assert np.abs(out - ref).max() < 1e-10 * scale


class TestCounterInvariants:
    @given(weights_2d(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_bvs_never_shuffles(self, w, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(16 + 2 * w.radius, 16 + 2 * w.radius))
        eng = LoRAStencil2D(w.as_matrix())
        _, cnt = eng.apply_simulated(x)
        assert cnt.shuffle_ops == 0

    @given(weights_2d(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_convstencil_mma_equals_loads(self, w, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(16 + 2 * w.radius, 16 + 2 * w.radius))
        eng = ConvStencil2D(w.as_matrix())
        _, cnt = eng.apply_simulated(x)
        assert cnt.mma_ops == cnt.shared_load_requests
