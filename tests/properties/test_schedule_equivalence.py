"""Schedule equivalence: every dependence-valid instruction schedule of
a lowered tile program produces bit-identical numerics AND identical
hardware event counts.

This is the contract that lets the lowering pipeline treat scheduling as
a free optimization knob: the canonical ("eager") emission order, the
prefetch schedule, and arbitrary randomized topological orders must all
match the eager engine path exactly — across 1D/2D/3D plans and the
BVS / async-copy config ablations.

The same contract now gates the **vectorized backend**: the batched
NumPy walk of the scheduled program must match both the interpreter and
the oracle bit-for-bit, grids and EventCounters alike, under every
schedule and ablation this suite sweeps.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.config import OptimizationConfig
from repro.core.lowering import (
    available_schedules,
    register_schedule,
)
from repro.stencil.reference import reference_apply
from repro.tcu.program import TileProgram, validate_schedule


# ---------------------------------------------------------------------------
# a randomized (but seeded, hence plan-cacheable) topological schedule
# ---------------------------------------------------------------------------
def _random_topological(program: TileProgram, seed: int) -> TileProgram:
    """A uniformly sampled dependence-valid instruction order."""
    rng = np.random.default_rng(seed)
    instrs = list(program.instrs)
    writers = {}
    for i, ins in enumerate(instrs):
        for d in ins.dst:
            writers[d] = i
    deps = [
        {writers[s] for s in ins.srcs if s in writers} for ins in instrs
    ]
    done: set[int] = set()
    order: list[int] = []
    remaining = set(range(len(instrs)))
    while remaining:
        ready = sorted(i for i in remaining if deps[i] <= done)
        pick = ready[rng.integers(len(ready))]
        order.append(pick)
        done.add(pick)
        remaining.remove(pick)
    out = TileProgram(tile=program.tile, instrs=[instrs[i] for i in order])
    validate_schedule(out)
    return out


def _shuffle_name(seed: int) -> str:
    name = f"shuffle{seed}"
    if name not in available_schedules():
        register_schedule(
            name, lambda p, _s=seed: _random_topological(p, _s)
        )
    return name


_CONFIG_ABLATIONS = list(itertools.product([True, False], [True, False]))


def _configs(schedule: str):
    for use_bvs, use_async in _CONFIG_ABLATIONS:
        yield OptimizationConfig(
            use_bvs=use_bvs, use_async_copy=use_async, schedule=schedule
        )


def _grid(shape, radius, seed=0):
    rng = np.random.default_rng(seed)
    return np.pad(rng.normal(size=shape), radius)


WEIGHTS_2D = repro.radially_symmetric_weights(
    2, 2, rng=np.random.default_rng(7)
)
WEIGHTS_1D = repro.box_weights(2, 1)
WEIGHTS_3D = repro.star_weights(1, 3)


# ---------------------------------------------------------------------------
# program path == oracle path, per schedule, per config ablation
# ---------------------------------------------------------------------------
class TestProgramMatchesOracle:
    @pytest.mark.parametrize("schedule", ["eager", "prefetch"])
    def test_2d(self, schedule):
        padded = _grid((24, 28), WEIGHTS_2D.radius)
        for config in _configs(schedule):
            compiled = repro.compile(WEIGHTS_2D, config=config, cache=None)
            out, ev = compiled.apply_simulated(padded)
            ref_out, ref_ev = compiled.apply_simulated(
                padded, backend="oracle"
            )
            vec_out, vec_ev = compiled.apply_simulated(
                padded, backend="vectorized"
            )
            assert np.array_equal(out, ref_out)
            assert ev == ref_ev
            assert np.array_equal(out, vec_out)
            assert ev == vec_ev
            assert np.allclose(
                out, reference_apply(padded, WEIGHTS_2D), atol=1e-10
            )

    @pytest.mark.parametrize("schedule", ["eager", "prefetch"])
    def test_1d(self, schedule):
        padded = _grid((130,), WEIGHTS_1D.radius)
        for config in _configs(schedule):
            compiled = repro.compile(WEIGHTS_1D, config=config, cache=None)
            out, ev = compiled.apply_simulated(padded)
            ref_out, ref_ev = compiled.apply_simulated(
                padded, backend="oracle"
            )
            vec_out, vec_ev = compiled.apply_simulated(
                padded, backend="vectorized"
            )
            assert np.array_equal(out, ref_out)
            assert ev == ref_ev
            assert np.array_equal(out, vec_out)
            assert ev == vec_ev
            assert np.allclose(
                out, reference_apply(padded, WEIGHTS_1D), atol=1e-10
            )

    @pytest.mark.parametrize("schedule", ["eager", "prefetch"])
    def test_3d(self, schedule):
        padded = _grid((3, 10, 12), WEIGHTS_3D.radius)
        for config in _configs(schedule):
            compiled = repro.compile(WEIGHTS_3D, config=config, cache=None)
            out, ev = compiled.apply_simulated(padded)
            ref_out, ref_ev = compiled.apply_simulated(
                padded, backend="oracle"
            )
            vec_out, vec_ev = compiled.apply_simulated(
                padded, backend="vectorized"
            )
            assert np.array_equal(out, ref_out)
            assert ev == ref_ev
            assert np.array_equal(out, vec_out)
            assert ev == vec_ev
            assert np.allclose(
                out, reference_apply(padded, WEIGHTS_3D), atol=1e-10
            )


# ---------------------------------------------------------------------------
# all schedules agree with each other (numerics + counters)
# ---------------------------------------------------------------------------
class TestSchedulesAgree:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_2d_random_topological(self, seed):
        padded = _grid((16, 24), WEIGHTS_2D.radius, seed=1)
        base = repro.compile(
            WEIGHTS_2D, config=OptimizationConfig(), cache=None
        )
        out0, ev0 = base.apply_simulated(padded)
        config = OptimizationConfig(schedule=_shuffle_name(seed))
        shuffled = repro.compile(WEIGHTS_2D, config=config, cache=None)
        # a different dependence-valid order, same instruction multiset
        assert sorted(
            (i.op,) + i.dst for i in shuffled.program.instrs
        ) == sorted((i.op,) + i.dst for i in base.program.instrs)
        out1, ev1 = shuffled.apply_simulated(padded)
        assert np.array_equal(out0, out1)
        assert ev0 == ev1

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_1d_random_topological(self, seed):
        padded = _grid((96,), WEIGHTS_1D.radius, seed=1)
        base = repro.compile(
            WEIGHTS_1D, config=OptimizationConfig(), cache=None
        )
        out0, ev0 = base.apply_simulated(padded)
        config = OptimizationConfig(schedule=_shuffle_name(seed))
        shuffled = repro.compile(WEIGHTS_1D, config=config, cache=None)
        out1, ev1 = shuffled.apply_simulated(padded)
        assert np.array_equal(out0, out1)
        assert ev0 == ev1

    def test_3d_prefetch_equals_eager(self):
        padded = _grid((3, 10, 12), WEIGHTS_3D.radius, seed=2)
        outs, evs = [], []
        for schedule in ("eager", "prefetch", _shuffle_name(12345)):
            config = OptimizationConfig(schedule=schedule)
            compiled = repro.compile(WEIGHTS_3D, config=config, cache=None)
            out, ev = compiled.apply_simulated(padded)
            outs.append(out)
            evs.append(ev)
        assert all(np.array_equal(outs[0], o) for o in outs[1:])
        assert all(evs[0] == e for e in evs[1:])


# ---------------------------------------------------------------------------
# the executor/facade oracle wiring itself
# ---------------------------------------------------------------------------
class TestOracleWiring:
    def test_oracle_counters_match_on_cuda_core_config(self):
        # no tensor-core program exists: oracle and default path are the
        # same eager code, trivially identical
        config = OptimizationConfig(use_tensor_cores=False)
        compiled = repro.compile(WEIGHTS_2D, config=config, cache=None)
        assert compiled.program is None
        padded = _grid((16, 16), WEIGHTS_2D.radius)
        out, ev = compiled.apply_simulated(padded)
        ref_out, ref_ev = compiled.apply_simulated(padded, backend="oracle")
        assert np.array_equal(out, ref_out)
        assert ev == ref_ev

    def test_program_is_exposed_and_scheduled(self):
        compiled = repro.compile(
            WEIGHTS_2D,
            config=OptimizationConfig(schedule="prefetch"),
            cache=None,
        )
        program = compiled.program
        ops = [i.op for i in program.instrs]
        # prefetch hoists every load to the front
        n_loads = ops.count("load_x")
        assert all(op == "load_x" for op in ops[:n_loads])
        assert compiled.schedule == "prefetch"
        assert compiled.lowered.tile.schedule == "prefetch"
