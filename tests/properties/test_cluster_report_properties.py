"""Property-based tests for the cluster observatory report.

Across random meshes, temporal tilings and executors, the report's
accounting identities are exact (integer nanoseconds), not approximate:
per-rank lanes sum to the rank's wall time, the barrier critical path
dominates every rank, overlap efficiency stays a ratio, and the three
halo ledgers (round log, result counter, process-wide Prometheus
counter) agree to the byte.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.parallel.cluster import ClusterRuntime
from repro.parallel.plan import distribute
from repro.stencil.kernels import get_kernel
from repro.telemetry.cluster import build_cluster_report
from repro.telemetry.validate import validate_cluster_report


@st.composite
def cluster_runs(draw):
    size = draw(st.integers(min_value=12, max_value=20))
    mesh = draw(st.sampled_from([(1, 1), (2, 1), (1, 2), (2, 2)]))
    steps = draw(st.integers(min_value=1, max_value=5))
    block_steps = draw(st.integers(min_value=1, max_value=3))
    tiling = draw(st.sampled_from(["trapezoid", "diamond"]))
    # process workers cost ~1s each; keep the heavy executor rare
    executor = draw(
        st.sampled_from(["serial", "serial", "thread", "thread", "process"])
    )
    overlap = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return size, mesh, steps, block_steps, tiling, executor, overlap, seed


class TestReportProperties:
    @given(cluster_runs())
    @settings(max_examples=12, deadline=None)
    def test_accounting_identities_hold(self, case):
        size, mesh, steps, block_steps, tiling, executor, overlap, seed = case
        rng = np.random.default_rng(seed)
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(size, size))
        plan = distribute(
            w, x.shape, mesh, block_steps=block_steps, tiling=tiling
        )
        with telemetry.capture() as tracer:
            result = ClusterRuntime(plan).run(
                x, steps, block_steps=block_steps, overlap=overlap,
                executor=executor,
            )
        report = build_cluster_report(result, tracer=tracer)
        validate_cluster_report(report)

        # lanes partition each rank's wall time exactly
        for row in report["ranks"]:
            assert sum(row["lanes_ns"].values()) == row["wall_ns"]

        # rounds are barriers: the critical path dominates every rank
        assert report["critical_path"]["ns"] >= max(
            row["wall_ns"] for row in report["ranks"]
        )

        # overlap efficiency is a ratio, and zero when overlap is off
        eff = report["overlap"]["efficiency"]
        assert 0.0 <= eff <= 1.0
        if not overlap:
            assert eff == 0.0

        # three byte ledgers, one truth
        halo = report["halo"]
        assert halo["reconciled"] is True
        assert halo["total_bytes"] == result.exchanged_bytes
        assert halo["total_bytes"] == result.halo_counter_delta
        assert halo["total_bytes"] == sum(
            entry["halo_bytes"] for entry in halo["per_round"]
        )

        # one report row and one critical-path node per (rank, round)
        assert len(report["ranks"]) == plan.num_devices
        assert len(report["critical_path"]["nodes"]) == len(result.phases)
