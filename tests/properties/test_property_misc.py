"""Property-based tests: FP16 numerics, temporal blocking, fields."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.parallel import SimulatedCluster
from repro.parallel.temporal import run_temporal_blocked
from repro.stencil.fields import checkerboard, gaussian_pulse, random_field
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_iterate
from repro.tcu.fp16 import fp16_matmul, fp16_mma, quantize_fp16

finite = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


class TestFP16Properties:
    @given(arrays(np.float64, (20,), elements=finite))
    @settings(max_examples=50, deadline=None)
    def test_quantization_idempotent(self, x):
        once = quantize_fp16(x)
        assert np.array_equal(quantize_fp16(once), once)

    @given(arrays(np.float64, (20,), elements=finite))
    @settings(max_examples=50, deadline=None)
    def test_quantization_monotone_error(self, x):
        """|q(x) - x| <= half-ulp bound for normal half-precision."""
        err = np.abs(quantize_fp16(x) - x)
        bound = np.maximum(np.abs(x) * 2.0**-10, 2.0**-24)
        assert np.all(err <= bound)

    @given(
        arrays(np.float64, (16, 16), elements=finite),
        arrays(np.float64, (16, 16), elements=finite),
    )
    @settings(max_examples=25, deadline=None)
    def test_mma_deterministic_and_bounded(self, a, b):
        out1 = fp16_mma(a, b)
        out2 = fp16_mma(a, b)
        assert np.array_equal(out1, out2)
        # error bounded by quantization of the operands
        exact = quantize_fp16(a) @ quantize_fp16(b)
        assert np.abs(out1 - exact).max() <= np.abs(exact).max() * 2**-18 + 1e-3

    @given(st.integers(min_value=1, max_value=3), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_matmul_matches_blockwise_mma(self, blocks, seed):
        rng = np.random.default_rng(seed)
        n = 16 * blocks
        a = rng.normal(size=(16, n))
        b = rng.normal(size=(n, 16))
        out = fp16_matmul(a, b)
        acc = np.zeros((16, 16), dtype=np.float32)
        for p in range(0, n, 16):
            acc = fp16_mma(a[:, p : p + 16], b[p : p + 16, :], acc)
        assert np.array_equal(out, acc.astype(np.float64))


class TestTemporalProperties:
    @given(
        st.integers(min_value=1, max_value=3),
        st.sampled_from(["constant", "periodic"]),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_any_block_depth_exact(self, block_steps, boundary, seed):
        w = get_kernel("Box-2D9P").weights
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(20, 24))
        cluster = SimulatedCluster(w, x.shape, (2, 2), boundary=boundary)
        steps = 2 * block_steps
        out, _ = run_temporal_blocked(cluster, x, steps, block_steps)
        ref = reference_iterate(x, w, steps, boundary=boundary)
        assert np.allclose(out, ref, atol=1e-9)


class TestFieldProperties:
    @given(
        st.integers(min_value=4, max_value=40),
        st.integers(min_value=4, max_value=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_gaussian_bounded_and_peaked(self, r, c):
        f = gaussian_pulse((r, c))
        assert 0 < f.max() <= 1.0
        assert f.min() >= 0.0

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_field_seed_determinism(self, seed):
        assert np.array_equal(
            random_field((12, 12), seed=seed), random_field((12, 12), seed=seed)
        )

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_checkerboard_mean_zero_on_even_grids(self, period):
        f = checkerboard((4 * period, 4 * period), period=period)
        assert abs(f.mean()) < 1e-12
