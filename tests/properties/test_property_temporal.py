"""Property-based tests for temporal tiling.

The invariant: a temporally blocked run (one deep exchange per round of
``block_steps`` local steps, trapezoid or diamond) produces the
*bit-identical* trajectory of the per-step run, for every dimension,
radius, boundary condition and block size the runtime accepts.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.cluster import ClusterRuntime
from repro.parallel.plan import distribute
from repro.parallel.temporal import run_temporal_blocked, temporal_halo_bytes
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_iterate

#: kernels by dimensionality — radii 1-3 in 1D/2D, 1 in 3D
KERNELS = {
    1: ("Heat-1D", "1D5P"),
    2: ("Heat-2D", "Box-2D9P", "Star-2D13P"),
    3: ("Heat-3D", "Box-3D27P"),
}


@st.composite
def temporal_cases(draw):
    """A (kernel, shape, mesh, steps, block_steps, seed) tuple whose
    deepest halo still fits inside the smallest block."""
    ndim = draw(st.sampled_from([1, 2, 3]))
    kernel = draw(st.sampled_from(KERNELS[ndim]))
    radius = get_kernel(kernel).weights.radius
    if ndim == 1:
        shape = (draw(st.integers(min_value=24, max_value=48)),)
        mesh = (draw(st.integers(min_value=1, max_value=4)),)
    elif ndim == 2:
        shape = tuple(
            draw(st.integers(min_value=16, max_value=28)) for _ in range(2)
        )
        mesh = tuple(
            draw(st.integers(min_value=1, max_value=2)) for _ in range(2)
        )
    else:
        shape = tuple(
            draw(st.integers(min_value=6, max_value=10)) for _ in range(3)
        )
        mesh = tuple(
            draw(st.integers(min_value=1, max_value=2)) for _ in range(3)
        )
    min_block = min(n // m for n, m in zip(shape, mesh))
    max_k = max(1, min(4, min_block // radius))
    block_steps = draw(st.integers(min_value=1, max_value=max_k))
    steps = draw(st.integers(min_value=1, max_value=7))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return kernel, shape, mesh, steps, block_steps, seed


class TestTemporalProperties:
    @given(
        temporal_cases(),
        st.sampled_from(["trapezoid", "diamond"]),
        st.sampled_from(["constant", "periodic"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_temporal_bit_identical_to_per_step(
        self, case, tiling, boundary
    ):
        kernel, shape, mesh, steps, block_steps, seed = case
        rng = np.random.default_rng(seed)
        w = get_kernel(kernel).weights
        x = rng.normal(size=shape)
        plan = distribute(w, shape, mesh, boundary=boundary)
        runtime = ClusterRuntime(plan)
        blocked, exchanged = run_temporal_blocked(
            runtime, x, steps, block_steps, tiling=tiling
        )
        per_step = runtime.run(x, steps).field
        assert np.array_equal(blocked, per_step)
        ref = reference_iterate(x, w, steps, boundary=boundary)
        assert np.allclose(blocked, ref, atol=1e-9)
        _, modelled = temporal_halo_bytes(
            runtime, steps=steps, block_steps=block_steps, tiling=tiling
        )
        assert exchanged == modelled

    @given(temporal_cases())
    @settings(max_examples=15, deadline=None)
    def test_overlap_preserves_temporal_bits(self, case):
        kernel, shape, mesh, steps, block_steps, seed = case
        rng = np.random.default_rng(seed)
        w = get_kernel(kernel).weights
        x = rng.normal(size=shape)
        runtime = ClusterRuntime(distribute(w, shape, mesh))
        sync, sync_bytes = run_temporal_blocked(
            runtime, x, steps, block_steps
        )
        over, over_bytes = run_temporal_blocked(
            runtime, x, steps, block_steps, overlap=True
        )
        assert np.array_equal(over, sync)
        assert over_bytes == sync_bytes
