"""Property-based tests for the TCU fragment layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tcu.counters import EventCounters
from repro.tcu.fragment import Fragment
from repro.tcu.layouts import FP64_FRAGMENT_SHAPES, FragmentKind
from repro.tcu.warp import Warp

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def matrix(kind: FragmentKind):
    return arrays(np.float64, FP64_FRAGMENT_SHAPES[kind], elements=finite)


class TestFragmentProperties:
    @given(st.sampled_from(list(FragmentKind)), st.data())
    @settings(max_examples=60, deadline=None)
    def test_round_trip(self, kind, data):
        mat = data.draw(matrix(kind))
        assert np.array_equal(Fragment.from_matrix(kind, mat).to_matrix(), mat)

    @given(matrix(FragmentKind.A), matrix(FragmentKind.B), matrix(FragmentKind.ACC))
    @settings(max_examples=60, deadline=None)
    def test_mma_exactness(self, a, b, c):
        """The simulated MMA is bit-identical to the dense product."""
        warp = Warp(EventCounters())
        d = warp.mma_sync(
            Fragment.from_matrix(FragmentKind.A, a),
            Fragment.from_matrix(FragmentKind.B, b),
            Fragment.from_matrix(FragmentKind.ACC, c),
        )
        assert np.array_equal(d.to_matrix(), a @ b + c)

    @given(matrix(FragmentKind.ACC))
    @settings(max_examples=60, deadline=None)
    def test_bvs_split_exact_and_free(self, c):
        counters = EventCounters()
        warp = Warp(counters)
        acc = Fragment.from_matrix(FragmentKind.ACC, c)
        even, odd = warp.split_accumulator_bvs(acc)
        assert np.array_equal(even.to_matrix(), c[:, 0::2])
        assert np.array_equal(odd.to_matrix(), c[:, 1::2])
        assert counters.shuffle_ops == 0

    @given(matrix(FragmentKind.ACC), matrix(FragmentKind.ACC))
    @settings(max_examples=40, deadline=None)
    def test_split_strategies_agree(self, c, v):
        """Eq. 17 over random matrices: both splits give the same T@V."""
        warp = Warp(EventCounters())
        acc = Fragment.from_matrix(FragmentKind.ACC, c)
        even, odd = warp.split_accumulator_bvs(acc)
        left, right = warp.split_accumulator_naive(acc)
        bvs = even.to_matrix() @ v[0::2, :] + odd.to_matrix() @ v[1::2, :]
        naive = left.to_matrix() @ v[0:4, :] + right.to_matrix() @ v[4:8, :]
        # the two splits sum the same 8 products in different orders, so
        # they agree to rounding of the *summands*' magnitude (which can
        # dwarf the result when terms cancel)
        scale = 8.0 * max(1.0, np.abs(c).max() * np.abs(v).max())
        assert np.abs(bvs - naive).max() <= 1e-12 * scale
