"""Tests for the Section V-D occupancy comparison."""

import pytest

from repro.analysis.occupancy_model import compare_occupancy
from repro.stencil.kernels import get_kernel


class TestOccupancyComparison:
    @pytest.fixture(scope="class")
    def box49(self):
        return compare_occupancy(get_kernel("Box-2D49P").weights)

    def test_convstencil_uses_more_shared_memory(self, box49):
        """The stencil2row matrices cost shared capacity (Section V-D)."""
        assert box49.shared_ratio > 1.0
        assert box49.conv_shared_bytes > box49.lora_shared_bytes

    def test_lorastencil_hosts_more_blocks(self, box49):
        assert box49.lora_blocks_per_sm > box49.conv_blocks_per_sm

    def test_lorastencil_higher_occupancy(self, box49):
        assert box49.lora_occupancy > box49.conv_occupancy

    def test_occupancies_in_range(self, box49):
        for occ in (box49.lora_occupancy, box49.conv_occupancy):
            assert 0 < occ <= 1

    def test_all_2d_kernels_same_direction(self):
        for name in ("Heat-2D", "Box-2D9P", "Star-2D13P"):
            c = compare_occupancy(get_kernel(name).weights, grid=(48, 48))
            assert c.shared_ratio > 1.0, name

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            compare_occupancy(get_kernel("Heat-3D").weights)
