"""Tests for the closed-form Eq. 12-16 models, including the paper's
quoted constants and the model-vs-measurement agreement."""

import pytest

from repro.analysis.compute_model import (
    convstencil_mma_count,
    convstencil_mma_per_tile,
    lorastencil_mma_count,
    lorastencil_mma_per_tile,
    mma_ratio,
)
from repro.analysis.memory_model import (
    convstencil_fragment_loads,
    convstencil_loads_per_tile,
    memory_ratio,
    rdg_fragment_loads,
    rdg_loads_per_tile,
    redundancy_eliminated,
)


class TestPaperConstants:
    def test_eq14_h3(self):
        """Box-2D49P: ConvStencil moves 3.25x RDG's volume; RDG
        eliminates 69.23% of its accesses."""
        assert memory_ratio(3) == pytest.approx(3.25)
        assert redundancy_eliminated(3) == pytest.approx(0.6923, abs=1e-4)

    def test_eq14_h4(self):
        assert memory_ratio(4) == pytest.approx(4.2)
        assert redundancy_eliminated(4) == pytest.approx(0.7619, abs=1e-4)

    def test_eq16_ratio_h3(self):
        """LoRAStencil spends 36/26 ~ 1.38x ConvStencil's MMAs at h=3."""
        assert lorastencil_mma_per_tile(3) == 36
        assert convstencil_mma_per_tile(3) == 26
        assert mma_ratio(3) == pytest.approx(36 / 26)

    def test_eq12_loads_per_point(self):
        """Eq. 12: ab/8 loads per sweep.  Exact for h in {3, 4} (the
        window fills the 16x16 fragment footprint); for smaller radii the
        fixed 8x8-tile implementation reuses the padded window even more,
        so the measured rate is bounded by the paper's ab/8."""
        for h in (3, 4):
            assert rdg_loads_per_tile(h) / 64 == pytest.approx(1 / 8)
        for h in (1, 2):
            assert rdg_loads_per_tile(h) / 64 <= 1 / 8

    def test_eq13_loads_per_tile(self):
        assert convstencil_loads_per_tile(1) == 6
        assert convstencil_loads_per_tile(3) == 26
        assert convstencil_loads_per_tile(4) == 42


class TestSweepTotals:
    def test_rdg_total(self):
        assert rdg_fragment_loads(64, 64, 3) == 64 * 64 // 8

    def test_convstencil_total(self):
        # 8 tile rows x 8 bands x 26 for a 64x64 grid at h=3
        assert convstencil_fragment_loads(64, 64, 3) == 8 * 8 * 26

    def test_lorastencil_mma_total(self):
        assert lorastencil_mma_count(64, 64, 3) == 64 * 36

    def test_convstencil_mma_total(self):
        assert convstencil_mma_count(64, 64, 3) == convstencil_fragment_loads(64, 64, 3)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            convstencil_loads_per_tile(0)
        with pytest.raises(ValueError):
            lorastencil_mma_per_tile(0)


class TestModelVsMeasurement:
    """The simulator must agree with the paper's own closed forms."""

    def test_rdg_loads_measured(self, rng):
        from repro.core.engine2d import LoRAStencil2D
        from repro.stencil.weights import radially_symmetric_weights

        h = 3
        w = radially_symmetric_weights(h, 2, rng=rng)
        eng = LoRAStencil2D(w.as_matrix())
        assert eng.tile.fragment_loads_per_tile == rdg_loads_per_tile(h)

    def test_rdg_mma_measured(self, rng):
        from repro.core.engine2d import LoRAStencil2D
        from repro.stencil.weights import radially_symmetric_weights

        for h in (1, 2, 3):
            w = radially_symmetric_weights(h, 2, rng=rng)
            eng = LoRAStencil2D(w.as_matrix())
            n_terms = len(eng.decomposition.matrix_terms)
            assert eng.tile.mma_per_tile == lorastencil_mma_per_tile(h, n_terms)

    def test_convstencil_loads_measured(self, rng):
        from repro.baselines.convstencil import ConvStencil2D
        from repro.stencil.weights import radially_symmetric_weights

        for h in (1, 2, 3):
            w = radially_symmetric_weights(h, 2, rng=rng)
            eng = ConvStencil2D(w.as_matrix())
            assert eng.fragment_loads_per_tile == convstencil_loads_per_tile(h)

    def test_full_sweep_agreement(self, rng):
        """End-to-end: a simulated ConvStencil sweep over a tile-aligned
        grid issues exactly the Eq. 13 number of fragment loads."""
        from repro.baselines.convstencil import ConvStencil2D
        from repro.stencil.weights import radially_symmetric_weights

        h = 3
        w = radially_symmetric_weights(h, 2, rng=rng)
        eng = ConvStencil2D(w.as_matrix())
        a = b = 32
        x = rng.normal(size=(a + 2 * h, b + 2 * h))
        _, cnt = eng.apply_simulated(x)
        assert cnt.shared_load_requests == convstencil_fragment_loads(a, b, h)
