"""The typed exception hierarchy and its backwards compatibility."""

import numpy as np
import pytest

import repro
from repro.errors import (
    DecompositionError,
    KernelNotFoundError,
    ReproError,
    ShapeError,
)


class TestHierarchy:
    def test_common_base(self):
        for exc in (KernelNotFoundError, DecompositionError, ShapeError):
            assert issubclass(exc, ReproError)

    def test_builtin_compat_bases(self):
        """Old `except ValueError` / `except KeyError` code keeps working."""
        assert issubclass(ShapeError, ValueError)
        assert issubclass(DecompositionError, ValueError)
        assert issubclass(KernelNotFoundError, KeyError)

    def test_pivot_error_is_decomposition_error(self):
        from repro.core.lowrank import PivotError

        assert issubclass(PivotError, DecompositionError)

    def test_kernel_not_found_str_is_plain(self):
        # KeyError.__str__ would repr-quote the message
        assert str(KernelNotFoundError("no such kernel")) == "no such kernel"

    def test_exported_at_top_level(self):
        for name in (
            "ReproError",
            "KernelNotFoundError",
            "DecompositionError",
            "ShapeError",
        ):
            assert name in repro.__all__


class TestRaisedFromRegistries:
    def test_get_kernel(self):
        with pytest.raises(KernelNotFoundError, match="unknown benchmark"):
            repro.get_kernel("Nope-99P")

    def test_get_extended_kernel(self):
        from repro.stencil.extended import get_extended_kernel

        with pytest.raises(KernelNotFoundError, match="unknown extended"):
            get_extended_kernel("Nope-99P")

    def test_old_key_error_handler_still_catches(self):
        with pytest.raises(KeyError):
            repro.get_kernel("Nope-99P")


class TestRaisedFromDecomposition:
    def test_pyramidal_shape_error(self):
        from repro.core.lowrank import pyramidal_decompose

        with pytest.raises(ShapeError):
            pyramidal_decompose(np.ones((3, 5)))

    def test_svd_shape_error(self):
        from repro.core.lowrank import svd_decompose

        with pytest.raises(ShapeError):
            svd_decompose(np.ones((4, 4)))

    def test_asymmetric_matrix_pivot_error(self):
        from repro.core.lowrank import PivotError, pyramidal_decompose

        w = np.arange(9.0).reshape(3, 3)
        with pytest.raises(PivotError):
            pyramidal_decompose(w)
        # ...which old code caught as ValueError
        with pytest.raises(ValueError):
            pyramidal_decompose(w)


class TestRaisedFromEngines:
    def test_engine_constructors_shape_error(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ShapeError):
                repro.LoRAStencil1D(np.ones(4))
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ShapeError):
                repro.LoRAStencil2D(np.ones((3, 5)))
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ShapeError):
                repro.LoRAStencil3D(np.ones((3, 3, 5)))

    def test_apply_shape_error(self, rng):
        compiled = repro.compile(repro.get_kernel("Heat-2D").weights)
        with pytest.raises(ShapeError):
            compiled.apply(rng.normal(size=(10,)))
        with pytest.raises(ShapeError):
            compiled.apply(rng.normal(size=(2, 2)))

    def test_old_value_error_handler_still_catches(self, rng):
        compiled = repro.compile(repro.get_kernel("Heat-2D").weights)
        with pytest.raises(ValueError):
            compiled.apply(rng.normal(size=(10,)))
