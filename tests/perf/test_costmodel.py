"""Tests for the roofline cost model."""

import pytest

from repro.baselines.base import FootprintScale, MethodTraits
from repro.perf.costmodel import cost_breakdown, gstencil_per_second, time_per_point
from repro.perf.machine import A100
from repro.tcu.counters import EventCounters


def _fp(**kw) -> FootprintScale:
    return FootprintScale(counters=EventCounters(**kw), points=kw.pop("points", 1) and 1)


class TestTerms:
    def test_tcu_term(self):
        fp = FootprintScale(EventCounters(mma_ops=1000), points=1000)
        t = MethodTraits(tcu_efficiency=0.5)
        bd = cost_breakdown(fp, t)
        assert bd.t_tcu == pytest.approx(512 / (A100.tcu_peak_flops * 0.5))

    def test_cuda_term(self):
        fp = FootprintScale(EventCounters(cuda_core_flops=970), points=1)
        t = MethodTraits(cuda_efficiency=1.0)
        bd = cost_breakdown(fp, t)
        assert bd.t_cuda == pytest.approx(970 / A100.cuda_peak_flops)

    def test_dram_term(self):
        fp = FootprintScale(
            EventCounters(global_load_bytes=100, global_store_bytes=50), points=1
        )
        bd = cost_breakdown(fp, MethodTraits(dram_efficiency=1.0))
        assert bd.t_dram == pytest.approx(150 / A100.dram_bandwidth)

    def test_smem_term(self):
        fp = FootprintScale(
            EventCounters(shared_load_requests=3, shared_store_requests=1), points=1
        )
        bd = cost_breakdown(fp, MethodTraits(smem_efficiency=1.0))
        assert bd.t_smem == pytest.approx(4 * 256 / A100.smem_bandwidth)

    def test_shuffle_term(self):
        fp = FootprintScale(EventCounters(shuffle_ops=10), points=1)
        bd = cost_breakdown(fp, MethodTraits())
        assert bd.t_shuffle == pytest.approx(10 * A100.shuffle_stall_s)

    def test_register_term(self):
        fp = FootprintScale(EventCounters(register_intermediate_bytes=1430), points=1)
        bd = cost_breakdown(fp, MethodTraits())
        assert bd.t_reg == pytest.approx(1430 / A100.register_staging_bw)

    def test_fixed_term(self):
        fp = FootprintScale(EventCounters(), points=1)
        bd = cost_breakdown(fp, MethodTraits(fixed_time_s=5e-11))
        assert bd.total == pytest.approx(5e-11)


class TestComposition:
    def test_roofline_max(self):
        """Compute and memory overlap: total = max of the two."""
        fp = FootprintScale(
            EventCounters(mma_ops=1, global_load_bytes=10_000), points=1
        )
        t = MethodTraits(tcu_efficiency=1.0, dram_efficiency=1.0)
        bd = cost_breakdown(fp, t)
        assert bd.total == pytest.approx(max(bd.t_compute, bd.t_memory))

    def test_shuffles_serialize_with_tcu(self):
        fp = FootprintScale(EventCounters(mma_ops=1, shuffle_ops=5), points=1)
        bd = cost_breakdown(fp, MethodTraits())
        assert bd.t_compute == pytest.approx(bd.t_tcu + bd.t_shuffle)

    def test_memory_terms_additive(self):
        fp = FootprintScale(
            EventCounters(
                global_load_bytes=100,
                shared_load_requests=1,
                register_intermediate_bytes=100,
            ),
            points=1,
        )
        bd = cost_breakdown(fp, MethodTraits())
        assert bd.t_memory == pytest.approx(bd.t_dram + bd.t_smem + bd.t_reg)

    def test_overhead_multiplies(self):
        fp = FootprintScale(EventCounters(mma_ops=10), points=1)
        t1 = cost_breakdown(fp, MethodTraits(launch_overhead=1.0)).total
        t2 = cost_breakdown(fp, MethodTraits(launch_overhead=2.0)).total
        assert t2 == pytest.approx(2 * t1)

    def test_time_scale_multiplies(self):
        fp = FootprintScale(EventCounters(mma_ops=10), points=1)
        t1 = cost_breakdown(fp, MethodTraits(time_scale=1.0)).total
        t4 = cost_breakdown(fp, MethodTraits(time_scale=4.0)).total
        assert t4 == pytest.approx(4 * t1)

    def test_bound_labels(self):
        comp = FootprintScale(EventCounters(mma_ops=100), points=1)
        mem = FootprintScale(EventCounters(global_load_bytes=10**6), points=1)
        assert cost_breakdown(comp, MethodTraits()).bound == "tcu"
        assert cost_breakdown(mem, MethodTraits()).bound == "memory"


class TestHelpers:
    def test_gstencil_inverse_of_time(self):
        fp = FootprintScale(EventCounters(mma_ops=100), points=100)
        t = MethodTraits()
        g = gstencil_per_second(fp, t)
        assert g == pytest.approx(1.0 / time_per_point(fp, t) / 1e9)

    def test_faster_traits_give_more_gstencils(self):
        fp = FootprintScale(EventCounters(mma_ops=100), points=100)
        slow = gstencil_per_second(fp, MethodTraits(tcu_efficiency=0.3))
        fast = gstencil_per_second(fp, MethodTraits(tcu_efficiency=0.9))
        assert fast > slow
