"""Tests for the roofline analysis module."""

import pytest

from repro.baselines.base import FootprintScale, MethodTraits
from repro.perf.machine import A100
from repro.perf.roofline import ridge_intensity, roofline_point
from repro.tcu.counters import EventCounters


def _fp(mma=0, flops=0, load_b=0, store_b=0, points=1):
    return FootprintScale(
        EventCounters(
            mma_ops=mma,
            cuda_core_flops=flops,
            global_load_bytes=load_b,
            global_store_bytes=store_b,
        ),
        points=points,
    )


class TestRidge:
    def test_tcu_ridge(self):
        assert ridge_intensity() == pytest.approx(19.5e12 / 1.935e12)

    def test_cuda_ridge_lower(self):
        assert ridge_intensity(tensor_cores=False) < ridge_intensity()


class TestRooflinePoint:
    def test_bandwidth_bound_classification(self):
        fp = _fp(mma=1, load_b=10_000)
        pt = roofline_point(fp, MethodTraits())
        assert pt.bound == "bandwidth"
        assert pt.attainable_flops < pt.peak_flops

    def test_compute_bound_classification(self):
        fp = _fp(mma=1000, load_b=8)
        pt = roofline_point(fp, MethodTraits())
        assert pt.bound == "compute"
        assert pt.attainable_flops == pt.peak_flops

    def test_achieved_never_exceeds_attainable(self):
        for mma, load in [(1, 8), (100, 8), (1, 10_000)]:
            pt = roofline_point(_fp(mma=mma, load_b=load), MethodTraits())
            assert pt.achieved_flops <= pt.attainable_flops * 1.0001

    def test_roof_efficiency_range(self):
        pt = roofline_point(_fp(mma=10, load_b=100), MethodTraits())
        assert 0 < pt.roof_efficiency <= 1

    def test_infinite_ai_without_traffic(self):
        pt = roofline_point(_fp(mma=5), MethodTraits())
        assert pt.arithmetic_intensity == float("inf")
        assert pt.bound == "compute"

    def test_cuda_peak_used_for_non_tcu(self):
        pt = roofline_point(
            _fp(flops=1000, load_b=8), MethodTraits(), tensor_cores=False
        )
        assert pt.peak_flops == A100.cuda_peak_flops
