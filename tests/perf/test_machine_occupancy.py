"""Tests for the machine description and occupancy model."""

import pytest

from repro.perf.machine import A100, MachineSpec
from repro.perf.occupancy import blocks_per_sm, occupancy_factor


class TestA100:
    def test_datasheet_values(self):
        assert A100.tcu_peak_flops == 19.5e12
        assert A100.dram_bandwidth == pytest.approx(1.935e12)
        assert A100.num_sms == 108
        assert A100.smem_capacity == 164 * 1024

    def test_smem_request_bytes(self):
        assert A100.bytes_per_smem_request == 256

    def test_custom_machine(self):
        m = MachineSpec(
            name="toy",
            tcu_peak_flops=1e12,
            cuda_peak_flops=1e12,
            dram_bandwidth=1e11,
            smem_bandwidth=1e12,
            issue_rate=1e11,
            num_sms=4,
            smem_capacity=1024,
            shuffle_stall_s=1e-9,
            register_staging_bw=1e11,
        )
        assert m.num_sms == 4


class TestOccupancy:
    def test_blocks_per_sm(self):
        assert blocks_per_sm(A100.smem_capacity) == 1
        assert blocks_per_sm(A100.smem_capacity // 4) == 4

    def test_zero_bytes_full_occupancy(self):
        assert occupancy_factor(0) == 1.0

    def test_occupancy_decreases_with_footprint(self):
        small = occupancy_factor(8 * 1024)
        big = occupancy_factor(80 * 1024)
        assert small > big

    def test_occupancy_capped_at_one(self):
        assert occupancy_factor(1) == 1.0

    def test_oversized_block(self):
        assert blocks_per_sm(A100.smem_capacity + 1) == 0
        assert occupancy_factor(A100.smem_capacity + 1) == 0.0
