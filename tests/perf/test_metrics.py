"""Tests for the evaluation metrics (Eq. 18, Table III quantities)."""

import pytest

from repro.baselines.base import FootprintScale, MethodTraits
from repro.perf.metrics import arithmetic_intensity, compute_throughput_pct, gstencils
from repro.tcu.counters import EventCounters


class TestGStencils:
    def test_eq18(self):
        # T * prod(N) / (t * 1e9)
        assert gstencils(10, (1000, 1000), 1.0) == pytest.approx(0.01)

    def test_1d(self):
        assert gstencils(10_000, (10_240_000,), 1000.0) == pytest.approx(0.1024)

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            gstencils(1, (10,), 0.0)


class TestArithmeticIntensity:
    def test_flops_per_byte(self):
        fp = FootprintScale(
            EventCounters(mma_ops=1, global_load_bytes=256, global_store_bytes=256),
            points=1,
        )
        assert arithmetic_intensity(fp) == pytest.approx(1.0)

    def test_cuda_flops_count(self):
        fp = FootprintScale(
            EventCounters(cuda_core_flops=100, global_load_bytes=50), points=1
        )
        assert arithmetic_intensity(fp) == pytest.approx(2.0)

    def test_no_traffic(self):
        fp = FootprintScale(EventCounters(mma_ops=1), points=1)
        assert arithmetic_intensity(fp) == float("inf")


class TestComputeThroughput:
    def test_tcu_bound_equals_efficiency(self):
        """A purely TCU-bound method achieves exactly its calibrated
        efficiency as CT%."""
        fp = FootprintScale(EventCounters(mma_ops=1000), points=1000)
        traits = MethodTraits(tcu_efficiency=0.86)
        assert compute_throughput_pct(fp, traits) == pytest.approx(86.0)

    def test_memory_bound_lowers_ct(self):
        fp = FootprintScale(
            EventCounters(mma_ops=10, global_load_bytes=10**5), points=1
        )
        traits = MethodTraits(tcu_efficiency=0.86)
        assert compute_throughput_pct(fp, traits) < 86.0

    def test_cuda_core_variant(self):
        fp = FootprintScale(EventCounters(cuda_core_flops=1000), points=1)
        traits = MethodTraits(cuda_efficiency=0.5)
        ct = compute_throughput_pct(fp, traits, tensor_cores=False)
        assert ct == pytest.approx(50.0)
