"""Tests for the SVG chart emitter."""

import pytest

from repro.experiments.svg import grouped_bar_chart, line_chart


class TestGroupedBars:
    def test_well_formed(self):
        svg = grouped_bar_chart(
            ["a", "b"], {"m1": [1.0, 2.0], "m2": [3.0, 4.0]}, title="t"
        )
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<rect") == 4 + 2  # bars + legend swatches

    def test_labels_escaped(self):
        svg = grouped_bar_chart(["<k>"], {"a&b": [1.0]})
        assert "&lt;k&gt;" in svg
        assert "a&amp;b" in svg
        assert "<k>" not in svg

    def test_values_in_tooltips(self):
        svg = grouped_bar_chart(["g"], {"m": [42.5]})
        assert "42.50" in svg

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a", "b"], {"m": [1.0]})

    def test_zero_values_ok(self):
        svg = grouped_bar_chart(["a"], {"m": [0.0]})
        assert "<svg" in svg


class TestLineChart:
    def test_well_formed(self):
        svg = line_chart([1.0, 10.0, 100.0], {"s": [1.0, 2.0, 3.0]}, log_x=True)
        assert svg.startswith("<svg")
        assert svg.count("<polyline") == 1

    def test_multiple_series(self):
        svg = line_chart(
            [1.0, 2.0], {"a": [1.0, 2.0], "b": [2.0, 1.0], "c": [0.5, 0.5]}
        )
        assert svg.count("<polyline") == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            line_chart([1.0], {"s": [1.0, 2.0]})

    def test_log_x_monotone_pixels(self):
        """Log scaling keeps points ordered left to right."""
        svg = line_chart([1.0, 10.0, 100.0], {"s": [1.0, 1.0, 1.0]}, log_x=True)
        poly = svg.split('<polyline points="')[1].split('"')[0]
        xs = [float(p.split(",")[0]) for p in poly.split()]
        assert xs == sorted(xs)
        # log spacing: equal pixel gaps for equal ratios
        assert xs[1] - xs[0] == pytest.approx(xs[2] - xs[1], abs=0.5)
