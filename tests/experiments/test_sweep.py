"""Tests for the grid-size sweep driver."""

import pytest

from repro.experiments.sweep import run_size_sweep


class TestSizeSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_size_sweep("Heat-2D", sizes=(256, 1024, 10240))

    def test_all_points_present(self, result):
        assert len(result.rows) == 2 * 3
        assert result.methods() == ["ConvStencil", "LoRAStencil"]
        assert result.sizes() == [256, 1024, 10240]

    def test_monotone_saturation(self, result):
        for m in result.methods():
            perfs = [result.perf(m, s) for s in result.sizes()]
            assert perfs == sorted(perfs)

    def test_utilization_bounds(self, result):
        for r in result.rows:
            assert 0 < r.utilization <= 1

    def test_speedup_series(self, result):
        series = result.speedup_series("LoRAStencil", "ConvStencil")
        assert len(series) == 3
        assert all(ratio > 0 for _, ratio in series)

    def test_missing_point_raises(self, result):
        with pytest.raises(KeyError):
            result.perf("LoRAStencil", 999)

    def test_custom_methods(self):
        res = run_size_sweep(
            "Heat-2D", methods=("cuDNN", "LoRAStencil"), sizes=(1024,)
        )
        assert res.perf("LoRAStencil", 1024) > res.perf("cuDNN", 1024)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            run_size_sweep("Heat-3D")
