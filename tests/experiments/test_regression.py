"""Regression pinning: fresh measurements must equal the shipped snapshot."""

import pytest

from repro.experiments.regression import (
    SNAPSHOT_PATH,
    collect_snapshot,
    compare,
    load_snapshot,
)


class TestSnapshot:
    def test_snapshot_shipped(self):
        assert SNAPSHOT_PATH.exists()

    def test_covers_all_pairs(self):
        pinned = load_snapshot()
        assert len(pinned) == 8 * 2  # Table II kernels x {LoRA, Conv}

    @pytest.mark.slow
    def test_measurements_match_pinned_exactly(self):
        """The heart of the pin: simulator counters are deterministic,
        so any drift is a real behavioural change."""
        problems = compare(collect_snapshot(), load_snapshot())
        assert not problems, "\n".join(problems)

    def test_compare_detects_drift(self):
        pinned = load_snapshot()
        mutated = {k: {"points": v["points"], "counters": dict(v["counters"])}
                   for k, v in pinned.items()}
        key = next(iter(mutated))
        mutated[key]["counters"]["mma_ops"] += 1
        problems = compare(mutated, pinned)
        assert len(problems) == 1 and "mma_ops" in problems[0]

    def test_compare_detects_missing(self):
        pinned = load_snapshot()
        partial = dict(list(pinned.items())[:-1])
        assert any("missing" in p for p in compare(partial, pinned))
