"""Tests for footprint caching and the Fig. 9 utilization model."""


from repro.baselines.lorastencil import LoRAStencilMethod
from repro.core.config import OptimizationConfig
from repro.experiments.fig9 import _utilization
from repro.experiments.footprints import cached_footprint, clear_cache
from repro.perf.machine import A100
from repro.stencil.kernels import get_kernel


class TestFootprintCache:
    def setup_method(self):
        clear_cache()

    def teardown_method(self):
        clear_cache()

    def test_cache_returns_same_object(self):
        m = LoRAStencilMethod(get_kernel("Heat-2D"))
        a = cached_footprint(m, (32, 32))
        b = cached_footprint(m, (32, 32))
        assert a is b

    def test_cache_distinguishes_grids(self):
        m = LoRAStencilMethod(get_kernel("Heat-2D"))
        a = cached_footprint(m, (32, 32))
        b = cached_footprint(m, (40, 40))
        assert a is not b

    def test_cache_distinguishes_configs(self):
        """The Fig. 9 regression: different optimization levels of the
        same method must not share cache entries."""
        k = get_kernel("Box-2D9P")
        full = LoRAStencilMethod(k)
        no_bvs = LoRAStencilMethod(k, config=OptimizationConfig(use_bvs=False))
        a = cached_footprint(full, (32, 32))
        b = cached_footprint(no_bvs, (32, 32))
        assert a is not b
        assert a.counters.shuffle_ops == 0
        assert b.counters.shuffle_ops > 0

    def test_cache_distinguishes_kernels(self):
        a = cached_footprint(LoRAStencilMethod(get_kernel("Heat-2D")), (32, 32))
        b = cached_footprint(LoRAStencilMethod(get_kernel("Box-2D9P")), (32, 32))
        assert a is not b


class TestUtilization:
    def test_full_gpu_saturates_to_one(self):
        # a 10240^2 grid launches ~51k blocks: far beyond one wave
        assert _utilization(10240 * 10240, 16 * 1024, A100) > 0.95

    def test_tiny_grid_underutilizes(self):
        assert _utilization(256 * 256, 16 * 1024, A100) < 0.2

    def test_monotone_in_points(self):
        utils = [
            _utilization(n * n, 16 * 1024, A100)
            for n in (256, 512, 1024, 2048, 8192)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(utils, utils[1:]))

    def test_bounded(self):
        for n in (64, 1000, 100_000):
            u = _utilization(n, 16 * 1024, A100)
            assert 0 < u <= 1
