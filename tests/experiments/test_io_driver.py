"""Tests for result serialization and the sustained-run driver."""

import numpy as np
import pytest

from repro.core.driver import SimulationDriver
from repro.experiments.fig8 import Fig8Result, Fig8Row
from repro.experiments.fig10 import Fig10Result, Fig10Row
from repro.experiments.io import load_result, save_result
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_iterate


class TestResultIO:
    def test_fig8_round_trip(self, tmp_path):
        res = Fig8Result(
            rows=[
                Fig8Row("Heat-2D", "LoRAStencil", 100.0, 10.0),
                Fig8Row("Heat-2D", "cuDNN", 10.0, 1.0),
            ]
        )
        path = save_result(res, tmp_path / "fig8.json")
        again = load_result(path)
        assert again.rows == res.rows
        assert again.perf("Heat-2D", "LoRAStencil") == 100.0

    def test_fig10_round_trip(self, tmp_path):
        res = Fig10Result(
            rows=[
                Fig10Row("Box-2D49P", "ConvStencil", 100.0, 50.0),
                Fig10Row("Box-2D49P", "LoRAStencil", 30.0, 25.0),
            ]
        )
        again = load_result(save_result(res, tmp_path / "fig10.json"))
        assert again.ratio("Box-2D49P", "loads") == pytest.approx(0.3)

    def test_unsupported_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_result({"not": "a result"}, tmp_path / "x.json")

    def test_unknown_kind_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"kind": "fig99", "rows": []}')
        with pytest.raises(ValueError):
            load_result(p)

    def test_fig9_round_trip(self, tmp_path):
        from repro.experiments.fig9 import Fig9Result, Fig9Row

        res = Fig9Result(rows=[Fig9Row("RDG+TCU", 1024, 33.5)])
        again = load_result(save_result(res, tmp_path / "fig9.json"))
        assert again.perf("RDG+TCU", 1024) == 33.5

    def test_table3_round_trip(self, tmp_path):
        from repro.experiments.table3 import Table3Result, Table3Row

        res = Table3Result(
            rows=[
                Table3Row("Box-2D49P", "LoRAStencil", 86.0, 15.3),
                Table3Row("Box-2D49P", "ConvStencil", 45.8, 8.4),
            ]
        )
        again = load_result(save_result(res, tmp_path / "t3.json"))
        assert again.ai_ratio("Box-2D49P") == pytest.approx(15.3 / 8.4)

    def test_real_driver_output_round_trips(self, tmp_path):
        from repro.experiments.fig8 import run_fig8

        res = run_fig8(kernels=["Heat-2D"], methods=["cuDNN", "LoRAStencil"])
        again = load_result(save_result(res, tmp_path / "fig8.json"))
        assert again.rows == res.rows


class TestSimulationDriver:
    def test_trajectory_matches_reference(self, rng):
        k = get_kernel("Box-2D9P")
        driver = SimulationDriver(k.weights)
        x0 = rng.normal(size=(16, 16))
        report = driver.run(x0, 4)
        ref = reference_iterate(x0, k.weights, 4)
        assert np.allclose(report.final, ref, atol=1e-10)

    def test_counters_accumulate_across_steps(self, rng):
        k = get_kernel("Box-2D9P")
        driver = SimulationDriver(k.weights)
        x0 = rng.normal(size=(16, 16))
        one = driver.run(x0, 1)
        three = driver.run(x0, 3)
        assert three.counters.mma_ops == 3 * one.counters.mma_ops
        assert three.point_steps == 3 * one.point_steps

    def test_peak_shared_tracked(self, rng):
        k = get_kernel("Box-2D49P")
        report = SimulationDriver(k.weights).run(rng.normal(size=(16, 16)), 1)
        assert report.peak_shared_bytes > 0

    def test_sustained_gstencil_positive(self, rng):
        from repro.baselines.base import MethodTraits

        k = get_kernel("Box-2D9P")
        report = SimulationDriver(k.weights).run(rng.normal(size=(16, 16)), 2)
        assert report.sustained_gstencil(MethodTraits()) > 0

    def test_zero_steps(self, rng):
        k = get_kernel("Box-2D9P")
        x0 = rng.normal(size=(12, 12))
        report = SimulationDriver(k.weights).run(x0, 0)
        assert np.array_equal(report.final, x0)
        assert report.counters.mma_ops == 0

    def test_periodic_boundary(self, rng):
        k = get_kernel("Heat-2D")
        driver = SimulationDriver(k.weights, boundary="periodic")
        x0 = rng.normal(size=(16, 16))
        report = driver.run(x0, 3)
        ref = reference_iterate(x0, k.weights, 3, boundary="periodic")
        assert np.allclose(report.final, ref, atol=1e-10)

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            SimulationDriver(get_kernel("Heat-3D").weights)
