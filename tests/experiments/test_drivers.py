"""Tests for the figure/table experiment drivers.

These use reduced kernel sets / grids so they stay fast; the benchmark
harness runs the full versions.
"""

import pytest

from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.paper import PAPER
from repro.experiments.report import format_table
from repro.experiments.table3 import run_table3


@pytest.fixture(scope="module")
def fig8_small():
    return run_fig8(kernels=["Heat-2D", "Box-2D49P"])


class TestFig8:
    def test_rows_complete(self, fig8_small):
        assert len(fig8_small.rows) == 2 * 7

    def test_lora_beats_all_on_2d(self, fig8_small):
        """The headline claim on the 2D kernels."""
        for kernel in ("Heat-2D", "Box-2D49P"):
            lora = fig8_small.perf(kernel, "LoRAStencil")
            for row in fig8_small.by_kernel(kernel):
                if row.method != "LoRAStencil":
                    assert lora > row.gstencil_per_s, (kernel, row.method)

    def test_speedup_normalized_to_floor(self, fig8_small):
        for kernel in ("Heat-2D", "Box-2D49P"):
            speedups = [r.speedup for r in fig8_small.by_kernel(kernel)]
            assert min(speedups) == pytest.approx(1.0)

    def test_convstencil_beats_cudnn(self, fig8_small):
        """Every stencil-specialized method outperforms cuDNN (Sec V-B)."""
        for kernel in ("Heat-2D", "Box-2D49P"):
            assert fig8_small.perf(kernel, "ConvStencil") > fig8_small.perf(
                kernel, "cuDNN"
            )

    def test_table_rows_renderable(self, fig8_small):
        text = format_table(fig8_small.table_rows(), "fig8")
        assert "LoRAStencil" in text and "Heat-2D" in text

    def test_missing_pair_raises(self, fig8_small):
        with pytest.raises(KeyError):
            fig8_small.perf("Heat-3D", "LoRAStencil")


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9(sizes=(512, 10240), measure_grid=(64, 64))

    def test_four_configs(self, result):
        assert len(result.configs()) == 4

    def test_monotone_in_size(self, result):
        """Perf grows (or saturates) with input size — the Fig. 9 shape."""
        for cfg in result.configs():
            assert result.perf(cfg, 10240) >= result.perf(cfg, 512)

    def test_each_optimization_helps(self, result):
        cfgs = result.configs()
        for before, after in zip(cfgs, cfgs[1:]):
            assert result.gain(after, before, 10240) > 1.0

    def test_paper_gains_at_large_size(self):
        """Calibration targets: 2.14x (TCU), 4.00x (BVS), 1.297x (AC)."""
        res = run_fig9(sizes=(10240,))
        cfgs = res.configs()
        assert res.gain(cfgs[1], cfgs[0], 10240) == pytest.approx(
            PAPER["fig9_tcu_gain"], rel=0.1
        )
        assert res.gain(cfgs[2], cfgs[1], 10240) == pytest.approx(
            PAPER["fig9_bvs_gain"], rel=0.1
        )
        assert res.gain(cfgs[3], cfgs[2], 10240) == pytest.approx(
            PAPER["fig9_async_copy_gain"], rel=0.1
        )


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        # the two 2D kernels keep this test quick
        return run_fig10(kernels=("Star-2D13P", "Box-2D49P"))

    def test_rows(self, result):
        assert len(result.rows) == 4

    def test_lora_fewer_requests_everywhere(self, result):
        for kernel in ("Star-2D13P", "Box-2D49P"):
            assert result.ratio(kernel, "loads") < 1.0
            assert result.ratio(kernel, "stores") < 1.0
            assert result.ratio(kernel, "total") < 1.0

    def test_box2d49p_load_ratio_near_eq14(self, result):
        """Eq. 14 predicts RDG loads ~ 1/3.25 of ConvStencil's; the
        measured ratio adds only the pyramid-apex scalar reads."""
        assert result.ratio("Box-2D49P", "loads") == pytest.approx(
            1 / 3.25, rel=0.3
        )


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table3(kernels=("Box-2D49P",))

    def test_lora_higher_ct_2d(self, result):
        """Table III direction on Box-2D49P."""
        lora = result.row("Box-2D49P", "LoRAStencil")
        conv = result.row("Box-2D49P", "ConvStencil")
        assert lora.ct_pct > conv.ct_pct

    def test_lora_higher_ai_2d(self, result):
        assert result.ai_ratio("Box-2D49P") > 1.0

    def test_ai_ratio_near_paper(self, result):
        paper = PAPER["table3"]["Box-2D49P"]
        paper_ratio = paper["LoRAStencil"]["ai"] / paper["ConvStencil"]["ai"]
        assert result.ai_ratio("Box-2D49P") == pytest.approx(paper_ratio, rel=0.35)


class TestPaperRegistry:
    def test_required_keys(self):
        for key in (
            "fig8_mean_speedup",
            "fig9_bvs_gain",
            "fig10_load_ratio",
            "table3",
            "eq14_ratio_h3",
            "fusion_waste_saving",
        ):
            assert key in PAPER

    def test_mean_speedups_ordered(self):
        """cuDNN slowest ... ConvStencil closest."""
        ms = PAPER["fig8_mean_speedup"]
        assert ms["cuDNN"] > ms["AMOS"] > ms["Brick"] > ms["DRStencil"]
        assert ms["DRStencil"] > ms["TCStencil"] > ms["ConvStencil"]


class TestReport:
    def test_empty(self):
        assert format_table([]) == ""

    def test_alignment(self):
        text = format_table([["a", "bb"], ["ccc", "d"]])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("a")
