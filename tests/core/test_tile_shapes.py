"""Tests for multi-accumulator output tiles (beyond the paper's 8x8)."""

import numpy as np
import pytest

from repro.core.config import OptimizationConfig
from repro.core.engine2d import LoRAStencil2D
from repro.core.lowrank import decompose
from repro.core.rdg import RDGTileCompute
from repro.stencil.reference import reference_apply
from repro.stencil.weights import radially_symmetric_weights

TILE_SHAPES = [(8, 8), (8, 16), (16, 8), (16, 16), (24, 16)]


class TestGeometry:
    def test_invalid_tile_shapes_rejected(self, rng):
        w = radially_symmetric_weights(1, 2, rng=rng).as_matrix()
        d = decompose(w)
        for bad in [(4, 8), (8, 12), (0, 8), (8, 0)]:
            with pytest.raises(ValueError):
                RDGTileCompute(d, 1, out_rows=bad[0], out_cols=bad[1])

    @pytest.mark.parametrize("ts", TILE_SHAPES)
    def test_window_covers_tile(self, rng, ts):
        w = radially_symmetric_weights(3, 2, rng=rng).as_matrix()
        tile = RDGTileCompute(decompose(w), 3, out_rows=ts[0], out_cols=ts[1])
        assert tile.k_rows >= ts[0] + 6
        assert tile.w_cols >= ts[1] + 6
        assert tile.points_per_tile == ts[0] * ts[1]

    def test_larger_tiles_load_fewer_fragments_per_point(self, rng):
        """The reuse argument for the "ideal 2h x 2h" tile: loads/point
        decrease monotonically as the tile grows."""
        w = radially_symmetric_weights(4, 2, rng=rng).as_matrix()
        d = decompose(w)
        rates = []
        for ts in [(8, 8), (16, 16), (24, 24)]:
            tile = RDGTileCompute(d, 4, out_rows=ts[0], out_cols=ts[1])
            rates.append(tile.fragment_loads_per_tile / tile.points_per_tile)
        assert rates == sorted(rates, reverse=True)

    def test_default_is_paper_config(self, rng):
        w = radially_symmetric_weights(3, 2, rng=rng).as_matrix()
        tile = RDGTileCompute(decompose(w), 3)
        assert (tile.out_rows, tile.out_cols) == (8, 8)
        assert tile.mma_per_tile == 36


class TestCorrectness:
    @pytest.mark.parametrize("ts", TILE_SHAPES)
    @pytest.mark.parametrize("h", [1, 3])
    def test_simulated_matches_reference(self, rng, ts, h):
        w = radially_symmetric_weights(h, 2, rng=rng)
        eng = LoRAStencil2D(w.as_matrix(), tile_shape=ts)
        x = rng.normal(size=(27 + 2 * h, 34 + 2 * h))
        out, _ = eng.apply_simulated(x)
        assert np.allclose(out, reference_apply(x, w), atol=1e-11)

    @pytest.mark.parametrize("ts", [(16, 16), (8, 16)])
    def test_without_bvs(self, rng, ts):
        w = radially_symmetric_weights(2, 2, rng=rng)
        eng = LoRAStencil2D(
            w.as_matrix(),
            config=OptimizationConfig(use_bvs=False),
            tile_shape=ts,
        )
        x = rng.normal(size=(20, 24))
        out, cnt = eng.apply_simulated(x)
        assert np.allclose(out, reference_apply(x, w), atol=1e-11)
        assert cnt.shuffle_ops > 0

    def test_cuda_path_with_large_tile(self, rng):
        w = radially_symmetric_weights(2, 2, rng=rng)
        eng = LoRAStencil2D(
            w.as_matrix(),
            config=OptimizationConfig(use_tensor_cores=False),
            tile_shape=(16, 16),
        )
        x = rng.normal(size=(20, 24))
        out, _ = eng.apply_simulated(x)
        assert np.allclose(out, reference_apply(x, w), atol=1e-11)

    def test_mma_counter_matches_model(self, rng):
        w = radially_symmetric_weights(3, 2, rng=rng)
        eng = LoRAStencil2D(w.as_matrix(), tile_shape=(16, 16))
        x = rng.normal(size=(32 + 6, 32 + 6))
        _, cnt = eng.apply_simulated(x)
        tiles = (32 // 16) * (32 // 16)
        assert cnt.mma_ops == tiles * eng.tile.mma_per_tile
