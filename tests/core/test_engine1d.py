"""Tests for the 1D LoRAStencil executor."""

import numpy as np
import pytest

from repro.core.config import OptimizationConfig
from repro.core.engine1d import LoRAStencil1D
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_apply
from repro.stencil.weights import star_weights


class TestFunctional:
    @pytest.mark.parametrize("name", ["Heat-1D", "1D5P"])
    def test_matches_reference(self, rng, name):
        w = get_kernel(name).weights
        eng = LoRAStencil1D(w)
        x = rng.normal(size=500 + 2 * w.radius)
        assert np.allclose(eng.apply(x), reference_apply(x, w), atol=1e-12)

    def test_2d_weights_rejected(self):
        with pytest.raises(ValueError):
            LoRAStencil1D(get_kernel("Box-2D9P").weights)

    def test_even_vector_rejected(self):
        with pytest.raises(ValueError):
            LoRAStencil1D(np.ones(4))

    def test_too_small_rejected(self, rng):
        eng = LoRAStencil1D(get_kernel("1D5P").weights)
        with pytest.raises(ValueError):
            eng.apply(rng.normal(size=4))


class TestSimulated:
    @pytest.mark.parametrize("name", ["Heat-1D", "1D5P"])
    def test_matches_reference(self, rng, name):
        w = get_kernel(name).weights
        eng = LoRAStencil1D(w)
        x = rng.normal(size=300 + 2 * w.radius)
        out, _ = eng.apply_simulated(x, block=128)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)

    def test_unaligned_length(self, rng):
        w = get_kernel("Heat-1D").weights
        eng = LoRAStencil1D(w)
        x = rng.normal(size=101 + 2)
        out, _ = eng.apply_simulated(x, block=64)
        assert out.shape == (101,)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)

    def test_larger_radius(self, rng):
        w = star_weights(4, 1, rng=rng)
        eng = LoRAStencil1D(w)
        x = rng.normal(size=150 + 8)
        out, _ = eng.apply_simulated(x, block=64)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)

    def test_cuda_core_mode(self, rng):
        w = get_kernel("1D5P").weights
        eng = LoRAStencil1D(w, config=OptimizationConfig(use_tensor_cores=False))
        x = rng.normal(size=100 + 4)
        out, cnt = eng.apply_simulated(x, block=64)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)
        assert cnt.mma_ops == 0
        assert cnt.cuda_core_flops > 0

    def test_non_1d_input_rejected(self, rng):
        eng = LoRAStencil1D(get_kernel("Heat-1D").weights)
        with pytest.raises(ValueError):
            eng.apply_simulated(rng.normal(size=(8, 8)))


class TestCounters:
    def test_mma_per_tile(self):
        eng = LoRAStencil1D(get_kernel("Heat-1D").weights)
        # K = roundup(8 + 2, 4) = 12 -> 3 MMA per 64 outputs
        assert eng.mma_per_tile == 3

    def test_mma_counted(self, rng):
        w = get_kernel("Heat-1D").weights
        eng = LoRAStencil1D(w)
        x = rng.normal(size=128 + 2)
        _, cnt = eng.apply_simulated(x, block=128)
        assert cnt.mma_ops == 2 * eng.mma_per_tile  # two 64-point tiles

    def test_no_shuffles_in_1d(self, rng):
        """1D has no residual dimension: no MCM, no splitting, no
        shuffles (Section IV-C)."""
        w = get_kernel("1D5P").weights
        eng = LoRAStencil1D(w)
        x = rng.normal(size=128 + 4)
        _, cnt = eng.apply_simulated(x, block=128)
        assert cnt.shuffle_ops == 0

    def test_async_copy_used_by_default(self, rng):
        w = get_kernel("Heat-1D").weights
        eng = LoRAStencil1D(w)
        x = rng.normal(size=64 + 2)
        _, cnt = eng.apply_simulated(x, block=64)
        assert cnt.register_intermediate_bytes == 0
