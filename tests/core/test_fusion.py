"""Tests for temporal kernel fusion (Section IV-A)."""

import numpy as np
import pytest

from repro.core.fusion import fragment_waste, fuse_kernel, fusion_saving
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_iterate
from repro.stencil.weights import radially_symmetric_weights


class TestFuseKernel:
    def test_radius_multiplies(self):
        fk = fuse_kernel(get_kernel("Box-2D9P").weights, 3)
        assert fk.radius == 3
        assert fk.times == 3

    def test_identity_fusion(self, rng):
        w = radially_symmetric_weights(1, 2, rng=rng)
        fk = fuse_kernel(w, 1)
        assert np.allclose(fk.fused.array, w.array)

    def test_invalid_times(self):
        with pytest.raises(ValueError):
            fuse_kernel(get_kernel("Box-2D9P").weights, 0)

    @pytest.mark.parametrize("times", [2, 3])
    def test_fusion_exact_periodic(self, rng, times):
        """k fused steps == k sequential steps under periodic boundary."""
        w = get_kernel("Box-2D9P").weights
        fk = fuse_kernel(w, times)
        x = rng.normal(size=(20, 20))
        seq = reference_iterate(x, w, times, boundary="periodic")
        fused = reference_iterate(x, fk.fused, 1, boundary="periodic")
        assert np.allclose(seq, fused)

    def test_fusion_exact_interior(self, rng):
        """With constant boundary, the deep interior (further than the
        fused radius from any edge) still matches."""
        w = get_kernel("Box-2D9P").weights
        fk = fuse_kernel(w, 3)
        x = rng.normal(size=(24, 24))
        seq = reference_iterate(x, w, 3)
        fused = reference_iterate(x, fk.fused, 1)
        assert np.allclose(seq[3:-3, 3:-3], fused[3:-3, 3:-3])

    def test_fused_preserves_radial_symmetry(self, rng):
        from repro.stencil.weights import is_radially_symmetric

        fk = fuse_kernel(get_kernel("Box-2D9P").weights, 3)
        assert is_radially_symmetric(fk.fused)

    def test_fused_kernel_runs_through_pma(self, rng):
        """The 3x-fused Box-2D9P is the paper's 7x7 working example —
        it must take the pyramidal route."""
        from repro.core.lowrank import decompose

        fk = fuse_kernel(get_kernel("Box-2D9P").weights, 3)
        d = decompose(fk.fused.as_matrix())
        assert d.method == "pma"
        assert d.max_error(fk.fused.as_matrix()) < 1e-12

    def test_steps_for(self):
        fk = fuse_kernel(get_kernel("Box-2D9P").weights, 3)
        assert fk.steps_for(9) == 3
        with pytest.raises(ValueError):
            fk.steps_for(10)

    def test_3d_fusion(self, rng):
        w = get_kernel("Box-3D27P").weights
        fk = fuse_kernel(w, 2)
        x = rng.normal(size=(10, 10, 10))
        seq = reference_iterate(x, w, 2, boundary="periodic")
        fused = reference_iterate(x, fk.fused, 1, boundary="periodic")
        assert np.allclose(seq, fused)


class TestWasteModel:
    def test_paper_numbers(self):
        """Section IV-A: Box-2D9P wastes 156 of 256 window elements;
        3x fusion leaves 60; saving = 96/156 ~ 61.54%."""
        assert fragment_waste(1) == 156
        assert fragment_waste(3) == 60
        assert fusion_saving(1, 3) == pytest.approx(96 / 156)
        assert fusion_saving(1, 3) == pytest.approx(0.6154, abs=1e-4)

    def test_radius4_fills_window(self):
        assert fragment_waste(4) == 0
        assert fusion_saving(1, 4) == 1.0

    def test_waste_monotonic(self):
        waits = [fragment_waste(h) for h in range(5)]
        assert waits == sorted(waits, reverse=True)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            fragment_waste(-1)

    def test_zero_waste_saving_is_zero(self):
        assert fusion_saving(4, 2) == 0.0
