"""Tests for the optimization configuration ladder."""

import pytest

from repro.core.config import OptimizationConfig


class TestConfig:
    def test_defaults_all_on(self):
        c = OptimizationConfig()
        assert c.use_tensor_cores and c.use_bvs and c.use_async_copy

    def test_labels(self):
        assert OptimizationConfig(use_tensor_cores=False).label() == "RDG(CUDA)"
        assert (
            OptimizationConfig(use_bvs=False, use_async_copy=False).label()
            == "RDG+TCU"
        )
        assert OptimizationConfig(use_async_copy=False).label() == "RDG+TCU+BVS"
        assert OptimizationConfig().label() == "RDG+TCU+BVS+AC"

    def test_breakdown_levels_are_cumulative(self):
        levels = OptimizationConfig.breakdown_levels()
        assert len(levels) == 4
        assert not levels[0].use_tensor_cores
        assert levels[1].use_tensor_cores and not levels[1].use_bvs
        assert levels[2].use_bvs and not levels[2].use_async_copy
        assert levels[3] == OptimizationConfig()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            OptimizationConfig().use_bvs = False

    def test_distinct_labels(self):
        labels = [c.label() for c in OptimizationConfig.breakdown_levels()]
        assert len(set(labels)) == 4
