"""Mutation/sensitivity tests.

Correctness tests prove the implementation right; these prove the tests
*sharp*: deliberately wrong variants of the core tricks must produce
wrong answers, so a silent regression could not hide behind loose
oracles.
"""

import numpy as np

from repro.core.lowrank import Rank1Term, decompose
from repro.core.uvbuild import build_u_matrix, build_v_matrix
from repro.stencil.reference import reference_apply
from repro.stencil.weights import radially_symmetric_weights
from repro.tcu.fragment import Fragment
from repro.tcu.layouts import FragmentKind
from repro.tcu.counters import EventCounters
from repro.tcu.warp import Warp


class TestBVSSensitivity:
    def test_wrong_register_pairing_breaks_product(self, rng):
        """Pairing R0 with the *odd* rows of V (swapped butterfly) must
        change the result — the permutation really is load-bearing."""
        warp = Warp(EventCounters())
        c = rng.normal(size=(8, 8))
        v = rng.normal(size=(8, 8))
        acc = Fragment.from_matrix(FragmentKind.ACC, c)
        even, odd = warp.split_accumulator_bvs(acc)
        correct = even.to_matrix() @ v[0::2, :] + odd.to_matrix() @ v[1::2, :]
        swapped = even.to_matrix() @ v[1::2, :] + odd.to_matrix() @ v[0::2, :]
        assert np.allclose(correct, c @ v)
        assert not np.allclose(swapped, c @ v)

    def test_unpermuted_v_with_bvs_split_is_wrong(self, rng):
        warp = Warp(EventCounters())
        c = rng.normal(size=(8, 8))
        v = rng.normal(size=(8, 8))
        acc = Fragment.from_matrix(FragmentKind.ACC, c)
        even, odd = warp.split_accumulator_bvs(acc)
        unpermuted = even.to_matrix() @ v[0:4, :] + odd.to_matrix() @ v[4:8, :]
        assert not np.allclose(unpermuted, c @ v)


class TestBandSensitivity:
    def test_wrong_band_offset_breaks_stencil(self, rng):
        """Shifting U's band by one produces a shifted (wrong) stencil."""
        h = 2
        w = radially_symmetric_weights(h, 2, rng=rng)
        term = decompose(w.as_matrix()).matrix_terms[0]
        x = rng.normal(size=(12 + 2 * h, 12 + 2 * h))
        good_u = build_u_matrix(term.u, 8, 16, offset=term.pad)
        bad_u = build_u_matrix(term.u, 8, 16, offset=term.pad + 1)
        v = build_v_matrix(term.v, 16, 8, offset=term.pad)
        window = np.zeros((16, 16))
        window[: x.shape[0], : x.shape[1]] = x
        assert not np.allclose(good_u @ window @ v, bad_u @ window @ v)

    def test_reversed_uv_roles_break_asymmetric_terms(self, rng):
        """Using v for the vertical gather and u for the horizontal is
        wrong whenever u != v."""
        term = Rank1Term(
            u=np.array([1.0, 2.0, 1.0]), v=np.array([3.0, 1.0, 3.0]), size=3, pad=0
        )
        window = rng.normal(size=(12, 16))
        good = (
            build_u_matrix(term.u, 8, 12) @ window @ build_v_matrix(term.v, 16, 8)
        )
        swapped = (
            build_u_matrix(term.v, 8, 12) @ window @ build_v_matrix(term.u, 16, 8)
        )
        assert not np.allclose(good, swapped)


class TestDecompositionSensitivity:
    def test_dropping_a_term_breaks_reconstruction(self, rng):
        w = radially_symmetric_weights(3, 2, rng=rng).as_matrix()
        d = decompose(w)
        partial = sum(t.embedded(7) for t in d.terms[:-1])
        assert not np.allclose(partial, w)

    def test_dropping_scalar_apex_breaks_stencil(self, rng):
        """The 1x1 apex carries the centre weight residue: skipping the
        CUDA-core pass loses it."""
        from repro.core.engine2d import LoRAStencil2D

        w = radially_symmetric_weights(2, 2, rng=rng)
        eng = LoRAStencil2D(w.as_matrix())
        assert eng.decomposition.scalar_terms  # precondition
        x = rng.normal(size=(14, 14))
        full = eng.apply(x)
        without_apex = full - sum(
            t.scalar_weight * x[2:-2, 2:-2] for t in eng.decomposition.scalar_terms
        )
        ref = reference_apply(x, w)
        assert np.allclose(full, ref)
        assert not np.allclose(without_apex, ref)


class TestLayoutSensitivity:
    def test_a_and_b_layouts_are_mutual_transposes(self, rng):
        """Reinterpreting a B fragment's registers under the A ownership
        map yields exactly the transpose: ``A[i][j]`` lives in thread
        ``4i+j`` and ``B[i][j]`` in thread ``4j+i``.  This is why the
        hardware can use one register file for both operand roles — and
        why mixing the maps without transposing *is* a data corruption."""
        mat = rng.normal(size=(4, 8))
        frag = Fragment.from_matrix(FragmentKind.B, mat)
        fake = Fragment(FragmentKind.A, frag.registers.copy())
        assert np.array_equal(fake.to_matrix(), mat.T)
        # so consuming the registers under the wrong map without the
        # transpose reads corrupted data (here: the 4x4 corner differs)
        assert not np.allclose(fake.to_matrix()[:4, :4], mat[:4, :4])

    def test_counters_never_negative(self, rng):
        from repro.core.engine2d import LoRAStencil2D

        w = radially_symmetric_weights(1, 2, rng=rng)
        eng = LoRAStencil2D(w.as_matrix())
        _, cnt = eng.apply_simulated(rng.normal(size=(10, 10)))
        assert all(v >= 0 for v in cnt.as_dict().values())


class TestNaNPropagation:
    def test_nan_input_surfaces_in_output(self, rng):
        """The simulator must not silently mask bad data."""
        from repro.core.engine2d import LoRAStencil2D

        w = radially_symmetric_weights(1, 2, rng=rng)
        eng = LoRAStencil2D(w.as_matrix())
        x = rng.normal(size=(12, 12))
        x[6, 6] = np.nan
        out, _ = eng.apply_simulated(x)
        assert np.isnan(out).any()
        assert not np.isnan(out).all()
