"""Tests for banded U/V construction and the butterfly order."""

import numpy as np
import pytest

from repro.core.uvbuild import build_u_matrix, build_v_matrix, butterfly_row_order


class TestBuildU:
    def test_band_structure(self, rng):
        u = rng.normal(size=3)
        mat = build_u_matrix(u, 4, 8, offset=1)
        for p in range(4):
            assert np.array_equal(mat[p, p + 1 : p + 4], u)
        assert np.count_nonzero(mat) <= 4 * 3

    def test_each_row_shifts_right(self, rng):
        u = rng.normal(size=5)
        mat = build_u_matrix(u, 8, 16)
        for p in range(1, 8):
            assert np.array_equal(mat[p, p:], mat[p - 1, p - 1 : -1])

    def test_does_not_fit_rejected(self, rng):
        with pytest.raises(ValueError):
            build_u_matrix(rng.normal(size=5), 8, 10)

    def test_vector_required(self, rng):
        with pytest.raises(ValueError):
            build_u_matrix(rng.normal(size=(3, 3)), 8, 16)

    def test_vertical_gather_semantics(self, rng):
        """Row p of U @ X collects sum_t u[t] X[p + off + t]."""
        u = rng.normal(size=3)
        x = rng.normal(size=(8, 5))
        mat = build_u_matrix(u, 4, 8, offset=2)
        out = mat @ x
        for p in range(4):
            expected = sum(u[t] * x[p + 2 + t] for t in range(3))
            assert np.allclose(out[p], expected)


class TestBuildV:
    def test_band_structure(self, rng):
        v = rng.normal(size=3)
        mat = build_v_matrix(v, 8, 4, offset=1)
        for q in range(4):
            assert np.array_equal(mat[q + 1 : q + 4, q], v)

    def test_horizontal_gather_semantics(self, rng):
        v = rng.normal(size=3)
        t = rng.normal(size=(5, 8))
        mat = build_v_matrix(v, 8, 4, offset=2)
        out = t @ mat
        for q in range(4):
            expected = sum(v[s] * t[:, q + 2 + s] for s in range(3))
            assert np.allclose(out[:, q], expected)

    def test_v_is_u_transposed_relation(self, rng):
        """Eq. 6 is the transpose structure of Eq. 5."""
        vec = rng.normal(size=5)
        u_mat = build_u_matrix(vec, 8, 16, offset=1)
        v_mat = build_v_matrix(vec, 16, 8, offset=1)
        assert np.array_equal(v_mat, u_mat.T)

    def test_does_not_fit_rejected(self, rng):
        with pytest.raises(ValueError):
            build_v_matrix(rng.normal(size=5), 10, 8)


class TestButterflyOrder:
    def test_single_block(self):
        assert list(butterfly_row_order(8)) == [0, 2, 4, 6, 1, 3, 5, 7]

    def test_two_blocks(self):
        order = list(butterfly_row_order(16))
        assert order[:8] == [0, 2, 4, 6, 1, 3, 5, 7]
        assert order[8:] == [8, 10, 12, 14, 9, 11, 13, 15]

    def test_is_permutation(self):
        for rows in (8, 16, 32):
            assert sorted(butterfly_row_order(rows)) == list(range(rows))

    def test_non_multiple_of_8_rejected(self):
        with pytest.raises(ValueError):
            butterfly_row_order(12)

    def test_permutation_invariance_of_product(self, rng):
        """Eq. 17 at matrix scale: permuting T columns and V rows by the
        same order leaves T @ V unchanged."""
        t = rng.normal(size=(8, 16))
        v = rng.normal(size=(16, 8))
        order = butterfly_row_order(16)
        assert np.allclose(t @ v, t[:, order] @ v[order, :])
