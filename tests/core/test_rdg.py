"""Tests for the Residual Dimension Gathering tile engine."""

import numpy as np
import pytest

from repro.core.config import OptimizationConfig
from repro.core.lowrank import decompose
from repro.core.rdg import OUT_TILE, RDGTileCompute
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_apply
from repro.stencil.weights import radially_symmetric_weights
from repro.tcu.device import Device


def _tile_setup(rng, h, w_matrix, config=None):
    """Build a device + shared window and the expected reference tile."""
    tile = RDGTileCompute(decompose(w_matrix), h, config)
    device = Device()
    warp = device.warp()
    smem = device.shared((tile.k_rows, tile.w_cols))
    window = rng.normal(size=(tile.k_rows, tile.w_cols))
    smem.data[:] = window
    return tile, device, warp, smem, window


class TestGeometry:
    @pytest.mark.parametrize("h,k,w", [(1, 12, 16), (2, 12, 16), (3, 16, 16), (4, 16, 16)])
    def test_window_alignment(self, rng, h, k, w):
        wm = radially_symmetric_weights(h, 2, rng=rng).as_matrix()
        tile = RDGTileCompute(decompose(wm), h)
        assert tile.k_rows == k
        assert tile.w_cols == w

    def test_paper_counts_h3(self, rng):
        """The 7x7 worked example: 8 fragment loads, 12 MMA per term per
        tile, 36 MMA total for the rank-3+scalar pyramid."""
        wm = get_kernel("Box-2D49P").weights.as_matrix()
        tile = RDGTileCompute(decompose(wm), 3)
        assert tile.fragment_loads_per_tile == 8
        assert tile.mma_per_tile == 36

    def test_radius_mismatch_rejected(self, rng):
        wm = radially_symmetric_weights(2, 2, rng=rng).as_matrix()
        with pytest.raises(ValueError):
            RDGTileCompute(decompose(wm), 3)


class TestCorrectness:
    @pytest.mark.parametrize("h", [1, 2, 3, 4])
    def test_tile_matches_reference(self, rng, h):
        wm = radially_symmetric_weights(h, 2, rng=rng)
        tile, device, warp, smem, window = _tile_setup(rng, h, wm.as_matrix())
        out = tile.compute_tile(warp, smem, 0, 0)
        ref = reference_apply(window[: OUT_TILE + 2 * h, : OUT_TILE + 2 * h], wm)
        assert np.allclose(out, ref[:OUT_TILE, :OUT_TILE])

    def test_tile_at_offset(self, rng):
        h = 1
        wm = radially_symmetric_weights(h, 2, rng=rng)
        tile = RDGTileCompute(decompose(wm.as_matrix()), h)
        device = Device()
        warp = device.warp()
        smem = device.shared((tile.k_rows + 8, tile.w_cols + 8))
        window = rng.normal(size=smem.shape)
        smem.data[:] = window
        out = tile.compute_tile(warp, smem, 8, 8)
        ref = reference_apply(window[8 : 8 + 10, 8 : 8 + 10], wm)
        assert np.allclose(out, ref)

    def test_star_kernel_via_svd(self, rng):
        wm = get_kernel("Star-2D13P").weights
        tile, device, warp, smem, window = _tile_setup(rng, 3, wm.as_matrix())
        out = tile.compute_tile(warp, smem, 0, 0)
        ref = reference_apply(window[:14, :14], wm)
        assert np.allclose(out, ref)

    def test_without_bvs_same_result(self, rng):
        h = 3
        wm = radially_symmetric_weights(h, 2, rng=rng)
        cfg = OptimizationConfig(use_bvs=False, use_async_copy=False)
        tile, device, warp, smem, window = _tile_setup(rng, h, wm.as_matrix(), cfg)
        out = tile.compute_tile(warp, smem, 0, 0)
        ref = reference_apply(window[:14, :14], wm)
        assert np.allclose(out, ref)

    def test_cuda_path_same_result(self, rng):
        h = 2
        wm = radially_symmetric_weights(h, 2, rng=rng)
        cfg = OptimizationConfig(use_tensor_cores=False)
        tile, device, warp, smem, window = _tile_setup(rng, h, wm.as_matrix(), cfg)
        out = tile.compute_tile(warp, smem, 0, 0)
        ref = reference_apply(window[:12, :12], wm)
        assert np.allclose(out, ref)


class TestCounters:
    def test_input_fragments_loaded_once_per_tile(self, rng):
        """PMA reuse: fragment loads don't scale with the term count."""
        h = 3
        wm = radially_symmetric_weights(h, 2, rng=rng)
        tile, device, warp, smem, _ = _tile_setup(rng, h, wm.as_matrix())
        tile.compute_tile(warp, smem, 0, 0)
        # 8 fragment loads + 2 scalar-tile requests for the pyramid apex
        assert device.counters.shared_load_requests == 8 + 2

    def test_mma_count_matches_model(self, rng):
        h = 3
        wm = radially_symmetric_weights(h, 2, rng=rng)
        tile, device, warp, smem, _ = _tile_setup(rng, h, wm.as_matrix())
        tile.compute_tile(warp, smem, 0, 0)
        assert device.counters.mma_ops == tile.mma_per_tile

    def test_bvs_eliminates_shuffles(self, rng):
        h = 3
        wm = radially_symmetric_weights(h, 2, rng=rng)
        tile, device, warp, smem, _ = _tile_setup(rng, h, wm.as_matrix())
        tile.compute_tile(warp, smem, 0, 0)
        assert device.counters.shuffle_ops == 0

    def test_naive_split_costs_shuffles(self, rng):
        h = 3
        wm = radially_symmetric_weights(h, 2, rng=rng)
        cfg = OptimizationConfig(use_bvs=False)
        tile, device, warp, smem, _ = _tile_setup(rng, h, wm.as_matrix(), cfg)
        tile.compute_tile(warp, smem, 0, 0)
        # 3 matrix terms x 2 column blocks x 6 shuffles per split
        assert device.counters.shuffle_ops == 36

    def test_cuda_path_no_mma(self, rng):
        h = 2
        wm = radially_symmetric_weights(h, 2, rng=rng)
        cfg = OptimizationConfig(use_tensor_cores=False)
        tile, device, warp, smem, _ = _tile_setup(rng, h, wm.as_matrix(), cfg)
        tile.compute_tile(warp, smem, 0, 0)
        assert device.counters.mma_ops == 0
        assert device.counters.cuda_core_flops > 0

    def test_scalar_term_uses_cuda_cores(self, rng):
        h = 1
        wm = radially_symmetric_weights(h, 2, rng=rng)
        tile, device, warp, smem, _ = _tile_setup(rng, h, wm.as_matrix())
        tile.compute_tile(warp, smem, 0, 0)
        if tile.decomposition.scalar_terms:
            assert device.counters.cuda_core_flops == 128  # one 8x8 axpy
