"""Tests for the z-streaming 3D simulated sweep."""

import numpy as np
import pytest

from repro.core.engine3d import LoRAStencil3D
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_apply
from repro.stencil.weights import radially_symmetric_weights


class TestStreamingCorrectness:
    @pytest.mark.parametrize("name", ["Heat-3D", "Box-3D27P"])
    def test_matches_reference(self, rng, name):
        w = get_kernel(name).weights
        eng = LoRAStencil3D(w)
        x = rng.normal(size=(4 + 2, 11 + 2, 14 + 2))
        out, _ = eng.apply_simulated_streaming(x)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)

    def test_matches_default_simulated(self, rng):
        w = get_kernel("Box-3D27P").weights
        eng = LoRAStencil3D(w)
        x = rng.normal(size=(5, 12, 12))
        out_s, _ = eng.apply_simulated_streaming(x)
        out_d, _ = eng.apply_simulated(x)
        assert np.allclose(out_s, out_d, atol=1e-12)

    def test_radius2_kernel(self, rng):
        w = radially_symmetric_weights(2, 3, rng=rng)
        eng = LoRAStencil3D(w)
        x = rng.normal(size=(3 + 4, 10 + 4, 13 + 4))
        out, _ = eng.apply_simulated_streaming(x)
        assert np.allclose(out, reference_apply(x, w), atol=1e-11)

    def test_unaligned_grid(self, rng):
        w = get_kernel("Heat-3D").weights
        eng = LoRAStencil3D(w)
        x = rng.normal(size=(3 + 2, 9 + 2, 11 + 2))
        out, _ = eng.apply_simulated_streaming(x)
        assert out.shape == (3, 9, 11)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)

    def test_2d_input_rejected(self, rng):
        eng = LoRAStencil3D(get_kernel("Heat-3D").weights)
        with pytest.raises(ValueError):
            eng.apply_simulated_streaming(rng.normal(size=(8, 8)))


class TestStreamingTraffic:
    def test_dram_reads_divided_by_plane_touches(self, rng):
        """The measured justification for the footprint z-streaming
        correction: streaming reads each slab once; the per-plane sweep
        re-reads it once per touching kernel plane."""
        w = get_kernel("Box-3D27P").weights
        eng = LoRAStencil3D(w)
        x = rng.normal(size=(6, 14, 14))
        _, stream = eng.apply_simulated_streaming(x)
        _, default = eng.apply_simulated(x)
        ratio = default.global_load_bytes / stream.global_load_bytes
        # 3 kernel planes touch each slab (minus edge effects)
        assert 2.0 < ratio <= 3.0

    def test_each_slab_copied_once(self, rng):
        w = get_kernel("Box-3D27P").weights
        eng = LoRAStencil3D(w)
        zs = 6
        x = rng.normal(size=(zs + 2, 10 + 2, 10 + 2))
        _, cnt = eng.apply_simulated_streaming(x)
        assert cnt.async_copies == zs + 2  # one per padded input slab

    def test_mma_count_unchanged(self, rng):
        """Streaming changes memory traffic, not arithmetic."""
        w = get_kernel("Heat-3D").weights
        eng = LoRAStencil3D(w)
        x = rng.normal(size=(4, 10, 10))
        _, stream = eng.apply_simulated_streaming(x)
        _, default = eng.apply_simulated(x)
        assert stream.mma_ops == default.mma_ops
        assert stream.shuffle_ops == default.shuffle_ops == 0
