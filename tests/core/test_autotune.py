"""Tests for the configuration autotuner."""

import numpy as np
import pytest

from repro.core.autotune import autotune_2d
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_iterate


class TestAutotune:
    @pytest.fixture(scope="class")
    def box9_result(self):
        return autotune_2d(get_kernel("Box-2D9P").weights)

    def test_rediscover_paper_fusion(self, box9_result):
        """The tuner independently picks the paper's 3x fusion for the
        radius-1 kernel."""
        assert box9_result.best.fusion == 3

    def test_candidates_ranked(self, box9_result):
        scores = [c.gstencil_per_s for c in box9_result.candidates]
        assert scores == sorted(scores, reverse=True)

    def test_all_candidates_evaluated(self, box9_result):
        assert len(box9_result.candidates) == 3 * 3  # fusions x tiles

    def test_large_kernel_prefers_no_fusion(self):
        """Radius-3 kernels already fill the window: fusing again only
        adds compute."""
        res = autotune_2d(
            get_kernel("Box-2D49P").weights,
            fusion_options=(1, 2),
            tile_options=((8, 8), (16, 16)),
            measure_grid=(32, 32),
        )
        assert res.best.fusion == 1

    def test_built_engine_is_correct(self, rng, box9_result):
        """The tuned engine reproduces `fusion` reference steps."""
        w = get_kernel("Box-2D9P").weights
        engine = box9_result.build_engine(w)
        fusion = box9_result.best.fusion
        x = rng.normal(size=(24, 24))
        ref = reference_iterate(x, w, fusion, boundary="periodic")
        padded = np.pad(x, engine.radius, mode="wrap")
        assert np.allclose(engine.apply(padded), ref, atol=1e-10)

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            autotune_2d(get_kernel("Heat-3D").weights)

    def test_deterministic(self):
        a = autotune_2d(
            get_kernel("Heat-2D").weights,
            fusion_options=(1, 3),
            tile_options=((8, 8),),
            measure_grid=(24, 24),
        )
        b = autotune_2d(
            get_kernel("Heat-2D").weights,
            fusion_options=(1, 3),
            tile_options=((8, 8),),
            measure_grid=(24, 24),
        )
        assert a.best == b.best
