"""Unit tests for the pass-based lowering pipeline and the shared
block-sweep driver."""

import numpy as np
import pytest

import repro
from repro import telemetry
from repro.core.config import OptimizationConfig
from repro.core.lowering import (
    DEFAULT_PASSES,
    LoweringContext,
    PassPipeline,
    available_schedules,
    get_schedule,
    lower,
    lower_engine,
    register_schedule,
)
from repro.core.sweep import SweepSpec, validate_padded
from repro.errors import LoweringError, ShapeError
from repro.tcu.program import TileProgram

W2 = repro.box_weights(1, 2)
W1 = repro.box_weights(2, 1)
W3 = repro.star_weights(1, 3)


class TestScheduleRegistry:
    def test_builtins_registered(self):
        assert "eager" in available_schedules()
        assert "prefetch" in available_schedules()

    def test_unknown_schedule_raises_lowering_error(self):
        with pytest.raises(LoweringError, match="unknown schedule"):
            get_schedule("definitely-not-registered")

    def test_unknown_schedule_fails_fast_at_compile(self):
        config = OptimizationConfig(schedule="nope")
        with pytest.raises(LoweringError, match="available"):
            repro.compile(W2, config=config, cache=None)

    def test_dependence_breaking_schedule_rejected(self):
        register_schedule(
            "reversed-for-test",
            lambda p: TileProgram(tile=p.tile, instrs=list(p.instrs[::-1])),
        )
        config = OptimizationConfig(schedule="reversed-for-test")
        with pytest.raises(LoweringError, match="broke a dependence"):
            repro.compile(W2, config=config, cache=None)


class TestPipeline:
    def test_default_pass_names(self):
        assert [name for name, _ in DEFAULT_PASSES] == [
            "decompose",
            "build_tile_ir",
            "schedule",
            "vectorize",
        ]

    def test_lower_records_pass_times(self):
        _, lowered = lower(W2.as_matrix(), 2)
        assert [n for n, _ in lowered.pass_times] == [
            "decompose",
            "build_tile_ir",
            "schedule",
            "vectorize",
        ]
        assert all(t >= 0.0 for _, t in lowered.pass_times)

    def test_lower_binds_engine(self):
        engine, lowered = lower(W2.as_matrix(), 2)
        assert engine.lowered is lowered.tile
        assert lowered.tile.program.tile is engine.tile

    def test_lower_3d_binds_plane_engines(self):
        engine, lowered = lower(W3.array, 3)
        assert len(lowered.tiles) == len(engine.planes)
        for task, tile in zip(engine.planes, lowered.tiles):
            if task.engine is not None:
                assert tile is not None
                assert task.engine.lowered is tile
            else:
                assert tile is None

    def test_cuda_core_config_lowers_to_no_program(self):
        config = OptimizationConfig(use_tensor_cores=False)
        _, lowered = lower(W2.as_matrix(), 2, config=config)
        assert lowered.tile is None
        assert lowered.n_instrs == 0
        assert lowered.load_use_distance == 0.0

    def test_custom_pipeline_and_spans(self):
        seen = []
        passes = DEFAULT_PASSES + (
            ("audit", lambda ctx: seen.append(ctx.tiles)),
        )
        telemetry.reset()
        telemetry.enable()
        try:
            with telemetry.TRACER.span("root", category="test") as root:
                lower(W2.as_matrix(), 2, pipeline=PassPipeline(passes))
        finally:
            telemetry.disable()
        assert seen and seen[0][0] is not None
        names = [c.name for c in root.children]
        assert names == [
            "lowering.decompose",
            "lowering.build_tile_ir",
            "lowering.schedule",
            "lowering.vectorize",
            "lowering.audit",
        ]

    def test_build_tile_ir_requires_engine(self):
        ctx = LoweringContext(
            weights=W2.as_matrix(), ndim=2, config=OptimizationConfig()
        )
        with pytest.raises(LoweringError, match="decomposed engine"):
            PassPipeline(DEFAULT_PASSES[1:]).run(ctx)


class TestLoweredArtifacts:
    def test_op_counts_and_render(self):
        _, lowered = lower(W2.as_matrix(), 2)
        counts = lowered.tile.op_counts()
        assert counts["mma"] > 0 and counts["load_x"] > 0
        text = lowered.tile.render(limit=3)
        assert "more" in text and len(text.splitlines()) == 4
        full = lowered.render_ir()
        assert full.count("\n") >= lowered.n_instrs

    def test_describe_mentions_schedule(self):
        config = OptimizationConfig(schedule="prefetch")
        _, lowered = lower(W2.as_matrix(), 2, config=config)
        assert "prefetch" in lowered.describe()
        assert lowered.schedule == "prefetch"

    def test_1d_program_ops(self):
        _, lowered = lower(W1.as_vector(), 1)
        counts = lowered.tile.op_counts()
        # radius 2: k_rows = round_up(12, 4) = 12 -> 3 k-blocks
        assert counts == {"load_x": 3, "mma": 3}

    def test_lower_engine_matches_pipeline(self):
        engine, lowered = lower(W2.as_matrix(), 2)
        direct = lower_engine(engine)
        assert [i.op for i in direct.program.instrs] == [
            i.op for i in lowered.tile.program.instrs
        ]
        assert direct.load_use_distance == lowered.tile.load_use_distance


class TestSweepSpec:
    def _spec(self, interior, block, tile=(8, 8), halo=(4, 8)):
        return SweepSpec(
            interior=interior,
            tile=tile,
            block=block,
            smem_halo=halo,
            use_async_copy=True,
            ndim=2,
            shape_label="x",
        )

    def test_block_rounds_up_to_tile(self):
        assert self._spec((64, 64), (30, 60)).blocked() == (32, 64)

    def test_block_clamps_to_interior(self):
        assert self._spec((16, 24), (32, 64)).blocked() == (16, 24)

    def test_block_at_least_one_tile(self):
        assert self._spec((64, 64), (1, 1)).blocked() == (8, 8)

    def test_1d_rounding_matches_legacy_formula(self):
        # legacy 1D: max(64, round_up(min(block, n), 64))
        for n in (64, 130, 1024, 4096):
            for block in (1, 64, 100, 1024, 9999):
                spec = SweepSpec(
                    interior=(1, n),
                    tile=(1, 64),
                    block=(1, block),
                    smem_halo=(0, 60),
                    use_async_copy=False,
                    ndim=1,
                    shape_label=str(n),
                )
                legacy = max(64, -(-min(block, n) // 64) * 64)
                assert spec.blocked() == (1, legacy)

    def test_smem_shape_adds_halo(self):
        assert self._spec((64, 64), (32, 64)).smem_shape() == (36, 72)

    def test_validate_padded(self):
        arr, interior = validate_padded(np.zeros((10, 12)), 2, 2)
        assert arr.dtype == np.float64
        assert interior == (6, 8)
        with pytest.raises(ShapeError, match="expected 3D"):
            validate_padded(np.zeros((10, 12)), 3, 1)
        with pytest.raises(ShapeError, match="too small"):
            validate_padded(np.zeros((4, 4)), 2, 2)


class TestPlanCarriesProgram:
    def test_plan_program_and_schedule(self):
        compiled = repro.compile(W2, cache=None)
        assert isinstance(compiled.plan.program, TileProgram)
        assert compiled.plan.schedule == "eager"
        assert "lowering" in compiled.describe()

    def test_3d_plan_program_tuple(self):
        compiled = repro.compile(W3, cache=None)
        programs = compiled.plan.program
        assert isinstance(programs, tuple)
        assert len(programs) == len(compiled.engine.planes)
        assert any(p is not None for p in programs)
        assert any(p is None for p in programs)  # star points -> CUDA cores

    def test_plan_key_covers_schedule(self):
        k_eager = repro.runtime.plan.plan_key(W2.as_matrix(), 2)
        k_prefetch = repro.runtime.plan.plan_key(
            W2.as_matrix(), 2, OptimizationConfig(schedule="prefetch")
        )
        assert k_eager != k_prefetch
