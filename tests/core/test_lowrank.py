"""Tests for PMA / SVD low-rank decomposition."""

import numpy as np
import pytest

from repro.core.lowrank import (
    PivotError,
    Rank1Term,
    decompose,
    pyramidal_decompose,
    svd_decompose,
)
from repro.stencil.kernels import get_kernel
from repro.stencil.weights import radially_symmetric_weights


class TestRank1Term:
    def test_matrix_is_outer_product(self, rng):
        u, v = rng.normal(size=3), rng.normal(size=3)
        t = Rank1Term(u=u, v=v, size=3, pad=0)
        assert np.allclose(t.matrix(), np.outer(u, v))

    def test_matrix_is_rank_one(self, rng):
        t = Rank1Term(u=rng.normal(size=5), v=rng.normal(size=5), size=5, pad=1)
        assert np.linalg.matrix_rank(t.matrix()) == 1

    def test_embedded_pyramid_position(self, rng):
        t = Rank1Term(u=rng.normal(size=3), v=rng.normal(size=3), size=3, pad=2)
        emb = t.embedded(7)
        assert emb.shape == (7, 7)
        assert np.all(emb[:2, :] == 0) and np.all(emb[-2:, :] == 0)
        assert np.allclose(emb[2:5, 2:5], t.matrix())

    def test_embedded_too_small_rejected(self, rng):
        t = Rank1Term(u=rng.normal(size=5), v=rng.normal(size=5), size=5, pad=2)
        with pytest.raises(ValueError):
            t.embedded(7)

    def test_scalar_term(self):
        t = Rank1Term(u=np.array([3.0]), v=np.array([2.0]), size=1, pad=3)
        assert t.is_scalar
        assert t.scalar_weight == 6.0

    def test_scalar_weight_requires_scalar(self, rng):
        t = Rank1Term(u=rng.normal(size=3), v=rng.normal(size=3), size=3, pad=0)
        with pytest.raises(ValueError):
            _ = t.scalar_weight

    def test_even_size_rejected(self, rng):
        with pytest.raises(ValueError):
            Rank1Term(u=rng.normal(size=4), v=rng.normal(size=4), size=4, pad=0)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            Rank1Term(u=rng.normal(size=3), v=rng.normal(size=5), size=3, pad=0)

    def test_radius(self, rng):
        t = Rank1Term(u=rng.normal(size=7), v=rng.normal(size=7), size=7, pad=0)
        assert t.radius == 3


class TestPyramidal:
    @pytest.mark.parametrize("h", [1, 2, 3, 4, 5])
    def test_exact_reconstruction(self, rng, h):
        w = radially_symmetric_weights(h, 2, rng=rng).as_matrix()
        d = pyramidal_decompose(w)
        assert d.max_error(w) < 1e-12

    @pytest.mark.parametrize("h", [1, 2, 3, 4])
    def test_term_count_at_most_h_plus_1(self, rng, h):
        w = radially_symmetric_weights(h, 2, rng=rng).as_matrix()
        d = pyramidal_decompose(w)
        assert len(d.terms) <= h + 1

    def test_pyramid_sizes_decrease_by_two(self, rng):
        w = radially_symmetric_weights(3, 2, rng=rng).as_matrix()
        d = pyramidal_decompose(w)
        sizes = [t.size for t in d.terms]
        assert sizes == [7, 5, 3, 1]

    def test_pads_increase(self, rng):
        w = radially_symmetric_weights(3, 2, rng=rng).as_matrix()
        d = pyramidal_decompose(w)
        assert [t.pad for t in d.terms] == [0, 1, 2, 3]

    def test_each_term_is_rank_one(self, rng):
        w = radially_symmetric_weights(3, 2, rng=rng).as_matrix()
        for t in pyramidal_decompose(w).matrix_terms:
            assert np.linalg.matrix_rank(t.matrix()) == 1

    def test_first_term_shares_border_with_w(self, rng):
        """Fig. 5: C1 has the same first/last rows and columns as W."""
        w = radially_symmetric_weights(3, 2, rng=rng).as_matrix()
        c1 = pyramidal_decompose(w).terms[0].matrix()
        assert np.allclose(c1[0, :], w[0, :])
        assert np.allclose(c1[-1, :], w[-1, :])
        assert np.allclose(c1[:, 0], w[:, 0])
        assert np.allclose(c1[:, -1], w[:, -1])

    def test_terms_are_radially_symmetric(self, rng):
        """Radial symmetry of u and v makes every C_i radially symmetric."""
        w = radially_symmetric_weights(3, 2, rng=rng).as_matrix()
        for t in pyramidal_decompose(w).matrix_terms:
            m = t.matrix()
            assert np.allclose(m, np.flipud(m))
            assert np.allclose(m, np.fliplr(m))

    def test_asymmetric_matrix_rejected(self, rng):
        w = rng.normal(size=(5, 5))
        with pytest.raises(PivotError):
            pyramidal_decompose(w)

    def test_zero_pivot_with_nonzero_ring_rejected(self):
        w = np.array(
            [
                [0.0, 1.0, 0.0],
                [1.0, 2.0, 1.0],
                [0.0, 1.0, 0.0],
            ]
        )
        with pytest.raises(PivotError):
            pyramidal_decompose(w)

    def test_zero_border_ring_skipped(self, rng):
        """A smaller kernel embedded in a larger matrix decomposes
        without emitting terms for the empty rings."""
        inner = radially_symmetric_weights(1, 2, rng=rng).as_matrix()
        w = np.zeros((7, 7))
        w[2:5, 2:5] = inner
        d = pyramidal_decompose(w)
        assert d.max_error(w) < 1e-12
        assert all(t.pad >= 2 for t in d.terms)

    def test_even_side_rejected(self):
        with pytest.raises(ValueError):
            pyramidal_decompose(np.ones((4, 4)))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            pyramidal_decompose(np.ones((3, 5)))

    def test_scalar_apex_weight(self):
        """Fig. 5's C4 is the 1x1 residue; checked on Box-2D49P."""
        w = get_kernel("Box-2D49P").weights.as_matrix()
        d = pyramidal_decompose(w)
        assert d.terms[-1].is_scalar
        partial = sum(t.embedded(7) for t in d.matrix_terms)
        assert d.terms[-1].scalar_weight == pytest.approx(w[3, 3] - partial[3, 3])


class TestSVD:
    def test_exact_reconstruction_generic(self, rng):
        w = rng.normal(size=(5, 5))
        d = svd_decompose(w)
        assert d.max_error(w) < 1e-10

    def test_rank_matches_numpy(self, rng):
        w = rng.normal(size=(2, 5)).T @ rng.normal(size=(2, 5))
        d = svd_decompose(w)
        assert len(d.terms) == np.linalg.matrix_rank(w)

    def test_star_kernel(self):
        w = get_kernel("Star-2D13P").weights.as_matrix()
        d = svd_decompose(w)
        assert d.max_error(w) < 1e-12
        assert len(d.terms) == 2

    def test_terms_full_size(self, rng):
        w = rng.normal(size=(5, 5))
        for t in svd_decompose(w).terms:
            assert t.size == 5 and t.pad == 0

    def test_1x1(self):
        d = svd_decompose(np.array([[4.0]]))
        assert len(d.terms) == 1
        assert d.terms[0].scalar_weight == 4.0

    def test_1x1_zero(self):
        d = svd_decompose(np.array([[0.0]]))
        assert len(d.terms) == 0

    def test_zero_matrix(self):
        d = svd_decompose(np.zeros((5, 5)))
        assert len(d.terms) == 0
        assert d.max_error(np.zeros((5, 5))) == 0.0


class TestDispatch:
    def test_radially_symmetric_uses_pma(self, rng):
        w = radially_symmetric_weights(2, 2, rng=rng).as_matrix()
        assert decompose(w).method == "pma"

    def test_star_falls_back_to_svd(self):
        w = get_kernel("Star-2D13P").weights.as_matrix()
        assert decompose(w).method == "svd"

    def test_generic_falls_back_to_svd(self, rng):
        assert decompose(rng.normal(size=(5, 5))).method == "svd"

    def test_pma_has_fewer_or_equal_matrix_terms(self, rng):
        """PMA exploits symmetry: its pyramid never needs more matrix
        terms than the SVD rank."""
        for h in (1, 2, 3):
            w = radially_symmetric_weights(h, 2, rng=rng).as_matrix()
            pma = pyramidal_decompose(w)
            svd = svd_decompose(w)
            assert len(pma.matrix_terms) <= max(len(svd.terms), 1)

    def test_matrix_vs_scalar_partition(self, rng):
        w = radially_symmetric_weights(3, 2, rng=rng).as_matrix()
        d = decompose(w)
        matrix_ids = {id(t) for t in d.matrix_terms}
        scalar_ids = {id(t) for t in d.scalar_terms}
        assert matrix_ids | scalar_ids == {id(t) for t in d.terms}
        assert not matrix_ids & scalar_ids


class TestDecompositionContainer:
    def test_rank_property(self, rng):
        w = radially_symmetric_weights(2, 2, rng=rng).as_matrix()
        d = decompose(w)
        assert d.rank == len(d.terms)

    def test_reconstruct_shape(self, rng):
        w = radially_symmetric_weights(2, 2, rng=rng).as_matrix()
        assert decompose(w).reconstruct().shape == (5, 5)

    def test_decomposition_is_frozen(self, rng):
        d = decompose(radially_symmetric_weights(1, 2, rng=rng).as_matrix())
        with pytest.raises(AttributeError):
            d.method = "other"
