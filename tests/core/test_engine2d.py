"""Tests for the 2D LoRAStencil executor (functional + simulated)."""

import numpy as np
import pytest

from repro.core.config import OptimizationConfig
from repro.core.engine2d import LoRAStencil2D
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_apply
from repro.stencil.weights import box_weights, radially_symmetric_weights

KERNELS_2D = ["Heat-2D", "Box-2D9P", "Star-2D13P", "Box-2D49P"]


class TestFunctional:
    @pytest.mark.parametrize("name", KERNELS_2D)
    def test_matches_reference(self, rng, name):
        w = get_kernel(name).weights
        eng = LoRAStencil2D(w.as_matrix())
        x = rng.normal(size=(20 + 2 * w.radius, 27 + 2 * w.radius))
        assert np.allclose(eng.apply(x), reference_apply(x, w), atol=1e-12)

    def test_generic_asymmetric_kernel(self, rng):
        """SVD route covers arbitrary weights, not just symmetric ones."""
        w = box_weights(2, 2, rng=rng)
        eng = LoRAStencil2D(w.as_matrix())
        x = rng.normal(size=(16, 19))
        assert np.allclose(eng.apply(x), reference_apply(x, w), atol=1e-12)

    def test_weights_object_accepted(self, rng):
        w = get_kernel("Box-2D9P").weights
        eng = LoRAStencil2D(w)
        x = rng.normal(size=(10, 10))
        assert np.allclose(eng.apply(x), reference_apply(x, w))

    def test_1d_weights_rejected(self, rng):
        with pytest.raises(ValueError):
            LoRAStencil2D(get_kernel("Heat-1D").weights)

    def test_even_matrix_rejected(self):
        with pytest.raises(ValueError):
            LoRAStencil2D(np.ones((4, 4)))

    def test_too_small_input_rejected(self, rng):
        eng = LoRAStencil2D(get_kernel("Box-2D49P").weights.as_matrix())
        with pytest.raises(ValueError):
            eng.apply(rng.normal(size=(6, 6)))

    def test_non_2d_input_rejected(self, rng):
        eng = LoRAStencil2D(get_kernel("Box-2D9P").weights.as_matrix())
        with pytest.raises(ValueError):
            eng.apply(rng.normal(size=10))


class TestSimulated:
    @pytest.mark.parametrize("name", KERNELS_2D)
    def test_matches_reference(self, rng, name):
        w = get_kernel(name).weights
        eng = LoRAStencil2D(w.as_matrix())
        x = rng.normal(size=(19 + 2 * w.radius, 30 + 2 * w.radius))
        out, _ = eng.apply_simulated(x)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)

    def test_non_tile_aligned_grid(self, rng):
        """Interior sizes that are not multiples of 8 crop correctly."""
        w = get_kernel("Box-2D9P").weights
        eng = LoRAStencil2D(w.as_matrix())
        x = rng.normal(size=(13 + 2, 11 + 2))
        out, _ = eng.apply_simulated(x)
        assert out.shape == (13, 11)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)

    def test_tiny_grid(self, rng):
        w = get_kernel("Box-2D9P").weights
        eng = LoRAStencil2D(w.as_matrix())
        x = rng.normal(size=(3, 3))
        out, _ = eng.apply_simulated(x)
        assert out.shape == (1, 1)
        assert np.allclose(out, reference_apply(x, w))

    def test_explicit_block_size(self, rng):
        w = get_kernel("Box-2D49P").weights
        eng = LoRAStencil2D(w.as_matrix())
        x = rng.normal(size=(38, 38))
        out, _ = eng.apply_simulated(x, block=(16, 16))
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)

    @pytest.mark.parametrize(
        "config",
        OptimizationConfig.breakdown_levels(),
        ids=lambda c: c.label(),
    )
    def test_all_optimization_levels_equivalent(self, rng, config):
        w = get_kernel("Box-2D49P").weights
        eng = LoRAStencil2D(w.as_matrix(), config=config)
        x = rng.normal(size=(22, 22))
        out, _ = eng.apply_simulated(x)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)


class TestCounters:
    def test_mma_scales_with_tiles(self, rng):
        w = radially_symmetric_weights(3, 2, rng=rng)
        eng = LoRAStencil2D(w.as_matrix())
        x = rng.normal(size=(16 + 6, 16 + 6))
        _, cnt = eng.apply_simulated(x)
        assert cnt.mma_ops == 4 * eng.tile.mma_per_tile  # 4 tiles of 8x8

    def test_fragment_loads_match_eq12(self, rng):
        """Eq. 12 measured: ab/8 fragment loads for tile-aligned grids
        (plus the scalar-term reads, which Eq. 12 does not count)."""
        w = radially_symmetric_weights(3, 2, rng=rng)
        eng = LoRAStencil2D(w.as_matrix())
        a = b = 32
        x = rng.normal(size=(a + 6, b + 6))
        _, cnt = eng.apply_simulated(x)
        tiles = (a // 8) * (b // 8)
        scalar_reads = 2 * tiles if eng.decomposition.scalar_terms else 0
        assert cnt.shared_load_requests == a * b // 8 + scalar_reads

    def test_async_copy_eliminates_register_bytes(self, rng):
        w = get_kernel("Box-2D9P").weights
        x = rng.normal(size=(18, 18))
        with_ac = LoRAStencil2D(w.as_matrix())
        without_ac = LoRAStencil2D(
            w.as_matrix(), config=OptimizationConfig(use_async_copy=False)
        )
        _, c1 = with_ac.apply_simulated(x)
        _, c2 = without_ac.apply_simulated(x)
        assert c1.register_intermediate_bytes == 0
        assert c2.register_intermediate_bytes > 0
        assert c1.async_copies > 0

    def test_bvs_toggle_controls_shuffles(self, rng):
        w = get_kernel("Box-2D49P").weights
        x = rng.normal(size=(22, 22))
        bvs = LoRAStencil2D(w.as_matrix())
        no_bvs = LoRAStencil2D(
            w.as_matrix(), config=OptimizationConfig(use_bvs=False)
        )
        _, c1 = bvs.apply_simulated(x)
        _, c2 = no_bvs.apply_simulated(x)
        assert c1.shuffle_ops == 0
        assert c2.shuffle_ops > 0
        assert c1.mma_ops == c2.mma_ops  # same arithmetic either way

    def test_counters_isolated_per_sweep(self, rng):
        w = get_kernel("Box-2D9P").weights
        eng = LoRAStencil2D(w.as_matrix())
        x = rng.normal(size=(18, 18))
        _, c1 = eng.apply_simulated(x)
        _, c2 = eng.apply_simulated(x)
        assert c1.mma_ops == c2.mma_ops

    def test_rank_and_repr(self, rng):
        eng = LoRAStencil2D(get_kernel("Box-2D49P").weights.as_matrix())
        assert eng.rank == 4
        assert "pma" in repr(eng)
