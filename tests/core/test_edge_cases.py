"""Edge-case coverage: extreme shapes, aspect ratios, and misuse."""

import numpy as np
import pytest

from repro.core.engine1d import LoRAStencil1D
from repro.core.engine2d import LoRAStencil2D
from repro.core.engine3d import LoRAStencil3D
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_apply
from repro.stencil.weights import radially_symmetric_weights


class TestExtremeShapes2D:
    @pytest.mark.parametrize("shape", [(1, 40), (40, 1), (1, 1), (2, 3)])
    def test_degenerate_interiors(self, rng, shape):
        w = get_kernel("Box-2D9P").weights
        eng = LoRAStencil2D(w.as_matrix())
        x = rng.normal(size=(shape[0] + 2, shape[1] + 2))
        ref = reference_apply(x, w)
        assert np.allclose(eng.apply(x), ref, atol=1e-12)
        out, _ = eng.apply_simulated(x)
        assert out.shape == shape
        assert np.allclose(out, ref, atol=1e-12)

    @pytest.mark.parametrize("shape", [(7, 103), (103, 7), (9, 9)])
    def test_prime_aspect_ratios(self, rng, shape):
        w = get_kernel("Box-2D49P").weights
        eng = LoRAStencil2D(w.as_matrix())
        x = rng.normal(size=(shape[0] + 6, shape[1] + 6))
        out, _ = eng.apply_simulated(x)
        assert np.allclose(out, reference_apply(x, w), atol=1e-11)

    def test_exactly_minimum_input(self, rng):
        """Padded input exactly (2h+1)^2: a single output point."""
        w = radially_symmetric_weights(3, 2, rng=rng)
        eng = LoRAStencil2D(w.as_matrix())
        x = rng.normal(size=(7, 7))
        out, _ = eng.apply_simulated(x)
        assert out.shape == (1, 1)
        assert out[0, 0] == pytest.approx(float((w.array * x).sum()), rel=1e-12)


class TestExtremeShapes1D3D:
    @pytest.mark.parametrize("n", [1, 2, 63, 64, 65])
    def test_1d_lengths(self, rng, n):
        w = get_kernel("1D5P").weights
        eng = LoRAStencil1D(w)
        x = rng.normal(size=n + 4)
        out, _ = eng.apply_simulated(x, block=64)
        assert out.shape == (n,)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)

    def test_3d_single_slab(self, rng):
        w = get_kernel("Heat-3D").weights
        eng = LoRAStencil3D(w)
        x = rng.normal(size=(3, 10, 10))  # one output plane
        out, _ = eng.apply_simulated(x)
        assert out.shape == (1, 8, 8)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)


class TestNumericalExtremes:
    def test_huge_magnitudes(self, rng):
        w = get_kernel("Box-2D9P").weights
        eng = LoRAStencil2D(w.as_matrix())
        x = rng.normal(size=(18, 18)) * 1e150
        ref = reference_apply(x, w)
        out, _ = eng.apply_simulated(x)
        assert np.allclose(out, ref, rtol=1e-12)

    def test_tiny_magnitudes(self, rng):
        w = get_kernel("Box-2D9P").weights
        eng = LoRAStencil2D(w.as_matrix())
        x = rng.normal(size=(18, 18)) * 1e-150
        ref = reference_apply(x, w)
        out, _ = eng.apply_simulated(x)
        assert np.allclose(out, ref, rtol=1e-12, atol=0)

    def test_all_zero_input(self):
        w = get_kernel("Box-2D49P").weights
        eng = LoRAStencil2D(w.as_matrix())
        out, _ = eng.apply_simulated(np.zeros((20, 20)))
        assert np.all(out == 0.0)

    def test_zero_weight_matrix(self, rng):
        eng = LoRAStencil2D(np.zeros((3, 3)))
        assert eng.decomposition.rank == 0
        x = rng.normal(size=(12, 12))
        out, _ = eng.apply_simulated(x)
        assert np.all(out == 0.0)

    def test_integer_input_coerced(self):
        w = get_kernel("Heat-2D").weights
        eng = LoRAStencil2D(w.as_matrix())
        x = np.arange(144, dtype=np.int64).reshape(12, 12)
        out = eng.apply(x)
        assert out.dtype == np.float64
        assert np.allclose(out, reference_apply(x.astype(float), w))
