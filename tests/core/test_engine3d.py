"""Tests for the 3D LoRAStencil executor (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.engine3d import LoRAStencil3D
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_apply
from repro.stencil.weights import radially_symmetric_weights


class TestPlaneDispatch:
    def test_heat3d_plane_split(self):
        """Star-3D7P: outer planes are single-weight (CUDA cores), the
        middle plane is a Star-2D5P (tensor cores) — Algorithm 2."""
        eng = LoRAStencil3D(get_kernel("Heat-3D").weights)
        assert eng.cuda_core_planes == [0, 2]
        assert eng.tensor_core_planes == [1]

    def test_box3d_all_planes_on_tcu(self):
        eng = LoRAStencil3D(get_kernel("Box-3D27P").weights)
        assert eng.tensor_core_planes == [0, 1, 2]
        assert eng.cuda_core_planes == []

    def test_2d_weights_rejected(self):
        with pytest.raises(ValueError):
            LoRAStencil3D(get_kernel("Box-2D9P").weights)

    def test_non_cube_rejected(self):
        with pytest.raises(ValueError):
            LoRAStencil3D(np.ones((3, 3, 5)))


class TestFunctional:
    @pytest.mark.parametrize("name", ["Heat-3D", "Box-3D27P"])
    def test_matches_reference(self, rng, name):
        w = get_kernel(name).weights
        eng = LoRAStencil3D(w)
        x = rng.normal(size=(7 + 2, 15 + 2, 18 + 2))
        assert np.allclose(eng.apply(x), reference_apply(x, w), atol=1e-12)

    def test_radius2_kernel(self, rng):
        w = radially_symmetric_weights(2, 3, rng=rng)
        eng = LoRAStencil3D(w)
        x = rng.normal(size=(5 + 4, 10 + 4, 12 + 4))
        assert np.allclose(eng.apply(x), reference_apply(x, w), atol=1e-12)

    def test_too_small_rejected(self, rng):
        eng = LoRAStencil3D(get_kernel("Heat-3D").weights)
        with pytest.raises(ValueError):
            eng.apply(rng.normal(size=(2, 8, 8)))


class TestSimulated:
    @pytest.mark.parametrize("name", ["Heat-3D", "Box-3D27P"])
    def test_matches_reference(self, rng, name):
        w = get_kernel(name).weights
        eng = LoRAStencil3D(w)
        x = rng.normal(size=(4 + 2, 11 + 2, 14 + 2))
        out, _ = eng.apply_simulated(x)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)

    def test_pointwise_planes_skip_tcu(self, rng):
        """Heat-3D's outer planes generate CUDA-core FLOPs but only the
        middle plane generates MMA instructions."""
        heat = LoRAStencil3D(get_kernel("Heat-3D").weights)
        box = LoRAStencil3D(get_kernel("Box-3D27P").weights)
        x = rng.normal(size=(4 + 2, 10 + 2, 10 + 2))
        _, c_heat = heat.apply_simulated(x)
        _, c_box = box.apply_simulated(x)
        assert c_heat.cuda_core_flops > 0
        assert c_heat.mma_ops > 0
        # the box kernel runs 3 TCU planes to heat's single (rank-2) one
        assert c_box.mma_ops > c_heat.mma_ops

    def test_non_3d_input_rejected(self, rng):
        eng = LoRAStencil3D(get_kernel("Heat-3D").weights)
        with pytest.raises(ValueError):
            eng.apply_simulated(rng.normal(size=(8, 8)))
