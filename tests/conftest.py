"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config) -> None:
    """Keep the suite warning-clean under the engine deprecation shims.

    Many existing tests construct ``LoRAStencil{1,2,3}D`` directly or
    import ``repro.core.decompose``; both now emit a
    ``DeprecationWarning`` pointing at ``repro.compile``.  That guidance
    is for downstream users — in this suite direct construction is
    intentional coverage of the compatibility surface, so the specific
    warning (matched on the "repro.compile" hint in its message) is
    filtered.  Tests that assert the warnings fire use ``pytest.warns``,
    which overrides the filter locally.
    """
    config.addinivalue_line(
        "filterwarnings", r"ignore:.*repro\.compile.*:DeprecationWarning"
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG, fresh per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def rng2() -> np.random.Generator:
    """A second independent deterministic RNG."""
    return np.random.default_rng(0xBEEF)
