"""Tests for the PTX m8n8k4 FP64 fragment layouts."""

import pytest

from repro.tcu.layouts import (
    FP64_FRAGMENT_SHAPES,
    WARP_SIZE,
    FragmentKind,
    owner_of,
    registers_per_thread,
    thread_slots,
)


class TestShapes:
    def test_fragment_shapes(self):
        assert FP64_FRAGMENT_SHAPES[FragmentKind.A] == (8, 4)
        assert FP64_FRAGMENT_SHAPES[FragmentKind.B] == (4, 8)
        assert FP64_FRAGMENT_SHAPES[FragmentKind.ACC] == (8, 8)

    def test_registers_per_thread(self):
        assert registers_per_thread(FragmentKind.A) == 1
        assert registers_per_thread(FragmentKind.B) == 1
        assert registers_per_thread(FragmentKind.ACC) == 2


class TestOwnership:
    @pytest.mark.parametrize("kind", list(FragmentKind))
    def test_every_element_owned_once(self, kind):
        rows, cols = FP64_FRAGMENT_SHAPES[kind]
        seen = set()
        for i in range(rows):
            for j in range(cols):
                owner = owner_of(kind, i, j)
                assert owner not in seen
                seen.add(owner)
        assert len(seen) == rows * cols

    @pytest.mark.parametrize("kind", list(FragmentKind))
    def test_owner_thread_in_warp(self, kind):
        rows, cols = FP64_FRAGMENT_SHAPES[kind]
        for i in range(rows):
            for j in range(cols):
                t, r = owner_of(kind, i, j)
                assert 0 <= t < WARP_SIZE
                assert 0 <= r < registers_per_thread(kind)

    @pytest.mark.parametrize("kind", list(FragmentKind))
    def test_slots_invert_ownership(self, kind):
        for t in range(WARP_SIZE):
            for r, (i, j) in enumerate(thread_slots(kind, t)):
                assert owner_of(kind, i, j) == (t, r)

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            owner_of(FragmentKind.A, 8, 0)
        with pytest.raises(IndexError):
            owner_of(FragmentKind.B, 0, 8)
        with pytest.raises(IndexError):
            thread_slots(FragmentKind.A, 32)


class TestPaperLayout:
    """The specific facts of Fig. 6(a)."""

    def test_thread0_holds_first_two_acc_elements(self):
        assert owner_of(FragmentKind.ACC, 0, 0) == (0, 0)
        assert owner_of(FragmentKind.ACC, 0, 1) == (0, 1)

    def test_acc_r0_registers_are_even_columns(self):
        for i in range(8):
            for j in range(0, 8, 2):
                _, reg = owner_of(FragmentKind.ACC, i, j)
                assert reg == 0

    def test_acc_r1_registers_are_odd_columns(self):
        for i in range(8):
            for j in range(1, 8, 2):
                _, reg = owner_of(FragmentKind.ACC, i, j)
                assert reg == 1

    def test_a_fragment_row_major_groups(self):
        assert owner_of(FragmentKind.A, 0, 0) == (0, 0)
        assert owner_of(FragmentKind.A, 0, 3) == (3, 0)
        assert owner_of(FragmentKind.A, 7, 3) == (31, 0)

    def test_b_fragment_column_major_groups(self):
        assert owner_of(FragmentKind.B, 0, 0) == (0, 0)
        assert owner_of(FragmentKind.B, 3, 0) == (3, 0)
        assert owner_of(FragmentKind.B, 3, 7) == (31, 0)

    def test_bvs_alignment_invariant(self):
        """The theorem behind BVS: the owner of ``C[i][2j]`` (register R0)
        is exactly the thread that owns slot ``(i, j)`` of a fragment A,
        and likewise ``C[i][2j+1]`` (R1)."""
        for i in range(8):
            for j in range(4):
                a_thread, _ = owner_of(FragmentKind.A, i, j)
                even_thread, even_reg = owner_of(FragmentKind.ACC, i, 2 * j)
                odd_thread, odd_reg = owner_of(FragmentKind.ACC, i, 2 * j + 1)
                assert even_thread == a_thread and even_reg == 0
                assert odd_thread == a_thread and odd_reg == 1
