"""Tests for tile programs and schedules."""

import numpy as np
import pytest

from repro.core.config import OptimizationConfig
from repro.core.lowrank import decompose
from repro.core.rdg import RDGTileCompute
from repro.stencil.reference import reference_apply
from repro.stencil.weights import radially_symmetric_weights
from repro.tcu.device import Device
from repro.tcu.program import (
    build_tile_program,
    execute_program,
    load_use_distance,
    schedule_prefetch,
    validate_schedule,
)


def _setup(rng, h=3, config=None, tile_shape=(8, 8)):
    w = radially_symmetric_weights(h, 2, rng=rng)
    tile = RDGTileCompute(
        decompose(w.as_matrix()), h, config,
        out_rows=tile_shape[0], out_cols=tile_shape[1],
    )
    device = Device()
    warp = device.warp()
    smem = device.shared((tile.k_rows, tile.w_cols))
    window = rng.normal(size=smem.shape)
    smem.data[:] = window
    return w, tile, device, warp, smem, window


class TestBuild:
    def test_ssa_property(self, rng):
        _, tile, *_ = _setup(rng)
        program = build_tile_program(tile)
        program.writers()  # raises on double writes

    def test_canonical_is_valid(self, rng):
        _, tile, *_ = _setup(rng)
        validate_schedule(build_tile_program(tile))

    def test_instruction_counts(self, rng):
        _, tile, *_ = _setup(rng)
        program = build_tile_program(tile)
        ops = [i.op for i in program.instrs]
        assert ops.count("load_x") == tile.fragment_loads_per_tile
        assert ops.count("mma") + ops.count("mma2") == tile.mma_per_tile
        assert ops.count("split") == len(tile.decomposition.matrix_terms) * (
            tile.w_cols // 8
        )

    def test_cuda_config_rejected(self, rng):
        w = radially_symmetric_weights(1, 2, rng=rng)
        tile = RDGTileCompute(
            decompose(w.as_matrix()), 1, OptimizationConfig(use_tensor_cores=False)
        )
        with pytest.raises(ValueError):
            build_tile_program(tile)


class TestExecution:
    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_matches_reference(self, rng, h):
        w, tile, device, warp, smem, window = _setup(rng, h=h)
        program = build_tile_program(tile)
        out = execute_program(program, warp, smem, 0, 0)
        ref = reference_apply(window[: 8 + 2 * h, : 8 + 2 * h], w)
        assert np.allclose(out, ref[:8, :8], atol=1e-12)

    def test_matches_eager_compute_tile(self, rng):
        w, tile, device, warp, smem, _ = _setup(rng)
        program = build_tile_program(tile)
        out_prog = execute_program(program, warp, smem, 0, 0)
        out_eager = tile.compute_tile(warp, smem, 0, 0)
        assert np.array_equal(out_prog, out_eager)

    def test_event_counts_match_eager(self, rng):
        w, tile, _, _, _, window = _setup(rng)
        d1, d2 = Device(), Device()
        s1 = d1.shared((tile.k_rows, tile.w_cols)); s1.data[:] = window
        s2 = d2.shared((tile.k_rows, tile.w_cols)); s2.data[:] = window
        execute_program(build_tile_program(tile), d1.warp(), s1, 0, 0)
        tile.compute_tile(d2.warp(), s2, 0, 0)
        assert d1.counters.as_dict() == d2.counters.as_dict()

    def test_multi_accumulator_tile(self, rng):
        w, tile, device, warp, smem, window = _setup(rng, h=2, tile_shape=(16, 16))
        out = execute_program(build_tile_program(tile), warp, smem, 0, 0)
        ref = reference_apply(window[: 16 + 4, : 16 + 4], w)
        assert np.allclose(out, ref[:16, :16], atol=1e-12)

    def test_no_bvs_program(self, rng):
        w, tile, device, warp, smem, window = _setup(
            rng, h=2, config=OptimizationConfig(use_bvs=False)
        )
        out = execute_program(build_tile_program(tile), warp, smem, 0, 0)
        ref = reference_apply(window[:12, :12], w)
        assert np.allclose(out, ref[:8, :8], atol=1e-12)
        assert device.counters.shuffle_ops > 0


class TestScheduling:
    def test_prefetch_preserves_semantics(self, rng):
        w, tile, device, warp, smem, _ = _setup(rng)
        base = build_tile_program(tile)
        pre = schedule_prefetch(base)
        out_a = execute_program(base, warp, smem, 0, 0)
        out_b = execute_program(pre, warp, smem, 0, 0)
        assert np.array_equal(out_a, out_b)

    def test_prefetch_increases_load_use_distance(self, rng):
        """The point of pipelining: more slack between a load and its
        first consumer.  (The canonical program already loads everything
        up front, so measure against a load-late variant.)"""
        _, tile, *_ = _setup(rng)
        base = build_tile_program(tile)
        # a deliberately lazy schedule: sink each load right before its
        # first use
        lazy_instrs = [i for i in base.instrs if i.op != "load_x"]
        for load in [i for i in base.instrs if i.op == "load_x"]:
            first = next(
                idx
                for idx, ins in enumerate(lazy_instrs)
                if load.dst[0] in ins.srcs
            )
            lazy_instrs.insert(first, load)
        from repro.tcu.program import TileProgram

        lazy = TileProgram(tile=tile, instrs=lazy_instrs)
        validate_schedule(lazy)
        assert load_use_distance(schedule_prefetch(lazy)) > load_use_distance(lazy)

    def test_invalid_schedule_detected(self, rng):
        _, tile, *_ = _setup(rng)
        program = build_tile_program(tile)
        # move the first load after its first consumer
        from repro.tcu.program import TileProgram

        bad = TileProgram(
            tile=tile, instrs=program.instrs[1:] + [program.instrs[0]]
        )
        with pytest.raises(ValueError):
            validate_schedule(bad)

    def test_random_valid_schedules_agree(self, rng):
        """Any dependence-respecting topological order gives the same
        numeric answer (list scheduling freedom is real)."""
        w, tile, device, warp, smem, _ = _setup(rng, h=1)
        base = build_tile_program(tile)
        expected = execute_program(base, warp, smem, 0, 0)
        for seed in range(3):
            shuffled = _random_topological(base, np.random.default_rng(seed))
            out = execute_program(shuffled, warp, smem, 0, 0)
            assert np.allclose(out, expected, atol=1e-12)


def _random_topological(program, rng):
    """Random dependence-respecting permutation of a program."""
    from repro.tcu.program import TileProgram

    remaining = list(program.instrs)
    written: set[str] = set()
    out = []
    while remaining:
        ready = [i for i in remaining if all(s in written for s in i.srcs)]
        pick = ready[rng.integers(len(ready))]
        remaining.remove(pick)
        written.update(pick.dst)
        out.append(pick)
    result = TileProgram(tile=program.tile, instrs=out)
    validate_schedule(result)
    return result


class TestInstrMetadata:
    """The IR carries structured metadata instead of encoding facts in
    SSA names (``mma2`` result-block index) or writing sentinel values
    (``apex`` has no register destination)."""

    def test_mma2_carries_rb_in_meta(self, rng):
        _, tile, *_ = _setup(rng)
        program = build_tile_program(tile)
        mma2s = [i for i in program.instrs if i.op == "mma2"]
        assert mma2s
        for ins in mma2s:
            assert isinstance(ins.meta["rb"], int)
            # meta agrees with the (legacy) name encoding acc{t}_{rb}_...
            assert ins.meta["rb"] == int(ins.dst[0].split("_")[1])

    def test_apex_has_no_destination(self, rng):
        _, tile, *_ = _setup(rng)
        program = build_tile_program(tile)
        apexes = [i for i in program.instrs if i.op == "apex"]
        for ins in apexes:
            assert ins.dst == ()

    def test_apex_not_in_writers(self, rng):
        _, tile, *_ = _setup(rng)
        program = build_tile_program(tile)
        writers = program.writers()
        for name in writers:
            assert program.instrs[writers[name]].op != "apex"


class TestProgram1D:
    def _setup_1d(self, rng, h=2, n=64):
        from repro.core._deprecation import suppress_engine_deprecation
        from repro.core.engine1d import LoRAStencil1D

        with suppress_engine_deprecation():
            engine = LoRAStencil1D(rng.normal(size=2 * h + 1))
        device = Device()
        warp = device.warp()
        smem = device.shared((engine.k_rows - 8 + n + 56,))
        smem.data[:] = rng.normal(size=smem.shape)
        return engine, device, warp, smem

    def test_build_and_execute_matches_eager(self, rng):
        from repro.tcu.program import build_tile_program_1d, execute_program_1d

        engine, device, warp, smem = self._setup_1d(rng)
        program = build_tile_program_1d(engine)
        kb_n = engine.k_rows // 4
        assert [i.op for i in program.instrs] == ["load_x"] * kb_n + [
            "mma"
        ] * kb_n
        out = execute_program_1d(program, warp, smem, 0)
        expected = engine._compute_tile(device.warp(), smem, 0)
        assert np.array_equal(out, expected)

    def test_event_counts_match_eager(self, rng):
        from repro.tcu.program import build_tile_program_1d, execute_program_1d

        engine, device, warp, smem = self._setup_1d(rng)
        program = build_tile_program_1d(engine)
        start = device.snapshot()
        execute_program_1d(program, warp, smem, 0)
        prog_events = device.events_since(start)
        start = device.snapshot()
        engine._compute_tile(warp, smem, 0)
        eager_events = device.events_since(start)
        assert prog_events == eager_events

    def test_rejects_cuda_core_engine(self, rng):
        from repro.core._deprecation import suppress_engine_deprecation
        from repro.core.engine1d import LoRAStencil1D
        from repro.tcu.program import build_tile_program_1d

        with suppress_engine_deprecation():
            engine = LoRAStencil1D(
                rng.normal(size=5),
                config=OptimizationConfig(use_tensor_cores=False),
            )
        with pytest.raises(ValueError, match="tensor-core"):
            build_tile_program_1d(engine)
