"""Tests for the shared-memory bank-conflict model."""

import numpy as np

from repro.tcu.counters import EventCounters
from repro.tcu.memory import SharedMemory, bank_conflict_cycles


class TestConflictModel:
    def test_contiguous_access_is_free(self):
        assert bank_conflict_cycles(np.arange(32)) == 0

    def test_broadcast_is_free(self):
        """All lanes reading one address broadcast without replay."""
        assert bank_conflict_cycles(np.full(32, 7)) == 0

    def test_same_bank_distinct_addresses_serialize(self):
        # lanes hit bank 0 with 4 distinct addresses -> 3 replays
        addrs = np.array([0, 32, 64, 96] + list(range(1, 29)))
        assert bank_conflict_cycles(addrs) == 3

    def test_stride_32_worst_case(self):
        """Stride equal to the bank count: all 32 lanes on one bank."""
        assert bank_conflict_cycles(np.arange(32) * 32) == 31

    def test_odd_stride_conflict_free(self):
        """Odd strides permute the banks (gcd(stride, 32) == 1)."""
        for stride in (1, 3, 5, 7, 9, 31):
            assert bank_conflict_cycles(np.arange(32) * stride) == 0

    def test_empty(self):
        assert bank_conflict_cycles(np.array([])) == 0


class TestSharedMemoryIntegration:
    def test_fragment_read_width_multiple_of_32_conflicts(self):
        """A 4x8 fragment in a 32-wide buffer puts all rows on the same
        banks: 4-way conflict -> 3 replays."""
        counters = EventCounters()
        smem = SharedMemory((16, 32), counters)
        smem.read_fragment(0, 0, (4, 8))
        assert counters.shared_bank_conflicts == 3

    def test_fragment_read_padded_width_free(self):
        """A width of 8 mod 32 maps a 4x8 tile's rows onto disjoint bank
        groups (banks = 8r + c cover 0..31 exactly once) — the padding
        trick real kernels use."""
        counters = EventCounters()
        smem = SharedMemory((16, 40), counters)
        smem.read_fragment(0, 0, (4, 8))
        assert counters.shared_bank_conflicts == 0

    def test_lorastencil_layout_is_conflict_light(self, rng):
        """The engine's default block layout keeps fragment loads nearly
        replay-free, while ConvStencil's strided stencil2row views pay
        a replay per load — extra hardware texture behind Fig. 10."""
        from repro.baselines.convstencil import ConvStencil2D
        from repro.core.engine2d import LoRAStencil2D
        from repro.stencil.kernels import get_kernel

        w = get_kernel("Box-2D49P").weights
        x = rng.normal(size=(38, 38))
        _, lora = LoRAStencil2D(w.as_matrix()).apply_simulated(x)
        _, conv = ConvStencil2D(w.as_matrix()).apply_simulated(x)
        lora_rate = lora.shared_bank_conflicts / max(1, lora.shared_load_requests)
        conv_rate = conv.shared_bank_conflicts / max(1, conv.shared_load_requests)
        assert lora_rate < 0.25
        assert conv_rate > lora_rate
