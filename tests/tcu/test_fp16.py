"""Tests for the FP16 tensor-core arithmetic model."""

import numpy as np
import pytest

from repro.tcu.fp16 import FP16_TILE, fp16_matmul, fp16_mma, quantize_fp16


class TestQuantize:
    def test_representable_values_exact(self):
        x = np.array([0.5, 1.0, -2.0, 0.25, 1024.0])
        assert np.array_equal(quantize_fp16(x), x)

    def test_rounding_error_bounded(self, rng):
        x = rng.normal(size=100)
        err = np.abs(quantize_fp16(x) - x)
        # half precision: ~2^-11 relative
        assert np.all(err <= np.abs(x) * 2**-10 + 1e-12)

    def test_overflow_to_inf(self):
        assert np.isinf(quantize_fp16(np.array([1e6]))[0])


class TestMMA:
    def test_shapes_checked(self, rng):
        with pytest.raises(ValueError):
            fp16_mma(rng.normal(size=(8, 8)), rng.normal(size=(16, 16)))

    def test_exact_for_representable_inputs(self, rng):
        """Small integers are FP16-exact; products accumulate exactly in
        FP32 for this magnitude."""
        a = rng.integers(-4, 5, size=(16, 16)).astype(np.float64)
        b = rng.integers(-4, 5, size=(16, 16)).astype(np.float64)
        assert np.array_equal(fp16_mma(a, b), a @ b)

    def test_rounding_visible_for_generic_inputs(self, rng):
        a = rng.normal(size=(16, 16))
        b = rng.normal(size=(16, 16))
        err = np.abs(fp16_mma(a, b) - a @ b).max()
        assert 0 < err < 0.05

    def test_accumulator_added(self, rng):
        a = rng.integers(-2, 3, size=(16, 16)).astype(np.float64)
        b = rng.integers(-2, 3, size=(16, 16)).astype(np.float64)
        c = rng.integers(-2, 3, size=(16, 16)).astype(np.float64)
        assert np.array_equal(fp16_mma(a, b, c), a @ b + c)

    def test_returns_float32(self, rng):
        out = fp16_mma(rng.normal(size=(16, 16)), rng.normal(size=(16, 16)))
        assert out.dtype == np.float32


class TestMatmul:
    def test_matches_mma_tiling(self, rng):
        a = rng.normal(size=(32, 48))
        b = rng.normal(size=(48, 16))
        out = fp16_matmul(a, b)
        # same numerics as an FP16 GEMM: compare against blockwise fp16
        err = np.abs(out - a @ b).max()
        assert 0 < err < 0.2

    def test_exact_small_integers(self, rng):
        a = rng.integers(-3, 4, size=(16, 32)).astype(np.float64)
        b = rng.integers(-3, 4, size=(32, 16)).astype(np.float64)
        assert np.array_equal(fp16_matmul(a, b), a @ b)

    def test_alignment_required(self, rng):
        with pytest.raises(ValueError):
            fp16_matmul(rng.normal(size=(15, 16)), rng.normal(size=(16, 16)))

    def test_inner_dim_checked(self, rng):
        with pytest.raises(ValueError):
            fp16_matmul(rng.normal(size=(16, 16)), rng.normal(size=(32, 16)))

    def test_tile_constant(self):
        assert FP16_TILE == 16
