"""Tests for warp-level WMMA operations and accumulator splitting."""

import numpy as np
import pytest

from repro.tcu.device import Device
from repro.tcu.fragment import Fragment
from repro.tcu.layouts import FragmentKind
from repro.tcu.warp import BVS_EVEN_ODD_ORDER


@pytest.fixture
def device():
    return Device()


@pytest.fixture
def warp(device):
    return device.warp()


def _frags(rng):
    a = rng.normal(size=(8, 4))
    b = rng.normal(size=(4, 8))
    c = rng.normal(size=(8, 8))
    return (
        a,
        b,
        c,
        Fragment.from_matrix(FragmentKind.A, a),
        Fragment.from_matrix(FragmentKind.B, b),
        Fragment.from_matrix(FragmentKind.ACC, c),
    )


class TestMMA:
    def test_mma_math(self, warp, rng):
        a, b, c, fa, fb, fc = _frags(rng)
        d = warp.mma_sync(fa, fb, fc)
        assert np.allclose(d.to_matrix(), a @ b + c)

    def test_mma_without_accumulator(self, warp, rng):
        a, b, _, fa, fb, _ = _frags(rng)
        d = warp.mma_sync(fa, fb)
        assert np.allclose(d.to_matrix(), a @ b)

    def test_mma_counts(self, warp, device, rng):
        _, _, _, fa, fb, fc = _frags(rng)
        warp.mma_sync(fa, fb, fc)
        warp.mma_sync(fa, fb)
        assert device.counters.mma_ops == 2

    def test_mma_operand_kind_checked(self, warp, rng):
        _, _, _, fa, fb, fc = _frags(rng)
        with pytest.raises(TypeError):
            warp.mma_sync(fb, fb)
        with pytest.raises(TypeError):
            warp.mma_sync(fa, fa)
        with pytest.raises(TypeError):
            warp.mma_sync(fa, fb, fa)

    def test_mma_chain_accumulates(self, warp, rng):
        a, b, _, fa, fb, _ = _frags(rng)
        acc = None
        for _ in range(3):
            acc = warp.mma_sync(fa, fb, acc)
        assert np.allclose(acc.to_matrix(), 3 * (a @ b))


class TestTraffic:
    def test_load_matrix_sync(self, warp, device, rng):
        smem = device.shared((8, 16))
        smem.data[:] = rng.normal(size=(8, 16))
        frag = warp.load_matrix_sync(FragmentKind.B, smem, 2, 4)
        assert np.array_equal(frag.to_matrix(), smem.data[2:6, 4:12])
        assert device.counters.shared_load_requests == 1

    def test_fill_fragment_free(self, warp, device, rng):
        warp.fill_fragment(FragmentKind.A, rng.normal(size=(8, 4)))
        assert device.counters.shared_load_requests == 0

    def test_store_matrix_sync(self, warp, device, rng):
        smem = device.shared((8, 8))
        _, _, c, _, _, fc = _frags(rng)
        warp.store_matrix_sync(fc, smem, 0, 0)
        assert np.array_equal(smem.data, c)
        assert device.counters.shared_store_requests == 2

    def test_store_matrix_global(self, warp, device, rng):
        gmem = device.global_array(np.zeros((8, 8)))
        _, _, c, _, _, fc = _frags(rng)
        warp.store_matrix_global(fc, gmem, (slice(0, 8), slice(0, 8)))
        assert np.array_equal(gmem.data, c)

    def test_cuda_core_axpy(self, warp, device):
        out = np.zeros((4, 4))
        warp.cuda_core_axpy(out, 2.0, np.ones((4, 4)))
        assert np.all(out == 2.0)
        assert device.counters.cuda_core_flops == 32

    def test_axpy_shape_mismatch(self, warp):
        with pytest.raises(ValueError):
            warp.cuda_core_axpy(np.zeros((2, 2)), 1.0, np.zeros((3, 3)))


class TestAccumulatorSplitting:
    def test_bvs_split_values(self, warp, rng):
        _, _, c, _, _, fc = _frags(rng)
        even, odd = warp.split_accumulator_bvs(fc)
        assert np.array_equal(even.to_matrix(), c[:, 0::2])
        assert np.array_equal(odd.to_matrix(), c[:, 1::2])

    def test_bvs_split_is_shuffle_free(self, warp, device, rng):
        _, _, _, _, _, fc = _frags(rng)
        warp.split_accumulator_bvs(fc)
        assert device.counters.shuffle_ops == 0
        assert device.counters.register_moves == 0

    def test_bvs_split_kinds(self, warp, rng):
        _, _, _, _, _, fc = _frags(rng)
        even, odd = warp.split_accumulator_bvs(fc)
        assert even.kind is FragmentKind.A
        assert odd.kind is FragmentKind.A

    def test_bvs_requires_accumulator(self, warp, rng):
        _, _, _, fa, _, _ = _frags(rng)
        with pytest.raises(TypeError):
            warp.split_accumulator_bvs(fa)

    def test_naive_split_values(self, warp, rng):
        _, _, c, _, _, fc = _frags(rng)
        left, right = warp.split_accumulator_naive(fc)
        assert np.array_equal(left.to_matrix(), c[:, 0:4])
        assert np.array_equal(right.to_matrix(), c[:, 4:8])

    def test_naive_split_costs_shuffles(self, warp, device, rng):
        _, _, _, _, _, fc = _frags(rng)
        warp.split_accumulator_naive(fc)
        assert device.counters.shuffle_ops == 6
        assert device.counters.register_moves == 48

    def test_naive_requires_accumulator(self, warp, rng):
        _, _, _, _, fb, _ = _frags(rng)
        with pytest.raises(TypeError):
            warp.split_accumulator_naive(fb)

    def test_split_equivalence_theorem(self, warp, rng):
        """Eq. 17: T @ V == T'_even @ V_even + T'_odd @ V_odd."""
        _, _, c, _, _, fc = _frags(rng)
        v = rng.normal(size=(8, 8))
        even, odd = warp.split_accumulator_bvs(fc)
        lhs = c @ v
        rhs = even.to_matrix() @ v[0::2, :] + odd.to_matrix() @ v[1::2, :]
        assert np.allclose(lhs, rhs)

    def test_butterfly_order_constant(self):
        assert BVS_EVEN_ODD_ORDER == (0, 2, 4, 6, 1, 3, 5, 7)
        assert sorted(BVS_EVEN_ODD_ORDER) == list(range(8))

    def test_bvs_vs_naive_same_product(self, warp, rng):
        """Both split strategies compute the same T @ V."""
        _, _, c, _, _, fc = _frags(rng)
        v = rng.normal(size=(8, 8))
        even, odd = warp.split_accumulator_bvs(fc)
        left, right = warp.split_accumulator_naive(fc)
        bvs = even.to_matrix() @ v[0::2, :] + odd.to_matrix() @ v[1::2, :]
        naive = left.to_matrix() @ v[0:4, :] + right.to_matrix() @ v[4:8, :]
        assert np.allclose(bvs, naive)
