"""Tests for the simulated shared/global memories and request counting."""

import numpy as np
import pytest

from repro.tcu.counters import EventCounters
from repro.tcu.memory import GlobalMemory, SharedMemory


@pytest.fixture
def counters():
    return EventCounters()


@pytest.fixture
def smem(counters):
    return SharedMemory((16, 16), counters)


@pytest.fixture
def gmem(counters, rng):
    return GlobalMemory(rng.normal(size=(32, 32)), counters)


class TestSharedLoads:
    def test_fragment_read_counts_one_request(self, smem, counters):
        smem.read_fragment(0, 0, (4, 8))
        assert counters.shared_load_requests == 1

    def test_fragment_read_content(self, smem):
        smem.data[:] = np.arange(256).reshape(16, 16)
        tile = smem.read_fragment(2, 3, (4, 8))
        assert np.array_equal(tile, smem.data[2:6, 3:11])

    def test_fragment_read_returns_copy(self, smem):
        tile = smem.read_fragment(0, 0, (4, 8))
        tile[:] = 99.0
        assert not np.any(smem.data == 99.0)

    def test_out_of_bounds_rejected(self, smem):
        with pytest.raises(IndexError):
            smem.read_fragment(14, 0, (4, 8))

    def test_scalar_tile_counts_by_lanes(self, smem, counters):
        smem.read_scalar_tile(0, 0, (8, 8))
        assert counters.shared_load_requests == 2  # 64 elements / 32 lanes

    def test_strided_read(self, counters):
        smem = SharedMemory((1, 64), counters)
        smem.data[0] = np.arange(64.0)
        tile = smem.read_fragment_strided(2, (4, 8), col_stride=8)
        # element (r, q) = flat[2 + 8q + r]
        expected = 2 + 8 * np.arange(8)[None, :] + np.arange(4)[:, None]
        assert np.array_equal(tile, expected)
        assert counters.shared_load_requests == 1

    def test_strided_read_bounds(self, counters):
        smem = SharedMemory((1, 16), counters)
        with pytest.raises(IndexError):
            smem.read_fragment_strided(0, (4, 8), col_stride=8)

    def test_view_read(self, counters):
        smem = SharedMemory((1, 64), counters)
        smem.data[0] = np.arange(64.0)
        tile = smem.read_fragment_view(start=1, shape=(8, 4), row_stride=7)
        expected = 1 + 7 * np.arange(8)[:, None] + np.arange(4)[None, :]
        assert np.array_equal(tile, expected)
        assert counters.shared_load_requests == 1

    def test_view_read_bounds(self, counters):
        smem = SharedMemory((1, 32), counters)
        with pytest.raises(IndexError):
            smem.read_fragment_view(start=0, shape=(8, 4), row_stride=7)


class TestSharedStores:
    def test_store_counts_per_32_elements(self, smem, counters):
        smem.write_tile(0, 0, np.ones((8, 8)))
        assert counters.shared_store_requests == 2

    def test_small_store_counts_one(self, smem, counters):
        smem.write_tile(0, 0, np.ones((2, 2)))
        assert counters.shared_store_requests == 1

    def test_store_via_registers_charges_bytes(self, smem, counters):
        smem.write_tile(0, 0, np.ones((4, 4)), via_registers=True)
        assert counters.register_intermediate_bytes == 16 * 8

    def test_store_async_path_charges_nothing(self, smem, counters):
        smem.write_tile(0, 0, np.ones((4, 4)), via_registers=False)
        assert counters.register_intermediate_bytes == 0

    def test_store_bounds(self, smem):
        with pytest.raises(IndexError):
            smem.write_tile(10, 10, np.ones((8, 8)))

    def test_store_content(self, smem):
        smem.write_tile(1, 2, np.full((3, 3), 5.0))
        assert np.all(smem.data[1:4, 2:5] == 5.0)


class TestGlobalMemory:
    def test_read_counts_bytes(self, gmem, counters):
        gmem.read((slice(0, 4), slice(0, 8)))
        assert counters.global_load_bytes == 4 * 8 * 8

    def test_write_counts_bytes(self, gmem, counters):
        gmem.write((slice(0, 2), slice(0, 2)), np.ones((2, 2)))
        assert counters.global_store_bytes == 4 * 8

    def test_write_shape_mismatch(self, gmem):
        with pytest.raises(IndexError):
            gmem.write((slice(0, 2), slice(0, 2)), np.ones((3, 3)))

    def test_copy_to_shared_sync_charges_registers(self, gmem, smem, counters):
        gmem.copy_to_shared((slice(0, 4), slice(0, 4)), smem)
        assert counters.register_intermediate_bytes == 16 * 8
        assert counters.async_copies == 0

    def test_copy_to_shared_async(self, gmem, smem, counters):
        gmem.copy_to_shared((slice(0, 4), slice(0, 4)), smem, use_async=True)
        assert counters.register_intermediate_bytes == 0
        assert counters.async_copies == 1

    def test_copy_places_data(self, gmem, smem):
        gmem.copy_to_shared((slice(0, 4), slice(0, 4)), smem, row=2, col=3)
        assert np.array_equal(smem.data[2:6, 3:7], gmem.data[0:4, 0:4])

    def test_copy_requires_2d(self, counters, smem, rng):
        g3 = GlobalMemory(rng.normal(size=(4, 4, 4)), counters)
        with pytest.raises(ValueError):
            g3.copy_to_shared((slice(0, 2), slice(0, 2), slice(0, 2)), smem)
