"""Tests for execution tracing and the scheduling properties it proves."""

import numpy as np
import pytest

from repro.core.config import OptimizationConfig
from repro.core.engine2d import LoRAStencil2D
from repro.stencil.kernels import get_kernel
from repro.tcu import Device, trace
from repro.tcu.counters import EventCounters


@pytest.fixture
def traced_device():
    device = Device()
    recorder = trace.install(device.counters)
    yield device, recorder
    trace.uninstall(device.counters)


def _one_tile_sweep(device, config=None):
    w = get_kernel("Box-2D49P").weights
    eng = LoRAStencil2D(w.as_matrix(), config=config)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(14, 14))  # exactly one 8x8 tile
    eng.apply_simulated(x, device=device)


class TestRecorder:
    def test_disabled_by_default(self):
        device = Device()
        _one_tile_sweep(device)
        # no recorder installed: nothing crashes, nothing recorded
        assert id(device.counters) not in trace._RECORDERS

    def test_counts_match_counters(self, traced_device):
        device, recorder = traced_device
        _one_tile_sweep(device)
        assert recorder.count("mma") == device.counters.mma_ops == 36
        assert recorder.count("load_matrix") == 8
        assert recorder.count("bvs_split") == 6  # 3 terms x 2 window blocks

    def test_render(self, traced_device):
        device, recorder = traced_device
        _one_tile_sweep(device)
        text = recorder.render(limit=5)
        assert "load_matrix" in text or "smem_store" in text
        assert "more" in text

    def test_first_last_index(self, traced_device):
        device, recorder = traced_device
        _one_tile_sweep(device)
        assert recorder.first_index("mma") < recorder.last_index("mma")
        with pytest.raises(ValueError):
            recorder.first_index("naive_split")

    def test_uninstall_stops_recording(self):
        counters = EventCounters()
        recorder = trace.install(counters)
        trace.maybe_trace(counters, "mma")
        trace.uninstall(counters)
        trace.maybe_trace(counters, "mma")
        assert recorder.count("mma") == 1


class TestRingBuffer:
    def test_unbounded_by_default(self):
        recorder = trace.TraceRecorder()
        for i in range(100):
            recorder.record("op", str(i))
        assert len(recorder) == recorder.total == 100
        assert recorder.dropped == 0

    def test_ring_keeps_most_recent(self):
        recorder = trace.TraceRecorder(max_events=3)
        for i in range(10):
            recorder.record("op", str(i))
        assert recorder.total == 10
        assert len(recorder) == 3
        assert recorder.dropped == 7
        assert [e.detail for e in recorder.events] == ["7", "8", "9"]

    def test_indices_stay_global(self):
        """The first retained event of a saturated ring keeps its global
        position, not a rebased 0."""
        recorder = trace.TraceRecorder(max_events=2)
        for _ in range(5):
            recorder.record("mma")
        assert [e.index for e in recorder.events] == [3, 4]
        assert recorder.first_index("mma") == 3
        assert recorder.last_index("mma") == 4

    def test_render_reports_dropped(self):
        recorder = trace.TraceRecorder(max_events=2)
        for _ in range(5):
            recorder.record("mma")
        text = recorder.render()
        assert "3 earlier events dropped" in text

    def test_max_events_validated(self):
        with pytest.raises(ValueError):
            trace.TraceRecorder(max_events=0)

    def test_install_with_max_events(self):
        counters = EventCounters()
        recorder = trace.install(counters, max_events=4)
        try:
            for _ in range(10):
                trace.maybe_trace(counters, "mma")
        finally:
            trace.uninstall(counters)
        assert recorder.total == 10
        assert recorder.count("mma") == 4  # retained only
        assert recorder.dropped == 6

    def test_bounded_sweep_keeps_the_tail(self):
        """A real sweep through a small ring retains the final warp ops
        (the CUDA-core apex) and counts everything it shed."""
        device = Device()
        recorder = trace.install(device.counters, max_events=8)
        try:
            _one_tile_sweep(device)
        finally:
            trace.uninstall(device.counters)
        assert recorder.dropped == recorder.total - 8
        assert recorder.total > 8
        assert recorder.ops()[-1] == "cuda_axpy"


class TestSchedulingProperties:
    """Ordering facts of the paper's pipeline (Fig. 3), proven on trace."""

    def test_block_store_precedes_everything(self, traced_device):
        device, recorder = traced_device
        _one_tile_sweep(device)
        assert recorder.first_index("smem_store") < recorder.first_index(
            "load_matrix"
        )

    def test_inputs_loaded_before_any_mma(self, traced_device):
        """Fragment reuse requires all window loads to happen up front."""
        device, recorder = traced_device
        _one_tile_sweep(device)
        assert recorder.last_index("load_matrix") < recorder.first_index("mma")

    def test_bvs_sits_between_the_two_gathers(self, traced_device):
        """Each BVS split comes after Step-1 MMAs and before Step-2's."""
        device, recorder = traced_device
        _one_tile_sweep(device)
        assert recorder.first_index("mma") < recorder.first_index("bvs_split")
        assert recorder.first_index("bvs_split") < recorder.last_index("mma")

    def test_scalar_apex_is_last_compute(self, traced_device):
        device, recorder = traced_device
        _one_tile_sweep(device)
        assert recorder.first_index("cuda_axpy") > recorder.last_index("mma")

    def test_no_bvs_config_traces_naive_splits(self, traced_device):
        device, recorder = traced_device
        _one_tile_sweep(device, config=OptimizationConfig(use_bvs=False))
        assert recorder.count("naive_split") == 6
        assert recorder.count("bvs_split") == 0

    def test_convstencil_trace_shows_no_reuse(self, traced_device):
        """ConvStencil's trace: loads and MMAs strictly interleave (one
        fresh view load per MMA — the dimension residue as a schedule)."""
        import numpy as np

        from repro.baselines.convstencil import ConvStencil2D

        device, recorder = traced_device
        eng = ConvStencil2D(get_kernel("Box-2D49P").weights.as_matrix())
        eng.apply_simulated(np.zeros((14, 14)), device=device)
        assert recorder.count("load_view") == recorder.count("mma") == 26
        ops = [op for op in recorder.ops() if op in ("load_view", "mma")]
        assert ops == ["load_view", "mma"] * 26
