"""Tests for execution tracing and the scheduling properties it proves."""

import numpy as np
import pytest

from repro.core.config import OptimizationConfig
from repro.core.engine2d import LoRAStencil2D
from repro.stencil.kernels import get_kernel
from repro.tcu import Device, trace
from repro.tcu.counters import EventCounters


@pytest.fixture
def traced_device():
    device = Device()
    recorder = trace.install(device.counters)
    yield device, recorder
    trace.uninstall(device.counters)


def _one_tile_sweep(device, config=None):
    w = get_kernel("Box-2D49P").weights
    eng = LoRAStencil2D(w.as_matrix(), config=config)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(14, 14))  # exactly one 8x8 tile
    eng.apply_simulated(x, device=device)


class TestRecorder:
    def test_disabled_by_default(self):
        device = Device()
        _one_tile_sweep(device)
        # no recorder installed: nothing crashes, nothing recorded
        assert id(device.counters) not in trace._RECORDERS

    def test_counts_match_counters(self, traced_device):
        device, recorder = traced_device
        _one_tile_sweep(device)
        assert recorder.count("mma") == device.counters.mma_ops == 36
        assert recorder.count("load_matrix") == 8
        assert recorder.count("bvs_split") == 6  # 3 terms x 2 window blocks

    def test_render(self, traced_device):
        device, recorder = traced_device
        _one_tile_sweep(device)
        text = recorder.render(limit=5)
        assert "load_matrix" in text or "smem_store" in text
        assert "more" in text

    def test_first_last_index(self, traced_device):
        device, recorder = traced_device
        _one_tile_sweep(device)
        assert recorder.first_index("mma") < recorder.last_index("mma")
        with pytest.raises(ValueError):
            recorder.first_index("naive_split")

    def test_uninstall_stops_recording(self):
        counters = EventCounters()
        recorder = trace.install(counters)
        trace.maybe_trace(counters, "mma")
        trace.uninstall(counters)
        trace.maybe_trace(counters, "mma")
        assert recorder.count("mma") == 1


class TestSchedulingProperties:
    """Ordering facts of the paper's pipeline (Fig. 3), proven on trace."""

    def test_block_store_precedes_everything(self, traced_device):
        device, recorder = traced_device
        _one_tile_sweep(device)
        assert recorder.first_index("smem_store") < recorder.first_index(
            "load_matrix"
        )

    def test_inputs_loaded_before_any_mma(self, traced_device):
        """Fragment reuse requires all window loads to happen up front."""
        device, recorder = traced_device
        _one_tile_sweep(device)
        assert recorder.last_index("load_matrix") < recorder.first_index("mma")

    def test_bvs_sits_between_the_two_gathers(self, traced_device):
        """Each BVS split comes after Step-1 MMAs and before Step-2's."""
        device, recorder = traced_device
        _one_tile_sweep(device)
        assert recorder.first_index("mma") < recorder.first_index("bvs_split")
        assert recorder.first_index("bvs_split") < recorder.last_index("mma")

    def test_scalar_apex_is_last_compute(self, traced_device):
        device, recorder = traced_device
        _one_tile_sweep(device)
        assert recorder.first_index("cuda_axpy") > recorder.last_index("mma")

    def test_no_bvs_config_traces_naive_splits(self, traced_device):
        device, recorder = traced_device
        _one_tile_sweep(device, config=OptimizationConfig(use_bvs=False))
        assert recorder.count("naive_split") == 6
        assert recorder.count("bvs_split") == 0

    def test_convstencil_trace_shows_no_reuse(self, traced_device):
        """ConvStencil's trace: loads and MMAs strictly interleave (one
        fresh view load per MMA — the dimension residue as a schedule)."""
        import numpy as np

        from repro.baselines.convstencil import ConvStencil2D

        device, recorder = traced_device
        eng = ConvStencil2D(get_kernel("Box-2D49P").weights.as_matrix())
        eng.apply_simulated(np.zeros((14, 14)), device=device)
        assert recorder.count("load_view") == recorder.count("mma") == 26
        ops = [op for op in recorder.ops() if op in ("load_view", "mma")]
        assert ops == ["load_view", "mma"] * 26
