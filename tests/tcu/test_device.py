"""Tests for the Device simulator handle."""

import numpy as np

from repro.tcu.device import Device


class TestDevice:
    def test_shared_counters_wired(self):
        d = Device()
        smem = d.shared((8, 8))
        smem.read_fragment(0, 0, (4, 8))
        assert d.counters.shared_load_requests == 1

    def test_global_counters_wired(self, rng):
        d = Device()
        g = d.global_array(rng.normal(size=(8, 8)))
        g.read((slice(0, 2), slice(0, 2)))
        assert d.counters.global_load_bytes == 32

    def test_peak_shared_tracking(self):
        d = Device()
        d.shared((8, 8))
        assert d.peak_shared_bytes == 64 * 8
        d.shared((16, 16))
        assert d.peak_shared_bytes == 256 * 8
        d.shared((4, 4))  # smaller does not reduce the peak
        assert d.peak_shared_bytes == 256 * 8

    def test_events_since(self):
        d = Device()
        smem = d.shared((8, 8))
        snap = d.snapshot()
        smem.read_fragment(0, 0, (4, 8))
        smem.write_tile(0, 0, np.ones((4, 4)))
        diff = d.events_since(snap)
        assert diff.shared_load_requests == 1
        assert diff.shared_store_requests == 1

    def test_warp_shares_counters(self, rng):
        d = Device()
        w1, w2 = d.warp(), d.warp()
        from repro.tcu.fragment import Fragment
        from repro.tcu.layouts import FragmentKind

        fa = Fragment.from_matrix(FragmentKind.A, rng.normal(size=(8, 4)))
        fb = Fragment.from_matrix(FragmentKind.B, rng.normal(size=(4, 8)))
        w1.mma_sync(fa, fb)
        w2.mma_sync(fa, fb)
        assert d.counters.mma_ops == 2
