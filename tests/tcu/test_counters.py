"""Tests for hardware event counters."""

import pytest

from repro.tcu.counters import MMA_FLOPS, EventCounters


class TestArithmetic:
    def test_mma_flops_constant(self):
        assert MMA_FLOPS == 2 * 8 * 8 * 4 == 512

    def test_add(self):
        a = EventCounters(mma_ops=2, shared_load_requests=3)
        b = EventCounters(mma_ops=5, shuffle_ops=1)
        c = a + b
        assert c.mma_ops == 7
        assert c.shared_load_requests == 3
        assert c.shuffle_ops == 1

    def test_iadd(self):
        a = EventCounters(mma_ops=2)
        a += EventCounters(mma_ops=3)
        assert a.mma_ops == 5

    def test_scaled(self):
        a = EventCounters(mma_ops=10, global_load_bytes=100)
        s = a.scaled(2.5)
        assert s.mma_ops == 25
        assert s.global_load_bytes == 250

    def test_diff(self):
        a = EventCounters(mma_ops=10)
        early = a.snapshot()
        a.mma_ops += 7
        assert a.diff(early).mma_ops == 7

    def test_snapshot_is_decoupled(self):
        a = EventCounters(mma_ops=1)
        snap = a.snapshot()
        a.mma_ops = 99
        assert snap.mma_ops == 1

    def test_reset(self):
        a = EventCounters(mma_ops=4, shuffle_ops=2)
        a.reset()
        assert a.mma_ops == 0 and a.shuffle_ops == 0


class TestDerived:
    def test_shared_total(self):
        a = EventCounters(shared_load_requests=3, shared_store_requests=4)
        assert a.shared_total_requests == 7

    def test_tensor_core_flops(self):
        assert EventCounters(mma_ops=3).tensor_core_flops == 3 * 512

    def test_total_flops(self):
        a = EventCounters(mma_ops=1, cuda_core_flops=100)
        assert a.total_flops == 612

    def test_arithmetic_intensity(self):
        a = EventCounters(mma_ops=1, global_load_bytes=128, global_store_bytes=128)
        assert a.arithmetic_intensity() == pytest.approx(2.0)

    def test_ai_zero_bytes(self):
        assert EventCounters(mma_ops=1).arithmetic_intensity() == float("inf")
        assert EventCounters().arithmetic_intensity() == 0.0

    def test_as_dict_round_trip(self):
        a = EventCounters(mma_ops=2, async_copies=1)
        assert EventCounters(**a.as_dict()) == a
