"""Golden-value regression anchors for the fragment layer.

Hand-computed expectations for tiny deterministic inputs — if a layout
or MMA detail regresses, these fail with exact values rather than a
property violation.
"""

import numpy as np

from repro.tcu.counters import EventCounters
from repro.tcu.fragment import Fragment
from repro.tcu.layouts import FragmentKind
from repro.tcu.warp import Warp


def _iota(shape):
    return np.arange(np.prod(shape), dtype=np.float64).reshape(shape)


class TestGoldenLayouts:
    def test_a_fragment_register_file(self):
        frag = Fragment.from_matrix(FragmentKind.A, _iota((8, 4)))
        # thread t holds A[t//4][t%4] = t
        assert np.array_equal(frag.registers[:, 0], np.arange(32.0))

    def test_b_fragment_register_file(self):
        frag = Fragment.from_matrix(FragmentKind.B, _iota((4, 8)))
        # thread t holds B[t%4][t//4] = (t%4)*8 + t//4
        expected = np.array([(t % 4) * 8 + t // 4 for t in range(32)], dtype=float)
        assert np.array_equal(frag.registers[:, 0], expected)

    def test_acc_fragment_register_file(self):
        frag = Fragment.from_matrix(FragmentKind.ACC, _iota((8, 8)))
        # thread t: R0 = C[t//4][2(t%4)] = 8*(t//4) + 2*(t%4)
        r0 = np.array([8 * (t // 4) + 2 * (t % 4) for t in range(32)], dtype=float)
        assert np.array_equal(frag.registers[:, 0], r0)
        assert np.array_equal(frag.registers[:, 1], r0 + 1)

    def test_golden_mma(self):
        """A tiny exactly-representable MMA with a hand-checked corner."""
        a = np.zeros((8, 4))
        a[0, :] = [1.0, 2.0, 3.0, 4.0]
        b = np.zeros((4, 8))
        b[:, 0] = [10.0, 20.0, 30.0, 40.0]
        c = np.full((8, 8), 5.0)
        warp = Warp(EventCounters())
        d = warp.mma_sync(
            Fragment.from_matrix(FragmentKind.A, a),
            Fragment.from_matrix(FragmentKind.B, b),
            Fragment.from_matrix(FragmentKind.ACC, c),
        )
        out = d.to_matrix()
        # (1*10 + 2*20 + 3*30 + 4*40) + 5 = 300 + 5
        assert out[0, 0] == 305.0
        assert out[0, 1] == 5.0
        assert out[7, 7] == 5.0

    def test_golden_bvs_registers(self):
        """After BVS, thread 0's even fragment holds C[0][0] and its odd
        fragment holds C[0][1] — the Fig. 6(b) picture."""
        warp = Warp(EventCounters())
        acc = Fragment.from_matrix(FragmentKind.ACC, _iota((8, 8)))
        even, odd = warp.split_accumulator_bvs(acc)
        assert even.registers[0, 0] == 0.0  # C[0][0]
        assert odd.registers[0, 0] == 1.0  # C[0][1]
        assert even.registers[31, 0] == 62.0  # C[7][6]
        assert odd.registers[31, 0] == 63.0  # C[7][7]

    def test_golden_naive_shuffle_plan(self):
        """The naive split's exact shuffle budget: 3 instructions per
        half, 24 element moves per half."""
        counters = EventCounters()
        warp = Warp(counters)
        acc = Fragment.from_matrix(FragmentKind.ACC, _iota((8, 8)))
        warp.split_accumulator_naive(acc)
        assert counters.shuffle_ops == 6
        assert counters.register_moves == 48
