"""Tests for warp-distributed fragments."""

import numpy as np
import pytest

from repro.tcu.fragment import Fragment
from repro.tcu.layouts import FragmentKind


class TestRoundTrip:
    @pytest.mark.parametrize("kind", list(FragmentKind))
    def test_matrix_round_trip(self, rng, kind):
        from repro.tcu.layouts import FP64_FRAGMENT_SHAPES

        mat = rng.normal(size=FP64_FRAGMENT_SHAPES[kind])
        frag = Fragment.from_matrix(kind, mat)
        assert np.array_equal(frag.to_matrix(), mat)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            Fragment.from_matrix(FragmentKind.A, np.zeros((4, 8)))

    def test_register_file_shape(self):
        assert Fragment(FragmentKind.A).registers.shape == (32, 1)
        assert Fragment(FragmentKind.ACC).registers.shape == (32, 2)

    def test_bad_register_file_rejected(self):
        with pytest.raises(ValueError):
            Fragment(FragmentKind.A, np.zeros((32, 2)))

    def test_zero_initialized(self):
        assert np.all(Fragment(FragmentKind.ACC).to_matrix() == 0.0)


class TestAccess:
    def test_element(self, rng):
        mat = rng.normal(size=(8, 8))
        frag = Fragment.from_matrix(FragmentKind.ACC, mat)
        assert frag.element(3, 5) == mat[3, 5]

    def test_thread_view(self, rng):
        mat = rng.normal(size=(8, 8))
        frag = Fragment.from_matrix(FragmentKind.ACC, mat)
        view = frag.thread_view(0)
        assert view == [((0, 0), mat[0, 0]), ((0, 1), mat[0, 1])]

    def test_copy_is_independent(self, rng):
        frag = Fragment.from_matrix(FragmentKind.A, rng.normal(size=(8, 4)))
        c = frag.copy()
        frag.registers[:] = 0.0
        assert not np.all(c.registers == 0.0)

    def test_acc_thread_holds_consecutive_pair(self, rng):
        """Fig. 6(a): thread t's registers are C[t//4][2(t%4)] and the
        element right of it."""
        mat = rng.normal(size=(8, 8))
        frag = Fragment.from_matrix(FragmentKind.ACC, mat)
        for t in range(32):
            row, pair = t // 4, t % 4
            assert frag.registers[t, 0] == mat[row, 2 * pair]
            assert frag.registers[t, 1] == mat[row, 2 * pair + 1]
