"""Tests for the boundary-condition objects."""

import numpy as np
import pytest

from repro.stencil.boundary import (
    Dirichlet,
    Neumann,
    Periodic,
    Reflect,
    parse_boundary,
)
from repro.stencil.grid import Grid


class TestConditions:
    def test_dirichlet_zero(self):
        p = Dirichlet().pad(np.ones((2, 2)), 1)
        assert p[0, 0] == 0.0 and p[1, 1] == 1.0

    def test_dirichlet_value(self):
        p = Dirichlet(5.0).pad(np.zeros(3), 2)
        assert p[0] == 5.0 and p[-1] == 5.0

    def test_periodic(self):
        p = Periodic().pad(np.arange(4.0), 1)
        assert p[0] == 3.0 and p[-1] == 0.0

    def test_neumann_zero_gradient(self):
        p = Neumann().pad(np.arange(4.0), 2)
        assert p[0] == p[1] == 0.0
        assert p[-1] == p[-2] == 3.0

    def test_reflect(self):
        p = Reflect().pad(np.arange(4.0), 1)
        assert p[0] == 1.0 and p[-1] == 2.0

    def test_3d_padding(self, rng):
        x = rng.normal(size=(3, 4, 5))
        p = Periodic().pad(x, 1)
        assert p.shape == (5, 6, 7)
        assert np.array_equal(p[0, 1:-1, 1:-1], x[-1])


class TestParse:
    def test_strings(self):
        assert isinstance(parse_boundary("constant"), Dirichlet)
        assert isinstance(parse_boundary("periodic"), Periodic)
        assert isinstance(parse_boundary("edge"), Neumann)
        assert isinstance(parse_boundary("reflect"), Reflect)

    def test_constant_with_value(self):
        bc = parse_boundary("constant", constant_value=3.0)
        assert isinstance(bc, Dirichlet) and bc.value == 3.0

    def test_object_passthrough(self):
        bc = Dirichlet(9.0)
        assert parse_boundary(bc) is bc

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            parse_boundary("open")


class TestGridIntegration:
    def test_grid_accepts_objects(self, rng):
        x = rng.normal(size=(4, 4))
        g_obj = Grid(x, 1, boundary=Periodic())
        g_str = Grid(x, 1, boundary="periodic")
        assert np.array_equal(g_obj.padded(), g_str.padded())

    def test_grid_dirichlet_hot_wall(self):
        """A non-zero Dirichlet wall heats the plate toward the wall
        temperature — physically sensible end-to-end behaviour."""
        from repro.core.engine2d import LoRAStencil2D
        from repro.stencil.kernels import get_kernel

        eng = LoRAStencil2D(get_kernel("Heat-2D").weights.as_matrix())
        g = Grid(np.zeros((10, 10)), 1, boundary=Dirichlet(100.0))
        out = g.run(eng.apply, 50)
        assert out.min() > 0.0
        assert out.max() <= 100.0 + 1e-9
        # cells near the wall are hotter than the centre
        assert out[0, 5] > out[5, 5]

    def test_grid_name_back_compat(self):
        g = Grid(np.zeros(4), 1, boundary=Neumann())
        assert g.boundary == "edge"
