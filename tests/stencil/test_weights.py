"""Tests for stencil weight containers and generators."""

import numpy as np
import pytest

from repro.stencil.patterns import Shape, StencilPattern
from repro.stencil.weights import (
    StencilWeights,
    box_weights,
    compose_weights,
    is_radially_symmetric,
    radially_symmetric_weights,
    star_weights,
)


class TestStencilWeights:
    def test_shape_validation(self):
        pattern = StencilPattern(Shape.BOX, 1, 2)
        with pytest.raises(ValueError):
            StencilWeights(pattern, np.zeros((5, 5)))

    def test_as_matrix_requires_2d(self):
        w = box_weights(1, 3)
        with pytest.raises(ValueError):
            w.as_matrix()

    def test_as_vector_requires_1d(self):
        w = box_weights(1, 2)
        with pytest.raises(ValueError):
            w.as_vector()

    def test_planes_requires_3d(self):
        w = box_weights(1, 2)
        with pytest.raises(ValueError):
            w.planes()

    def test_planes_count_and_content(self):
        w = box_weights(2, 3)
        planes = w.planes()
        assert len(planes) == 5
        for i, p in enumerate(planes):
            assert np.array_equal(p, w.array[i])

    def test_float64_coercion(self):
        pattern = StencilPattern(Shape.BOX, 1, 1)
        w = StencilWeights(pattern, np.array([1, 2, 3], dtype=np.int32))
        assert w.array.dtype == np.float64

    def test_scaled(self):
        w = box_weights(1, 2)
        assert np.allclose(w.scaled(2.0).array, 2.0 * w.array)

    def test_equality_and_hash(self):
        a = box_weights(1, 2, values=np.ones((3, 3)))
        b = box_weights(1, 2, values=np.ones((3, 3)))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        a = box_weights(1, 2, values=np.ones((3, 3)))
        b = box_weights(1, 2, values=2 * np.ones((3, 3)))
        assert a != b

    def test_nonzero_count_star(self):
        w = star_weights(2, 2)
        assert w.nonzero_count() == 9  # star-2D9P


class TestGenerators:
    def test_box_weights_dense(self, rng):
        w = box_weights(2, 2, rng=rng)
        assert w.nonzero_count() == 25

    def test_box_weights_explicit_values(self):
        vals = np.arange(9.0).reshape(3, 3)
        w = box_weights(1, 2, values=vals)
        assert np.array_equal(w.array, vals)

    def test_star_weights_zero_off_axis(self, rng):
        w = star_weights(1, 2, rng=rng)
        assert w.array[0, 0] == 0.0
        assert w.array[2, 2] == 0.0
        assert w.array[1, 1] != 0.0

    def test_star_weights_axis_values_placed(self):
        axis = np.array([[1.0, 2.0], [3.0, 4.0]])
        w = star_weights(1, 2, axis_values=axis, center=9.0)
        # axis 0 = rows: offsets -1, +1
        assert w.array[0, 1] == 1.0
        assert w.array[2, 1] == 2.0
        assert w.array[1, 0] == 3.0
        assert w.array[1, 2] == 4.0
        assert w.array[1, 1] == 9.0

    def test_star_weights_bad_axis_shape(self):
        with pytest.raises(ValueError):
            star_weights(1, 2, axis_values=np.ones((2, 3)))

    def test_radially_symmetric_is_symmetric(self, rng):
        for radius in (1, 2, 3):
            w = radially_symmetric_weights(radius, 2, rng=rng)
            assert is_radially_symmetric(w)

    def test_radially_symmetric_3d(self, rng):
        w = radially_symmetric_weights(1, 3, rng=rng)
        assert is_radially_symmetric(w)

    def test_radially_symmetric_explicit_classes(self):
        classes = {(0, 0): 1.0, (0, 1): 2.0, (1, 1): 3.0}
        w = radially_symmetric_weights(1, 2, class_values=classes)
        expected = np.array([[3.0, 2.0, 3.0], [2.0, 1.0, 2.0], [3.0, 2.0, 3.0]])
        assert np.array_equal(w.array, expected)

    def test_radially_symmetric_matrix_is_flip_symmetric(self, rng):
        w = radially_symmetric_weights(3, 2, rng=rng).as_matrix()
        assert np.allclose(w, np.flipud(w))
        assert np.allclose(w, np.fliplr(w))
        assert np.allclose(w, w.T)

    def test_radial_rank_bound(self, rng):
        """Section II-C: rank(W) <= h + 1 for radially symmetric W."""
        for h in (1, 2, 3, 4):
            w = radially_symmetric_weights(h, 2, rng=rng)
            assert w.matrix_rank() <= h + 1

    def test_generic_box_not_radially_symmetric(self, rng):
        w = box_weights(2, 2, rng=rng)
        assert not is_radially_symmetric(w)


class TestCompose:
    def test_compose_radius_adds(self, rng):
        a = box_weights(1, 2, rng=rng)
        b = box_weights(2, 2, rng=rng)
        assert compose_weights(a, b).radius == 3

    def test_compose_dim_mismatch(self, rng):
        a = box_weights(1, 1, rng=rng)
        b = box_weights(1, 2, rng=rng)
        with pytest.raises(ValueError):
            compose_weights(a, b)

    def test_compose_matches_two_reference_steps_periodic(self, rng):
        from repro.stencil.reference import reference_iterate

        a = box_weights(1, 2, rng=rng)
        c = compose_weights(a, a)
        x = rng.normal(size=(16, 16))
        two_steps = reference_iterate(x, a, 2, boundary="periodic")
        one_composed = reference_iterate(x, c, 1, boundary="periodic")
        assert np.allclose(two_steps, one_composed)

    def test_compose_1d(self, rng):
        from repro.stencil.reference import reference_iterate

        a = star_weights(1, 1, rng=rng)
        c = compose_weights(a, a)
        assert c.radius == 2
        x = rng.normal(size=32)
        assert np.allclose(
            reference_iterate(x, a, 2, boundary="periodic"),
            reference_iterate(x, c, 1, boundary="periodic"),
        )

    def test_compose_preserves_radial_symmetry(self, rng):
        a = radially_symmetric_weights(1, 2, rng=rng)
        c = compose_weights(a, a)
        assert is_radially_symmetric(c)

    def test_compose_3d(self, rng):
        from repro.stencil.reference import reference_iterate

        a = radially_symmetric_weights(1, 3, rng=rng)
        c = compose_weights(a, a)
        x = rng.normal(size=(8, 8, 8))
        assert np.allclose(
            reference_iterate(x, a, 2, boundary="periodic"),
            reference_iterate(x, c, 1, boundary="periodic"),
        )
