"""Generalization tests: every engine on the extended kernel zoo."""

import numpy as np
import pytest

from repro.core.engine1d import LoRAStencil1D
from repro.core.engine2d import LoRAStencil2D
from repro.core.engine3d import LoRAStencil3D
from repro.baselines.convstencil import ConvStencil1D, ConvStencil2D
from repro.stencil.extended import EXTENDED_KERNELS, get_extended_kernel
from repro.stencil.reference import reference_apply
from repro.stencil.weights import is_radially_symmetric

EXT_2D = ["Star-2D9P", "Box-2D25P", "Box-2D81P"]
EXT_3D = ["Star-3D13P", "Box-3D125P"]


class TestZoo:
    def test_six_extended_kernels(self):
        assert len(EXTENDED_KERNELS) == 6

    def test_points(self):
        assert get_extended_kernel("1D7P").points == 7
        assert get_extended_kernel("Star-2D9P").points == 9
        assert get_extended_kernel("Box-2D25P").points == 25
        assert get_extended_kernel("Box-2D81P").points == 81
        assert get_extended_kernel("Star-3D13P").points == 13
        assert get_extended_kernel("Box-3D125P").points == 125

    def test_all_radially_symmetric(self):
        for k in EXTENDED_KERNELS.values():
            assert is_radially_symmetric(k.weights), k.name

    def test_rank_bounds(self):
        for name in EXT_2D:
            k = get_extended_kernel(name)
            assert k.weights.matrix_rank() <= k.weights.radius + 1

    def test_no_overlap_with_table_ii(self):
        from repro.stencil.kernels import KERNELS

        assert not set(EXTENDED_KERNELS) & set(KERNELS)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_extended_kernel("Box-9D1P")


class TestEnginesGeneralize:
    def test_1d7p(self, rng):
        w = get_extended_kernel("1D7P").weights
        eng = LoRAStencil1D(w)
        x = rng.normal(size=200 + 6)
        out, _ = eng.apply_simulated(x, block=128)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)
        conv = ConvStencil1D(w)
        out2, _ = conv.apply_simulated(x, block=128)
        assert np.allclose(out2, reference_apply(x, w), atol=1e-12)

    @pytest.mark.parametrize("name", EXT_2D)
    def test_2d_functional_and_simulated(self, rng, name):
        w = get_extended_kernel(name).weights
        eng = LoRAStencil2D(w.as_matrix())
        x = rng.normal(size=(20 + 2 * w.radius, 25 + 2 * w.radius))
        ref = reference_apply(x, w)
        assert np.allclose(eng.apply(x), ref, atol=1e-11)
        out, _ = eng.apply_simulated(x)
        assert np.allclose(out, ref, atol=1e-11)

    @pytest.mark.parametrize("name", EXT_2D)
    def test_2d_convstencil(self, rng, name):
        w = get_extended_kernel(name).weights
        eng = ConvStencil2D(w.as_matrix())
        x = rng.normal(size=(18 + 2 * w.radius, 22 + 2 * w.radius))
        out, cnt = eng.apply_simulated(x)
        assert np.allclose(out, reference_apply(x, w), atol=1e-11)
        assert cnt.mma_ops == cnt.shared_load_requests

    @pytest.mark.parametrize("name", EXT_3D)
    def test_3d(self, rng, name):
        w = get_extended_kernel(name).weights
        eng = LoRAStencil3D(w)
        x = rng.normal(size=(3 + 2 * w.radius, 10 + 2 * w.radius, 12 + 2 * w.radius))
        ref = reference_apply(x, w)
        assert np.allclose(eng.apply(x), ref, atol=1e-11)
        out, _ = eng.apply_simulated(x)
        assert np.allclose(out, ref, atol=1e-11)

    def test_star_3d13p_plane_split(self):
        """Order-2 3D star: four single-point planes, one rich plane."""
        eng = LoRAStencil3D(get_extended_kernel("Star-3D13P").weights)
        assert eng.cuda_core_planes == [0, 1, 3, 4]
        assert eng.tensor_core_planes == [2]

    def test_box_2d81p_uses_pma_with_5_levels(self):
        from repro.core.lowrank import decompose

        w = get_extended_kernel("Box-2D81P").weights
        d = decompose(w.as_matrix())
        assert d.method == "pma"
        assert [t.size for t in d.terms] == [9, 7, 5, 3, 1]

    def test_box_2d81p_eq14_ratio(self):
        """h=4 is the radius Eq. 14 quotes 4.2x for."""
        from repro.analysis.memory_model import memory_ratio

        assert memory_ratio(4) == pytest.approx(4.2)
