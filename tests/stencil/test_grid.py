"""Tests for grids, halos and boundary conditions."""

import numpy as np
import pytest

from repro.stencil.grid import Grid


class TestConstruction:
    def test_interior_copied(self):
        x = np.ones((4, 4))
        g = Grid(x, 1)
        x[0, 0] = 99.0
        assert g.interior[0, 0] == 1.0

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Grid(np.ones(4), -1)

    def test_unknown_boundary_rejected(self):
        with pytest.raises(ValueError):
            Grid(np.ones(4), 1, boundary="dirichlet-ish")

    def test_shape_and_ndim(self):
        g = Grid(np.ones((3, 5)), 2)
        assert g.shape == (3, 5)
        assert g.ndim == 2


class TestPadding:
    def test_constant_zero_halo(self):
        g = Grid(np.ones((2, 2)), 1)
        p = g.padded()
        assert p.shape == (4, 4)
        assert p[0, 0] == 0.0
        assert p[1, 1] == 1.0

    def test_constant_value_halo(self):
        g = Grid(np.ones((2, 2)), 1, boundary="constant", constant_value=7.0)
        assert g.padded()[0, 0] == 7.0

    def test_periodic_halo(self):
        g = Grid(np.arange(4.0), 1, boundary="periodic")
        p = g.padded()
        assert p[0] == 3.0
        assert p[-1] == 0.0

    def test_reflect_halo(self):
        g = Grid(np.arange(4.0), 1, boundary="reflect")
        p = g.padded()
        assert p[0] == 1.0

    def test_edge_halo(self):
        g = Grid(np.arange(4.0), 1, boundary="edge")
        p = g.padded()
        assert p[0] == 0.0
        assert p[-1] == 3.0

    def test_zero_radius(self):
        g = Grid(np.arange(4.0), 0)
        assert np.array_equal(g.padded(), np.arange(4.0))


class TestStepping:
    def test_step_applies_function(self):
        g = Grid(np.ones((2, 2)), 1)
        g.step(lambda p: 2 * p[1:-1, 1:-1])
        assert np.all(g.interior == 2.0)

    def test_step_shape_mismatch_rejected(self):
        g = Grid(np.ones((2, 2)), 1)
        with pytest.raises(ValueError):
            g.step(lambda p: p)  # returns padded shape

    def test_run_iterations(self):
        g = Grid(np.ones(3), 1)
        out = g.run(lambda p: 2 * p[1:-1], 3)
        assert np.all(out == 8.0)

    def test_run_zero_iterations(self):
        g = Grid(np.ones(3), 1)
        out = g.run(lambda p: 2 * p[1:-1], 0)
        assert np.all(out == 1.0)

    def test_run_negative_rejected(self):
        g = Grid(np.ones(3), 1)
        with pytest.raises(ValueError):
            g.run(lambda p: p[1:-1], -1)

    def test_copy_independent(self):
        g = Grid(np.ones(3), 1)
        c = g.copy()
        g.step(lambda p: 2 * p[1:-1])
        assert np.all(c.interior == 1.0)
