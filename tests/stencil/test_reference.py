"""Tests for the reference stencil executors."""

import numpy as np
import pytest

from repro.stencil.kernels import get_kernel
from repro.stencil.reference import (
    reference_apply,
    reference_apply_naive,
    reference_iterate,
)
from repro.stencil.weights import box_weights, star_weights


class TestNaiveVsVectorized:
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_2d_box_agreement(self, rng, radius):
        w = box_weights(radius, 2, rng=rng)
        x = rng.normal(size=(10 + 2 * radius, 13 + 2 * radius))
        assert np.allclose(reference_apply_naive(x, w), reference_apply(x, w))

    def test_1d_agreement(self, rng):
        w = star_weights(2, 1, rng=rng)
        x = rng.normal(size=30)
        assert np.allclose(reference_apply_naive(x, w), reference_apply(x, w))

    def test_3d_agreement(self, rng):
        w = box_weights(1, 3, rng=rng)
        x = rng.normal(size=(6, 7, 8))
        assert np.allclose(reference_apply_naive(x, w), reference_apply(x, w))

    def test_star_agreement(self, rng):
        w = star_weights(3, 2, rng=rng)
        x = rng.normal(size=(20, 20))
        assert np.allclose(reference_apply_naive(x, w), reference_apply(x, w))


class TestSemantics:
    def test_output_shape(self, rng):
        w = box_weights(2, 2, rng=rng)
        x = rng.normal(size=(14, 17))
        assert reference_apply(x, w).shape == (10, 13)

    def test_identity_kernel(self, rng):
        vals = np.zeros((3, 3))
        vals[1, 1] = 1.0
        w = box_weights(1, 2, values=vals)
        x = rng.normal(size=(8, 8))
        assert np.allclose(reference_apply(x, w), x[1:-1, 1:-1])

    def test_shift_kernel(self, rng):
        vals = np.zeros((3, 3))
        vals[0, 1] = 1.0  # reads the row above
        w = box_weights(1, 2, values=vals)
        x = rng.normal(size=(8, 8))
        assert np.allclose(reference_apply(x, w), x[0:-2, 1:-1])

    def test_linearity(self, rng):
        w = box_weights(1, 2, rng=rng)
        x = rng.normal(size=(8, 8))
        y = rng.normal(size=(8, 8))
        assert np.allclose(
            reference_apply(x + 2 * y, w),
            reference_apply(x, w) + 2 * reference_apply(y, w),
        )

    def test_constant_field_scales_by_weight_sum(self, rng):
        w = box_weights(1, 2, rng=rng)
        x = np.full((8, 8), 3.0)
        out = reference_apply(x, w)
        assert np.allclose(out, 3.0 * w.array.sum())

    def test_dim_mismatch_rejected(self, rng):
        w = box_weights(1, 2, rng=rng)
        with pytest.raises(ValueError):
            reference_apply(rng.normal(size=8), w)

    def test_too_small_input_rejected(self, rng):
        w = box_weights(3, 2, rng=rng)
        with pytest.raises(ValueError):
            reference_apply(rng.normal(size=(4, 4)), w)


class TestIterate:
    def test_heat_decays_toward_zero_with_cold_boundary(self, rng):
        k = get_kernel("Heat-2D")
        x = np.abs(rng.normal(size=(12, 12)))
        out = reference_iterate(x, k.weights, 200)
        assert np.abs(out).max() < np.abs(x).max()

    def test_heat_conserves_mass_with_periodic_boundary(self, rng):
        k = get_kernel("Heat-2D")
        x = rng.normal(size=(12, 12))
        out = reference_iterate(x, k.weights, 10, boundary="periodic")
        assert out.sum() == pytest.approx(x.sum())

    def test_zero_iterations_is_identity(self, rng):
        k = get_kernel("Heat-2D")
        x = rng.normal(size=(8, 8))
        assert np.allclose(reference_iterate(x, k.weights, 0), x)

    def test_iteration_composes(self, rng):
        k = get_kernel("Box-2D9P")
        x = rng.normal(size=(10, 10))
        once_then_once = reference_iterate(
            reference_iterate(x, k.weights, 1), k.weights, 1
        )
        twice = reference_iterate(x, k.weights, 2)
        assert np.allclose(once_then_once, twice)
