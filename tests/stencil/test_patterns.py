"""Tests for stencil dependence patterns."""

import numpy as np
import pytest

from repro.stencil.patterns import Shape, StencilPattern


class TestConstruction:
    def test_box_2d(self):
        p = StencilPattern(Shape.BOX, 1, 2)
        assert p.side == 3
        assert p.num_points == 9

    def test_star_2d(self):
        p = StencilPattern(Shape.STAR, 1, 2)
        assert p.num_points == 5

    def test_star_radius3_2d_is_13_points(self):
        assert StencilPattern(Shape.STAR, 3, 2).num_points == 13

    def test_box_radius3_2d_is_49_points(self):
        assert StencilPattern(Shape.BOX, 3, 2).num_points == 49

    def test_box_3d(self):
        assert StencilPattern(Shape.BOX, 1, 3).num_points == 27

    def test_star_3d(self):
        assert StencilPattern(Shape.STAR, 1, 3).num_points == 7

    def test_1d_star_equals_box(self):
        star = StencilPattern(Shape.STAR, 2, 1)
        box = StencilPattern(Shape.BOX, 2, 1)
        assert star.num_points == box.num_points == 5
        assert star.offsets() == box.offsets()

    @pytest.mark.parametrize("radius", [0, -1, -5])
    def test_invalid_radius_rejected(self, radius):
        with pytest.raises(ValueError):
            StencilPattern(Shape.BOX, radius, 2)

    @pytest.mark.parametrize("ndim", [0, -2])
    def test_invalid_ndim_rejected(self, ndim):
        with pytest.raises(ValueError):
            StencilPattern(Shape.BOX, 1, ndim)

    def test_frozen(self):
        p = StencilPattern(Shape.BOX, 1, 2)
        with pytest.raises(AttributeError):
            p.radius = 2


class TestOffsets:
    def test_box_offsets_count(self):
        p = StencilPattern(Shape.BOX, 2, 2)
        assert len(p.offsets()) == 25

    def test_star_offsets_count(self):
        p = StencilPattern(Shape.STAR, 2, 3)
        assert len(p.offsets()) == 13

    def test_offsets_bounded_by_radius(self):
        p = StencilPattern(Shape.BOX, 3, 2)
        for off in p.offsets():
            assert all(abs(o) <= 3 for o in off)

    def test_star_offsets_single_axis(self):
        p = StencilPattern(Shape.STAR, 2, 3)
        for off in p.offsets():
            assert sum(1 for o in off if o != 0) <= 1

    def test_centre_always_included(self):
        for shape in Shape:
            for ndim in (1, 2, 3):
                p = StencilPattern(shape, 1, ndim)
                assert (0,) * ndim in p.offsets()

    def test_offsets_unique(self):
        p = StencilPattern(Shape.STAR, 3, 2)
        offs = p.offsets()
        assert len(offs) == len(set(offs))

    def test_offsets_sorted(self):
        p = StencilPattern(Shape.BOX, 1, 2)
        assert p.offsets() == sorted(p.offsets())


class TestMask:
    def test_box_mask_full(self):
        p = StencilPattern(Shape.BOX, 1, 2)
        assert p.mask().all()

    def test_star_mask_cross(self):
        p = StencilPattern(Shape.STAR, 1, 2)
        m = p.mask()
        expected = np.array(
            [[False, True, False], [True, True, True], [False, True, False]]
        )
        assert np.array_equal(m, expected)

    def test_mask_count_matches_num_points(self):
        for shape in Shape:
            for radius in (1, 2, 3):
                for ndim in (1, 2, 3):
                    p = StencilPattern(shape, radius, ndim)
                    assert int(p.mask().sum()) == p.num_points


class TestLabels:
    @pytest.mark.parametrize(
        "shape,radius,ndim,label",
        [
            (Shape.BOX, 1, 2, "Box-2D9P"),
            (Shape.BOX, 3, 2, "Box-2D49P"),
            (Shape.STAR, 3, 2, "Star-2D13P"),
            (Shape.STAR, 1, 3, "Star-3D7P"),
            (Shape.BOX, 1, 3, "Box-3D27P"),
        ],
    )
    def test_label(self, shape, radius, ndim, label):
        assert StencilPattern(shape, radius, ndim).label() == label
