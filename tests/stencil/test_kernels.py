"""Tests for the Table II benchmark kernel zoo."""

import numpy as np
import pytest

from repro.stencil.kernels import KERNELS, get_kernel, list_kernels
from repro.stencil.patterns import Shape
from repro.stencil.weights import is_radially_symmetric

PAPER_TABLE_II = {
    "Heat-1D": (3, (10_240_000,), 10_000, (1024,)),
    "1D5P": (5, (10_240_000,), 10_000, (1024,)),
    "Heat-2D": (5, (10_240, 10_240), 10_240, (32, 64)),
    "Box-2D9P": (9, (10_240, 10_240), 10_240, (32, 64)),
    "Star-2D13P": (13, (10_240, 10_240), 10_240, (32, 64)),
    "Box-2D49P": (49, (10_240, 10_240), 10_240, (32, 64)),
    "Heat-3D": (7, (1024, 1024, 1024), 1024, (8, 64)),
    "Box-3D27P": (27, (1024, 1024, 1024), 1024, (8, 64)),
}


class TestTableII:
    def test_all_eight_kernels_present(self):
        assert list_kernels() == list(PAPER_TABLE_II)

    @pytest.mark.parametrize("name", list(PAPER_TABLE_II))
    def test_points(self, name):
        assert get_kernel(name).points == PAPER_TABLE_II[name][0]

    @pytest.mark.parametrize("name", list(PAPER_TABLE_II))
    def test_problem_size(self, name):
        assert get_kernel(name).problem_size == PAPER_TABLE_II[name][1]

    @pytest.mark.parametrize("name", list(PAPER_TABLE_II))
    def test_iterations(self, name):
        assert get_kernel(name).iterations == PAPER_TABLE_II[name][2]

    @pytest.mark.parametrize("name", list(PAPER_TABLE_II))
    def test_blocking(self, name):
        assert get_kernel(name).blocking == PAPER_TABLE_II[name][3]


class TestKernelProperties:
    @pytest.mark.parametrize("name", list(PAPER_TABLE_II))
    def test_all_kernels_radially_symmetric(self, name):
        """Every zoo kernel satisfies the Section II-C symmetry."""
        assert is_radially_symmetric(get_kernel(name).weights)

    def test_star_shapes(self):
        for name in ("Heat-1D", "1D5P", "Heat-2D", "Star-2D13P", "Heat-3D"):
            assert get_kernel(name).pattern.shape is Shape.STAR

    def test_box_shapes(self):
        for name in ("Box-2D9P", "Box-2D49P", "Box-3D27P"):
            assert get_kernel(name).pattern.shape is Shape.BOX

    def test_heat_kernels_conserve_mass(self):
        """Explicit heat steps have weights summing to 1."""
        for name in ("Heat-1D", "Heat-2D", "Heat-3D"):
            total = float(get_kernel(name).weights.array.sum())
            assert total == pytest.approx(1.0)

    def test_2d_weight_rank_bound(self):
        for name in ("Box-2D9P", "Box-2D49P", "Star-2D13P", "Heat-2D"):
            k = get_kernel(name)
            assert k.weights.matrix_rank() <= k.weights.radius + 1

    def test_grid_points(self):
        k = get_kernel("Heat-2D")
        assert k.grid_points == 10_240 * 10_240

    def test_small_problem_caps_axes(self):
        k = get_kernel("Heat-3D")
        assert k.small_problem(32) == (32, 32, 32)

    def test_case_insensitive_lookup(self):
        assert get_kernel("box-2d49p").name == "Box-2D49P"

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            get_kernel("Box-4D100P")

    def test_kernels_registry_is_consistent(self):
        for name, k in KERNELS.items():
            assert k.name == name
            assert len(k.problem_size) == k.weights.ndim

    def test_weights_are_finite(self):
        for k in KERNELS.values():
            assert np.all(np.isfinite(k.weights.array))
