"""Tests for the initial-condition library."""

import numpy as np
import pytest

from repro.stencil.fields import (
    checkerboard,
    gaussian_pulse,
    hot_square,
    plane_wave,
    random_field,
)


class TestGaussian:
    def test_peak_at_center(self):
        f = gaussian_pulse((21, 21))
        assert f[10, 10] == pytest.approx(1.0)
        assert f.argmax() == 10 * 21 + 10

    def test_amplitude(self):
        assert gaussian_pulse((11,), amplitude=3.0).max() == pytest.approx(3.0)

    def test_custom_center(self):
        f = gaussian_pulse((16, 16), center=(4.0, 12.0))
        assert np.unravel_index(f.argmax(), f.shape) == (4, 12)

    def test_3d(self):
        f = gaussian_pulse((9, 9, 9))
        assert f.shape == (9, 9, 9)
        assert f[4, 4, 4] == f.max()

    def test_bad_sigma(self):
        with pytest.raises(ValueError):
            gaussian_pulse((8, 8), sigma=0.0)

    def test_bad_center(self):
        with pytest.raises(ValueError):
            gaussian_pulse((8, 8), center=(1.0,))


class TestHotSquare:
    def test_values(self):
        f = hot_square((32, 32), half_width=4, value=50.0)
        assert f[16, 16] == 50.0
        assert f[0, 0] == 0.0
        assert (f == 50.0).sum() == 64

    def test_1d(self):
        f = hot_square((20,), half_width=2)
        assert (f > 0).sum() == 4

    def test_bad_width(self):
        with pytest.raises(ValueError):
            hot_square((8, 8), half_width=0)


class TestPlaneWave:
    def test_range(self):
        f = plane_wave((64, 64))
        assert f.max() <= 1.0 and f.min() >= -1.0

    def test_default_one_period(self):
        f = plane_wave((64,))
        # one full period: ends near where it started
        assert f[0] == pytest.approx(0.0, abs=1e-12)

    def test_bad_wavevector(self):
        with pytest.raises(ValueError):
            plane_wave((8, 8), wavevector=(1.0,))


class TestRandomAndCheckerboard:
    def test_random_deterministic(self):
        assert np.array_equal(random_field((8, 8), seed=3), random_field((8, 8), seed=3))
        assert not np.array_equal(
            random_field((8, 8), seed=3), random_field((8, 8), seed=4)
        )

    def test_checkerboard_alternates(self):
        f = checkerboard((4, 4))
        assert f[0, 0] == 1.0 and f[0, 1] == -1.0 and f[1, 0] == -1.0
        assert set(np.unique(f)) == {-1.0, 1.0}

    def test_checkerboard_period(self):
        f = checkerboard((8,), period=2)
        assert np.array_equal(f[:4], [1.0, 1.0, -1.0, -1.0])

    def test_checkerboard_bad_period(self):
        with pytest.raises(ValueError):
            checkerboard((8, 8), period=0)

    def test_checkerboard_killed_by_diffusion(self):
        """Physics sanity: the checkerboard is the fastest-decaying mode
        of the heat stencil."""
        from repro.core.engine2d import LoRAStencil2D
        from repro.stencil.grid import Grid
        from repro.stencil.kernels import get_kernel

        eng = LoRAStencil2D(get_kernel("Heat-2D").weights.as_matrix())
        grid = Grid(checkerboard((16, 16)), 1, boundary="periodic")
        out = grid.run(eng.apply, 10)
        assert np.abs(out).max() < 0.01
