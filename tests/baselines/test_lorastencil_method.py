"""Tests for the LoRAStencil method adapter (fusion policy, configs)."""

import numpy as np

from repro.baselines.lorastencil import LoRAStencilMethod
from repro.core.config import OptimizationConfig
from repro.core.engine1d import LoRAStencil1D
from repro.core.engine2d import LoRAStencil2D
from repro.core.engine3d import LoRAStencil3D
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_apply, reference_iterate


class TestFusionPolicy:
    def test_2d_radius1_fused_3x(self):
        m = LoRAStencilMethod(get_kernel("Box-2D9P"))
        assert m.steps_per_sweep == 3
        assert isinstance(m.engine, LoRAStencil2D)
        assert m.engine.radius == 3

    def test_2d_radius3_unfused(self):
        m = LoRAStencilMethod(get_kernel("Box-2D49P"))
        assert m.steps_per_sweep == 1

    def test_1d_unfused(self):
        m = LoRAStencilMethod(get_kernel("Heat-1D"))
        assert m.steps_per_sweep == 1
        assert isinstance(m.engine, LoRAStencil1D)

    def test_3d_unfused(self):
        """The paper's point: LoRAStencil does NOT need 3D fusion."""
        m = LoRAStencilMethod(get_kernel("Heat-3D"))
        assert m.steps_per_sweep == 1
        assert isinstance(m.engine, LoRAStencil3D)


class TestFunctional:
    def test_apply_is_one_base_step(self, rng):
        k = get_kernel("Box-2D9P")
        m = LoRAStencilMethod(k)
        x = rng.normal(size=(14, 14))
        assert np.allclose(m.apply(x), reference_apply(x, k.weights), atol=1e-12)

    def test_apply_fused_is_three_steps(self, rng):
        k = get_kernel("Box-2D9P")
        m = LoRAStencilMethod(k)
        x = rng.normal(size=(20, 20))
        fused_padded = np.pad(x, 3, mode="wrap")
        out = m.apply_fused(fused_padded)
        ref = reference_iterate(x, k.weights, 3, boundary="periodic")
        assert np.allclose(out, ref, atol=1e-12)

    def test_simulated_sweep_correct(self, rng):
        k = get_kernel("Box-2D49P")
        m = LoRAStencilMethod(k)
        out, counters = m.simulated_sweep((16, 24))
        assert out.shape == (16, 24)
        assert counters.mma_ops > 0


class TestFootprint:
    def test_fused_footprint_normalized_per_step(self):
        m = LoRAStencilMethod(get_kernel("Box-2D9P"))
        fp = m.footprint((32, 32))
        assert fp.points == 32 * 32 * 3

    def test_config_changes_footprint(self):
        k = get_kernel("Box-2D49P")
        with_bvs = LoRAStencilMethod(k)
        without = LoRAStencilMethod(k, config=OptimizationConfig(use_bvs=False))
        f1 = with_bvs.footprint((16, 16)).per_point()
        f2 = without.footprint((16, 16)).per_point()
        assert f1["shuffle_ops"] == 0
        assert f2["shuffle_ops"] > 0

    def test_traits_depend_on_config(self):
        k = get_kernel("Box-2D49P")
        tcu = LoRAStencilMethod(k).traits()
        cuda = LoRAStencilMethod(
            k, config=OptimizationConfig(use_tensor_cores=False)
        ).traits()
        assert tcu.tcu_efficiency > 0.5
        assert cuda.cuda_efficiency < tcu.tcu_efficiency
