"""Tests for the Fig. 8 "LoRAStencil-Best" rank-1 series."""

import numpy as np
import pytest

from repro.baselines.lorastencil_best import (
    LoRAStencilBestMethod,
    rank1_weights_like,
)
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_apply


class TestRank1Weights:
    def test_2d_is_rank_one(self):
        for name in ("Heat-2D", "Box-2D49P", "Star-2D13P"):
            w = rank1_weights_like(get_kernel(name).weights)
            assert np.linalg.matrix_rank(w.as_matrix()) == 1
            assert w.radius == get_kernel(name).weights.radius

    def test_3d_planes_rank_one_or_pointwise(self):
        w = rank1_weights_like(get_kernel("Box-3D27P").weights)
        for plane in w.planes():
            assert np.linalg.matrix_rank(plane) <= 1

    def test_3d_star_plane_split_preserved(self):
        """Heat-3D's single-point CUDA-core planes stay single-point."""
        from repro.core.engine3d import LoRAStencil3D

        w = rank1_weights_like(get_kernel("Heat-3D").weights)
        eng = LoRAStencil3D(w)
        assert eng.cuda_core_planes == [0, 2]
        assert eng.tensor_core_planes == [1]

    def test_1d_unchanged(self):
        base = get_kernel("Heat-1D").weights
        assert np.array_equal(rank1_weights_like(base).array, base.array)

    def test_normalized(self):
        w = rank1_weights_like(get_kernel("Box-2D9P").weights)
        assert w.array.sum() == pytest.approx(1.0)


class TestBestMethod:
    def test_single_matrix_term(self):
        m = LoRAStencilBestMethod(get_kernel("Box-2D49P"))
        assert len(m.engine.decomposition.matrix_terms) == 1

    def test_functionally_exact_on_its_own_kernel(self, rng):
        m = LoRAStencilBestMethod(get_kernel("Box-2D49P"))
        x = rng.normal(size=(26, 26))
        assert np.allclose(
            m.apply(x), reference_apply(x, m.weights), atol=1e-12
        )

    def test_fewer_mmas_than_full_rank(self):
        from repro.baselines.lorastencil import LoRAStencilMethod

        k = get_kernel("Box-2D49P")
        best = LoRAStencilBestMethod(k).footprint((32, 32)).per_point()
        full = LoRAStencilMethod(k).footprint((32, 32)).per_point()
        assert best["mma_ops"] < full["mma_ops"]
        # fragment loads identical: PMA reuse means rank only buys compute
        assert best["shared_load_requests"] <= full["shared_load_requests"]

    def test_bounds_lorastencil_in_fig8(self):
        from repro.experiments.fig8 import run_fig8

        res = run_fig8(kernels=["Box-2D9P", "Heat-3D"], include_best=True)
        for k in ("Box-2D9P", "Heat-3D"):
            assert res.perf(k, "LoRAStencil-Best") >= res.perf(k, "LoRAStencil") - 1e-9
