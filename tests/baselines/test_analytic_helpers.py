"""Tests for the analytic-footprint helpers."""

import pytest

from repro.baselines.analytic import analytic_counters, halo_read_factor


class TestHaloReadFactor:
    def test_square_block(self):
        # (32+2)^2 / 32^2
        assert halo_read_factor((32, 32), 1) == pytest.approx((34 / 32) ** 2)

    def test_zero_radius(self):
        assert halo_read_factor((16, 16), 0) == 1.0

    def test_grows_with_radius(self):
        factors = [halo_read_factor((32, 32), h) for h in range(4)]
        assert factors == sorted(factors)

    def test_small_blocks_pay_more(self):
        assert halo_read_factor((8, 8), 2) > halo_read_factor((64, 64), 2)

    def test_3d(self):
        assert halo_read_factor((8, 8, 8), 1) == pytest.approx((10 / 8) ** 3)

    def test_1d(self):
        assert halo_read_factor((1024,), 4) == pytest.approx(1032 / 1024)


class TestAnalyticCounters:
    def test_scaling_with_points(self):
        c = analytic_counters(1000, flops_per_point=2.0, mma_per_point=0.5)
        assert c.cuda_core_flops == 2000
        assert c.mma_ops == 500

    def test_defaults_compulsory_traffic(self):
        c = analytic_counters(100)
        assert c.global_load_bytes == 1600  # 16 B/pt default read
        assert c.global_store_bytes == 800  # 8 B/pt write

    def test_ceil_rounding(self):
        c = analytic_counters(3, shared_loads_per_point=0.4)
        assert c.shared_load_requests == 2  # ceil(1.2)

    def test_all_fields_nonnegative(self):
        c = analytic_counters(
            10,
            flops_per_point=1,
            mma_per_point=1,
            shared_loads_per_point=1,
            shared_stores_per_point=1,
            shuffles_per_point=1,
            register_bytes_per_point=1,
        )
        assert all(v >= 0 for v in c.as_dict().values())
