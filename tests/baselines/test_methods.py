"""Cross-method tests: functional exactness and footprint sanity."""

import numpy as np
import pytest

from repro.baselines.registry import BASELINE_METHODS, all_methods, get_method
from repro.stencil.kernels import KERNELS, get_kernel
from repro.stencil.reference import reference_apply

ALL_KERNELS = list(KERNELS)
ALL_METHODS = list(BASELINE_METHODS)


class TestRegistry:
    def test_paper_lineup_order(self):
        assert ALL_METHODS == [
            "cuDNN",
            "AMOS",
            "Brick",
            "DRStencil",
            "TCStencil",
            "ConvStencil",
            "LoRAStencil",
        ]

    def test_all_methods_instantiation(self):
        methods = all_methods(get_kernel("Box-2D9P"))
        assert [m.name for m in methods] == ALL_METHODS

    def test_get_method_case_insensitive(self):
        m = get_method("lorastencil", get_kernel("Heat-2D"))
        assert m.name == "LoRAStencil"

    def test_get_method_extra(self):
        m = get_method("Naive-CUDA", get_kernel("Heat-2D"))
        assert m.name == "Naive-CUDA"

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            get_method("MagicStencil", get_kernel("Heat-2D"))


class TestFunctionalExactness:
    """Every method computes the identical stencil (the paper compares
    performance of mathematically equivalent systems)."""

    @pytest.mark.parametrize("method_name", ALL_METHODS)
    @pytest.mark.parametrize("kernel_name", ["Heat-1D", "Heat-2D", "Box-2D49P"])
    def test_methods_match_reference(self, rng, method_name, kernel_name):
        kernel = get_kernel(kernel_name)
        method = get_method(method_name, kernel)
        h = kernel.weights.radius
        shape = {1: (64 + 2 * h,), 2: (16 + 2 * h, 20 + 2 * h)}[kernel.weights.ndim]
        x = rng.normal(size=shape)
        assert np.allclose(
            method.apply(x), reference_apply(x, kernel.weights), atol=1e-12
        )

    @pytest.mark.parametrize("method_name", ALL_METHODS)
    def test_methods_match_reference_3d(self, rng, method_name):
        kernel = get_kernel("Heat-3D")
        method = get_method(method_name, kernel)
        x = rng.normal(size=(5, 9, 11))
        assert np.allclose(
            method.apply(x), reference_apply(x, kernel.weights), atol=1e-12
        )


class TestFootprints:
    @pytest.mark.parametrize("method_name", ALL_METHODS)
    def test_footprint_positive(self, method_name):
        kernel = get_kernel("Heat-2D")
        method = get_method(method_name, kernel)
        fp = method.footprint((32, 32))
        assert fp.points > 0
        per_pt = fp.per_point()
        # every method moves data and does work
        assert per_pt["global_load_bytes"] > 0
        assert per_pt["mma_ops"] + per_pt["cuda_core_flops"] > 0

    @pytest.mark.parametrize("method_name", ALL_METHODS)
    def test_traits_sane(self, method_name):
        method = get_method(method_name, get_kernel("Heat-2D"))
        t = method.traits()
        assert 0 < t.tcu_efficiency <= 1
        assert 0 < t.cuda_efficiency <= 1
        assert 0 < t.dram_efficiency <= 1
        assert 0 < t.smem_efficiency <= 1
        assert t.launch_overhead >= 1
        assert t.time_scale >= 1
        assert t.fixed_time_s >= 0

    def test_tcstencil_time_scale_is_4(self):
        """Section V-A's FP16 -> FP64 convention."""
        m = get_method("TCStencil", get_kernel("Heat-2D"))
        assert m.traits().time_scale == 4.0

    def test_only_tcu_methods_issue_mma(self):
        kernel = get_kernel("Box-2D49P")
        for name in ALL_METHODS:
            m = get_method(name, kernel)
            per_pt = m.footprint((32, 32)).per_point()
            if m.uses_tensor_cores:
                assert per_pt["mma_ops"] > 0, name
            else:
                assert per_pt["mma_ops"] == 0, name

    def test_lorastencil_loads_fewest_fragments(self):
        """The RDG claim at footprint level: fewest shared loads among
        tensor-core methods."""
        kernel = get_kernel("Box-2D49P")
        loads = {}
        for name in ("AMOS", "ConvStencil", "LoRAStencil"):
            m = get_method(name, kernel)
            loads[name] = m.footprint((32, 32)).per_point()["shared_load_requests"]
        assert loads["LoRAStencil"] < loads["ConvStencil"] < loads["AMOS"]
