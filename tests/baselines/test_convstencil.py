"""Tests for the ConvStencil (stencil2row) baseline."""

import numpy as np
import pytest

from repro.baselines.convstencil import (
    ConvStencil1D,
    ConvStencil2D,
    ConvStencil3D,
    ConvStencilMethod,
)
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_apply
from repro.stencil.weights import box_weights


class TestConvStencil2D:
    @pytest.mark.parametrize("name", ["Box-2D9P", "Box-2D49P", "Star-2D13P", "Heat-2D"])
    def test_simulated_matches_reference(self, rng, name):
        w = get_kernel(name).weights
        eng = ConvStencil2D(w.as_matrix())
        x = rng.normal(size=(21 + 2 * w.radius, 26 + 2 * w.radius))
        out, _ = eng.apply_simulated(x)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)

    def test_asymmetric_kernel(self, rng):
        w = box_weights(2, 2, rng=rng)
        eng = ConvStencil2D(w.as_matrix())
        x = rng.normal(size=(20, 23))
        out, _ = eng.apply_simulated(x)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)

    def test_eq13_loads_per_tile(self):
        """Eq. 13: 2 * ceil((2h+1)^2/4) fragment loads per tile."""
        for h, expected in [(1, 6), (2, 14), (3, 26), (4, 42)]:
            w = box_weights(h, 2, values=np.ones((2 * h + 1,) * 2))
            eng = ConvStencil2D(w.as_matrix())
            assert eng.fragment_loads_per_tile == expected
            assert eng.mma_per_tile == expected

    def test_measured_loads_match_eq13(self, rng):
        """The simulator's counters reproduce the closed form."""
        w = get_kernel("Box-2D49P").weights
        eng = ConvStencil2D(w.as_matrix())
        rows, cols = 32, 32
        x = rng.normal(size=(rows + 6, cols + 6))
        _, cnt = eng.apply_simulated(x)
        tiles = (rows // 8) * (cols // eng.tile_cols)
        assert cnt.shared_load_requests == tiles * eng.fragment_loads_per_tile
        assert cnt.mma_ops == cnt.shared_load_requests  # no fragment reuse

    def test_stores_exceed_lorastencil(self, rng):
        """The stencil2row matrices cost extra stores (Fig. 10)."""
        from repro.core.engine2d import LoRAStencil2D

        w = get_kernel("Box-2D49P").weights
        x = rng.normal(size=(38, 38))
        _, conv = ConvStencil2D(w.as_matrix()).apply_simulated(x)
        _, lora = LoRAStencil2D(w.as_matrix()).apply_simulated(x)
        assert conv.shared_store_requests > lora.shared_store_requests
        assert conv.shared_load_requests > lora.shared_load_requests

    def test_unaligned_grid(self, rng):
        w = get_kernel("Box-2D9P").weights
        eng = ConvStencil2D(w.as_matrix())
        x = rng.normal(size=(9 + 2, 13 + 2))
        out, _ = eng.apply_simulated(x)
        assert out.shape == (9, 13)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)

    def test_even_matrix_rejected(self):
        with pytest.raises(ValueError):
            ConvStencil2D(np.ones((4, 4)))


class TestConvStencil1D:
    @pytest.mark.parametrize("name", ["Heat-1D", "1D5P"])
    def test_simulated_matches_reference(self, rng, name):
        w = get_kernel(name).weights
        eng = ConvStencil1D(w)
        x = rng.normal(size=200 + 2 * w.radius)
        out, _ = eng.apply_simulated(x, block=96)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)

    def test_unaligned_length(self, rng):
        w = get_kernel("Heat-1D").weights
        eng = ConvStencil1D(w)
        x = rng.normal(size=77 + 2)
        out, _ = eng.apply_simulated(x, block=64)
        assert out.shape == (77,)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)

    def test_mma_equals_loads(self, rng):
        w = get_kernel("1D5P").weights
        eng = ConvStencil1D(w)
        x = rng.normal(size=96 + 4)
        _, cnt = eng.apply_simulated(x, block=96)
        assert cnt.mma_ops == cnt.shared_load_requests


class TestConvStencil3D:
    def test_simulated_matches_reference(self, rng):
        w = get_kernel("Box-3D27P").weights
        eng = ConvStencil3D(w.array)
        x = rng.normal(size=(3 + 2, 10 + 2, 12 + 2))
        out, _ = eng.apply_simulated(x)
        assert np.allclose(out, reference_apply(x, w), atol=1e-12)

    def test_every_plane_pays_the_gemm(self, rng):
        """Unlike LoRAStencil, single-point planes still run stencil2row
        GEMM — part of the paper's 3D argument."""
        from repro.core.engine3d import LoRAStencil3D

        w = get_kernel("Heat-3D").weights
        x = rng.normal(size=(3 + 2, 10 + 2, 10 + 2))
        _, conv = ConvStencil3D(w.array).apply_simulated(x)
        _, lora = LoRAStencil3D(w).apply_simulated(x)
        assert conv.mma_ops > lora.mma_ops

    def test_non_cube_rejected(self):
        with pytest.raises(ValueError):
            ConvStencil3D(np.ones((3, 3, 5)))


class TestConvStencilMethod:
    def test_2d_small_kernel_fused(self):
        m = ConvStencilMethod(get_kernel("Box-2D9P"))
        assert m.steps_per_sweep == 3
        assert m.engine.radius == 3

    def test_2d_large_kernel_unfused(self):
        m = ConvStencilMethod(get_kernel("Box-2D49P"))
        assert m.steps_per_sweep == 1

    def test_3d_fused(self):
        m = ConvStencilMethod(get_kernel("Heat-3D"))
        assert m.steps_per_sweep == 3
        assert isinstance(m.engine, ConvStencil3D)

    def test_apply_is_single_base_step(self, rng):
        k = get_kernel("Box-2D9P")
        m = ConvStencilMethod(k)
        x = rng.normal(size=(14, 14))
        assert np.allclose(m.apply(x), reference_apply(x, k.weights))

    def test_footprint_per_point_step(self):
        m = ConvStencilMethod(get_kernel("Box-2D9P"))
        fp = m.footprint((32, 32))
        assert fp.points == 32 * 32 * 3  # normalized per base timestep
        assert fp.counters.mma_ops > 0
