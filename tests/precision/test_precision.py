"""Tests for the FP16 TCStencil pipeline and error-growth analysis."""

import numpy as np
import pytest

from repro.precision import TCStencilFP16, precision_sweep
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_apply
from repro.stencil.weights import box_weights


class TestTCStencilFP16:
    @pytest.mark.parametrize("name", ["Heat-2D", "Box-2D9P", "Box-2D49P"])
    def test_approximates_reference(self, rng, name):
        """FP16-correct: error present, but at half-precision scale."""
        w = get_kernel(name).weights
        eng = TCStencilFP16(w)
        x = rng.normal(size=(30 + 2 * w.radius, 41 + 2 * w.radius))
        out = eng.apply(x)
        ref = reference_apply(x, w)
        err = np.abs(out - ref).max()
        assert 0 < err < 5e-3  # genuine FP16 rounding, not a bug

    def test_far_better_than_garbage(self, rng):
        w = get_kernel("Box-2D9P").weights
        eng = TCStencilFP16(w)
        x = rng.normal(size=(20, 20))
        out = eng.apply(x)
        ref = reference_apply(x, w)
        assert np.linalg.norm(out - ref) < 1e-2 * np.linalg.norm(ref)

    def test_passes_property(self):
        assert TCStencilFP16(get_kernel("Box-2D49P").weights).passes == 7
        assert TCStencilFP16(get_kernel("Heat-2D").weights).passes == 3

    def test_shape_handling(self, rng):
        w = get_kernel("Box-2D9P").weights
        eng = TCStencilFP16(w)
        x = rng.normal(size=(19, 23))  # deliberately unaligned
        assert eng.apply(x).shape == (17, 21)

    def test_exact_for_fp16_exact_data(self, rng):
        """Inputs and weights representable in FP16 with small products:
        the pipeline is then exact, proving error comes only from
        quantization."""
        vals = rng.integers(-2, 3, size=(3, 3)).astype(np.float64) * 0.25
        w = box_weights(1, 2, values=vals)
        x = rng.integers(-4, 5, size=(18, 18)).astype(np.float64) * 0.5
        out = TCStencilFP16(w).apply(x)
        assert np.array_equal(out, reference_apply(x, w))

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            TCStencilFP16(np.ones((4, 4)))
        eng = TCStencilFP16(get_kernel("Box-2D9P").weights)
        with pytest.raises(ValueError):
            eng.apply(rng.normal(size=10))


class TestPrecisionSweep:
    def test_points_per_checkpoint(self):
        pts = precision_sweep(
            get_kernel("Heat-2D").weights, grid_shape=(32, 32), steps=(1, 3, 5)
        )
        assert [p.step for p in pts] == [1, 3, 5]

    def test_errors_at_fp16_scale(self):
        pts = precision_sweep(
            get_kernel("Heat-2D").weights, grid_shape=(32, 32), steps=(1, 8)
        )
        for p in pts:
            assert 1e-6 < p.max_abs_err < 1e-2
            assert p.rel_l2_err > 0

    def test_error_nonvanishing_over_time(self):
        """The FP16 trajectory keeps a persistent gap from FP64."""
        pts = precision_sweep(
            get_kernel("Box-2D9P").weights, grid_shape=(32, 32), steps=(1, 16)
        )
        assert pts[-1].rel_l2_err > 0.25 * pts[0].rel_l2_err

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            precision_sweep(get_kernel("Heat-3D").weights)

    def test_deterministic(self):
        a = precision_sweep(get_kernel("Heat-2D").weights, steps=(2,), seed=7)
        b = precision_sweep(get_kernel("Heat-2D").weights, steps=(2,), seed=7)
        assert a == b
