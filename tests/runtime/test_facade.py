"""The repro.compile facade: apply_grid, deprecations, compatibility."""

import numpy as np
import pytest

import repro
from repro.runtime import DEFAULT_PLAN_CACHE, PlanCache
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_apply


class TestCompileFacade:
    def test_exported_at_top_level(self):
        assert repro.compile is not None
        for name in ("compile", "CompiledStencil", "StencilPlan", "PlanCache"):
            assert name in repro.__all__

    def test_infers_ndim(self):
        assert repro.compile(get_kernel("Heat-1D").weights).ndim == 1
        assert repro.compile(get_kernel("Heat-2D").weights).ndim == 2
        assert repro.compile(get_kernel("Heat-3D").weights).ndim == 3

    def test_apply_matches_engine(self, rng):
        k = get_kernel("Box-2D9P")
        compiled = repro.compile(k.weights)
        x = rng.normal(size=(20, 20))
        np.testing.assert_array_equal(
            compiled.apply(x), compiled.engine.apply(x)
        )

    def test_default_cache_is_shared(self):
        w = get_kernel("Star-2D13P").weights
        a = repro.compile(w)
        b = repro.compile(w)
        assert a.plan is b.plan
        assert a.key in DEFAULT_PLAN_CACHE

    def test_private_cache_isolated(self):
        w = get_kernel("Star-2D13P").weights
        mine = PlanCache(maxsize=2)
        c = repro.compile(w, cache=mine)
        assert c.key in mine
        assert len(mine) == 1


class TestApplyGrid:
    def test_constant_boundary_matches_manual_pad(self, rng):
        k = get_kernel("Box-2D49P")
        compiled = repro.compile(k.weights)
        x = rng.normal(size=(20, 20))
        padded = np.pad(x, k.weights.radius)
        np.testing.assert_array_equal(
            compiled.apply_grid(x), compiled.apply(padded)
        )

    def test_output_shape_matches_input(self, rng):
        for name, shape in [
            ("Heat-1D", (40,)),
            ("Heat-2D", (12, 14)),
            ("Heat-3D", (4, 6, 8)),
        ]:
            compiled = repro.compile(get_kernel(name).weights)
            x = rng.normal(size=shape)
            assert compiled.apply_grid(x).shape == shape

    def test_periodic_boundary(self, rng):
        k = get_kernel("Heat-2D")
        compiled = repro.compile(k.weights)
        x = rng.normal(size=(16, 16))
        h = k.weights.radius
        padded = np.pad(x, h, mode="wrap")
        np.testing.assert_array_equal(
            compiled.apply_grid(x, boundary="periodic"), compiled.apply(padded)
        )

    def test_matches_reference(self, rng):
        k = get_kernel("Box-2D9P")
        compiled = repro.compile(k.weights)
        x = rng.normal(size=(18, 18))
        padded = np.pad(x, k.weights.radius)
        np.testing.assert_allclose(
            compiled.apply_grid(x), reference_apply(padded, k.weights),
            atol=1e-12,
        )


class TestDeprecations:
    def test_direct_2d_construction_warns(self):
        w = get_kernel("Heat-2D").weights.as_matrix()
        with pytest.warns(DeprecationWarning, match="repro.compile"):
            repro.LoRAStencil2D(w)

    def test_direct_1d_construction_warns(self):
        w = get_kernel("Heat-1D").weights.as_vector()
        with pytest.warns(DeprecationWarning, match="repro.compile"):
            repro.LoRAStencil1D(w)

    def test_direct_3d_construction_warns(self):
        w = get_kernel("Heat-3D").weights
        with pytest.warns(DeprecationWarning, match="repro.compile"):
            repro.LoRAStencil3D(w)

    def test_core_decompose_reexport_warns(self):
        import repro.core

        with pytest.warns(DeprecationWarning, match="repro.compile"):
            repro.core.decompose
        with pytest.warns(DeprecationWarning, match="repro.compile"):
            repro.core.pyramidal_decompose
        with pytest.warns(DeprecationWarning, match="repro.compile"):
            repro.core.svd_decompose

    def test_lowrank_import_does_not_warn(self, recwarn):
        from repro.core.lowrank import decompose  # noqa: F401

        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_compile_does_not_warn(self, recwarn):
        repro.compile(get_kernel("Box-2D9P").weights)
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]


class TestBackwardsCompatibility:
    def test_old_engine_still_computes(self, rng):
        """Deprecated construction must keep working, warning aside."""
        k = get_kernel("Box-2D9P")
        with pytest.warns(DeprecationWarning):
            engine = repro.LoRAStencil2D(k.weights.as_matrix())
        x = rng.normal(size=(16, 16))
        np.testing.assert_array_equal(
            engine.apply(x), repro.compile(k.weights).apply(x)
        )

    def test_unknown_attribute_still_raises(self):
        import repro.core

        with pytest.raises(AttributeError):
            repro.core.does_not_exist
