"""Sharded simulated execution: numerics and merged counters."""

import numpy as np
import pytest

from repro.runtime import compile as compile_stencil
from repro.runtime.executor import _shard_bounds
from repro.stencil.kernels import get_kernel


class TestShardBounds:
    def test_covers_range_contiguously(self):
        bounds = _shard_bounds(100, 3, align=8)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 100
        for (_, e0), (s1, _) in zip(bounds, bounds[1:]):
            assert e0 == s1

    def test_alignment(self):
        for start, end in _shard_bounds(100, 3, align=8)[:-1]:
            assert (end - start) % 8 == 0

    def test_degenerate_single_shard(self):
        assert _shard_bounds(10, 4, align=64) == [(0, 10)]


class TestShardedSimulated:
    @pytest.mark.parametrize(
        "kernel,interior,shards",
        [
            ("Heat-1D", (256,), 2),
            ("Box-2D49P", (24, 24), 3),
            ("Heat-3D", (6, 10, 10), 2),
        ],
    )
    def test_matches_unsharded(self, kernel, interior, shards, rng):
        k = get_kernel(kernel)
        h = k.weights.radius
        compiled = compile_stencil(k.weights)
        x = rng.normal(size=tuple(s + 2 * h for s in interior))

        single, counters_single = compiled.apply_simulated(x)
        sharded, counters_sharded = compiled.apply_simulated(x, shards=shards)

        np.testing.assert_allclose(sharded, single, rtol=0, atol=1e-12)
        # tile-aligned shards compute exactly the same warp tiles
        assert counters_sharded.mma_ops == counters_single.mma_ops
        assert (
            counters_sharded.shared_load_requests
            == counters_single.shared_load_requests
        )

    def test_counters_sum_over_shards(self, rng):
        """The merged footprint is the sum of the per-shard sweeps."""
        k = get_kernel("Box-2D9P")
        h = k.weights.radius
        compiled = compile_stencil(k.weights)
        x = rng.normal(size=(16 + 2 * h, 16 + 2 * h))
        _, merged = compiled.apply_simulated(x, shards=2)

        total = 0
        for s0, s1 in _shard_bounds(16, 2, compiled.engine.tile.out_rows):
            _, c = compiled.apply_simulated(x[s0 : s1 + 2 * h])
            total += c.mma_ops
        assert merged.mma_ops == total

    def test_shards_one_equals_plain(self, rng):
        k = get_kernel("Heat-2D")
        compiled = compile_stencil(k.weights)
        x = rng.normal(size=(20, 20))
        a, ca = compiled.apply_simulated(x)
        b, cb = compiled.apply_simulated(x, shards=1)
        np.testing.assert_array_equal(a, b)
        assert ca.mma_ops == cb.mma_ops


class TestSimulatedBatch:
    def test_merged_counters_scale_with_batch(self, rng):
        k = get_kernel("Box-2D9P")
        h = k.weights.radius
        compiled = compile_stencil(k.weights)
        grids = rng.normal(size=(3, 12 + 2 * h, 12 + 2 * h))

        outs, merged = compiled.apply_simulated_batch(grids)
        assert outs.shape == (3, 12, 12)
        _, one = compiled.apply_simulated(grids[0])
        assert merged.mma_ops == 3 * one.mma_ops
        for i, g in enumerate(grids):
            expected, _ = compiled.apply_simulated(g)
            np.testing.assert_array_equal(outs[i], expected)
