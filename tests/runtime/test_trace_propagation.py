"""Cross-worker trace propagation and backend-downgrade signalling."""

import numpy as np
import pytest

import repro
from repro import telemetry
from repro.errors import BackendError
from repro.faults import FaultPlan, FaultSpec, RecoveryPolicy
from repro.stencil.kernels import get_kernel
from repro.telemetry.log import EVENT_LOG
from repro.telemetry.spans import TRACER


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def _compiled(backend=None):
    return repro.compile(get_kernel("Box-2D9P").weights, backend=backend)


def _padded(rng, interior=48):
    k = get_kernel("Box-2D9P")
    return np.pad(rng.normal(size=(interior, interior)), k.weights.radius)


FAST = RecoveryPolicy(backoff_base_s=0.0, backoff_cap_s=0.0)


class TestShardedTrace:
    def test_sharded_sweep_is_one_trace(self, rng):
        compiled = _compiled()
        telemetry.enable()
        compiled.apply_simulated(_padded(rng), shards=3)
        (root,) = TRACER.roots()
        assert root.name == "runtime.apply_simulated"
        spans = list(root.walk())
        assert {s.trace_id for s in spans} == {root.trace_id}
        shard_spans = [s for s in spans if s.name == "runtime.shard"]
        assert len(shard_spans) == 3
        assert all(s.parent is root for s in shard_spans)

    def test_faulted_sweep_stays_one_trace_with_joined_events(self, rng):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="shard_crash", site=1),
                FaultSpec(kind="flip_acc", site=3, shard=0),
            )
        )
        compiled = _compiled()
        padded = _padded(rng)
        reference, _ = compiled.apply_simulated(padded)
        telemetry.enable()
        out, _ = compiled.apply_simulated(
            padded, shards=3, faults=plan, verify="abft", policy=FAST
        )
        np.testing.assert_array_equal(out, reference)

        # every span of the supervised sweep shares the root's trace
        (root,) = TRACER.roots()
        assert {s.trace_id for s in root.walk()} == {root.trace_id}

        # and every supervisor/injector decision joined that same trace
        kinds = {e.kind for e in EVENT_LOG.events()}
        assert "fault.injected" in kinds
        assert "shard.crash" in kinds
        assert "shard.backoff" in kinds
        assert "shard.recovered" in kinds
        for event in EVENT_LOG.events():
            assert event.trace_id == root.trace_id, event.kind

    def test_batch_threaded_workers_join_the_parent_trace(self, rng):
        compiled = _compiled()
        grids = rng.normal(size=(3, 14, 14))
        telemetry.enable()
        compiled.apply_batch(grids, threaded=True)
        (root,) = TRACER.roots()
        lanes = [s for s in root.walk() if s.name == "runtime.batch_grid"]
        assert len(lanes) == 3
        assert {s.trace_id for s in lanes} == {root.trace_id}

    def test_disabled_telemetry_still_logs_decisions(self, rng):
        plan = FaultPlan(specs=(FaultSpec(kind="shard_crash", site=0),))
        compiled = _compiled()
        assert not telemetry.is_enabled()
        compiled.apply_simulated(
            _padded(rng), shards=2, faults=plan, verify="abft", policy=FAST
        )
        assert TRACER.roots() == []
        crash = [e for e in EVENT_LOG.events() if e.kind == "shard.crash"]
        assert crash  # the log is always on...
        assert crash[0].trace_id is None  # ...but has no trace to join

    def test_trace_lands_in_the_run_record(self, rng):
        compiled = _compiled()
        with telemetry.capture():
            compiled.apply_simulated(_padded(rng), shards=2)
            record = telemetry.run_record("sharded")
        trace_ids = {s["trace_id"] for s in record["spans"]}
        assert len(trace_ids) == 1
        telemetry.validate_run_record(record)


class TestBackendDowngrade:
    def _downgrades(self):
        metric = telemetry.REGISTRY.get("repro_backend_downgrades_total")
        return 0 if metric is None else metric.value

    def test_defaulted_vectorized_downgrades_loudly(self, rng):
        compiled = _compiled(backend="vectorized")
        padded = _padded(rng, 16)
        before = self._downgrades()
        out, _ = compiled.apply_simulated(padded, verify="abft")
        reference, _ = _compiled().apply_simulated(padded)
        np.testing.assert_array_equal(out, reference)
        assert self._downgrades() == before + 1
        (event,) = [
            e for e in EVENT_LOG.events() if e.kind == "backend.downgrade"
        ]
        assert event.level == "warning"
        assert event.fields["requested"] == "vectorized"
        assert event.fields["resolved"] == "interpreter"

    def test_env_default_vectorized_downgrades_loudly(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "vectorized")
        compiled = _compiled()
        before = self._downgrades()
        compiled.apply_simulated(_padded(rng, 16), verify="abft")
        assert self._downgrades() == before + 1

    def test_explicit_vectorized_with_faults_is_a_typed_error(self, rng):
        compiled = _compiled()
        with pytest.raises(BackendError):
            compiled.apply_simulated(
                _padded(rng, 16), backend="vectorized", verify="abft"
            )
        # a refusal is not a downgrade: nothing was silently resolved
        assert not [
            e for e in EVENT_LOG.events() if e.kind == "backend.downgrade"
        ]

    def test_plain_vectorized_run_does_not_signal(self, rng):
        compiled = _compiled(backend="vectorized")
        before = self._downgrades()
        compiled.apply_simulated(_padded(rng, 16))
        assert self._downgrades() == before
        assert not [
            e for e in EVENT_LOG.events() if e.kind == "backend.downgrade"
        ]
