"""Tests for the compile-once runtime (plans, cache, executors, facade)."""
