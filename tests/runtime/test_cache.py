"""PlanCache behaviour: hits, misses, eviction, and no re-compilation."""

import threading
from unittest import mock

import numpy as np
import pytest

from repro import core
from repro.runtime import PlanCache, build_plan
from repro.runtime import compile as compile_stencil
from repro.stencil.kernels import get_kernel


def _plan_for(value: float):
    return build_plan(np.full((3, 3), value))


class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache(maxsize=4)
        plan = _plan_for(0.1)
        assert cache.get(plan.key) is None
        cache.put(plan)
        assert cache.get(plan.key) is plan
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5

    def test_contains_and_len(self):
        cache = PlanCache(maxsize=4)
        plan = _plan_for(0.1)
        cache.put(plan)
        assert plan.key in cache
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = PlanCache(maxsize=2)
        a, b, c = _plan_for(0.1), _plan_for(0.2), _plan_for(0.3)
        cache.put(a)
        cache.put(b)
        cache.get(a.key)  # refresh a: b becomes LRU
        cache.put(c)
        assert a.key in cache and c.key in cache
        assert b.key not in cache
        assert cache.stats().evictions == 1

    def test_get_or_build_builds_once(self):
        cache = PlanCache(maxsize=4)
        plan = _plan_for(0.1)
        calls = []

        def builder():
            calls.append(1)
            return plan

        assert cache.get_or_build(plan.key, builder) is plan
        assert cache.get_or_build(plan.key, builder) is plan
        assert len(calls) == 1

    def test_get_or_build_rejects_wrong_key(self):
        cache = PlanCache(maxsize=4)
        with pytest.raises(ValueError):
            cache.get_or_build("not-the-key", lambda: _plan_for(0.1))

    def test_clear_resets(self):
        cache = PlanCache(maxsize=4)
        cache.put(_plan_for(0.1))
        cache.get("missing")
        cache.clear()
        stats = cache.stats()
        assert len(cache) == 0
        assert (stats.hits, stats.misses, stats.evictions) == (0, 0, 0)

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_hit_rate_zero_lookups(self):
        """A never-used cache reports 0.0, not ZeroDivisionError."""
        stats = PlanCache(maxsize=4).stats()
        assert stats.lookups == 0
        assert stats.hit_rate == 0.0
        assert "hit rate 0%" in stats.summary()

    def test_concurrent_get_or_build_loses_no_stats(self):
        """Threads hammering one key: every lookup lands in hits+misses,
        and the cache converges on a single plan for the key."""
        cache = PlanCache(maxsize=4)
        plan = _plan_for(0.1)
        per_thread, n_threads = 25, 8
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                got = cache.get_or_build(plan.key, lambda: _plan_for(0.1))
                assert got.key == plan.key

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = cache.stats()
        assert stats.lookups == per_thread * n_threads
        # racing threads may each build the missing key (benign, by
        # design), but misses can never outnumber the racers
        assert 1 <= stats.misses <= n_threads
        assert stats.hits == stats.lookups - stats.misses
        assert len(cache) == 1


class TestCompileCaching:
    def test_second_compile_skips_decomposition(self):
        """A cache hit must not re-run the low-rank decomposition."""
        w = get_kernel("Box-2D49P").weights
        cache = PlanCache(maxsize=8)
        real = core.lowrank.decompose
        with mock.patch.object(
            core.lowrank, "decompose", side_effect=real
        ) as spy:
            # the 2D engine resolves `decompose` at import time, so patch
            # its module-level reference too
            with mock.patch.object(
                core.engine2d, "decompose", side_effect=real
            ) as engine_spy:
                first = compile_stencil(w, cache=cache)
                calls_after_first = spy.call_count + engine_spy.call_count
                assert calls_after_first >= 1
                second = compile_stencil(w, cache=cache)
                assert (
                    spy.call_count + engine_spy.call_count == calls_after_first
                )
        assert second.plan is first.plan

    def test_distinct_inputs_miss(self):
        cache = PlanCache(maxsize=8)
        a = compile_stencil(get_kernel("Heat-2D").weights, cache=cache)
        b = compile_stencil(get_kernel("Box-2D9P").weights, cache=cache)
        assert a.plan is not b.plan
        assert cache.stats().misses == 2

    def test_cache_none_compiles_fresh(self):
        w = get_kernel("Heat-2D").weights
        a = compile_stencil(w, cache=None)
        b = compile_stencil(w, cache=None)
        assert a.plan is not b.plan
        assert a.plan.key == b.plan.key
