"""The unified ``backend=`` execution API.

Covers the registry itself, the backend-equivalence matrix (bit-identical
grids AND EventCounters across interpreter / vectorized / oracle, over
1D/2D/3D kernels and schedules), the fault-mode composition rules, the
``oracle=`` deprecation shims, plan-key/plan-cache backend coverage, the
``REPRO_BACKEND`` session default, and a hypothesis property over random
grid shapes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.config import OptimizationConfig
from repro.errors import BackendError
from repro.runtime import PlanCache
from repro.runtime.backends import (
    DEFAULT_BACKEND,
    ExecutionBackend,
    _BACKENDS,
    available_backends,
    default_backend,
    engine_backend,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.runtime.plan import plan_key
from repro.stencil.kernels import get_kernel


def _padded(weights, shape, seed=0):
    rng = np.random.default_rng(seed)
    return np.pad(rng.normal(size=shape), weights.radius)


BACKENDS = ("interpreter", "vectorized", "oracle")


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtin_backends_registered_in_order(self):
        assert available_backends() == BACKENDS

    def test_get_backend_attributes(self):
        assert get_backend("interpreter").supports_faults
        assert get_backend("oracle").supports_faults
        vec = get_backend("vectorized")
        assert not vec.supports_faults
        assert vec.counters == "derived"
        assert get_backend("interpreter").counters == "measured"

    def test_unknown_backend_is_typed_error(self):
        with pytest.raises(BackendError, match="unknown execution backend"):
            get_backend("simd")

    def test_register_backend_roundtrip(self):
        custom = ExecutionBackend(
            name="test-only",
            description="registry round-trip fixture",
            counters="measured",
            supports_faults=False,
        )
        try:
            assert register_backend(custom) is custom
            assert get_backend("test-only") is custom
            assert "test-only" in available_backends()
        finally:
            _BACKENDS.pop("test-only", None)

    def test_engine_backend_resolution(self):
        assert engine_backend(None) == "interpreter"
        assert engine_backend(None, oracle=True) == "oracle"
        assert engine_backend("vectorized", oracle=True) == "vectorized"
        with pytest.raises(BackendError):
            engine_backend("nope")


# ---------------------------------------------------------------------------
# backend-equivalence matrix: grids and counters bit-identical
# ---------------------------------------------------------------------------
EQUIV_CASES = [
    ("1D5P", (257,)),
    ("Heat-1D", (130,)),
    ("Box-2D9P", (24, 40)),
    ("Star-2D13P", (17, 23)),
    ("Box-2D49P", (32, 32)),
    ("Heat-3D", (4, 12, 16)),
    ("Box-3D27P", (3, 10, 12)),
]


class TestBackendEquivalence:
    @pytest.mark.parametrize("name,shape", EQUIV_CASES)
    def test_matrix(self, name, shape):
        k = get_kernel(name)
        compiled = repro.compile(k.weights, cache=None)
        padded = _padded(k.weights, shape)
        results = {
            b: compiled.apply_simulated(padded, backend=b) for b in BACKENDS
        }
        out0, ev0 = results["interpreter"]
        for b in ("vectorized", "oracle"):
            out, ev = results[b]
            assert np.array_equal(out0, out), b
            assert ev0 == ev, b

    @pytest.mark.parametrize("schedule", ["eager", "prefetch"])
    def test_vectorized_tracks_schedule(self, schedule):
        k = get_kernel("Box-2D9P")
        config = OptimizationConfig(schedule=schedule)
        compiled = repro.compile(k.weights, config=config, cache=None)
        padded = _padded(k.weights, (24, 28))
        out_i, ev_i = compiled.apply_simulated(padded)
        out_v, ev_v = compiled.apply_simulated(padded, backend="vectorized")
        assert np.array_equal(out_i, out_v)
        assert ev_i == ev_v

    def test_compiled_in_backend_is_apply_default(self):
        k = get_kernel("Box-2D9P")
        compiled = repro.compile(k.weights, cache=None, backend="vectorized")
        assert compiled.plan.backend == "vectorized"
        reference = repro.compile(k.weights, cache=None)
        padded = _padded(k.weights, (16, 24))
        out_v, ev_v = compiled.apply_simulated(padded)  # no backend= arg
        out_i, ev_i = reference.apply_simulated(padded)
        assert np.array_equal(out_i, out_v)
        assert ev_i == ev_v

    def test_sharded_backend_equivalence(self):
        k = get_kernel("Box-2D9P")
        compiled = repro.compile(k.weights, cache=None)
        padded = _padded(k.weights, (48, 40))
        out_i, ev_i = compiled.apply_simulated(padded, shards=3)
        out_v, ev_v = compiled.apply_simulated(
            padded, shards=3, backend="vectorized"
        )
        assert np.array_equal(out_i, out_v)
        assert ev_i == ev_v

    def test_cuda_core_plan_falls_back_silently(self):
        # no lowered tile program exists; an explicit vectorized request
        # runs the same eager CUDA-core path instead of erroring
        k = get_kernel("Box-2D9P")
        config = OptimizationConfig(use_tensor_cores=False)
        compiled = repro.compile(k.weights, config=config, cache=None)
        assert compiled.program is None
        padded = _padded(k.weights, (16, 16))
        out_i, ev_i = compiled.apply_simulated(padded)
        out_v, ev_v = compiled.apply_simulated(padded, backend="vectorized")
        assert np.array_equal(out_i, out_v)
        assert ev_i == ev_v


# ---------------------------------------------------------------------------
# fault-mode composition rules
# ---------------------------------------------------------------------------
class TestFaultModeRules:
    def test_explicit_vectorized_with_verify_raises(self):
        k = get_kernel("Box-2D9P")
        compiled = repro.compile(k.weights, cache=None)
        padded = _padded(k.weights, (16, 16))
        with pytest.raises(BackendError, match="does not support"):
            compiled.apply_simulated(
                padded, verify="abft", backend="vectorized"
            )

    def test_defaulted_vectorized_downgrades_for_verify(self):
        # plan compiled for the vectorized backend: fault mode silently
        # falls back to the interpreter rather than erroring
        k = get_kernel("Box-2D9P")
        compiled = repro.compile(k.weights, cache=None, backend="vectorized")
        padded = _padded(k.weights, (16, 16))
        out, ev = compiled.apply_simulated(padded, verify="abft")
        ref_out, ref_ev = repro.compile(k.weights, cache=None).apply_simulated(
            padded, verify="abft"
        )
        assert np.array_equal(out, ref_out)
        assert ev == ref_ev

    def test_resolve_backend_rules_directly(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None) == DEFAULT_BACKEND
        assert resolve_backend(None, plan_default="vectorized") == "vectorized"
        assert resolve_backend("oracle", plan_default="vectorized") == "oracle"
        # defaulted vectorized + fault mode -> silent downgrade
        assert (
            resolve_backend(None, plan_default="vectorized", fault_mode=True)
            == DEFAULT_BACKEND
        )
        with pytest.raises(BackendError, match="does not support"):
            resolve_backend("vectorized", fault_mode=True)
        with pytest.raises(BackendError, match="unknown execution backend"):
            resolve_backend("nope")


# ---------------------------------------------------------------------------
# oracle= deprecation shims
# ---------------------------------------------------------------------------
class TestOracleDeprecation:
    def test_facade_oracle_true_warns_and_still_works(self):
        k = get_kernel("Box-2D9P")
        compiled = repro.compile(k.weights, cache=None)
        padded = _padded(k.weights, (16, 24))
        ref_out, ref_ev = compiled.apply_simulated(padded, backend="oracle")
        with pytest.warns(DeprecationWarning, match="oracle= parameter"):
            out, ev = compiled.apply_simulated(padded, oracle=True)
        assert np.array_equal(out, ref_out)
        assert ev == ref_ev

    def test_facade_oracle_false_warns_but_runs_default(self):
        k = get_kernel("Box-2D9P")
        compiled = repro.compile(k.weights, cache=None)
        padded = _padded(k.weights, (16, 24))
        ref_out, ref_ev = compiled.apply_simulated(padded)
        with pytest.warns(DeprecationWarning, match="oracle= parameter"):
            out, ev = compiled.apply_simulated(padded, oracle=False)
        assert np.array_equal(out, ref_out)
        assert ev == ref_ev

    def test_executor_oracle_warns(self):
        k = get_kernel("Box-2D9P")
        compiled = repro.compile(k.weights, cache=None)
        padded = _padded(k.weights, (16, 24))
        with pytest.warns(DeprecationWarning, match="oracle= parameter"):
            compiled.runtime.apply_simulated(padded, oracle=True)

    def test_explicit_backend_wins_over_oracle_flag(self):
        k = get_kernel("Box-2D9P")
        compiled = repro.compile(k.weights, cache=None)
        padded = _padded(k.weights, (16, 24))
        ref_out, ref_ev = compiled.apply_simulated(padded, backend="vectorized")
        with pytest.warns(DeprecationWarning):
            out, ev = compiled.apply_simulated(
                padded, oracle=True, backend="vectorized"
            )
        assert np.array_equal(out, ref_out)
        assert ev == ref_ev

    def test_no_warning_without_oracle_argument(self, recwarn):
        k = get_kernel("Box-2D9P")
        compiled = repro.compile(k.weights, cache=None)
        compiled.apply_simulated(_padded(k.weights, (16, 16)))
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]


# ---------------------------------------------------------------------------
# plan-key v3 / plan-cache coverage
# ---------------------------------------------------------------------------
class TestPlanKeyAndCache:
    def test_plan_key_covers_backend(self):
        k = get_kernel("Box-2D9P")
        w = k.weights.as_matrix()
        keys = {plan_key(w, 2, backend=b) for b in BACKENDS}
        assert len(keys) == len(BACKENDS)

    def test_default_key_matches_explicit_interpreter(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        k = get_kernel("Box-2D9P")
        w = k.weights.as_matrix()
        assert plan_key(w, 2) == plan_key(w, 2, backend="interpreter")

    def test_cache_roundtrip_per_backend(self):
        k = get_kernel("Box-2D9P")
        cache = PlanCache(maxsize=8)
        vec = repro.compile(k.weights, cache=cache, backend="vectorized")
        interp = repro.compile(k.weights, cache=cache, backend="interpreter")
        assert vec.plan.key != interp.plan.key
        again = repro.compile(k.weights, cache=cache, backend="vectorized")
        assert again.plan is vec.plan  # cache hit, no recompilation
        assert cache.stats().hits >= 1

    def test_unknown_backend_rejected_at_compile(self):
        k = get_kernel("Box-2D9P")
        with pytest.raises(BackendError, match="unknown execution backend"):
            repro.compile(k.weights, cache=None, backend="fpga")


# ---------------------------------------------------------------------------
# REPRO_BACKEND session default
# ---------------------------------------------------------------------------
class TestEnvDefault:
    def test_env_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "vectorized")
        assert default_backend() == "vectorized"
        k = get_kernel("Box-2D9P")
        compiled = repro.compile(k.weights, cache=None)
        assert compiled.plan.backend == "vectorized"

    def test_env_unset_or_blank_is_interpreter(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend() == "interpreter"
        monkeypatch.setenv("REPRO_BACKEND", "  ")
        assert default_backend() == "interpreter"

    def test_env_invalid_is_typed_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "turbo")
        with pytest.raises(BackendError, match="REPRO_BACKEND"):
            default_backend()

    def test_env_default_matches_interpreter_numerics(self, monkeypatch):
        k = get_kernel("Box-2D9P")
        ref = repro.compile(k.weights, cache=None)
        padded = _padded(k.weights, (16, 24))
        ref_out, ref_ev = ref.apply_simulated(padded)
        monkeypatch.setenv("REPRO_BACKEND", "vectorized")
        compiled = repro.compile(k.weights, cache=None)
        out, ev = compiled.apply_simulated(padded)
        assert np.array_equal(out, ref_out)
        assert ev == ref_ev


# ---------------------------------------------------------------------------
# hypothesis property: random grid shapes
# ---------------------------------------------------------------------------
class TestShapeProperty:
    @given(
        rows=st.integers(min_value=9, max_value=48),
        cols=st.integers(min_value=9, max_value=48),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=12, deadline=None)
    def test_2d_vectorized_matches_interpreter(self, rows, cols, seed):
        k = get_kernel("Box-2D9P")
        compiled = repro.compile(k.weights)  # default cache: reuse the plan
        padded = _padded(k.weights, (rows, cols), seed=seed)
        out_i, ev_i = compiled.apply_simulated(padded)
        out_v, ev_v = compiled.apply_simulated(padded, backend="vectorized")
        assert np.array_equal(out_i, out_v)
        assert ev_i == ev_v

    @given(
        n=st.integers(min_value=65, max_value=400),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_1d_vectorized_matches_interpreter(self, n, seed):
        k = get_kernel("1D5P")
        compiled = repro.compile(k.weights)
        padded = _padded(k.weights, (n,), seed=seed)
        out_i, ev_i = compiled.apply_simulated(padded)
        out_v, ev_v = compiled.apply_simulated(padded, backend="vectorized")
        assert np.array_equal(out_i, out_v)
        assert ev_i == ev_v
