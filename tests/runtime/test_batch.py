"""Vectorized batch execution equals looped single-grid execution."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.runtime import compile as compile_stencil
from repro.stencil.kernels import get_kernel

BATCH = 5


def _batch_for(kernel_name: str, rng, interior):
    k = get_kernel(kernel_name)
    h = k.weights.radius
    shape = tuple(s + 2 * h for s in interior)
    compiled = compile_stencil(k.weights)
    grids = rng.normal(size=(BATCH, *shape))
    return compiled, grids


class TestApplyBatchEquality:
    @pytest.mark.parametrize(
        "kernel,interior",
        [
            ("Heat-1D", (200,)),
            ("1D5P", (150,)),
            ("Heat-2D", (20, 24)),
            ("Box-2D49P", (17, 23)),
            ("Heat-3D", (5, 10, 12)),
            ("Box-3D27P", (4, 9, 11)),
        ],
    )
    def test_matches_looped_apply(self, kernel, interior, rng):
        compiled, grids = _batch_for(kernel, rng, interior)
        batched = compiled.apply_batch(grids)
        looped = np.stack([compiled.apply(g) for g in grids])
        np.testing.assert_allclose(batched, looped, rtol=0, atol=1e-12)
        assert batched.shape == (BATCH, *interior)

    def test_accepts_list_of_grids(self, rng):
        compiled, grids = _batch_for("Heat-2D", rng, (12, 12))
        np.testing.assert_array_equal(
            compiled.apply_batch(list(grids)), compiled.apply_batch(grids)
        )

    def test_threaded_matches_vectorized(self, rng):
        compiled, grids = _batch_for("Box-2D9P", rng, (16, 18))
        np.testing.assert_allclose(
            compiled.apply_batch(grids, threaded=True),
            compiled.apply_batch(grids),
            rtol=0,
            atol=1e-12,
        )

    def test_matches_reference(self, rng):
        from repro.stencil.reference import reference_apply

        k = get_kernel("Star-2D13P")
        compiled, grids = _batch_for("Star-2D13P", rng, (14, 15))
        batched = compiled.apply_batch(grids)
        for i, g in enumerate(grids):
            np.testing.assert_allclose(
                batched[i], reference_apply(g, k.weights), atol=1e-12
            )


class TestBatchValidation:
    def test_empty_batch_rejected(self):
        compiled = compile_stencil(get_kernel("Heat-2D").weights)
        with pytest.raises(ShapeError):
            compiled.apply_batch([])
        with pytest.raises(ShapeError):
            compiled.apply_batch(np.empty((0, 10, 10)))

    def test_mixed_shapes_rejected(self, rng):
        compiled = compile_stencil(get_kernel("Heat-2D").weights)
        with pytest.raises(ShapeError):
            compiled.apply_batch(
                [rng.normal(size=(10, 10)), rng.normal(size=(12, 12))]
            )

    def test_wrong_rank_rejected(self, rng):
        compiled = compile_stencil(get_kernel("Heat-2D").weights)
        with pytest.raises(ShapeError):
            compiled.apply_batch(rng.normal(size=(2, 3, 10, 10)))

    def test_too_small_rejected(self, rng):
        compiled = compile_stencil(get_kernel("Box-2D49P").weights)
        with pytest.raises(ShapeError):
            compiled.apply_batch(rng.normal(size=(2, 6, 6)))
