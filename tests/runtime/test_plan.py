"""StencilPlan construction and content-addressed keys."""

import subprocess
import sys

import numpy as np
import pytest

from repro.core.config import OptimizationConfig
from repro.errors import ShapeError
from repro.runtime import build_plan, canonical_weights, plan_key
from repro.stencil.kernels import get_kernel


class TestCanonicalWeights:
    def test_array_passthrough(self):
        arr, nd = canonical_weights(np.ones((3, 3)))
        assert nd == 2
        assert arr.dtype == np.float64
        assert arr.flags["C_CONTIGUOUS"]

    def test_stencil_weights(self):
        w = get_kernel("Box-2D9P").weights
        arr, nd = canonical_weights(w)
        assert nd == 2
        np.testing.assert_array_equal(arr, w.as_matrix())

    def test_ndim_mismatch(self):
        with pytest.raises(ShapeError):
            canonical_weights(np.ones((3, 3)), ndim=1)

    def test_even_side_rejected(self):
        with pytest.raises(ShapeError):
            canonical_weights(np.ones((4, 4)))

    def test_0d_rejected(self):
        with pytest.raises(ShapeError):
            canonical_weights(np.float64(1.0))


class TestPlanKey:
    def test_deterministic(self):
        w = get_kernel("Box-2D49P").weights
        assert plan_key(w) == plan_key(w)

    def test_equal_for_equal_values(self):
        w = get_kernel("Box-2D49P").weights
        assert plan_key(w) == plan_key(w.as_matrix().copy())

    def test_differs_on_weights(self):
        assert plan_key(np.full((3, 3), 0.1)) != plan_key(np.full((3, 3), 0.2))

    def test_differs_on_config(self):
        w = np.full((3, 3), 0.1)
        assert plan_key(w) != plan_key(
            w, config=OptimizationConfig(use_bvs=False)
        )

    def test_differs_on_tile_shape(self):
        w = np.full((3, 3), 0.1)
        assert plan_key(w) != plan_key(w, tile_shape=(8, 16))

    def test_differs_on_ndim_same_bytes(self):
        v = np.array([0.25, 0.5, 0.25])
        m = np.outer(v, v)  # different shape => different key material
        assert plan_key(v) != plan_key(m)

    def test_stable_across_processes(self):
        """The key must not depend on PYTHONHASHSEED or process state."""
        w = get_kernel("Heat-2D").weights
        here = plan_key(w, backend="interpreter")
        code = (
            "from repro.runtime import plan_key\n"
            "from repro.stencil.kernels import get_kernel\n"
            "print(plan_key(get_kernel('Heat-2D').weights,"
            " backend='interpreter'))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345"},
        )
        assert out.stdout.strip() == here


class TestBuildPlan:
    def test_2d_structure(self):
        k = get_kernel("Box-2D49P")
        plan = build_plan(k.weights)
        assert plan.ndim == 2
        assert plan.radius == 3
        assert plan.method == "pma"
        assert plan.rank == 4
        assert plan.block == (32, 64)
        assert plan.mma_per_tile == plan.engine.tile.mma_per_tile
        assert len(plan.u_matrices) == len(plan.v_matrices)
        assert plan.bvs_order is not None

    def test_1d_structure(self):
        plan = build_plan(get_kernel("Heat-1D").weights)
        assert plan.ndim == 1
        assert plan.method == "banded"
        assert plan.rank == 0
        assert plan.u_matrices == () and plan.v_matrices == ()
        assert plan.bvs_order is None

    def test_3d_structure(self):
        plan = build_plan(get_kernel("Heat-3D").weights)
        assert plan.ndim == 3
        assert plan.method == "planes"
        assert len(plan.plane_decompositions) == 3
        assert plan.mma_per_tile > 0

    def test_bvs_off_drops_order(self):
        k = get_kernel("Box-2D9P")
        plan = build_plan(k.weights, config=OptimizationConfig(use_bvs=False))
        assert plan.bvs_order is None

    def test_predicted_cost_positive(self):
        plan = build_plan(get_kernel("Box-2D9P").weights)
        assert plan.predicted_time_per_point_s > 0
        assert plan.predicted_gstencil_per_s > 0

    def test_describe_mentions_key_facts(self):
        plan = build_plan(get_kernel("Box-2D49P").weights)
        text = plan.describe()
        assert plan.key[:16] in text
        assert "pma" in text and "1x1 apex" in text

    def test_tile_shape_only_2d(self):
        with pytest.raises(ShapeError):
            build_plan(get_kernel("Heat-1D").weights, tile_shape=(8, 8))

    def test_float32_rejected(self):
        with pytest.raises(ShapeError):
            build_plan(get_kernel("Heat-2D").weights, dtype=np.float32)

    def test_key_matches_plan_key(self):
        w = get_kernel("Star-2D13P").weights
        assert build_plan(w).key == plan_key(w)


class TestLoweredArtifactOnPlan:
    def test_plan_carries_lowered_program(self):
        plan = build_plan(get_kernel("Box-2D9P").weights)
        assert plan.lowered.schedule == "eager"
        assert plan.program is not None
        assert plan.program is plan.lowered.tile.program
        # the engine executes the very program the plan carries
        assert plan.engine.lowered is plan.lowered.tile

    def test_schedule_knob_changes_key_and_program_order(self):
        k = get_kernel("Box-2D49P")
        eager = build_plan(k.weights)
        prefetch = build_plan(
            k.weights, config=OptimizationConfig(schedule="prefetch")
        )
        assert eager.key != prefetch.key
        assert prefetch.schedule == "prefetch"
        ops = [i.op for i in prefetch.program.instrs]
        n_loads = ops.count("load_x")
        assert all(op == "load_x" for op in ops[:n_loads])

    def test_1d_plan_program(self):
        plan = build_plan(get_kernel("Heat-1D").weights)
        ops = {i.op for i in plan.program.instrs}
        assert ops == {"load_x", "mma"}

    def test_3d_plan_program_per_plane(self):
        plan = build_plan(get_kernel("Heat-3D").weights)
        programs = plan.program
        assert isinstance(programs, tuple)
        assert len(programs) == len(plan.engine.planes)
        # star off-centre planes are point-wise -> no program
        assert programs.count(None) == len(plan.engine.cuda_core_planes)

    def test_cuda_core_plan_has_no_program(self):
        plan = build_plan(
            get_kernel("Box-2D9P").weights,
            config=OptimizationConfig(use_tensor_cores=False),
        )
        assert plan.program is None
        assert plan.lowered.tile is None

    def test_describe_includes_lowering_line(self):
        plan = build_plan(get_kernel("Box-2D9P").weights)
        assert "lowering" in plan.describe()
        assert "eager" in plan.describe()
