"""Tests for communication-avoiding temporal blocking."""

import numpy as np
import pytest

from repro.parallel import SimulatedCluster
from repro.parallel.temporal import run_temporal_blocked, temporal_halo_bytes
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_iterate


class TestExactness:
    @pytest.mark.parametrize("boundary", ["constant", "periodic"])
    @pytest.mark.parametrize("block_steps", [1, 2, 3])
    def test_matches_reference_trajectory(self, rng, boundary, block_steps):
        w = get_kernel("Box-2D9P").weights
        x = rng.normal(size=(24, 30))
        cluster = SimulatedCluster(w, x.shape, (2, 2), boundary=boundary)
        out, _ = run_temporal_blocked(cluster, x, 6, block_steps)
        ref = reference_iterate(x, w, 6, boundary=boundary)
        assert np.allclose(out, ref, atol=1e-9)

    def test_matches_per_step_exchange(self, rng):
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(20, 20))
        cluster = SimulatedCluster(w, x.shape, (2, 2))
        blocked, _ = run_temporal_blocked(cluster, x, 4, 2)
        per_step = SimulatedCluster(w, x.shape, (2, 2)).run(x, 4)
        assert np.allclose(blocked, per_step, atol=1e-10)

    def test_radius3_kernel(self, rng):
        w = get_kernel("Box-2D49P").weights
        x = rng.normal(size=(32, 32))
        cluster = SimulatedCluster(w, x.shape, (2, 2))
        out, _ = run_temporal_blocked(cluster, x, 4, 2)
        ref = reference_iterate(x, w, 4)
        assert np.allclose(out, ref, atol=1e-9)

    def test_single_device(self, rng):
        w = get_kernel("Box-2D9P").weights
        x = rng.normal(size=(16, 16))
        cluster = SimulatedCluster(w, x.shape, (1, 1))
        out, exchanged = run_temporal_blocked(cluster, x, 4, 4)
        assert np.allclose(out, reference_iterate(x, w, 4), atol=1e-10)
        assert exchanged == 0


class TestCommunication:
    def test_blocking_reduces_message_rounds(self, rng):
        w = get_kernel("Box-2D9P").weights
        cluster = SimulatedCluster(w, (64, 64), (2, 2))
        per_step, blocked = temporal_halo_bytes(cluster, steps=8, block_steps=4)
        # deep halo is larger per exchange but there are 4x fewer rounds;
        # total bytes stay at least comparable and rounds drop 4x
        assert blocked < 2 * per_step
        _, measured = run_temporal_blocked(
            cluster, np.zeros((64, 64)), 8, 4
        )
        assert measured == blocked

    def test_bytes_model_matches_measurement(self, rng):
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(32, 32))
        cluster = SimulatedCluster(w, x.shape, (2, 2))
        _, measured = run_temporal_blocked(cluster, x, 6, 3)
        _, modelled = temporal_halo_bytes(cluster, steps=6, block_steps=3)
        assert measured == modelled


class TestRaggedRounds:
    @pytest.mark.parametrize("boundary", ["constant", "periodic"])
    @pytest.mark.parametrize("steps,block_steps", [(5, 2), (7, 3), (1, 4)])
    def test_indivisible_steps_run_ragged_final_round(
        self, rng, boundary, steps, block_steps
    ):
        # regression: steps % block_steps != 0 used to raise ValueError;
        # it now ends with a ragged round advancing the remainder
        w = get_kernel("Box-2D9P").weights
        x = rng.normal(size=(24, 24))
        cluster = SimulatedCluster(w, x.shape, (2, 2), boundary=boundary)
        out, _ = run_temporal_blocked(cluster, x, steps, block_steps)
        ref = reference_iterate(x, w, steps, boundary=boundary)
        assert np.allclose(out, ref, atol=1e-9)
        # and bit-identical to the per-step exchange trajectory
        per_step = SimulatedCluster(
            w, x.shape, (2, 2), boundary=boundary
        ).run(x, steps)
        assert np.array_equal(out, per_step)

    def test_ragged_round_count_and_bytes(self, rng):
        w = get_kernel("Heat-2D").weights
        cluster = SimulatedCluster(w, (24, 24), (2, 2))
        schedule = cluster.plan.schedule
        # 7 steps at block_steps=3 -> rounds of 3, 3, 1
        from dataclasses import replace

        assert replace(schedule, block_steps=3).phases(7) == (3, 3, 1)
        _, measured = run_temporal_blocked(
            cluster, rng.normal(size=(24, 24)), 7, 3
        )
        _, modelled = temporal_halo_bytes(cluster, steps=7, block_steps=3)
        assert measured == modelled


class TestValidation:

    def test_bad_block_steps_rejected(self):
        w = get_kernel("Box-2D9P").weights
        cluster = SimulatedCluster(w, (16, 16), (1, 1))
        with pytest.raises(ValueError):
            run_temporal_blocked(cluster, np.zeros((16, 16)), 4, 0)
