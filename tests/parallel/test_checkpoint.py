"""Checkpoint/restart: deterministic snapshots at temporal-round
barriers, bit-identical resume, tamper detection, halt-and-resume."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.faults import FaultPlan, FaultSpec, RecoveryPolicy
from repro.parallel.checkpoint import (
    CheckpointConfig,
    CheckpointError,
    CheckpointHalt,
    list_checkpoints,
    load_checkpoint,
    save_checkpoint,
)
from repro.parallel.cluster import ClusterRuntime
from repro.parallel.plan import distribute
from repro.stencil.kernels import get_kernel

FAST_POLICY = RecoveryPolicy(
    shard_timeout_s=20.0, shard_retries=2, backoff_base_s=0.001,
    backoff_cap_s=0.01,
)


def _heat2d_plan(shape=(24, 24), mesh=(2, 2), block_steps=3):
    w = get_kernel("Heat-2D").weights
    return w, distribute(w, shape, mesh, block_steps=block_steps)


class TestCheckpointConfig:
    def test_interval_validated(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointConfig(dir=str(tmp_path), every=0)

    def test_keep_validated(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointConfig(dir=str(tmp_path), keep=0)


class TestSaveLoadRoundTrip:
    def test_fields_survive(self, tmp_path, rng):
        blocks = {0: rng.normal(size=(4, 5)), 1: rng.normal(size=(4, 5))}
        ck = save_checkpoint(
            directory=str(tmp_path),
            plan_key="deadbeef" * 8,
            round_index=2,
            phases=(3, 3, 1),
            steps=7,
            exchanged_bytes=1234,
            round_log=[{"round": 0, "halo_bytes": 600}],
            blocks=blocks,
            mesh=(2, 1),
            global_shape=(8, 5),
            trace_id="abc123",
            meta={"kernel": "Heat-2D"},
        )
        loaded = load_checkpoint(str(tmp_path))
        assert loaded.plan_key == ck.plan_key
        assert loaded.round_index == 2
        assert tuple(loaded.phases) == (3, 3, 1)
        assert loaded.steps == 7
        assert loaded.exchanged_bytes == 1234
        assert loaded.round_log == [{"round": 0, "halo_bytes": 600}]
        assert loaded.trace_id == "abc123"
        assert loaded.meta == {"kernel": "Heat-2D"}
        for rank in blocks:
            assert np.array_equal(loaded.blocks[rank], blocks[rank])
        assert loaded.content_hash == ck.content_hash

    def test_tampered_block_rejected(self, tmp_path, rng):
        blocks = {0: rng.normal(size=(4, 4))}
        save_checkpoint(
            directory=str(tmp_path),
            plan_key="k" * 64,
            round_index=0,
            phases=(1,),
            steps=1,
            exchanged_bytes=0,
            round_log=[],
            blocks=blocks,
            mesh=(1,),
            global_shape=(4, 4),
        )
        npz = tmp_path / "ckpt-000000.npz"
        tampered = dict(np.load(npz))
        tampered["rank_0"] = tampered["rank_0"] + 1e-9
        np.savez(npz, **tampered)
        with pytest.raises(CheckpointError, match="content verification"):
            load_checkpoint(str(tmp_path))

    def test_tampered_manifest_rejected(self, tmp_path, rng):
        save_checkpoint(
            directory=str(tmp_path),
            plan_key="k" * 64,
            round_index=0,
            phases=(1,),
            steps=1,
            exchanged_bytes=0,
            round_log=[],
            blocks={0: rng.normal(size=(3, 3))},
            mesh=(1,),
            global_shape=(3, 3),
        )
        manifest = tmp_path / "ckpt-000000.json"
        doc = json.loads(manifest.read_text())
        doc["exchanged_bytes"] = 999
        manifest.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="content verification"):
            load_checkpoint(str(tmp_path))

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "nope"))

    def test_keep_prunes_oldest(self, tmp_path, rng):
        for i in range(4):
            save_checkpoint(
                directory=str(tmp_path),
                plan_key="k" * 64,
                round_index=i,
                phases=(1, 1, 1, 1),
                steps=4,
                exchanged_bytes=0,
                round_log=[],
                blocks={0: rng.normal(size=(3, 3))},
                mesh=(1,),
                global_shape=(3, 3),
                keep=2,
            )
        assert list_checkpoints(str(tmp_path)) == [2, 3]


class TestRunCheckpointResume:
    def test_resume_every_round_bit_identical(self, tmp_path, rng):
        w, plan = _heat2d_plan()
        x = rng.normal(size=(24, 24))
        baseline = ClusterRuntime(plan).run(x, 9).field

        ckdir = str(tmp_path / "ck")
        full = ClusterRuntime(plan).run(
            x, 9, checkpoint=CheckpointConfig(dir=ckdir)
        )
        assert np.array_equal(full.field, baseline)
        rounds = list_checkpoints(ckdir)
        assert rounds == [0, 1, 2]
        for r in rounds[:-1]:
            resumed = ClusterRuntime(plan).run(
                x, 9, resume_from=load_checkpoint(ckdir, round_index=r)
            )
            assert np.array_equal(resumed.field, baseline)
            # three-ledger reconciliation survives the resume
            assert resumed.exchanged_bytes == full.exchanged_bytes
            assert sum(
                e["halo_bytes"] for e in resumed.round_log
            ) == resumed.exchanged_bytes

    def test_resume_string_path(self, tmp_path, rng):
        w, plan = _heat2d_plan()
        x = rng.normal(size=(24, 24))
        ckdir = str(tmp_path)
        ClusterRuntime(plan).run(x, 9, checkpoint=CheckpointConfig(dir=ckdir))
        resumed = ClusterRuntime(plan).run(x, 9, resume_from=ckdir)
        assert np.array_equal(
            resumed.field, ClusterRuntime(plan).run(x, 9).field
        )

    def test_halt_after_raises_and_resumes(self, tmp_path, rng):
        w, plan = _heat2d_plan()
        x = rng.normal(size=(24, 24))
        baseline = ClusterRuntime(plan).run(x, 9).field
        ckdir = str(tmp_path)
        with pytest.raises(CheckpointHalt) as exc:
            ClusterRuntime(plan).run(
                x, 9,
                checkpoint=CheckpointConfig(dir=ckdir, halt_after=1),
            )
        assert exc.value.round_index == 1
        assert list_checkpoints(ckdir) == [0, 1]
        resumed = ClusterRuntime(plan).run(x, 9, resume_from=ckdir)
        assert np.array_equal(resumed.field, baseline)
        assert resumed.resumed_halo_bytes > 0
        assert resumed.resilience is not None
        assert resumed.resilience["checkpoints"]["restored"] == 1

    def test_wrong_plan_rejected(self, tmp_path, rng):
        w, plan = _heat2d_plan()
        x = rng.normal(size=(24, 24))
        ckdir = str(tmp_path)
        ClusterRuntime(plan).run(x, 9, checkpoint=CheckpointConfig(dir=ckdir))
        other = distribute(w, (24, 24), (4, 1), block_steps=3)
        with pytest.raises(CheckpointError, match="plan"):
            ClusterRuntime(other).run(x, 9, resume_from=ckdir)

    def test_wrong_schedule_rejected(self, tmp_path, rng):
        w, plan = _heat2d_plan()
        x = rng.normal(size=(24, 24))
        ckdir = str(tmp_path)
        ClusterRuntime(plan).run(x, 9, checkpoint=CheckpointConfig(dir=ckdir))
        with pytest.raises(CheckpointError, match="schedule"):
            ClusterRuntime(plan).run(x, 6, resume_from=ckdir)

    def test_every_two_rounds(self, tmp_path, rng):
        w, plan = _heat2d_plan()
        x = rng.normal(size=(24, 24))
        ckdir = str(tmp_path)
        ClusterRuntime(plan).run(
            x, 9, checkpoint=CheckpointConfig(dir=ckdir, every=2)
        )
        assert list_checkpoints(ckdir) == [1]

    def test_checkpoint_events_and_metrics(self, tmp_path, rng):
        w, plan = _heat2d_plan()
        x = rng.normal(size=(24, 24))
        ckdir = str(tmp_path)
        with telemetry.capture():
            ClusterRuntime(plan).run(
                x, 9, checkpoint=CheckpointConfig(dir=ckdir)
            )
            kinds = [e.kind for e in telemetry.EVENT_LOG.events()]
            assert kinds.count("checkpoint.saved") == 3
            saves = telemetry.REGISTRY.counter(
                "repro_checkpoint_saves_total"
            ).value
            assert saves >= 3

    def test_resume_preserves_trace_id(self, tmp_path, rng):
        w, plan = _heat2d_plan()
        x = rng.normal(size=(24, 24))
        ckdir = str(tmp_path)
        with telemetry.capture():
            with pytest.raises(CheckpointHalt):
                ClusterRuntime(plan).run(
                    x, 9,
                    checkpoint=CheckpointConfig(dir=ckdir, halt_after=0),
                )
        ckpt = load_checkpoint(ckdir)
        assert ckpt.trace_id
        with telemetry.capture():
            ClusterRuntime(plan).run(x, 9, resume_from=ckpt)
            spans = [
                s for s in telemetry.TRACER.finished
                if s.name == "cluster.run"
            ]
            assert spans and all(
                s.trace_id == ckpt.trace_id for s in spans
            )

    def test_resume_under_faults_restores_injector_state(
        self, tmp_path, rng
    ):
        """A fault that fired before the checkpoint must not re-fire
        after the resume (the injector state rides in the snapshot)."""
        w, plan = _heat2d_plan()
        x = rng.normal(size=(24, 24))
        baseline = ClusterRuntime(plan).run(x, 9).field
        faults = FaultPlan(
            specs=(FaultSpec(kind="halo_corrupt", site=0, shard=1),)
        )
        ckdir = str(tmp_path)
        with pytest.raises(CheckpointHalt):
            ClusterRuntime(plan).run(
                x, 9,
                faults=faults,
                policy=FAST_POLICY,
                checkpoint=CheckpointConfig(dir=ckdir, halt_after=1),
            )
        resumed = ClusterRuntime(plan).run(
            x, 9,
            faults=FaultPlan(
                specs=(FaultSpec(kind="halo_corrupt", site=0, shard=1),)
            ),
            policy=FAST_POLICY,
            resume_from=ckdir,
        )
        assert np.array_equal(resumed.field, baseline)
        report = resumed.fault_report
        # the spec fired pre-checkpoint; zero fresh injections post-resume
        assert report.counts["halo_detections"] == 0
