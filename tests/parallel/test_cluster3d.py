"""Tests for the 3D pencil-decomposed cluster."""

import numpy as np
import pytest

from repro.parallel.cluster3d import SimulatedCluster3D
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_iterate


class TestCluster3D:
    @pytest.mark.parametrize("mesh", [(1, 1), (2, 2), (2, 3)])
    @pytest.mark.parametrize("boundary", ["constant", "periodic"])
    def test_trajectory_matches_reference(self, rng, mesh, boundary):
        w = get_kernel("Heat-3D").weights
        x = rng.normal(size=(6, 12, 18))
        cluster = SimulatedCluster3D(w, x.shape, mesh, boundary=boundary)
        out = cluster.run(x, 3)
        ref = reference_iterate(x, w, 3, boundary=boundary)
        assert np.allclose(out, ref, atol=1e-10)

    def test_box_kernel(self, rng):
        w = get_kernel("Box-3D27P").weights
        x = rng.normal(size=(5, 10, 14))
        cluster = SimulatedCluster3D(w, x.shape, (2, 2))
        out = cluster.run(x, 2)
        ref = reference_iterate(x, w, 2)
        assert np.allclose(out, ref, atol=1e-10)

    def test_scatter_gather_round_trip(self, rng):
        w = get_kernel("Heat-3D").weights
        x = rng.normal(size=(4, 8, 12))
        cluster = SimulatedCluster3D(w, x.shape, (2, 3))
        assert np.array_equal(cluster.gather(cluster.scatter(x)), x)

    def test_pencils_keep_z_whole(self, rng):
        w = get_kernel("Heat-3D").weights
        cluster = SimulatedCluster3D(w, (6, 12, 12), (2, 2))
        blocks = cluster.scatter(rng.normal(size=(6, 12, 12)))
        for block in blocks.values():
            assert block.shape[0] == 6

    def test_halo_bytes_scale_with_depth(self):
        w = get_kernel("Heat-3D").weights
        shallow = SimulatedCluster3D(w, (4, 16, 16), (2, 2))
        deep = SimulatedCluster3D(w, (16, 16, 16), (2, 2))
        assert deep.bytes_per_exchange(0) > shallow.bytes_per_exchange(0)
        # proportional to padded depth
        ratio = deep.bytes_per_exchange(0) / shallow.bytes_per_exchange(0)
        assert ratio == pytest.approx((16 + 2) / (4 + 2))

    def test_single_device_no_traffic(self):
        w = get_kernel("Heat-3D").weights
        cluster = SimulatedCluster3D(w, (4, 8, 8), (1, 1))
        assert cluster.bytes_per_exchange(0) == 0

    def test_exchanged_bytes_accumulate(self, rng):
        w = get_kernel("Heat-3D").weights
        x = rng.normal(size=(4, 8, 8))
        cluster = SimulatedCluster3D(w, x.shape, (2, 2))
        cluster.run(x, 2)
        assert cluster.exchanged_bytes == 2 * sum(
            cluster.bytes_per_exchange(s.rank) for s in cluster.part.subdomains
        )

    def test_2d_weights_rejected(self):
        with pytest.raises(ValueError):
            SimulatedCluster3D(get_kernel("Heat-2D").weights, (4, 8, 8), (1, 1))

    def test_bad_boundary_rejected(self):
        with pytest.raises(ValueError):
            SimulatedCluster3D(
                get_kernel("Heat-3D").weights, (4, 8, 8), (1, 1), boundary="edge"
            )

    def test_field_shape_checked(self, rng):
        w = get_kernel("Heat-3D").weights
        cluster = SimulatedCluster3D(w, (4, 8, 8), (1, 1))
        with pytest.raises(ValueError):
            cluster.scatter(rng.normal(size=(4, 8, 9)))
