"""ClusterRuntime: executors, fault recovery, process-trace revival,
temporal tiling across dimensions."""

import os

import numpy as np
import pytest

from repro import telemetry
from repro.faults import FaultPlan, FaultSpec, RecoveryPolicy
from repro.parallel.cluster import ClusterRuntime, SimulatedCluster
from repro.parallel.cluster3d import SimulatedCluster3D
from repro.parallel.plan import distribute
from repro.parallel.temporal import run_temporal_blocked, temporal_halo_bytes
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_iterate

FAST_POLICY = RecoveryPolicy(
    shard_timeout_s=20.0, shard_retries=2, backoff_base_s=0.001,
    backoff_cap_s=0.01,
)


class TestClusterResult:
    def test_result_surface(self, rng):
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(16, 16))
        plan = distribute(w, x.shape, (2, 2), block_steps=3)
        result = ClusterRuntime(plan).run(x, 7)
        assert result.phases == (3, 3, 1)
        assert result.rounds == 3
        assert result.steps == 7
        assert result.exchanged_bytes > 0
        assert result.counters is None  # functional run
        assert np.allclose(
            result.field, reference_iterate(x, w, 7), atol=1e-9
        )

    def test_zero_steps_identity(self, rng):
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(12, 12))
        plan = distribute(w, x.shape, (2, 2))
        result = ClusterRuntime(plan).run(x, 0)
        assert np.array_equal(result.field, x)
        assert result.exchanged_bytes == 0
        assert result.rounds == 0

    def test_bad_executor_rejected(self, rng):
        w = get_kernel("Heat-2D").weights
        plan = distribute(w, (12, 12), (1, 1))
        with pytest.raises(ValueError):
            ClusterRuntime(plan).run(np.zeros((12, 12)), 1, executor="mpi")


class TestProcessExecutor:
    def test_trajectory_bit_identical_to_serial(self, rng):
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(16, 16))
        plan = distribute(w, x.shape, (2, 1))
        runtime = ClusterRuntime(plan)
        serial = runtime.run(x, 3).field
        proc = runtime.run(x, 3, executor="process")
        assert np.array_equal(proc.field, serial)
        assert proc.worker_pids
        assert os.getpid() not in proc.worker_pids

    def test_children_compile_the_same_plan(self, rng):
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(12, 12))
        plan = distribute(w, x.shape, (2, 1))
        result = ClusterRuntime(plan).run(x, 2, executor="process")
        # both sides compile through repro.compile: one plan key
        assert result.rank_plan_keys == (plan.compiled.key,)

    def test_process_spans_revive_into_one_trace(self, rng):
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(12, 12))
        plan = distribute(w, x.shape, (2, 1))
        runtime = ClusterRuntime(plan)
        with telemetry.capture() as tracer:
            runtime.run(x, 2, executor="process")
        roots = tracer.roots()
        spans = [s for root in roots for s in root.walk()]
        rank_spans = [s for s in spans if s.name == "cluster.rank"]
        # one revived lane per rank per round
        assert len(rank_spans) == 4
        assert {s.attrs["pid"] for s in rank_spans} & set(
            runtime.last_result.worker_pids
        )
        assert len({s.trace_id for s in spans}) == 1

    def test_revived_spans_are_monotonic_and_disjoint(self, rng):
        """Cross-process revival rebases worker clocks onto the parent
        timeline: per rank, the revived round lanes must come back in
        dispatch order, non-overlapping, and inside the run span."""
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(16, 16))
        plan = distribute(w, x.shape, (2, 2), block_steps=2)
        runtime = ClusterRuntime(plan)
        with telemetry.capture() as tracer:
            runtime.run(x, 4, executor="process")
        run = next(
            s for root in tracer.roots() for s in root.walk()
            if s.name == "cluster.run"
        )
        rank_spans = [s for s in run.walk() if s.name == "cluster.rank"]
        assert rank_spans
        by_rank: dict[int, list] = {}
        for span in rank_spans:
            assert run.start_ns <= span.start_ns
            assert span.end_ns <= run.end_ns
            assert span.start_ns <= span.end_ns
            by_rank.setdefault(span.attrs["rank"], []).append(span)
        for lanes in by_rank.values():
            ordered = sorted(lanes, key=lambda s: s.start_ns)
            # dispatch order == round order: revival preserved it
            assert [s.attrs["round"] for s in ordered] == sorted(
                s.attrs["round"] for s in lanes
            )
            for prev, nxt in zip(ordered, ordered[1:]):
                assert prev.end_ns <= nxt.start_ns
            for span in ordered:
                for child in span.children:
                    assert span.start_ns <= child.start_ns
                    assert child.end_ns <= span.end_ns

    def test_process_simulated_counters_match_serial(self, rng):
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(16, 16))
        plan = distribute(w, x.shape, (2, 1))
        runtime = ClusterRuntime(plan)
        serial = runtime.run(x, 2, simulate=True)
        proc = runtime.run(x, 2, simulate=True, executor="process")
        assert np.array_equal(proc.field, serial.field)
        assert proc.counters.as_dict() == serial.counters.as_dict()


class TestFaultRecovery:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_rank_crash_recovers(self, rng, executor):
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(16, 16))
        plan = distribute(w, x.shape, (2, 1))
        runtime = ClusterRuntime(plan)
        clean = runtime.run(x, 2).field
        faults = FaultPlan(
            specs=(FaultSpec(kind="shard_crash", site=1),)
        )
        result = runtime.run(
            x, 2, faults=faults, policy=FAST_POLICY, executor=executor
        )
        assert np.array_equal(result.field, clean)
        counts = result.fault_report.counts
        assert counts["shard_crashes"] >= 1
        assert counts["shard_recoveries"] >= 1
        assert counts["unrecovered"] == 0

    def test_crash_recovers_under_overlap_and_temporal(self, rng):
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(20, 20))
        plan = distribute(w, x.shape, (2, 2))
        runtime = ClusterRuntime(plan)
        clean = runtime.run(x, 4, block_steps=2).field
        faults = FaultPlan(
            specs=(FaultSpec(kind="shard_crash", site=2),)
        )
        result = runtime.run(
            x,
            4,
            block_steps=2,
            overlap=True,
            faults=faults,
            policy=FAST_POLICY,
        )
        assert np.array_equal(result.field, clean)
        assert result.fault_report.counts["shard_recoveries"] >= 1

    def test_shard_events_emitted(self, rng):
        from repro.telemetry.log import EVENT_LOG

        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(12, 12))
        plan = distribute(w, x.shape, (2, 1))
        faults = FaultPlan(
            specs=(FaultSpec(kind="shard_crash", site=0),)
        )
        with telemetry.capture():
            ClusterRuntime(plan).run(
                x, 1, faults=faults, policy=FAST_POLICY
            )
            kinds = {e.kind for e in EVENT_LOG.events()}
        assert "shard.crash" in kinds
        assert "shard.recovered" in kinds


class TestTemporalAcrossDimensions:
    def test_temporal_1d(self, rng):
        w = get_kernel("1D5P").weights
        x = rng.normal(size=(64,))
        plan = distribute(w, x.shape, (4,))
        runtime = ClusterRuntime(plan)
        out, exchanged = run_temporal_blocked(runtime, x, 6, 3)
        assert np.array_equal(out, runtime.run(x, 6).field)
        assert np.allclose(out, reference_iterate(x, w, 6), atol=1e-9)
        _, modelled = temporal_halo_bytes(runtime, steps=6, block_steps=3)
        assert exchanged == modelled

    @pytest.mark.parametrize("boundary", ["constant", "periodic"])
    def test_temporal_3d(self, rng, boundary):
        w = get_kernel("Heat-3D").weights
        x = rng.normal(size=(6, 12, 12))
        cluster = SimulatedCluster3D(w, x.shape, (2, 2), boundary=boundary)
        out, exchanged = run_temporal_blocked(cluster, x, 4, 2)
        assert np.array_equal(out, cluster.runtime.run(x, 4).field)
        assert np.allclose(
            out, reference_iterate(x, w, 4, boundary=boundary), atol=1e-9
        )
        assert exchanged > 0

    @pytest.mark.parametrize("boundary", ["constant", "periodic"])
    def test_diamond_matches_trapezoid(self, rng, boundary):
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(24, 24))
        cluster = SimulatedCluster(w, x.shape, (2, 2), boundary=boundary)
        trap, trap_bytes = run_temporal_blocked(cluster, x, 8, 4)
        diam, diam_bytes = run_temporal_blocked(
            cluster, x, 8, 4, tiling="diamond"
        )
        assert np.array_equal(diam, trap)
        # diamond: shallower halos, more messages — fewer bytes per
        # round but twice the rounds at half depth
        assert diam_bytes != trap_bytes
        _, modelled = temporal_halo_bytes(
            cluster, steps=8, block_steps=4, tiling="diamond"
        )
        assert diam_bytes == modelled

    def test_temporal_through_process_executor(self, rng):
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(16, 16))
        cluster = SimulatedCluster(w, x.shape, (2, 1))
        sync, _ = run_temporal_blocked(cluster, x, 4, 2)
        proc, _ = run_temporal_blocked(
            cluster, x, 4, 2, executor="process"
        )
        assert np.array_equal(proc, sync)


class TestTimingModel:
    def test_overlap_step_model(self):
        w = get_kernel("Heat-2D").weights
        cluster = SimulatedCluster(w, (256, 256), (2, 2))
        sync = cluster.timings(steps=10)
        over = cluster.timings(steps=10, overlap=True)
        assert sync.step_s == sync.compute_s + sync.comm_s
        assert over.step_s == max(over.comm_s, over.interior_s) + (
            over.boundary_s
        )
        assert over.step_s <= sync.step_s
        assert over.gstencil_per_s >= sync.gstencil_per_s > 0

    def test_temporal_blocking_cuts_comm(self):
        w = get_kernel("Heat-2D").weights
        cluster = SimulatedCluster(w, (256, 256), (2, 2))
        per_step = cluster.timings(steps=10)
        blocked = cluster.timings(steps=10, block_steps=4)
        assert blocked.comm_s < per_step.comm_s
        assert blocked.block_steps == 4

    def test_interior_plus_boundary_is_compute(self):
        w = get_kernel("Heat-2D").weights
        cluster = SimulatedCluster(w, (128, 128), (2, 2))
        t = cluster.timings()
        assert t.interior_s + t.boundary_s == pytest.approx(t.compute_s)
