"""Tests for halo exchange and the simulated cluster."""

import numpy as np
import pytest

from repro.parallel import HaloExchanger, SimulatedCluster, partition
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_iterate


class TestHaloExchange:
    def test_windows_match_global_pad_constant(self, rng):
        part = partition((12, 16), (2, 2))
        ex = HaloExchanger(part, radius=2, boundary="constant")
        field = rng.normal(size=(12, 16))
        blocks = {
            s.rank: field[s.row_slice, s.col_slice].copy()
            for s in part.subdomains
        }
        windows = ex.exchange(blocks)
        padded = np.pad(field, 2)
        for s in part.subdomains:
            expected = padded[
                s.row_slice.start : s.row_slice.stop + 4,
                s.col_slice.start : s.col_slice.stop + 4,
            ]
            assert np.array_equal(windows[s.rank], expected)

    def test_windows_match_global_pad_periodic(self, rng):
        part = partition((12, 16), (2, 2))
        ex = HaloExchanger(part, radius=1, boundary="periodic")
        field = rng.normal(size=(12, 16))
        blocks = {
            s.rank: field[s.row_slice, s.col_slice].copy()
            for s in part.subdomains
        }
        windows = ex.exchange(blocks)
        padded = np.pad(field, 1, mode="wrap")
        for s in part.subdomains:
            expected = padded[
                s.row_slice.start : s.row_slice.stop + 2,
                s.col_slice.start : s.col_slice.stop + 2,
            ]
            assert np.array_equal(windows[s.rank], expected)

    def test_single_device_no_traffic(self):
        part = partition((8, 8), (1, 1))
        ex = HaloExchanger(part, radius=1, boundary="constant")
        assert ex.bytes_per_exchange(0) == 0

    def test_single_device_periodic_wrap_is_local(self):
        part = partition((8, 8), (1, 1))
        ex = HaloExchanger(part, radius=1, boundary="periodic")
        assert ex.bytes_per_exchange(0) == 0

    def test_constant_traffic_is_interior_edges_only(self):
        """2x1 mesh of 8x8 blocks, radius 1: each device receives one
        8-wide edge row = 64 bytes."""
        part = partition((16, 8), (2, 1))
        ex = HaloExchanger(part, radius=1, boundary="constant")
        assert ex.bytes_per_exchange(0) == 8 * 8
        assert ex.bytes_per_exchange(1) == 8 * 8

    def test_periodic_more_traffic_than_constant(self):
        part = partition((16, 16), (2, 2))
        const = HaloExchanger(part, radius=1, boundary="constant")
        wrap = HaloExchanger(part, radius=1, boundary="periodic")
        for rank in range(4):
            assert wrap.bytes_per_exchange(rank) > const.bytes_per_exchange(rank)

    def test_exchanged_bytes_accumulate(self, rng):
        part = partition((8, 8), (2, 2))
        ex = HaloExchanger(part, radius=1, boundary="constant")
        field = rng.normal(size=(8, 8))
        blocks = {
            s.rank: field[s.row_slice, s.col_slice].copy()
            for s in part.subdomains
        }
        ex.exchange(blocks)
        once = ex.exchanged_bytes
        ex.exchange(blocks)
        assert ex.exchanged_bytes == 2 * once

    def test_bad_boundary_rejected(self):
        part = partition((8, 8), (1, 1))
        with pytest.raises(ValueError):
            HaloExchanger(part, radius=1, boundary="reflect")

    def test_block_shape_checked(self, rng):
        part = partition((8, 8), (2, 2))
        ex = HaloExchanger(part, radius=1)
        with pytest.raises(ValueError):
            ex.exchange({r: rng.normal(size=(3, 3)) for r in range(4)})


class TestSimulatedCluster:
    @pytest.mark.parametrize("mesh", [(1, 1), (2, 2), (3, 2), (1, 4)])
    @pytest.mark.parametrize("boundary", ["constant", "periodic"])
    def test_trajectory_matches_reference(self, rng, mesh, boundary):
        w = get_kernel("Box-2D9P").weights
        x = rng.normal(size=(24, 28))
        cluster = SimulatedCluster(w, x.shape, mesh, boundary=boundary)
        out = cluster.run(x, 5)
        ref = reference_iterate(x, w, 5, boundary=boundary)
        assert np.allclose(out, ref, atol=1e-10)

    def test_radius3_kernel(self, rng):
        w = get_kernel("Box-2D49P").weights
        x = rng.normal(size=(32, 32))
        cluster = SimulatedCluster(w, x.shape, (2, 2))
        out = cluster.run(x, 3)
        ref = reference_iterate(x, w, 3)
        assert np.allclose(out, ref, atol=1e-10)

    def test_scatter_gather_round_trip(self, rng):
        w = get_kernel("Box-2D9P").weights
        x = rng.normal(size=(16, 24))
        cluster = SimulatedCluster(w, x.shape, (2, 3))
        assert np.array_equal(cluster.gather(cluster.scatter(x)), x)

    def test_zero_steps_identity(self, rng):
        w = get_kernel("Box-2D9P").weights
        x = rng.normal(size=(16, 16))
        cluster = SimulatedCluster(w, x.shape, (2, 2))
        assert np.array_equal(cluster.run(x, 0), x)

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            SimulatedCluster(get_kernel("Heat-3D").weights, (8, 8), (1, 1))


class TestScalingModel:
    def test_strong_scaling_speedup(self):
        w = get_kernel("Box-2D9P").weights
        t1 = SimulatedCluster(w, (1024, 1024), (1, 1)).timings()
        t4 = SimulatedCluster(w, (1024, 1024), (2, 2)).timings()
        speedup = t4.speedup_over(t1)
        assert 3.0 < speedup <= 4.0

    def test_comm_fraction_grows_with_devices(self):
        w = get_kernel("Box-2D9P").weights
        t4 = SimulatedCluster(w, (512, 512), (2, 2)).timings()
        t16 = SimulatedCluster(w, (512, 512), (4, 4)).timings()
        assert t16.comm_fraction > t4.comm_fraction

    def test_weak_scaling_near_constant_step_time(self):
        """Same per-device block: step time roughly flat in devices."""
        w = get_kernel("Box-2D9P").weights
        t1 = SimulatedCluster(w, (512, 512), (1, 1)).timings()
        t4 = SimulatedCluster(w, (1024, 1024), (2, 2)).timings()
        assert t4.step_s == pytest.approx(t1.step_s, rel=0.2)

    def test_timings_fields(self):
        w = get_kernel("Box-2D9P").weights
        t = SimulatedCluster(w, (256, 256), (2, 2)).timings(steps=10)
        assert t.num_devices == 4
        assert t.total_s == pytest.approx(t.step_s * 10)
        assert 0 <= t.comm_fraction < 1
