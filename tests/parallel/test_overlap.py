"""Overlapped (cp.async-modeled) halo pipeline: equivalence and bytes.

The contract under test: every execution mode — synchronous or
overlapped exchange, serial or thread executor, functional or simulated
sweep, interpreter or vectorized backend — produces the *bit-identical*
global trajectory, and every exchanged byte lands exactly once on the
exchanger ledger and the ``repro_halo_bytes_total`` counter.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.parallel import SimulatedCluster, partition
from repro.parallel.distributed import frame_regions
from repro.parallel.halo import HALO_BYTES_METRIC, HaloExchanger
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_iterate


def _blocks(part, field):
    return {
        s.rank: field[s.slices].copy() for s in part.subdomains
    }


class TestAsyncHalo:
    def test_async_windows_bit_identical_to_sync(self, rng):
        part = partition((12, 16), (2, 2))
        field = rng.normal(size=(12, 16))
        sync = HaloExchanger(part, 2).exchange(_blocks(part, field))
        ex = HaloExchanger(part, 2)
        handle = ex.exchange_async(_blocks(part, field))
        windows = handle.wait()
        for rank, win in sync.items():
            assert np.array_equal(windows[rank], win)

    def test_commit_snapshots_blocks(self, rng):
        # the cp.async commit: mutating a source block after issue must
        # not affect the transfer in flight
        part = partition((8, 8), (2, 1))
        field = rng.normal(size=(8, 8))
        blocks = _blocks(part, field)
        ex = HaloExchanger(part, 1)
        expected = HaloExchanger(part, 1).exchange(
            {r: b.copy() for r, b in blocks.items()}
        )
        handle = ex.exchange_async(blocks)
        blocks[0][:] = 1e9
        windows = handle.wait()
        for rank, win in expected.items():
            assert np.array_equal(windows[rank], win)

    def test_single_exchange_in_flight(self, rng):
        part = partition((8, 8), (2, 1))
        ex = HaloExchanger(part, 1)
        blocks = _blocks(part, rng.normal(size=(8, 8)))
        handle = ex.exchange_async(blocks)
        if not handle.done:
            with pytest.raises(RuntimeError):
                ex.exchange_async(blocks)
        handle.wait()
        # after the wait the double buffer frees a slot
        ex.exchange_async(blocks).wait()

    def test_wait_is_idempotent_and_accounts_once(self, rng):
        part = partition((8, 8), (2, 1))
        ex = HaloExchanger(part, 1)
        blocks = _blocks(part, rng.normal(size=(8, 8)))
        handle = ex.exchange_async(blocks)
        first = handle.wait()
        assert handle.wait() is first
        assert ex.exchanged_bytes == handle.bytes_issued
        assert handle.bytes_issued == ex.total_bytes_per_exchange()

    def test_halo_bytes_metric_exported(self, rng):
        telemetry.reset()
        part = partition((8, 8), (2, 1))
        ex = HaloExchanger(part, 1)
        before = ex.exchanged_bytes
        ex.exchange(_blocks(part, rng.normal(size=(8, 8))))
        moved = ex.exchanged_bytes - before
        assert moved > 0
        text = telemetry.to_prometheus(telemetry.REGISTRY)
        assert HALO_BYTES_METRIC in text


class TestFrameRegions:
    @pytest.mark.parametrize(
        "shape,depth", [((10, 12), 2), ((9, 9, 9), 1), ((40,), 3)]
    )
    def test_cover_is_exact_and_disjoint(self, shape, depth):
        interior, strips = frame_regions(shape, depth)
        mask = np.zeros(shape, dtype=int)
        assert interior is not None
        mask[interior] += 1
        for region in strips:
            mask[region] += 1
        assert np.array_equal(mask, np.ones(shape, dtype=int))

    def test_small_block_has_no_interior(self):
        interior, strips = frame_regions((4, 4), 2)
        assert interior is None
        assert strips == [(slice(0, 4), slice(0, 4))]

    def test_zero_depth_is_all_interior(self):
        interior, strips = frame_regions((6, 6), 0)
        assert strips == []
        assert interior == (slice(0, 6), slice(0, 6))


MATRIX = [
    ("Heat-1D", (48,), (3,)),
    ("Heat-2D", (20, 24), (2, 2)),
    ("Box-2D49P", (26, 26), (2, 2)),
    ("Heat-3D", (6, 10, 12), (1, 2, 2)),
]


class TestOverlapEquivalence:
    @pytest.mark.parametrize("kernel,shape,mesh", MATRIX)
    @pytest.mark.parametrize("boundary", ["constant", "periodic"])
    def test_overlap_bit_identical_to_sync(
        self, rng, kernel, shape, mesh, boundary
    ):
        from repro.parallel.cluster import ClusterRuntime
        from repro.parallel.plan import distribute

        w = get_kernel(kernel).weights
        x = rng.normal(size=shape)
        plan = distribute(w, shape, mesh, boundary=boundary)
        sync = ClusterRuntime(plan).run(x, 3).field
        over = ClusterRuntime(plan).run(x, 3, overlap=True).field
        assert np.array_equal(over, sync)
        ref = reference_iterate(x, w, 3, boundary=boundary)
        assert np.allclose(sync, ref, atol=1e-9)

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_executors_bit_identical(self, rng, executor):
        w = get_kernel("Box-2D9P").weights
        x = rng.normal(size=(24, 24))
        cluster = SimulatedCluster(w, x.shape, (2, 2))
        base = cluster.run(x, 3)
        assert np.array_equal(
            cluster.run(x, 3, executor=executor), base
        )
        assert np.array_equal(
            cluster.run(x, 3, executor=executor, overlap=True), base
        )

    def test_overlap_with_temporal_rounds(self, rng):
        from repro.parallel.temporal import run_temporal_blocked

        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(28, 28))
        cluster = SimulatedCluster(w, x.shape, (2, 2))
        sync, sync_bytes = run_temporal_blocked(cluster, x, 6, 3)
        over, over_bytes = run_temporal_blocked(
            cluster, x, 6, 3, overlap=True
        )
        assert np.array_equal(over, sync)
        assert over_bytes == sync_bytes

    def test_overlap_small_blocks_fall_back(self, rng):
        # blocks too small to hold a depth-inset interior: the runtime
        # waits and advances the full window — still bit-identical
        w = get_kernel("Box-2D49P").weights  # radius 3
        x = rng.normal(size=(10, 10))
        cluster = SimulatedCluster(w, x.shape, (2, 2))
        assert np.array_equal(
            cluster.run(x, 2, overlap=True), cluster.run(x, 2)
        )


class TestSimulatedEquivalence:
    @pytest.mark.parametrize("overlap", [False, True])
    def test_backends_bit_identical_results_and_counters(
        self, rng, overlap
    ):
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(20, 20))
        cluster = SimulatedCluster(w, x.shape, (2, 2))
        interp = cluster.runtime.run(
            x, 2, simulate=True, backend="interpreter", overlap=overlap
        )
        vect = cluster.runtime.run(
            x, 2, simulate=True, backend="vectorized", overlap=overlap
        )
        assert np.array_equal(interp.field, vect.field)
        assert interp.counters.as_dict() == vect.counters.as_dict()
        assert interp.counters.mma_ops > 0

    def test_simulated_overlap_bit_identical_to_sync(self, rng):
        # within the simulated mode, sync and overlapped exchanges give
        # the same bits (the functional engine is a separate FP chain —
        # only allclose across the simulate boundary)
        w = get_kernel("Box-2D9P").weights
        x = rng.normal(size=(16, 16))
        cluster = SimulatedCluster(w, x.shape, (2, 2))
        sync = cluster.runtime.run(x, 2, simulate=True)
        over = cluster.runtime.run(x, 2, simulate=True, overlap=True)
        assert np.array_equal(over.field, sync.field)
        assert over.counters.as_dict() == sync.counters.as_dict()
        assert np.allclose(sync.field, cluster.run(x, 2), atol=1e-10)

    def test_exchanged_bytes_exact_across_modes(self, rng):
        w = get_kernel("Heat-2D").weights
        x = rng.normal(size=(16, 16))
        cluster = SimulatedCluster(w, x.shape, (2, 2))
        expected = (
            cluster.halo.total_bytes_per_exchange() * 2
        )  # 2 rounds at radius depth
        for kwargs in (
            {},
            {"overlap": True},
            {"simulate": True},
            {"executor": "thread"},
        ):
            result = cluster.runtime.run(x, 2, **kwargs)
            assert result.exchanged_bytes == expected
