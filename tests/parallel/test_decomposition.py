"""Tests for grid partitioning."""

import pytest

from repro.parallel.decomposition import partition


class TestPartition:
    def test_covers_grid_exactly(self):
        part = partition((40, 56), (2, 3))
        cells = sum(s.shape[0] * s.shape[1] for s in part.subdomains)
        assert cells == 40 * 56

    def test_no_overlap(self):
        part = partition((17, 23), (3, 2))
        seen = set()
        for sub in part.subdomains:
            for i in range(sub.row_slice.start, sub.row_slice.stop):
                for j in range(sub.col_slice.start, sub.col_slice.stop):
                    assert (i, j) not in seen
                    seen.add((i, j))
        assert len(seen) == 17 * 23

    def test_uneven_split_balanced(self):
        part = partition((10, 10), (3, 3))
        sizes = [s.shape for s in part.subdomains]
        rows = {sh[0] for sh in sizes}
        assert rows <= {3, 4}

    def test_ranks_sequential(self):
        part = partition((8, 8), (2, 2))
        assert [s.rank for s in part.subdomains] == [0, 1, 2, 3]

    def test_at_lookup(self):
        part = partition((8, 8), (2, 2))
        assert part.at(1, 0).rank == 2
        assert part.at(1, 1).mesh_pos == (1, 1)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            partition((2, 8), (4, 1))

    def test_bad_mesh_rejected(self):
        with pytest.raises(ValueError):
            partition((8, 8), (0, 2))


class TestNeighbors:
    def test_interior_neighbor(self):
        part = partition((9, 9), (3, 3))
        centre = part.at(1, 1)
        assert part.neighbor(centre, -1, 0, periodic=False) == part.at(0, 1)
        assert part.neighbor(centre, 0, 1, periodic=False) == part.at(1, 2)

    def test_edge_without_periodic(self):
        part = partition((9, 9), (3, 3))
        corner = part.at(0, 0)
        assert part.neighbor(corner, -1, 0, periodic=False) is None

    def test_edge_with_periodic_wraps(self):
        part = partition((9, 9), (3, 3))
        corner = part.at(0, 0)
        assert part.neighbor(corner, -1, 0, periodic=True) == part.at(2, 0)
        assert part.neighbor(corner, 0, -1, periodic=True) == part.at(0, 2)
