"""Tests for the distribution pass and the DistributedPlan artifact."""

import numpy as np
import pytest

from repro import telemetry
from repro.parallel.plan import (
    TILINGS,
    DistributedPlan,
    HaloSchedule,
    distribute,
)
from repro.stencil.kernels import get_kernel


class TestHaloSchedule:
    def test_per_step_phases(self):
        s = HaloSchedule(radius=1, block_steps=1)
        assert s.phases(4) == (1, 1, 1, 1)
        assert s.rounds(4) == 4
        assert s.depth(1) == 1

    def test_trapezoid_phases(self):
        s = HaloSchedule(radius=2, block_steps=3)
        assert s.phases(9) == (3, 3, 3)
        assert s.depth(3) == 6

    def test_ragged_final_round(self):
        s = HaloSchedule(radius=1, block_steps=4)
        assert s.phases(10) == (4, 4, 2)
        assert sum(s.phases(10)) == 10

    def test_diamond_half_rounds(self):
        s = HaloSchedule(radius=1, block_steps=4, tiling="diamond")
        # each 4-step round splits into 2+2; ragged 3 splits into 2+1
        assert s.phases(8) == (2, 2, 2, 2)
        assert HaloSchedule(
            radius=1, block_steps=3, tiling="diamond"
        ).phases(3) == (2, 1)

    def test_diamond_preserves_step_total(self):
        for steps in range(0, 13):
            for k in range(1, 5):
                s = HaloSchedule(radius=1, block_steps=k, tiling="diamond")
                assert sum(s.phases(steps)) == steps

    def test_zero_steps(self):
        assert HaloSchedule(radius=1, block_steps=2).phases(0) == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            HaloSchedule(radius=1, block_steps=0)
        with pytest.raises(ValueError):
            HaloSchedule(radius=1, block_steps=1, tiling="hexagon")
        with pytest.raises(ValueError):
            HaloSchedule(radius=1, block_steps=1, boundary="edge")
        with pytest.raises(ValueError):
            HaloSchedule(radius=1, block_steps=1).phases(-1)

    def test_tilings_registry(self):
        assert set(TILINGS) == {"trapezoid", "diamond"}


class TestDistribute:
    def test_basic_plan(self):
        w = get_kernel("Heat-2D").weights
        plan = distribute(w, (16, 24), (2, 2))
        assert isinstance(plan, DistributedPlan)
        assert plan.ndim == 2
        assert plan.radius == w.radius
        assert plan.global_shape == (16, 24)
        assert plan.mesh == (2, 2)
        assert plan.num_devices == 4
        assert plan.schedule.block_steps == 1

    @pytest.mark.parametrize(
        "kernel,shape,mesh",
        [
            ("Heat-1D", (32,), (4,)),
            ("Heat-2D", (16, 16), (2, 2)),
            ("Heat-3D", (6, 12, 12), (1, 2, 2)),
        ],
    )
    def test_all_dimensions(self, kernel, shape, mesh):
        w = get_kernel(kernel).weights
        plan = distribute(w, shape, mesh)
        assert plan.ndim == len(shape)
        assert plan.part.num_devices == int(np.prod(mesh))

    def test_rank_programs_shared(self):
        w = get_kernel("Heat-2D").weights
        plan = distribute(w, (16, 16), (2, 2))
        assert plan.program(0) is plan.program(3)
        assert plan.program(0) is plan.compiled.plan.program

    def test_plan_cache_collapses_mesh(self):
        w = get_kernel("Box-2D9P").weights
        a = distribute(w, (16, 16), (2, 2))
        b = distribute(w, (32, 16), (4, 1))
        # same stencil: both distributed plans share one compiled plan
        assert a.compiled.key == b.compiled.key
        assert a.key != b.key  # but the distributed keys differ

    def test_key_covers_schedule(self):
        w = get_kernel("Heat-2D").weights
        base = distribute(w, (16, 16), (2, 2))
        assert (
            distribute(w, (16, 16), (2, 2), block_steps=4).key != base.key
        )
        assert (
            distribute(
                w, (16, 16), (2, 2), block_steps=4, tiling="diamond"
            ).key
            != distribute(w, (16, 16), (2, 2), block_steps=4).key
        )
        assert (
            distribute(w, (16, 16), (2, 2), boundary="periodic").key
            != base.key
        )

    def test_backend_threads_through(self):
        w = get_kernel("Heat-2D").weights
        plan = distribute(w, (16, 16), (2, 2), backend="vectorized")
        assert plan.backend == "vectorized"
        assert plan.compiled.plan.backend == "vectorized"

    def test_pass_times_recorded(self):
        w = get_kernel("Heat-2D").weights
        plan = distribute(w, (16, 16), (2, 2))
        names = [name for name, _ in plan.pass_times]
        assert names == ["partition", "halo_schedule", "compile_ranks"]
        assert all(t >= 0 for _, t in plan.pass_times)

    def test_passes_emit_lowering_spans(self):
        w = get_kernel("Heat-2D").weights
        with telemetry.capture() as tracer:
            distribute(w, (16, 16), (2, 2))
        names = {
            s.name for root in tracer.roots() for s in root.walk()
        }
        assert {
            "lowering.partition",
            "lowering.halo_schedule",
            "lowering.compile_ranks",
        } <= names

    def test_dimension_mismatch_rejected(self):
        w = get_kernel("Heat-2D").weights
        with pytest.raises(ValueError):
            distribute(w, (4, 8, 8), (1, 2, 2))

    def test_exchanger_depths(self):
        w = get_kernel("Heat-2D").weights
        plan = distribute(w, (16, 16), (2, 2))
        assert plan.exchanger().radius == w.radius
        assert plan.exchanger(depth=3).radius == 3

    def test_describe(self):
        w = get_kernel("Heat-2D").weights
        plan = distribute(w, (16, 16), (2, 2), block_steps=2)
        text = plan.describe()
        assert "mesh (2, 2)" in text
        assert "block_steps=2" in text
