"""Coverage for public-API corners not exercised elsewhere."""

import numpy as np
import pytest

from repro.core.autotune import DEFAULT_TRAITS, autotune_2d
from repro.core.driver import SimulationDriver
from repro.core.engine2d import LoRAStencil2D
from repro.core.lowrank import svd_decompose
from repro.parallel import SimulatedCluster
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_apply


class TestCustomDecomposition:
    def test_engine_accepts_forced_svd(self, rng):
        """Callers can bypass PMA (the ablation hook)."""
        w = get_kernel("Box-2D49P").weights
        forced = svd_decompose(w.as_matrix())
        eng = LoRAStencil2D(w.as_matrix(), decomposition=forced)
        assert eng.decomposition.method == "svd"
        x = rng.normal(size=(20, 20))
        out, _ = eng.apply_simulated(x)
        assert np.allclose(out, reference_apply(x, w), atol=1e-11)

    def test_mismatched_decomposition_rejected(self, rng):
        w9 = get_kernel("Box-2D9P").weights
        w49 = get_kernel("Box-2D49P").weights
        wrong = svd_decompose(w9.as_matrix())
        with pytest.raises(ValueError):
            LoRAStencil2D(w49.as_matrix(), decomposition=wrong)


class TestDriverCustomEngine:
    def test_driver_with_tuned_engine(self, rng):
        """The autotuner's engine plugs straight into the driver."""
        k = get_kernel("Box-2D49P")
        tuned = autotune_2d(
            k.weights,
            fusion_options=(1,),
            tile_options=((8, 8), (16, 16)),
            measure_grid=(24, 24),
        )
        engine = tuned.build_engine(k.weights)
        driver = SimulationDriver(k.weights, engine=engine)
        x0 = rng.normal(size=(16, 16))
        report = driver.run(x0, 2)
        from repro.stencil.reference import reference_iterate

        assert np.allclose(
            report.final, reference_iterate(x0, k.weights, 2), atol=1e-10
        )

    def test_default_traits_sane(self):
        assert 0 < DEFAULT_TRAITS.tcu_efficiency <= 1


class TestClusterTimingsFields:
    def test_comm_fraction_zero_single_device(self):
        w = get_kernel("Box-2D9P").weights
        t = SimulatedCluster(w, (256, 256), (1, 1)).timings()
        assert t.comm_s == 0.0
        assert t.comm_fraction == 0.0
        assert t.num_devices == 1

    def test_step_decomposition(self):
        w = get_kernel("Box-2D9P").weights
        t = SimulatedCluster(w, (256, 256), (2, 2)).timings(steps=3)
        assert t.step_s == pytest.approx(t.compute_s + t.comm_s)
        assert t.total_s == pytest.approx(3 * t.step_s)


class TestFig8ResultHelpers:
    @pytest.fixture(scope="class")
    def res(self):
        from repro.experiments import run_fig8

        return run_fig8(kernels=["Heat-2D"], methods=["cuDNN", "LoRAStencil"])

    def test_by_kernel(self, res):
        rows = res.by_kernel("Heat-2D")
        assert {r.method for r in rows} == {"cuDNN", "LoRAStencil"}

    def test_speedup_floor_is_one(self, res):
        assert min(r.speedup for r in res.rows) == pytest.approx(1.0)

    def test_table_rows_header(self, res):
        header = res.table_rows()[0]
        assert header[0] == "Kernel"
        assert "LoRAStencil" in header


class TestCountersDerived:
    def test_shared_total_includes_conflict_free(self):
        from repro.tcu.counters import EventCounters

        c = EventCounters(
            shared_load_requests=5,
            shared_store_requests=2,
            shared_bank_conflicts=3,
        )
        # conflicts are replays, not extra requests
        assert c.shared_total_requests == 7

    def test_scaled_preserves_new_field(self):
        from repro.tcu.counters import EventCounters

        c = EventCounters(shared_bank_conflicts=10).scaled(2.5)
        assert c.shared_bank_conflicts == 25
