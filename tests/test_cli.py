"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _best_mesh, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("kernels", "fig9", "fig10", "table3"):
            assert parser.parse_args([cmd]).command == cmd

    def test_run_args(self):
        args = build_parser().parse_args(["run", "Box-2D9P", "--size", "32"])
        assert args.kernel == "Box-2D9P"
        assert args.size == 32


class TestCommands:
    def test_kernels(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "Box-2D49P" in out and "10240x10240" in out

    def test_decompose_2d(self, capsys):
        assert main(["decompose", "Box-2D49P"]) == 0
        out = capsys.readouterr().out
        assert "method=pma" in out and "1x1 apex" in out

    def test_decompose_3d(self, capsys):
        assert main(["decompose", "Heat-3D"]) == 0
        out = capsys.readouterr().out
        assert "CUDA cores" in out and "plane 1" in out

    def test_decompose_1d(self, capsys):
        assert main(["decompose", "Heat-1D"]) == 0
        assert "1D" in capsys.readouterr().out

    def test_run(self, capsys):
        assert main(["run", "Box-2D49P", "--size", "16"]) == 0
        out = capsys.readouterr().out
        assert "mma_ops" in out and "arithmetic intensity" in out

    def test_fig8_subset(self, capsys):
        assert main(["fig8", "--kernels", "Heat-2D"]) == 0
        out = capsys.readouterr().out
        assert "LoRAStencil" in out and "Heat-2D" in out

    def test_fig8_best_flag(self, capsys):
        assert main(["fig8", "--kernels", "Box-2D9P", "--best"]) == 0
        assert "LoRAStencil-Best" in capsys.readouterr().out

    def test_precision(self, capsys):
        assert main(["precision", "Heat-2D", "--steps", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "FP16" in out

    def test_precision_rejects_3d(self, capsys):
        assert main(["precision", "Heat-3D"]) == 2

    def test_scaling(self, capsys):
        assert main(["scaling", "--size", "512", "--devices", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "2x2" in out

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            main(["decompose", "NoSuchKernel"])


class TestNewCommands:
    def test_autotune(self, capsys):
        assert main(["autotune", "Heat-2D"]) == 0
        out = capsys.readouterr().out
        assert "best: fusion=" in out

    def test_autotune_rejects_non_2d(self, capsys):
        assert main(["autotune", "Heat-1D"]) == 2

    def test_convergence(self, capsys):
        assert main(["convergence", "--resolutions", "8", "16"]) == 0
        out = capsys.readouterr().out
        assert "observed order" in out

    def test_codegen_stdout(self, capsys):
        assert main(["codegen", "Box-2D9P"]) == 0
        out = capsys.readouterr().out
        assert "wmma::mma_sync" in out

    def test_codegen_no_bvs(self, capsys):
        assert main(["codegen", "Box-2D9P", "--no-bvs"]) == 0
        assert "__shfl_sync" in capsys.readouterr().out

    def test_codegen_to_file(self, capsys, tmp_path):
        out_file = tmp_path / "kernel.cu"
        assert main(["codegen", "Heat-3D", "--output", str(out_file)]) == 0
        assert "axpy_plane_kernel" in out_file.read_text()

    def test_codegen_1d(self, capsys):
        assert main(["codegen", "Heat-1D"]) == 0
        assert "Section IV-C" in capsys.readouterr().out

    def test_trace(self, capsys):
        assert main(["trace", "Box-2D49P", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "load_matrix" in out and "warp ops" in out

    def test_trace_rejects_non_2d(self, capsys):
        assert main(["trace", "Heat-1D"]) == 2

    def test_plan(self, capsys):
        assert main(["plan", "Box-2D49P"]) == 0
        out = capsys.readouterr().out
        assert "method          pma" in out
        assert "plans" in out and "hits" in out  # cache stats line
        assert "recompile  hit (same plan object)" in out

    def test_plan_1d(self, capsys):
        assert main(["plan", "Heat-1D"]) == 0
        assert "banded" in capsys.readouterr().out

    def test_plan_3d(self, capsys):
        assert main(["plan", "Heat-3D"]) == 0
        out = capsys.readouterr().out
        assert "planes" in out and "TCU" in out

    def test_plan_no_tensor_cores(self, capsys):
        assert main(["plan", "Box-2D9P", "--no-tensor-cores"]) == 0
        assert "predicted" in capsys.readouterr().out

    def test_plan_ir_dump(self, capsys):
        assert main(["plan", "Box-2D9P", "--ir"]) == 0
        out = capsys.readouterr().out
        assert "tile program" in out
        assert "load_x" in out and "mma" in out and "apex" in out

    def test_plan_schedule_flag(self, capsys):
        assert main(["plan", "Box-2D9P", "--schedule", "prefetch"]) == 0
        out = capsys.readouterr().out
        assert "sched:prefetch" in out
        assert "schedule 'prefetch'" in out

    def test_plan_unknown_schedule_errors(self):
        import pytest as _pytest

        from repro.errors import LoweringError

        with _pytest.raises(LoweringError, match="unknown schedule"):
            main(["plan", "Box-2D9P", "--schedule", "bogus"])

    def test_plan_3d_ir_marks_cuda_planes(self, capsys):
        assert main(["plan", "Heat-3D", "--ir"]) == 0
        out = capsys.readouterr().out
        assert "CUDA-core plane, no program" in out

    def test_verify(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "all engines exact" in out
        assert out.count("ok") >= 8 * 7
        assert "compile+batch" in out


class TestTelemetryCommands:
    @pytest.fixture(autouse=True)
    def _clean_telemetry(self):
        from repro import telemetry

        telemetry.disable()
        telemetry.reset()
        yield
        telemetry.disable()
        telemetry.reset()

    def test_profile_span_tree(self, capsys):
        assert main(["profile", "Heat-2D", "--size", "16"]) == 0
        out = capsys.readouterr().out
        assert "profiled sweep" in out
        assert "profile" in out and "runtime.apply_simulated" in out
        assert "tcu.sweep" in out and "(unaccounted)" in out
        assert "100.0%" in out
        assert "mma_ops" in out

    def test_profile_tree_sums_to_root(self, capsys):
        """Acceptance: the printed per-phase %s account for the root ±5%."""
        from repro import telemetry

        assert main(["profile", "Heat-2D", "--size", "16"]) == 0
        capsys.readouterr()
        root = telemetry.TRACER.last_root()
        accounted = root.child_ns + root.self_ns
        assert accounted == pytest.approx(root.duration_ns, rel=0.05)

    def test_profile_sharded(self, capsys):
        assert main(["profile", "Heat-2D", "--size", "16", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "runtime.shard" in out

    def test_profile_emit_round_trips(self, capsys, tmp_path):
        from repro.telemetry.export import load_chrome_trace
        from repro.telemetry.validate import validate_file

        trace_file = tmp_path / "trace.json"
        assert main(
            ["profile", "Heat-2D", "--size", "16", "--emit", str(trace_file)]
        ) == 0
        assert "chrome trace written" in capsys.readouterr().out
        assert validate_file(trace_file) == "repro.telemetry.chrome-trace/v1"
        (root,) = load_chrome_trace(trace_file)
        assert root.name == "profile"
        assert "tcu.sweep" in {s.name for s in root.walk()}

    def test_profile_record(self, capsys, tmp_path):
        from repro.telemetry.validate import validate_file

        record_file = tmp_path / "record.json"
        assert main(
            ["profile", "Heat-2D", "--size", "16", "--record", str(record_file)]
        ) == 0
        from repro.telemetry.export import RUN_RECORD_SCHEMA

        assert validate_file(record_file) == RUN_RECORD_SCHEMA
        record = json.loads(record_file.read_text())
        assert record["extra"]["command"] == "profile"
        assert record["events"]["mma_ops"] > 0

    def test_run_json_schema(self, capsys):
        from repro.telemetry.validate import validate_run_record

        assert main(["run", "Heat-2D", "--size", "16", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        validate_run_record(record)
        assert record["name"] == "Heat-2D"
        assert record["extra"]["shape"] == [16, 16]
        assert record["events"]["mma_ops"] > 0

    def test_plan_json_schema(self, capsys):
        from repro.telemetry.validate import validate_run_record

        assert main(["plan", "Box-2D49P", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        validate_run_record(record)
        assert record["extra"]["plan"]["method"] == "pma"

    def test_run_telemetry_epilogue(self, capsys):
        assert main(["run", "Heat-2D", "--size", "16", "--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "— telemetry —" in out
        assert "cli.run" in out
        assert "repro_tcu_mma_ops_total" in out

    def test_json_suppresses_epilogue(self, capsys):
        assert main(
            ["run", "Heat-2D", "--size", "16", "--json", "--telemetry"]
        ) == 0
        json.loads(capsys.readouterr().out)  # stdout is pure JSON

    def test_stats_human(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "metrics registry" in out and "plan cache" in out

    def test_stats_json(self, capsys):
        assert main(["stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"metrics", "plan_cache"}
        assert "hit_rate" in payload["plan_cache"]

    def test_stats_prometheus_after_run(self, capsys):
        assert main(["run", "Heat-2D", "--size", "16", "--telemetry"]) == 0
        capsys.readouterr()
        assert main(["stats", "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_tcu_mma_ops_total counter" in out
        assert "# TYPE repro_span_cli_run_seconds histogram" in out
        assert 'le="+Inf"' in out


class TestBestMesh:
    @pytest.mark.parametrize(
        "n,mesh", [(1, (1, 1)), (4, (2, 2)), (6, (2, 3)), (8, (2, 4)), (7, (1, 7))]
    )
    def test_most_square_factorization(self, n, mesh):
        assert _best_mesh(n) == mesh


class TestPerfObservatoryCommands:
    @pytest.fixture(autouse=True)
    def _clean_telemetry(self):
        from repro import telemetry

        telemetry.disable()
        telemetry.reset()
        yield
        telemetry.disable()
        telemetry.reset()

    def test_profile_per_instr_prints_attribution(self, capsys):
        assert main(["profile", "Box-2D9P", "--size", "16", "--per-instr"]) == 0
        out = capsys.readouterr().out
        assert "per-opcode attribution" in out
        assert "per rank-1 PMA term" in out
        for row in ("load_x", "mma2", "split", "apex", "[driver]", "[total]"):
            assert row in out
        assert "match the uninstrumented sweep bit-exactly" in out

    def test_profile_per_instr_rejects_shards(self, capsys):
        rc = main(["profile", "Box-2D9P", "--size", "16",
                   "--per-instr", "--shards", "2"])
        assert rc == 2
        assert "single shard" in capsys.readouterr().err

    def test_profile_record_is_joinable(self, capsys, tmp_path):
        from repro.runtime import DEFAULT_PLAN_CACHE

        record_file = tmp_path / "record.json"
        assert main(["profile", "Heat-2D", "--size", "16",
                     "--per-instr", "--record", str(record_file)]) == 0
        record = json.loads(record_file.read_text())
        assert record["extra"]["plan_key"] in DEFAULT_PLAN_CACHE.keys()
        assert record["extra"]["schedule"] == "eager"
        per_instr = record["extra"]["per_instr"]
        assert per_instr["schema"] == "repro.telemetry.plan-profile/v1"
        assert per_instr["plan"]["key"] == record["extra"]["plan_key"]

    def test_stats_json_exposes_plan_cache_entries(self, capsys):
        assert main(["run", "Heat-2D", "--size", "16"]) == 0
        capsys.readouterr()
        assert main(["stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        cache = payload["plan_cache"]
        assert cache["keys"], "expected at least one cached plan"
        entry = cache["entries"][-1]
        assert set(entry) == {"key", "schedule", "ndim", "radius"}
        assert entry["key"] in cache["keys"]

    def test_perf_fidelity_table(self, capsys):
        assert main(["perf", "fidelity", "Box-2D9P", "--size", "16"]) == 0
        out = capsys.readouterr().out
        assert "Eq. 12" in out and "Eq. 16" in out
        assert "max relative error: 0.00%" in out

    def test_perf_fidelity_json_validates(self, capsys, tmp_path):
        from repro.telemetry.validate import validate_file

        out_file = tmp_path / "fid.json"
        assert main(["perf", "fidelity", "Box-2D9P", "--size", "16",
                     "--json", "--output", str(out_file)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["max_rel_error"] == 0.0
        assert validate_file(out_file) == "repro.telemetry.fidelity-report/v1"

    def test_perf_history_empty_root(self, capsys, tmp_path):
        assert main(["perf", "history", "--root", str(tmp_path)]) == 0
        assert "no history" in capsys.readouterr().out
        rc = main(["perf", "history", "nope", "--root", str(tmp_path)])
        assert rc == 2


class TestObservabilityCommands:
    def _stamp(self, store, timing, name="w"):
        from repro.telemetry.export import run_record

        store.append(
            run_record(
                name, log=False, health=False, extra={"timing_s": timing}
            )
        )

    def _health_file(self, tmp_path, done=True):
        from repro.telemetry.health import HealthRegistry

        reg = HealthRegistry()
        sweep = reg.start_sweep("cli-sweep")
        if done:
            with reg.bind(sweep.shard(0)) as shard:
                shard.beat(4, 4)
        else:
            shard = sweep.shard(0)
            shard.beat(1, 4)
        path = tmp_path / "health.json"
        reg.configure_file(path, min_interval_s=0.0)
        reg.write_file()
        return path

    def test_monitor_once_renders_the_snapshot(self, capsys, tmp_path):
        path = self._health_file(tmp_path)
        assert main(["monitor", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "cli-sweep" in out
        assert "4/4" in out

    def test_monitor_once_json(self, capsys, tmp_path):
        path = self._health_file(tmp_path)
        assert main(["monitor", str(path), "--once", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["sweeps"][0]["name"] == "cli-sweep"

    def test_monitor_missing_snapshot_is_exit_2(self, tmp_path):
        assert main(["monitor", str(tmp_path / "nope.json"), "--once"]) == 2

    def test_monitor_no_path_no_env_is_exit_2(self, monkeypatch):
        from repro.telemetry.health import ENV_HEALTH_FILE

        monkeypatch.delenv(ENV_HEALTH_FILE, raising=False)
        assert main(["monitor"]) == 2

    def test_monitor_env_var_supplies_the_path(self, capsys, tmp_path,
                                               monkeypatch):
        from repro.telemetry.health import ENV_HEALTH_FILE

        path = self._health_file(tmp_path)
        monkeypatch.setenv(ENV_HEALTH_FILE, str(path))
        assert main(["monitor", "--once"]) == 0
        assert "cli-sweep" in capsys.readouterr().out

    def test_monitor_times_out_on_stuck_sweep(self, capsys, tmp_path):
        path = self._health_file(tmp_path, done=False)
        rc = main(["monitor", str(path), "--timeout", "0.2",
                   "--interval", "0.05"])
        assert rc == 1

    def test_perf_trend_empty_history_is_exit_2(self, capsys, tmp_path):
        from repro.telemetry.perf import RunRecordStore

        RunRecordStore(tmp_path)
        assert main(["perf", "trend", "w", "--root", str(tmp_path)]) == 2
        assert "no history for 'w'" in capsys.readouterr().err

    def test_perf_trend_corrupt_history_is_exit_2(self, capsys, tmp_path):
        from repro.telemetry.perf import RunRecordStore

        store = RunRecordStore(tmp_path)
        store.path_for("w").parent.mkdir(parents=True, exist_ok=True)
        store.path_for("w").write_text("{not json\n")
        assert main(["perf", "trend", "w", "--root", str(tmp_path)]) == 2
        assert "cannot read history" in capsys.readouterr().err

    def test_perf_trend_direction_below_flags_drops(self, capsys, tmp_path):
        from repro.telemetry.perf import RunRecordStore

        store = RunRecordStore(tmp_path)
        for eff in (0.9, 0.92, 0.91, 0.9):
            self._stamp(store, eff)
        self._stamp(store, 0.2)
        rc = main(["perf", "trend", "w", "--root", str(tmp_path),
                   "--direction", "below"])
        assert rc == 1
        assert "falls below" in capsys.readouterr().out

    def test_perf_trend_steady_history_passes(self, capsys, tmp_path):
        from repro.telemetry.perf import RunRecordStore

        store = RunRecordStore(tmp_path)
        for t in (1.0, 1.02, 0.98, 1.0, 1.01):
            self._stamp(store, t)
        assert main(["perf", "trend", "w", "--root", str(tmp_path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_perf_trend_regression_is_exit_1(self, capsys, tmp_path):
        from repro.telemetry.perf import RunRecordStore

        store = RunRecordStore(tmp_path)
        for t in (1.0, 1.0, 1.0, 1.0):
            self._stamp(store, t)
        self._stamp(store, 2.5)
        assert main(["perf", "trend", "w", "--root", str(tmp_path)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_perf_trend_json_roundtrips(self, capsys, tmp_path):
        from repro.telemetry.perf import RunRecordStore

        store = RunRecordStore(tmp_path)
        for t in (1.0, 1.0, 1.0, 1.0):
            self._stamp(store, t)
        assert main(["perf", "trend", "w", "--root", str(tmp_path),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["metric"] == "timing_s"

    def test_chaos_events_writes_a_validated_jsonl(self, capsys, tmp_path):
        from repro.telemetry.log import EVENT_SCHEMA
        from repro.telemetry.validate import validate_file

        path = tmp_path / "events.jsonl"
        assert main(["chaos", "run", "Box-2D9P", "--size", "16",
                     "--seed", "4", "--faults", "2", "--shards", "2",
                     "--events", str(path)]) == 0
        assert validate_file(path) == EVENT_SCHEMA
        docs = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(d["kind"] == "fault.injected" for d in docs)
        # the whole campaign joined one trace
        trace_ids = {d["trace_id"] for d in docs if d["trace_id"]}
        assert len(trace_ids) == 1

    def test_chaos_record_folds_log_and_health_in(self, capsys, tmp_path):
        from repro.telemetry.validate import validate_file

        record_file = tmp_path / "record.json"
        assert main(["chaos", "run", "Box-2D9P", "--size", "16",
                     "--seed", "4", "--faults", "2", "--shards", "2",
                     "--record", str(record_file)]) == 0
        assert validate_file(record_file).endswith("/v5")
        record = json.loads(record_file.read_text())
        assert record["log"]["events"]
        assert record["health"]["sweeps"][0]["shards"]
        roots = {s["trace_id"] for s in record["spans"]}
        assert len(roots) == 1


class TestClusterCommand:
    def test_parser_accepts_cluster_args(self):
        args = build_parser().parse_args(
            ["cluster", "run", "Heat-2D", "--block-steps", "3",
             "--tiling", "diamond", "--overlap", "--executor", "thread"]
        )
        assert args.command == "cluster"
        assert args.cluster_command == "run"
        assert args.block_steps == 3
        assert args.tiling == "diamond"
        assert args.overlap is True

    def test_bare_cluster_argv_still_means_run(self, capsys):
        # `repro cluster <kernel>` predates the run/report split
        assert main(["cluster", "Heat-2D", "--size", "16",
                     "--steps", "2"]) == 0
        assert "reference check: PASS" in capsys.readouterr().out

    def test_cluster_passes_reference(self, capsys):
        assert main(["cluster", "Heat-2D", "--size", "16", "--steps", "3",
                     "--block-steps", "2", "--overlap"]) == 0
        out = capsys.readouterr().out
        assert "reference check: PASS" in out
        assert "halo bytes exchanged" in out

    def test_cluster_json_carries_halo_ledger_and_phases(self, capsys):
        assert main(["cluster", "Heat-1D", "--size", "8", "--steps", "5",
                     "--block-steps", "2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["halo_bytes_exchanged"] > 0
        assert doc["phases"] == [2, 2, 1]  # ragged final round
        assert doc["exit_code"] == 0

    def test_cluster_mesh_dimension_mismatch_is_exit_2(self, capsys):
        assert main(["cluster", "Heat-2D", "--mesh", "2"]) == 2
        assert "2D" in capsys.readouterr().err

    def test_cluster_crash_recovers_and_records(self, capsys, tmp_path):
        from repro.telemetry.validate import validate_file

        record = tmp_path / "rec.json"
        assert main(["cluster", "Heat-2D", "--size", "16", "--steps", "2",
                     "--simulate", "--crash-rank", "1",
                     "--record", str(record), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["recovered_bit_identical"] is True
        assert doc["faults"]["shard"]["crashes"] >= 1
        assert doc["faults"]["unrecovered"] == 0
        assert doc["counters"]["mma_ops"] > 0
        assert validate_file(record).endswith("/v5")
        rec = json.loads(record.read_text())
        assert (rec["extra"]["halo_bytes_exchanged"]
                == doc["halo_bytes_exchanged"])
        # a traced cluster run embeds its observatory report (v4)
        assert rec["cluster"]["schema"].startswith(
            "repro.telemetry.cluster-report/"
        )
        assert rec["cluster"]["halo"]["reconciled"] is True

    def test_cluster_report_gantt_and_artifacts(self, capsys, tmp_path):
        from repro.telemetry.validate import validate_file

        report_file = tmp_path / "report.json"
        lanes_file = tmp_path / "lanes.json"
        record_file = tmp_path / "rec.json"
        history = tmp_path / "history"
        assert main(["cluster", "report", "Heat-2D", "--size", "32",
                     "--steps", "4", "--block-steps", "2", "--overlap",
                     "--executor", "thread",
                     "--output", str(report_file),
                     "--chrome-trace", str(lanes_file),
                     "--record", str(record_file),
                     "--record-history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out
        assert "critical path" in out
        assert "overlap efficiency" in out
        assert validate_file(report_file).startswith(
            "repro.telemetry.cluster-report/"
        )
        assert validate_file(lanes_file).startswith(
            "repro.telemetry.chrome-trace/"
        )
        assert validate_file(record_file).endswith("/v5")
        report = json.loads(report_file.read_text())
        assert report["overlap"]["efficiency"] > 0
        assert report["halo"]["reconciled"] is True
        # the history point carries the trend-gated metrics
        line = json.loads(
            (history / "cluster-report-Heat-2D.jsonl").read_text()
            .splitlines()[0]
        )
        assert "overlap_efficiency" in line["extra"]
        assert "imbalance_max_over_mean" in line["extra"]

    def test_cluster_report_json_is_the_report(self, capsys):
        assert main(["cluster", "report", "Heat-1D", "--size", "16",
                     "--steps", "2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"].startswith("repro.telemetry.cluster-report/")
        assert len(doc["ranks"]) == 2
        for row in doc["ranks"]:
            assert sum(row["lanes_ns"].values()) == row["wall_ns"]
