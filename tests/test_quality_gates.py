"""Repository-wide quality gates.

Meta-tests that keep the library production-shaped: every public item
documented, every module importable, functional paths actually
vectorized (no accidental per-point Python loops), and the public API
surface stable.
"""

import importlib
import inspect
import pkgutil
import time

import numpy as np

import repro


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


class TestDocumentation:
    def test_every_module_has_docstring(self):
        undocumented = [m.__name__ for m in ALL_MODULES if not m.__doc__]
        assert not undocumented, undocumented

    def test_every_public_callable_documented(self):
        missing = []
        for module in ALL_MODULES:
            names = getattr(module, "__all__", None)
            if names is None:
                continue
            for name in names:
                obj = getattr(module, name)
                if callable(obj) and not inspect.isclass(obj):
                    if not inspect.getdoc(obj):
                        missing.append(f"{module.__name__}.{name}")
                elif inspect.isclass(obj) and not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, missing

    def test_public_methods_documented(self):
        """Public methods of public classes carry docstrings."""
        missing = []
        for module in ALL_MODULES:
            for name in getattr(module, "__all__", []) or []:
                obj = getattr(module, name)
                if not inspect.isclass(obj):
                    continue
                for mname, meth in inspect.getmembers(obj, inspect.isfunction):
                    if mname.startswith("_"):
                        continue
                    if meth.__module__ != module.__name__:
                        continue
                    if not inspect.getdoc(meth):
                        missing.append(f"{module.__name__}.{name}.{mname}")
        assert not missing, missing


class TestAPISurface:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_runtime_facade_exported(self):
        """The compile-once runtime is part of the public surface."""
        for name in ("compile", "StencilPlan", "PlanCache", "CompiledStencil"):
            assert name in repro.__all__, name
        assert callable(repro.compile)
        from repro.runtime import compile as runtime_compile

        assert repro.compile is runtime_compile

    def test_errors_exported(self):
        for name in (
            "ReproError",
            "KernelNotFoundError",
            "DecompositionError",
            "ShapeError",
        ):
            assert name in repro.__all__, name

    def test_module_count(self):
        """The library keeps its many-small-modules shape."""
        assert len(ALL_MODULES) >= 40

    def test_no_print_side_effects_on_import(self, capsys):
        importlib.reload(importlib.import_module("repro.perf.machine"))
        assert capsys.readouterr().out == ""


class TestVectorization:
    """Guards against per-point Python loops sneaking into hot paths."""

    def test_functional_2d_apply_is_fast(self):
        from repro.core.engine2d import LoRAStencil2D
        from repro.stencil.kernels import get_kernel

        eng = LoRAStencil2D(get_kernel("Box-2D49P").weights.as_matrix())
        x = np.random.default_rng(0).normal(size=(1030, 1030))
        eng.apply(x)  # warm
        start = time.perf_counter()
        eng.apply(x)
        elapsed = time.perf_counter() - start
        # a vectorized sweep of 1M points with ~28 slice-adds takes
        # ~50-100 ms; a per-point loop would take tens of seconds
        assert elapsed < 2.0, f"functional apply too slow: {elapsed:.2f}s"

    def test_reference_apply_is_fast(self):
        from repro.stencil.kernels import get_kernel
        from repro.stencil.reference import reference_apply

        w = get_kernel("Box-2D49P").weights
        x = np.random.default_rng(0).normal(size=(518, 518))
        reference_apply(x, w)
        start = time.perf_counter()
        reference_apply(x, w)
        assert time.perf_counter() - start < 2.0

    def test_fp16_matmul_is_tiled_not_scalar(self):
        from repro.tcu.fp16 import fp16_matmul

        a = np.random.default_rng(0).normal(size=(256, 256))
        start = time.perf_counter()
        fp16_matmul(a, a)
        assert time.perf_counter() - start < 2.0
