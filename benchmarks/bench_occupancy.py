"""Section V-D occupancy reproduction.

The paper attributes part of LoRAStencil's win to hardware occupancy:
ConvStencil's two stencil2row matrices occupy more shared memory per
block, capping resident blocks per SM.  This bench measures both
methods' per-block shared footprints on the simulator and models the
occupancy gap.
"""

from __future__ import annotations

from repro.analysis.occupancy_model import compare_occupancy
from repro.experiments.report import format_table
from repro.stencil.kernels import get_kernel

KERNELS_2D = ("Heat-2D", "Box-2D9P", "Star-2D13P", "Box-2D49P")


def test_occupancy_comparison(benchmark, write_result):
    def sweep():
        return {
            name: compare_occupancy(get_kernel(name).weights)
            for name in KERNELS_2D
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        ["kernel", "LoRA smem/block", "Conv smem/block", "LoRA blk/SM",
         "Conv blk/SM", "LoRA occ", "Conv occ"]
    ]
    for name, c in results.items():
        rows.append(
            [
                name,
                f"{c.lora_shared_bytes / 1024:.1f} KiB",
                f"{c.conv_shared_bytes / 1024:.1f} KiB",
                str(c.lora_blocks_per_sm),
                str(c.conv_blocks_per_sm),
                f"{c.lora_occupancy * 100:.0f}%",
                f"{c.conv_occupancy * 100:.0f}%",
            ]
        )
    text = format_table(rows, "Section V-D — shared memory and occupancy")
    text += (
        "\n\n(2048-output block coverage; ConvStencil's footprint counts "
        "both stencil2row matrices.)"
    )
    write_result("occupancy", text)

    for name, c in results.items():
        assert c.shared_ratio > 1.0, name
        assert c.lora_occupancy >= c.conv_occupancy, name
