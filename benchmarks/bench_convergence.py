"""Verification artifact: analytic-solution convergence in 1D/2D/3D.

The paper's correctness claim is discrete ("results match the CPU
reference"); this bench closes the loop to the continuous problem: the
LoRAStencil engines integrate the heat equation at the FTCS scheme's
theoretical order 2 in every dimensionality the paper supports.
"""

from __future__ import annotations

import pytest

from repro.experiments.report import format_table
from repro.validation import convergence_study, estimated_order

CASES = (
    (1, (16, 32, 64, 128), 0.4),
    (2, (12, 24, 48, 96), 0.2),
    (3, (6, 12, 24), 1 / 8),
)


def test_convergence_orders(benchmark, write_result):
    def run_all():
        out = {}
        for ndim, resolutions, r in CASES:
            pts = convergence_study(
                resolutions=resolutions, ndim=ndim, r=r, t_final=0.01
            )
            out[ndim] = (pts, estimated_order(pts))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [["dim", "finest n", "max err at finest", "observed order"]]
    for ndim, (pts, order) in sorted(results.items()):
        rows.append(
            [f"{ndim}D", str(pts[-1].n), f"{pts[-1].max_err:.3e}", f"{order:.3f}"]
        )
    text = format_table(rows, "heat-equation convergence through LoRAStencil")
    text += "\n\nFTCS theoretical order: 2.0 in every dimension."
    write_result("convergence", text)

    for ndim, (_, order) in results.items():
        assert order == pytest.approx(2.0, abs=0.15), ndim
