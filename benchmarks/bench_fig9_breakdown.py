"""Fig. 9 reproduction: optimization breakdown on Box-2D9P over sizes."""

from __future__ import annotations

import pytest

from repro.experiments.fig9 import DEFAULT_SIZES, run_fig9
from repro.experiments.paper import PAPER
from repro.experiments.report import format_table


def test_fig9_breakdown(benchmark, write_result):
    result = benchmark.pedantic(
        run_fig9, kwargs={"sizes": DEFAULT_SIZES}, rounds=1, iterations=1
    )

    configs = result.configs()
    rows = [["Size"] + configs]
    for size in result.sizes():
        rows.append(
            [str(size)] + [f"{result.perf(c, size):8.2f}" for c in configs]
        )
    big = max(result.sizes())
    lines = [
        format_table(rows, "Fig. 9 — Box-2D9P breakdown (GStencil/s)"),
        "",
        f"TensorCore gain: {result.gain(configs[1], configs[0], big):.2f}x"
        f"   (paper {PAPER['fig9_tcu_gain']}x)",
        f"BVS gain:        {result.gain(configs[2], configs[1], big):.2f}x"
        f"   (paper {PAPER['fig9_bvs_gain']}x)",
        f"AsyncCopy gain:  {result.gain(configs[3], configs[2], big):.3f}x"
        f"   (paper {PAPER['fig9_async_copy_gain']}x)",
    ]
    write_result("fig9_breakdown", "\n".join(lines))

    from repro.experiments.svg import line_chart

    svg = line_chart(
        [float(s) for s in result.sizes()],
        {c: [result.perf(c, s) for s in result.sizes()] for c in configs},
        title="Fig. 9 — Box-2D9P optimization breakdown",
        xlabel="grid side", ylabel="GStencil/s", log_x=True,
    )
    write_result("fig9_breakdown_chart", svg)

    # shape assertions
    assert result.gain(configs[1], configs[0], big) == pytest.approx(
        PAPER["fig9_tcu_gain"], rel=0.15
    )
    assert result.gain(configs[2], configs[1], big) == pytest.approx(
        PAPER["fig9_bvs_gain"], rel=0.15
    )
    assert result.gain(configs[3], configs[2], big) == pytest.approx(
        PAPER["fig9_async_copy_gain"], rel=0.15
    )
    # contributions stabilize with input size (the paper's observation)
    for cfg in configs:
        perfs = [result.perf(cfg, s) for s in result.sizes()]
        assert perfs == sorted(perfs)


@pytest.mark.parametrize(
    "config_index,label",
    [(0, "rdg_cuda"), (1, "tcu_no_bvs"), (2, "tcu_bvs"), (3, "full")],
)
def test_breakdown_sweep_cost(benchmark, config_index, label):
    """Wall-clock of the simulated sweep at each optimization level."""
    from repro.baselines.lorastencil import LoRAStencilMethod
    from repro.core.config import OptimizationConfig
    from repro.stencil.kernels import get_kernel

    config = OptimizationConfig.breakdown_levels()[config_index]
    method = LoRAStencilMethod(get_kernel("Box-2D9P"), config=config)
    out, _ = benchmark(method.simulated_sweep, (48, 48))
    assert out.shape == (48, 48)
