"""Extension: von Neumann stability audit of the kernel zoo.

Computes every zoo kernel's Fourier symbol, reports the max
amplification factor (stable timesteppers vs amplifying operators), and
verifies the engines reproduce the predicted per-mode decay to 1e-6 —
the PDE-theory cross-check of the whole tensorized stack.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.report import format_table
from repro.stencil.kernels import KERNELS, get_kernel
from repro.validation.dispersion import (
    max_amplification,
    measured_mode_decay,
)


def test_stability_audit(benchmark, write_result):
    def audit():
        rows = [["kernel", "max |g(k)|", "von Neumann stable"]]
        stability = {}
        for kernel in KERNELS.values():
            samples = 17 if kernel.weights.ndim == 3 else 65
            amp = max_amplification(kernel.weights, samples=samples)
            stable = amp <= 1.0 + 1e-9
            stability[kernel.name] = stable
            rows.append([kernel.name, f"{amp:.4f}", "yes" if stable else "NO"])
        return rows, stability

    rows, stability = benchmark.pedantic(audit, rounds=1, iterations=1)
    text = format_table(rows, "von Neumann stability of the Table II zoo")
    text += (
        "\n\nHeat kernels are CFL-stable timesteppers; the box/star "
        "benchmark kernels are amplifying smoothers (performance "
        "benchmarks, not stable integrators) — the root cause of the "
        "FP16 range overflow found in bench_precision_fp16.py."
    )
    write_result("dispersion_stability", text)

    for name in ("Heat-1D", "Heat-2D", "Heat-3D"):
        assert stability[name], name
    assert not stability["Box-2D49P"]


def test_engine_matches_symbol(benchmark):
    """Measured per-step decay through the engines == |g(k)|."""

    def measure():
        out = {}
        for name, k, grid in [
            ("Heat-1D", (2 * np.pi * 5 / 64,), 64),
            ("Heat-2D", (2 * np.pi * 3 / 32, 2 * np.pi * 2 / 32), 32),
            ("Heat-3D", (2 * np.pi / 16,) * 3, 16),
        ]:
            out[name] = measured_mode_decay(
                get_kernel(name).weights, k, grid=grid, steps=3
            )
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    for name, (predicted, measured) in results.items():
        assert measured == pytest.approx(predicted, rel=1e-6), name
