"""Eq. 16 reproduction: the MMA-count model (LoRAStencil trades a 1.38x
compute increase for its memory savings at h=3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.compute_model import (
    convstencil_mma_per_tile,
    lorastencil_mma_count,
    lorastencil_mma_per_tile,
    mma_ratio,
)
from repro.experiments.report import format_table


def _build_table() -> str:
    rows = [["h", "LoRA MMA/tile", "Conv MMA/tile", "LoRA/Conv per point"]]
    for h in (1, 2, 3, 4):
        rows.append(
            [
                str(h),
                str(lorastencil_mma_per_tile(h)),
                str(convstencil_mma_per_tile(h)),
                f"{mma_ratio(h):.3f}",
            ]
        )
    return format_table(rows, "Eq. 16 — MMA instruction model")


def test_eq16_compute_model(benchmark, write_result):
    text = benchmark(_build_table)
    text += "\n\nPaper quotes: 36/26 ~ 1.38 at h=3."
    write_result("eq16_compute_model", text)
    assert lorastencil_mma_per_tile(3) == 36
    assert convstencil_mma_per_tile(3) == 26
    assert mma_ratio(3) == pytest.approx(36 / 26)


def test_measured_mma_match_model(benchmark):
    from repro.core.engine2d import LoRAStencil2D
    from repro.stencil.weights import radially_symmetric_weights

    h, a, b = 3, 32, 32
    rng = np.random.default_rng(0)
    w = radially_symmetric_weights(h, 2, rng=rng)
    x = rng.normal(size=(a + 2 * h, b + 2 * h))
    eng = LoRAStencil2D(w.as_matrix())
    _, cnt = benchmark.pedantic(
        eng.apply_simulated, args=(x,), rounds=1, iterations=1
    )
    assert cnt.mma_ops == lorastencil_mma_count(a, b, h)
