"""Shared infrastructure for the benchmark harness.

Every ``bench_*`` module regenerates one of the paper's tables/figures:
the benchmark timing measures our simulator/driver cost, and the
reproduced rows are written to ``benchmarks/results/<name>.txt`` (and
echoed into the pytest-benchmark ``extra_info``) so a run of

    pytest benchmarks/ --benchmark-only

leaves the full set of paper artifacts on disk.

Alongside each artifact, :func:`write_result` stamps a structured
telemetry **run-record** (``benchmarks/results/records/<name>.json``,
schema ``repro.telemetry.run-record/v5``) carrying the process-wide
metrics registry and plan-cache stats at write time — the machine-
readable sibling of the printed figure.  Benchmarks may pass
``extra={...}`` to fold measured headline numbers (e.g. the cluster
observatory's ``overlap_efficiency``) into the record, where the
rolling ``repro perf trend`` gates pick them up from the history
store.  The structured event log
(``repro.telemetry.event/v1``) and shard-health snapshot fold in
automatically whenever the benchmark produced events or ran sharded
(see :func:`repro.telemetry.export.run_record`).  Records are
schema-validated on write; ``tests/telemetry/test_run_records.py``
holds the contract.

Each record is *also* appended to the run-record history store
(``benchmarks/results/records/history/<name>.jsonl``), which is what
``repro perf diff``/``repro perf history`` read: the per-run snapshot is
overwritten each run, the history accumulates.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_configure(config) -> None:
    """Silence the engine deprecation shims (see tests/conftest.py)."""
    config.addinivalue_line(
        "filterwarnings", r"ignore:.*repro\.compile.*:DeprecationWarning"
    )


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def write_result(results_dir):
    """Persist one reproduced artifact and echo its location."""

    def _write(name: str, text: str, extra: dict | None = None) -> pathlib.Path:
        suffix = "svg" if text.lstrip().startswith("<svg") else "txt"
        path = results_dir / f"{name}.{suffix}"
        path.write_text(text + "\n")
        _stamp_run_record(results_dir, name, path, extra=extra)
        if suffix == "svg":
            print(f"\n[{name}] written to {path}")
        else:
            print(f"\n[{name}] written to {path}\n{text}")
        return path

    return _write


def _stamp_run_record(
    results_dir: pathlib.Path,
    name: str,
    artifact: pathlib.Path,
    extra: dict | None = None,
) -> pathlib.Path:
    """Write the schema-validated run-record next to one artifact."""
    from repro import telemetry
    from repro.runtime import DEFAULT_PLAN_CACHE

    from repro.telemetry.perf import RunRecordStore

    record = telemetry.run_record(
        name,
        registry=telemetry.REGISTRY,
        cache_stats=DEFAULT_PLAN_CACHE.stats(),
        extra={
            "benchmark": name,
            "artifact": str(artifact),
            **(extra or {}),
        },
    )
    RunRecordStore(results_dir / "records" / "history").append(record)
    return telemetry.write_run_record(
        results_dir / "records" / f"{name}.json", record
    )
