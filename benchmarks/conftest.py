"""Shared infrastructure for the benchmark harness.

Every ``bench_*`` module regenerates one of the paper's tables/figures:
the benchmark timing measures our simulator/driver cost, and the
reproduced rows are written to ``benchmarks/results/<name>.txt`` (and
echoed into the pytest-benchmark ``extra_info``) so a run of

    pytest benchmarks/ --benchmark-only

leaves the full set of paper artifacts on disk.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_configure(config) -> None:
    """Silence the engine deprecation shims (see tests/conftest.py)."""
    config.addinivalue_line(
        "filterwarnings", r"ignore:.*repro\.compile.*:DeprecationWarning"
    )


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def write_result(results_dir):
    """Persist one reproduced artifact and echo its location."""

    def _write(name: str, text: str) -> pathlib.Path:
        suffix = "svg" if text.lstrip().startswith("<svg") else "txt"
        path = results_dir / f"{name}.{suffix}"
        path.write_text(text + "\n")
        if suffix == "svg":
            print(f"\n[{name}] written to {path}")
        else:
            print(f"\n[{name}] written to {path}\n{text}")
        return path

    return _write
