"""Extension: LoRAStencil vs ConvStencil across problem sizes.

Fig. 9 sweeps sizes for LoRAStencil's internal configurations; this
bench sweeps the head-to-head comparison — both methods saturate with
size and LoRAStencil's advantage is roughly size-independent once the
GPU is full (speedup comes from per-point structure, not launch
effects).
"""

from __future__ import annotations

import pytest

from repro.experiments.report import format_table
from repro.experiments.sweep import DEFAULT_SWEEP_SIZES, run_size_sweep


def test_size_sweep(benchmark, write_result):
    result = benchmark.pedantic(
        run_size_sweep,
        args=("Box-2D49P",),
        kwargs={"sizes": DEFAULT_SWEEP_SIZES},
        rounds=1,
        iterations=1,
    )
    rows = [["size"] + result.methods() + ["speedup"]]
    for size, ratio in result.speedup_series("LoRAStencil", "ConvStencil"):
        rows.append(
            [str(size)]
            + [f"{result.perf(m, size):.2f}" for m in result.methods()]
            + [f"{ratio:.2f}x"]
        )
    write_result(
        "size_sweep",
        format_table(rows, "size sweep — Box-2D49P, LoRAStencil vs ConvStencil"),
    )

    sizes = result.sizes()
    # both methods saturate with size
    for m in result.methods():
        perfs = [result.perf(m, s) for s in sizes]
        assert perfs == sorted(perfs)
    # once the GPU is full the advantage is structural (size-independent)
    series = dict(result.speedup_series("LoRAStencil", "ConvStencil"))
    assert series[10240] == pytest.approx(series[4096], rel=0.05)
    assert series[10240] > 1.0
