"""Crossover analysis: where does LoRAStencil's advantage come from?

Sweeps the kernel radius (1..4, random radially symmetric weights —
not just the Table II points) and models LoRAStencil vs ConvStencil on
each, mapping how the speedup moves with the redundancy ratio (Eq. 14)
and where ConvStencil comes closest.  The paper's text claims the gap
is smallest on large 2D kernels and largest in 3D; this bench locates
the 2D minimum explicitly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.memory_model import memory_ratio
from repro.baselines.base import FootprintScale
from repro.baselines.convstencil import ConvStencil2D, ConvStencilMethod
from repro.baselines.lorastencil import LoRAStencilMethod
from repro.core.engine2d import LoRAStencil2D
from repro.experiments.report import format_table
from repro.stencil.kernels import BenchmarkKernel
from repro.stencil.weights import radially_symmetric_weights

GRID = (64, 64)


def _modelled(engine_counters, method, points):
    from repro.perf.costmodel import gstencil_per_second

    fp = FootprintScale(engine_counters, points=points)
    return gstencil_per_second(fp, method.traits())


def test_radius_crossover(benchmark, write_result):
    def sweep():
        rows = [["h", "Eq.14 ratio", "LoRA GSt/s", "Conv GSt/s", "speedup"]]
        speedups = {}
        for h in (1, 2, 3, 4):
            w = radially_symmetric_weights(h, 2, rng=np.random.default_rng(h))
            kernel = BenchmarkKernel(
                name=f"rand-h{h}",
                weights=w,
                problem_size=(10_240, 10_240),
                iterations=1,
                blocking=(32, 64),
            )
            x = np.random.default_rng(0).normal(
                size=tuple(s + 2 * h for s in GRID)
            )
            points = GRID[0] * GRID[1]

            lora_eng = LoRAStencil2D(w.as_matrix())
            _, lora_cnt = lora_eng.apply_simulated(x)
            lora_g = _modelled(lora_cnt, LoRAStencilMethod(kernel), points)

            conv_eng = ConvStencil2D(w.as_matrix())
            _, conv_cnt = conv_eng.apply_simulated(x)
            conv_g = _modelled(conv_cnt, ConvStencilMethod(kernel), points)

            speedups[h] = lora_g / conv_g
            rows.append(
                [
                    str(h),
                    f"{memory_ratio(h):.2f}x",
                    f"{lora_g:.2f}",
                    f"{conv_g:.2f}",
                    f"{speedups[h]:.2f}x",
                ]
            )
        return rows, speedups

    rows, speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    closest = min(speedups, key=speedups.get)
    text = format_table(rows, "crossover — unfused 2D radius sweep")
    text += (
        f"\n\nConvStencil comes closest at h={closest} "
        f"({speedups[closest]:.2f}x); LoRAStencil never loses, matching "
        "the paper's 1.12x minimum on 2D kernels."
    )
    write_result("crossover_radius", text)

    # LoRAStencil wins at every radius (no true crossover, per the paper)
    for h, s in speedups.items():
        assert s > 1.0, (h, s)
    # and the advantage is bounded (ConvStencil is the strong baseline)
    assert max(speedups.values()) < 3.0


def test_eq14_tracks_measured_load_ratio(benchmark):
    """Eq. 14's analytic ratio matches the measured fragment-load ratio
    across the radius sweep (modulo the pyramid-apex scalar reads)."""
    rng = np.random.default_rng(3)

    def measure():
        out = {}
        for h in (1, 2, 3, 4):
            w = radially_symmetric_weights(h, 2, rng=rng)
            x = rng.normal(size=tuple(s + 2 * h for s in GRID))
            _, lora = LoRAStencil2D(w.as_matrix()).apply_simulated(x)
            _, conv = ConvStencil2D(w.as_matrix()).apply_simulated(x)
            out[h] = conv.shared_load_requests / lora.shared_load_requests
        return out

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    for h in (3, 4):
        # scalar apex reads make the measured LoRA loads slightly higher
        # than Eq. 12's ideal, so measured <= analytic
        assert ratios[h] <= memory_ratio(h) + 1e-9
        assert ratios[h] == pytest.approx(memory_ratio(h), rel=0.35)
