"""Table III reproduction: compute throughput (CT%) and arithmetic
intensity (AI) for ConvStencil vs LoRAStencil."""

from __future__ import annotations

from repro.experiments.paper import PAPER
from repro.experiments.report import format_table
from repro.experiments.table3 import run_table3


def test_table3_compute_comparison(benchmark, write_result):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)

    rows = [["Kernel", "Method", "CT% (paper)", "AI (paper)"]]
    for r in result.rows:
        paper = PAPER["table3"][r.kernel][r.method]
        rows.append(
            [
                r.kernel,
                r.method,
                f"{r.ct_pct:6.2f} ({paper['ct_pct']})",
                f"{r.ai:5.2f} ({paper['ai']})",
            ]
        )
    lines = [
        format_table(rows, "Table III — compute throughput and arithmetic intensity"),
        "",
        f"AI ratio LoRA/Conv, Box-2D49P: {result.ai_ratio('Box-2D49P'):.2f}"
        f"  (paper {PAPER['table3']['Box-2D49P']['LoRAStencil']['ai'] / PAPER['table3']['Box-2D49P']['ConvStencil']['ai']:.2f})",
        "",
        "Note: the 3D rows inherit our per-plane ConvStencil-3D substitute,",
        "which overstates ConvStencil's tensor-core work share relative to",
        "the authors' native 3D kernels; the 2D directions and ratios hold.",
    ]
    write_result("table3_compute", "\n".join(lines))

    # shape assertions for the 2D kernel
    lora = result.row("Box-2D49P", "LoRAStencil")
    conv = result.row("Box-2D49P", "ConvStencil")
    assert lora.ct_pct > conv.ct_pct
    assert lora.ai > conv.ai


def test_footprint_measurement_cost(benchmark):
    """Wall-clock of the footprint measurement behind Table III."""
    from repro.baselines.lorastencil import LoRAStencilMethod
    from repro.stencil.kernels import get_kernel

    method = LoRAStencilMethod(get_kernel("Box-2D49P"))
    fp = benchmark(method.footprint, (64, 64))
    assert fp.points == 64 * 64
