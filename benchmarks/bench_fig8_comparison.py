"""Fig. 8 reproduction: GStencil/s + speedups, 8 kernels x 7 methods.

``test_fig8_full_table`` regenerates the whole figure (both bar heights
and the speedup axis) and the Section V-B mean-speedup sentences;
the per-method benchmarks time the underlying simulated sweeps that feed
the model.
"""

from __future__ import annotations

import pytest

from repro.baselines.registry import get_method
from repro.experiments.fig8 import run_fig8
from repro.experiments.paper import PAPER
from repro.experiments.report import format_table
from repro.stencil.kernels import get_kernel, list_kernels


def test_fig8_full_table(benchmark, write_result):
    result = benchmark.pedantic(
        run_fig8, kwargs={"include_best": True}, rounds=1, iterations=1
    )

    lines = [format_table(result.table_rows(), "Fig. 8 — modelled GStencil/s"), ""]
    lines.append("Mean LoRAStencil speedup (paper-reported in parentheses):")
    for method, paper_mean in PAPER["fig8_mean_speedup"].items():
        mean = result.mean_lora_speedup_over(method)
        mn, mx = result.minmax_lora_speedup_over(method)
        lines.append(
            f"  vs {method:12s}: mean {mean:6.2f}x  min {mn:5.2f}x  "
            f"max {mx:5.2f}x   (paper mean {paper_mean}x)"
        )
    text = "\n".join(lines)
    write_result("fig8_comparison", text)

    from repro.experiments.svg import grouped_bar_chart

    kernels = list_kernels()
    series = {
        m: [result.perf(k, m) for k in kernels]
        for m in list(PAPER["fig8_mean_speedup"])
        + ["LoRAStencil", "LoRAStencil-Best"]
    }
    svg = grouped_bar_chart(
        kernels, series, title="Fig. 8 — modelled GStencil/s",
        ylabel="GStencil/s",
    )
    write_result("fig8_comparison_chart", svg)

    # shape assertions: LoRAStencil wins every kernel; ordering holds,
    # and the rank-1 "Best" series bounds it from above (Fig. 8 caption)
    for kernel in list_kernels():
        lora = result.perf(kernel, "LoRAStencil")
        for method in PAPER["fig8_mean_speedup"]:
            assert lora >= result.perf(kernel, method), (kernel, method)
        assert result.perf(kernel, "LoRAStencil-Best") >= lora - 1e-9, kernel
    benchmark.extra_info["mean_speedup_vs_convstencil"] = round(
        result.mean_lora_speedup_over("ConvStencil"), 3
    )


@pytest.mark.parametrize("kernel", ["Box-2D9P", "Box-2D49P", "Star-2D13P"])
def test_lorastencil_simulated_sweep(benchmark, kernel):
    """Wall-clock of one warp-level LoRAStencil sweep on the simulator."""
    method = get_method("LoRAStencil", get_kernel(kernel))
    out, counters = benchmark(method.simulated_sweep, (64, 64))
    assert out.shape == (64, 64)
    benchmark.extra_info["mma_per_point"] = round(
        counters.mma_ops / out.size, 4
    )


@pytest.mark.parametrize("kernel", ["Box-2D49P"])
def test_convstencil_simulated_sweep(benchmark, kernel):
    """Wall-clock of one stencil2row ConvStencil sweep on the simulator."""
    import numpy as np

    k = get_kernel(kernel)
    method = get_method("ConvStencil", k)
    rng = np.random.default_rng(0)
    h = method.engine.radius
    x = rng.normal(size=(64 + 2 * h, 64 + 2 * h))
    out, _ = benchmark(method.engine.apply_simulated, x)
    assert out.shape == (64, 64)


def test_functional_apply_throughput(benchmark):
    """Wall-clock of the functional (NumPy) LoRAStencil path — the fast
    path a downstream user runs real workloads with."""
    import numpy as np

    k = get_kernel("Box-2D49P")
    from repro.core.engine2d import LoRAStencil2D

    eng = LoRAStencil2D(k.weights.as_matrix())
    rng = np.random.default_rng(0)
    x = rng.normal(size=(1024 + 6, 1024 + 6))
    out = benchmark(eng.apply, x)
    assert out.shape == (1024, 1024)
