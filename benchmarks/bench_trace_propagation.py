"""Trace-propagation overhead: the observability plane stays free when off.

The continuous observability plane threads four new mechanisms through
the sharded hot path: :class:`repro.telemetry.context.TraceContext`
capture at spawn, a null context span per shard, a
:func:`repro.telemetry.health.current_beat` lookup per sweep plus one
beat check per block, and level-filtered structured-event emission.
Each is designed to cost one attribute/``is not None`` check when
nothing is watching; this benchmark prices every one of them in
isolation on the acceptance workload — a 256x256 Box-2D9P simulated
sweep — and asserts their combined per-sweep bill keeps the disabled
overhead under the same 2% bound ``bench_telemetry_overhead`` pins for
the span layer.

Methodology mirrors ``bench_telemetry_overhead``: a real sweep takes
~1 s with heavy machine noise, so the per-operation costs are timed
over thousands of calls (microsecond precision) and multiplied by a
deliberately *generous* per-sweep operation budget (as if every warp
tile beat the health gauge, which the driver never does — it beats per
block).  The resulting overhead is a strict upper bound.
"""

from __future__ import annotations

import time

import numpy as np

from repro import telemetry
from repro.experiments.report import format_table
from repro.runtime import compile as compile_stencil
from repro.stencil.kernels import get_kernel
from repro.telemetry.context import TraceContext
from repro.telemetry.health import current_beat
from repro.telemetry.log import EVENT_LOG

GRID = 256
KERNEL = "Box-2D9P"
#: shared acceptance ceiling with bench_telemetry_overhead
MAX_DISABLED_OVERHEAD = 0.02
#: calls per timed chunk for the isolated per-op costs
CALLS = 20000
#: generous per-sweep budget: one beat per *tile* (32x32 of them for a
#: 256x256 grid of 8x8 tiles), though the driver only beats per block
OPS_PER_SWEEP = {
    "context capture": 8,
    "null context span": 8,
    "health beat check": (GRID // 8) ** 2,
    "filtered emit": 8,
}


def _per_call_seconds(fn) -> float:
    """Best-of-rounds per-call cost of ``fn`` over ``CALLS`` iterations."""
    fn()  # warm-up
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(CALLS):
            fn()
        best = min(best, time.perf_counter() - start)
    return best / CALLS


def test_trace_propagation_disabled_overhead(benchmark, write_result):
    k = get_kernel(KERNEL)
    compiled = compile_stencil(k.weights)
    rng = np.random.default_rng(0)
    padded = rng.normal(size=(GRID + 2 * compiled.radius,) * 2)

    telemetry.disable()
    t_sweep = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        compiled.plan.engine.apply_simulated(padded)
        t_sweep = min(t_sweep, time.perf_counter() - start)

    ctx = TraceContext.capture()
    assert not ctx.is_recording  # telemetry is off: the null path

    def null_span():
        with ctx.span("bench.noop", category="bench"):
            pass

    def filtered_emit():
        # debug sits below the log's default min level: the filtered
        # (hot-path) cost, not the recording cost
        EVENT_LOG.emit("bench.noop", level="debug")

    costs = {
        "context capture": _per_call_seconds(TraceContext.capture),
        "null context span": _per_call_seconds(null_span),
        "health beat check": _per_call_seconds(current_beat),
        "filtered emit": _per_call_seconds(filtered_emit),
    }
    per_sweep = sum(costs[name] * OPS_PER_SWEEP[name] for name in costs)
    overhead = per_sweep / t_sweep
    telemetry.reset()

    benchmark(TraceContext.capture)

    rows = [["mechanism", "per call", "ops/sweep", "per sweep"]]
    for name, cost in costs.items():
        ops = OPS_PER_SWEEP[name]
        rows.append(
            [
                name,
                f"{cost * 1e9:.0f} ns",
                str(ops),
                f"{cost * ops * 1e6:.1f} us",
            ]
        )
    rows.append(
        [
            "total vs sweep",
            "—",
            "—",
            f"{per_sweep * 1e6:.1f} us / {t_sweep * 1e3:.0f} ms "
            f"= {overhead * 100:.4f}%",
        ]
    )
    write_result(
        "trace_propagation_overhead",
        format_table(
            rows,
            f"trace-propagation overhead — {GRID}x{GRID} {KERNEL} "
            "simulated sweep (telemetry off)",
        ),
    )

    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled trace propagation costs {overhead * 100:.2f}% per "
        f"sweep (limit {MAX_DISABLED_OVERHEAD * 100:.0f}%)"
    )
