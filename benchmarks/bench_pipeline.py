"""Ablation: software-pipelining headroom of the RDG tile schedule.

The tile-program IR makes the schedule explicit; this bench measures the
load→first-use distance (the slack available for hiding shared-memory
latency) of the lazy, canonical and prefetch schedules per kernel, and
re-verifies that scheduling never changes results or event counts.
"""

from __future__ import annotations

import numpy as np

from repro.core.lowrank import decompose
from repro.core.rdg import RDGTileCompute
from repro.experiments.report import format_table
from repro.stencil.kernels import get_kernel
from repro.tcu.device import Device
from repro.tcu.program import (
    TileProgram,
    build_tile_program,
    execute_program,
    load_use_distance,
    schedule_prefetch,
    validate_schedule,
)

KERNELS_2D = ("Heat-2D", "Box-2D9P", "Star-2D13P", "Box-2D49P")


def _lazy(program: TileProgram) -> TileProgram:
    """Sink each load immediately before its first consumer."""
    rest = [i for i in program.instrs if i.op != "load_x"]
    for load in [i for i in program.instrs if i.op == "load_x"]:
        first = next(
            idx for idx, ins in enumerate(rest) if load.dst[0] in ins.srcs
        )
        rest.insert(first, load)
    out = TileProgram(tile=program.tile, instrs=rest)
    validate_schedule(out)
    return out


def test_pipelining_headroom(benchmark, write_result):
    def sweep():
        rows = [["kernel", "instrs", "lazy dist", "canonical dist",
                 "prefetch dist"]]
        for name in KERNELS_2D:
            w = get_kernel(name).weights
            tile = RDGTileCompute(decompose(w.as_matrix()), w.radius)
            canonical = build_tile_program(tile)
            rows.append(
                [
                    name,
                    str(len(canonical.instrs)),
                    f"{load_use_distance(_lazy(canonical)):.1f}",
                    f"{load_use_distance(canonical):.1f}",
                    f"{load_use_distance(schedule_prefetch(canonical)):.1f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(rows, "RDG tile schedule — load-to-use distance")
    text += (
        "\n\n(higher = more latency-hiding slack; all schedules execute "
        "to identical results and event counts)"
    )
    write_result("pipeline_headroom", text)

    # semantics preserved across schedules, spot-checked per kernel
    rng = np.random.default_rng(0)
    for name in KERNELS_2D:
        w = get_kernel(name).weights
        tile = RDGTileCompute(decompose(w.as_matrix()), w.radius)
        device = Device()
        warp = device.warp()
        smem = device.shared((tile.k_rows, tile.w_cols))
        smem.data[:] = rng.normal(size=smem.shape)
        canonical = build_tile_program(tile)
        a = execute_program(canonical, warp, smem, 0, 0)
        b = execute_program(schedule_prefetch(_lazy(canonical)), warp, smem, 0, 0)
        assert np.array_equal(a, b), name
        assert load_use_distance(schedule_prefetch(canonical)) >= (
            load_use_distance(_lazy(canonical))
        )
