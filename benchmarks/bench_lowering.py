"""Lowering-pipeline benchmarks: interpreted IR vs the eager oracle.

The pass-based lowering pipeline makes the scheduled
:class:`~repro.tcu.program.TileProgram` the single simulated execution
path, keeping the eager tile computation only as a correctness oracle.
This benchmark pins down what that costs and what it buys on the
paper's flagship small kernel (Box-2D9P over a 256x256 grid):

* the IR-interpreted sweep and the eager sweep are **bit-identical** in
  numerics and hardware event counts (the schedule-equivalence
  contract, re-checked here at full grid scale);
* the interpreter overhead of executing through the lowered program is
  bounded (same MMA count, same fragment loads — only Python dispatch
  differs);
* lowering itself (decompose -> build_tile_ir -> schedule) is a
  negligible one-time cost against a single 256x256 sweep.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import OptimizationConfig
from repro.experiments.report import format_table
from repro.runtime import compile as compile_stencil
from repro.stencil.kernels import get_kernel

GRID = (256, 256)


def _time(fn, repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_ir_sweep_matches_eager_at_scale(benchmark, write_result):
    """256x256 Box-2D9P: lowered-program sweep vs eager oracle sweep."""
    k = get_kernel("Box-2D9P")
    h = k.weights.radius
    compiled = compile_stencil(k.weights, cache=None)
    rng = np.random.default_rng(0)
    padded = np.pad(rng.normal(size=GRID), h)

    out_ir, ev_ir = compiled.apply_simulated(padded)
    out_eager, ev_eager = compiled.apply_simulated(padded, oracle=True)
    assert np.array_equal(out_ir, out_eager)
    assert ev_ir == ev_eager

    t_ir = _time(lambda: compiled.apply_simulated(padded))
    t_eager = _time(lambda: compiled.apply_simulated(padded, oracle=True))
    t_lower = _time(
        lambda: compile_stencil(k.weights, cache=None), repeat=5
    )
    benchmark(lambda: compiled.apply_simulated(padded))

    lowered = compiled.lowered
    pass_lines = ", ".join(
        f"{name} {seconds * 1e3:.2f} ms" for name, seconds in lowered.pass_times
    )
    text = format_table(
        [
            ["path", "time / sweep", "mma_ops", "shared loads"],
            ["interpreted IR", f"{t_ir * 1e3:.1f} ms",
             f"{ev_ir.mma_ops:,}", f"{ev_ir.shared_load_requests:,}"],
            ["eager oracle", f"{t_eager * 1e3:.1f} ms",
             f"{ev_eager.mma_ops:,}", f"{ev_eager.shared_load_requests:,}"],
            ["overhead", f"{t_ir / t_eager:.3f}x", "", ""],
            ["lowering (one-time)", f"{t_lower * 1e3:.3f} ms",
             f"{lowered.n_instrs} instrs", lowered.schedule],
        ],
        f"lowered IR vs eager sweep — Box-2D9P on {GRID[0]}x{GRID[1]} "
        f"({pass_lines})",
    )
    write_result("lowering_ir_vs_eager", text)

    # the interpreter adds Python dispatch, not hardware work; allow a
    # generous envelope so the gate flags regressions, not jitter
    assert t_ir < 3.0 * t_eager, (
        f"IR interpretation ({t_ir * 1e3:.1f} ms) more than 3x the eager "
        f"sweep ({t_eager * 1e3:.1f} ms)"
    )
    # compiling the plan is tiny next to one full-grid sweep
    assert t_lower < t_ir


def test_schedule_choice_preserves_counters(write_result):
    """Prefetch-scheduled plans sweep to identical events as eager ones."""
    k = get_kernel("Box-2D9P")
    h = k.weights.radius
    rng = np.random.default_rng(1)
    padded = np.pad(rng.normal(size=(64, 64)), h)

    rows = [["schedule", "load->use", "mma_ops", "shared loads"]]
    results = []
    for schedule in ("eager", "prefetch"):
        config = OptimizationConfig(schedule=schedule)
        compiled = compile_stencil(k.weights, config=config, cache=None)
        out, ev = compiled.apply_simulated(padded)
        results.append((out, ev))
        rows.append(
            [schedule, f"{compiled.lowered.load_use_distance:.1f}",
             f"{ev.mma_ops:,}", f"{ev.shared_load_requests:,}"]
        )
    (out0, ev0), (out1, ev1) = results
    assert np.array_equal(out0, out1)
    assert ev0 == ev1
    write_result(
        "lowering_schedule_ablation",
        format_table(rows, "schedule ablation — Box-2D9P on 64x64"),
    )
