"""Appendix: the extended kernel zoo (generalization beyond Table II).

The paper claims the techniques "generalize on various kernels"; this
bench backs that with an extra line-up — higher orders (up to the 9x9
Box-2D81P, the radius Eq. 14 quotes 4.2x for) and order-2 3D kernels —
comparing LoRAStencil against ConvStencil where the comparator's 2D
pipeline applies.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FootprintScale
from repro.baselines.convstencil import ConvStencil2D, ConvStencilMethod
from repro.baselines.lorastencil import LoRAStencilMethod
from repro.runtime import compile as compile_stencil
from repro.experiments.report import format_table
from repro.perf.costmodel import gstencil_per_second
from repro.stencil.extended import get_extended_kernel
from repro.stencil.reference import reference_apply

GRID_2D = (64, 64)
GRID_3D = (6, 32, 32)


def _gst(counters, method, points):
    return gstencil_per_second(
        FootprintScale(counters, points=points), method.traits()
    )


def test_extended_zoo_comparison(benchmark, write_result):
    rng = np.random.default_rng(0)

    def sweep():
        rows = [["kernel", "points", "LoRA GSt/s", "Conv GSt/s", "speedup"]]
        speedups = {}
        for name in ("1D7P", "Star-2D9P", "Box-2D25P", "Box-2D81P"):
            k = get_extended_kernel(name)
            h = k.weights.radius
            if k.weights.ndim == 1:
                from repro.baselines.convstencil import ConvStencil1D
                x = rng.normal(size=4096 + 2 * h)
                ref = reference_apply(x, k.weights)
                out, cnt = compile_stencil(k.weights).apply_simulated(x)
                assert np.abs(out - ref).max() < 1e-10
                lora_g = _gst(cnt, LoRAStencilMethod(k), 4096)
                out, cnt = ConvStencil1D(k.weights).apply_simulated(x)
                assert np.abs(out - ref).max() < 1e-10
                conv_g = _gst(cnt, ConvStencilMethod(k), 4096)
            else:
                x = rng.normal(size=tuple(s + 2 * h for s in GRID_2D))
                ref = reference_apply(x, k.weights)
                out, cnt = compile_stencil(k.weights).apply_simulated(x)
                assert np.abs(out - ref).max() < 1e-9
                lora_g = _gst(cnt, LoRAStencilMethod(k), GRID_2D[0] * GRID_2D[1])
                conv_eng = ConvStencil2D(k.weights.as_matrix())
                out, cnt = conv_eng.apply_simulated(x)
                assert np.abs(out - ref).max() < 1e-9
                conv_g = _gst(cnt, ConvStencilMethod(k), GRID_2D[0] * GRID_2D[1])
            speedups[name] = lora_g / conv_g
            rows.append(
                [name, str(k.points), f"{lora_g:.2f}", f"{conv_g:.2f}",
                 f"{speedups[name]:.2f}x"]
            )
        # 3D extended kernels: LoRAStencil absolute performance
        for name in ("Star-3D13P", "Box-3D125P"):
            k = get_extended_kernel(name)
            h = k.weights.radius
            x = rng.normal(size=tuple(s + 2 * h for s in GRID_3D))
            out, cnt = compile_stencil(k.weights).apply_simulated(x)
            ref = reference_apply(x, k.weights)
            assert np.abs(out - ref).max() < 1e-9
            g = _gst(cnt, LoRAStencilMethod(k), int(np.prod(GRID_3D)))
            rows.append([name, str(k.points), f"{g:.2f}", "-", "-"])
        return rows, speedups

    rows, speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        "extended_kernels",
        format_table(rows, "extended kernel zoo — LoRAStencil vs ConvStencil"),
    )
    for name, s in speedups.items():
        assert s > 1.0, (name, s)

