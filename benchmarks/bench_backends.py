"""Execution-backend benchmarks: interpreter vs vectorized.

Two claims the unified ``backend=`` API makes, measured:

* the vectorized backend is bit-identical to the per-thread
  interpreter — same grids, same :class:`~repro.tcu.counters.
  EventCounters` — across the Table II zoo;
* replaying the scheduled program over *all* tiles at once (broadcast
  ``matmul`` + probe-and-scale counters) is an order of magnitude
  faster in wall-clock than interpreting it tile by tile.

Each kernel's measurement is stamped as a pair of joinable run-records
(``measure_reference`` with each backend), so the records carry the
backend, plan hash and wall time that `repro perf check` joins against.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.report import format_table
from repro.runtime import compile as compile_stencil
from repro.stencil.kernels import get_kernel
from repro.telemetry.perf.history import measure_reference
from repro.telemetry.perf.profile import profile_shape

#: kernel -> grid edge; big enough that per-tile interpretation
#: dominates, small enough for a benchmark run
WORKLOADS = [
    ("Heat-1D", 96),
    ("Box-2D9P", 128),
    ("Star-2D13P", 96),
    ("Box-2D49P", 96),
    ("Heat-3D", 32),
]

#: wall-clock floor asserted per 2D kernel (the headline >=10x on the
#: 256x256 reference workload is gated by `repro perf check`)
MIN_SPEEDUP_2D = 5.0


def _padded(weights, size, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=profile_shape(weights.ndim, size))
    return np.pad(x, weights.radius)


def _time(fn, repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_vectorized_backend_speedup(benchmark, write_result):
    """Bit-identical sweeps, order-of-magnitude faster on 2D kernels."""
    rows = [["kernel", "interpreter", "vectorized", "speedup"]]
    speedups_2d = []
    for name, size in WORKLOADS:
        k = get_kernel(name)
        compiled = compile_stencil(k.weights)
        padded = _padded(k.weights, size)

        out_i, ev_i = compiled.apply_simulated(padded)
        out_v, ev_v = compiled.apply_simulated(padded, backend="vectorized")
        assert np.array_equal(out_i, out_v), name
        assert ev_i == ev_v, name

        t_int = _time(lambda: compiled.apply_simulated(padded))
        t_vec = _time(
            lambda: compiled.apply_simulated(padded, backend="vectorized")
        )
        if k.weights.ndim == 2:
            speedups_2d.append(t_int / t_vec)
        rows.append(
            [name, f"{t_int * 1e3:.1f} ms", f"{t_vec * 1e3:.2f} ms",
             f"{t_int / t_vec:.1f}x"]
        )

    k9 = get_kernel("Box-2D9P")
    compiled = compile_stencil(k9.weights)
    padded = _padded(k9.weights, 128)
    benchmark(lambda: compiled.apply_simulated(padded, backend="vectorized"))

    text = format_table(
        rows, "execution backends — interpreter vs vectorized (bit-identical)"
    )
    write_result("backend_speedup", text)
    assert min(speedups_2d) >= MIN_SPEEDUP_2D, (
        f"vectorized backend only {min(speedups_2d):.1f}x over the "
        f"interpreter on a 2D kernel (floor {MIN_SPEEDUP_2D}x)"
    )


def test_backend_run_records_are_joinable(benchmark, write_result):
    """Run-records stamped under each backend agree on every counter."""
    interp = measure_reference(size=64, backend="interpreter")
    vec = measure_reference(size=64, backend="vectorized")
    assert interp["extra"]["backend"] == "interpreter"
    assert vec["extra"]["backend"] == "vectorized"
    # same workload, different plan (backend is in the plan key)
    assert interp["extra"]["plan_key"] != vec["extra"]["plan_key"]
    assert interp["events"] == vec["events"]

    benchmark(lambda: measure_reference(size=64, backend="vectorized"))

    rows = [["record", "backend", "timing"]]
    for record in (interp, vec):
        rows.append(
            [record["name"], record["extra"]["backend"],
             f"{record['extra']['timing_s'] * 1e3:.1f} ms"]
        )
    write_result(
        "backend_run_records",
        format_table(rows, "perf-check run-records per backend"),
    )
