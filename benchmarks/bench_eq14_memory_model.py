"""Eq. 12-14 reproduction: the RDG vs ConvStencil memory-access model,
checked against the simulator's measured fragment loads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.memory_model import (
    convstencil_fragment_loads,
    convstencil_loads_per_tile,
    memory_ratio,
    rdg_fragment_loads,
    rdg_loads_per_tile,
    redundancy_eliminated,
)
from repro.experiments.report import format_table


def _build_table() -> str:
    rows = [
        [
            "h",
            "RDG/tile",
            "Conv/tile",
            "Conv/RDG (Eq.14)",
            "redundancy eliminated",
        ]
    ]
    for h in (1, 2, 3, 4):
        rows.append(
            [
                str(h),
                str(rdg_loads_per_tile(h)),
                str(convstencil_loads_per_tile(h)),
                f"{memory_ratio(h):.2f}",
                f"{redundancy_eliminated(h) * 100:.2f}%",
            ]
        )
    return format_table(rows, "Eq. 12-14 — shared-memory load model")


def test_eq14_memory_model(benchmark, write_result):
    text = benchmark(_build_table)
    text += (
        "\n\nPaper quotes: 3.25x / 69.23% at h=3; 4.2x / 76.19% at h=4."
    )
    write_result("eq14_memory_model", text)
    assert memory_ratio(3) == pytest.approx(3.25)
    assert memory_ratio(4) == pytest.approx(4.2)
    assert redundancy_eliminated(3) == pytest.approx(0.6923, abs=1e-4)
    assert redundancy_eliminated(4) == pytest.approx(0.7619, abs=1e-4)


def test_measured_loads_match_model(benchmark):
    """The simulated sweeps issue exactly the modelled load counts."""
    from repro.baselines.convstencil import ConvStencil2D
    from repro.core.engine2d import LoRAStencil2D
    from repro.stencil.weights import radially_symmetric_weights

    h, a, b = 3, 32, 32
    rng = np.random.default_rng(0)
    w = radially_symmetric_weights(h, 2, rng=rng)
    x = rng.normal(size=(a + 2 * h, b + 2 * h))

    def measure():
        _, lora = LoRAStencil2D(w.as_matrix()).apply_simulated(x)
        _, conv = ConvStencil2D(w.as_matrix()).apply_simulated(x)
        return lora, conv

    lora, conv = benchmark.pedantic(measure, rounds=1, iterations=1)
    tiles = (a // 8) * (b // 8)
    scalar_reads = 2 * tiles  # pyramid apex, not part of Eq. 12
    assert lora.shared_load_requests - scalar_reads == rdg_fragment_loads(a, b, h)
    assert conv.shared_load_requests == convstencil_fragment_loads(a, b, h)
