"""Runtime subsystem benchmarks: plan-cache latency and batched execution.

Two claims the compile-once runtime makes, measured:

* a plan-cache **hit** is orders of magnitude cheaper than a cold
  compile (no PMA/SVD, no gather-matrix/fragment rebuild — one SHA-256
  over the weight bytes plus a dict lookup);
* :meth:`~repro.runtime.facade.CompiledStencil.apply_batch` over a stack
  of grids beats a Python loop of per-grid ``apply`` calls, because the
  rank-1 term loops run once for the whole batch.
"""

from __future__ import annotations

import time

import numpy as np

from repro.runtime import PlanCache, compile as compile_stencil
from repro.experiments.report import format_table
from repro.stencil.kernels import get_kernel

#: batch size for the vectorization measurement (acceptance floor is 8).
#: Small grids at a deep batch put the weight on the per-call Python
#: overhead that apply_batch amortizes (one broadcast term loop for the
#: whole stack), which is exactly what this benchmark isolates.
BATCH = 32
GRID = (32, 32)


def _time(fn, repeat: int = 5) -> float:
    """Best-of-``repeat`` wall-clock seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_cache_hit_vs_cold_compile(benchmark, write_result):
    """Compile-vs-cached latency across the Table II zoo."""
    rows = [["kernel", "cold compile", "cached", "speedup"]]
    speedups = []
    for name in ("Heat-1D", "Box-2D9P", "Box-2D49P", "Heat-3D"):
        w = get_kernel(name).weights
        cold = _time(lambda: compile_stencil(w, cache=None))
        warm_cache = PlanCache(maxsize=8)
        compile_stencil(w, cache=warm_cache)  # prime
        hit = _time(lambda: compile_stencil(w, cache=warm_cache))
        speedups.append(cold / hit)
        rows.append(
            [name, f"{cold * 1e3:.3f} ms", f"{hit * 1e6:.1f} us",
             f"{cold / hit:.0f}x"]
        )

    cache = PlanCache(maxsize=8)
    w49 = get_kernel("Box-2D49P").weights
    compile_stencil(w49, cache=cache)
    benchmark(lambda: compile_stencil(w49, cache=cache))

    text = format_table(rows, "plan cache — cold compile vs cached hit")
    write_result("plan_cache_latency", text)
    # a hit skips the decomposition + fragment build entirely; even the
    # cheapest plan must fetch several times faster than it compiles
    assert min(speedups) > 3.0
    stats = cache.stats()
    assert stats.hits >= 1 and stats.misses == 1


def test_apply_batch_beats_python_loop(benchmark, write_result):
    """A ≥8-grid vectorized batch beats the equivalent Python loop."""
    k = get_kernel("Box-2D49P")
    h = k.weights.radius
    compiled = compile_stencil(k.weights)
    rng = np.random.default_rng(0)
    grids = rng.normal(size=(BATCH, GRID[0] + 2 * h, GRID[1] + 2 * h))

    def looped():
        return np.stack([compiled.apply(g) for g in grids])

    def batched():
        return compiled.apply_batch(grids)

    np.testing.assert_allclose(batched(), looped(), atol=1e-12)
    t_loop = _time(looped)
    t_batch = _time(batched)
    benchmark(batched)

    text = format_table(
        [
            ["path", "time / sweep", "per grid"],
            ["python loop of apply", f"{t_loop * 1e3:.2f} ms",
             f"{t_loop / BATCH * 1e3:.3f} ms"],
            ["apply_batch", f"{t_batch * 1e3:.2f} ms",
             f"{t_batch / BATCH * 1e3:.3f} ms"],
            ["speedup", f"{t_loop / t_batch:.2f}x", ""],
        ],
        f"batched execution — {BATCH} x {GRID[0]}x{GRID[1]} Box-2D49P grids",
    )
    write_result("plan_batch_speedup", text)
    assert t_batch < t_loop, (
        f"apply_batch ({t_batch * 1e3:.2f} ms) not faster than looped "
        f"apply ({t_loop * 1e3:.2f} ms) over {BATCH} grids"
    )
