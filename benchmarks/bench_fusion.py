"""Section IV-A reproduction: kernel-fusion fragment-waste model and the
functional cost of fused vs unfused execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fusion import fragment_waste, fuse_kernel, fusion_saving
from repro.runtime import compile as compile_stencil
from repro.experiments.report import format_table
from repro.stencil.kernels import get_kernel


def _build_table() -> str:
    rows = [["radius", "window elems used", "wasted", "saving vs h=1"]]
    for h in (1, 2, 3, 4):
        used = 256 - fragment_waste(h)
        rows.append(
            [
                str(h),
                str(used),
                str(fragment_waste(h)),
                f"{fusion_saving(1, h) * 100:.2f}%" if h > 1 else "-",
            ]
        )
    return format_table(rows, "Section IV-A — 16x16 window utilization")


def test_fusion_waste_model(benchmark, write_result):
    text = benchmark(_build_table)
    text += "\n\nPaper quotes: 3x fusing Box-2D9P saves 96/156 ~ 61.54%."
    write_result("fusion_waste", text)
    assert fragment_waste(1) == 156
    assert fragment_waste(3) == 60
    assert fusion_saving(1, 3) == pytest.approx(96 / 156)


def test_fused_sweep_vs_three_unfused(benchmark, write_result):
    """Functional wall-clock: one fused radius-3 sweep against three
    radius-1 sweeps covering the same three timesteps."""
    k = get_kernel("Box-2D9P")
    fk = fuse_kernel(k.weights, 3)
    fused = compile_stencil(fk.fused)
    base = compile_stencil(k.weights)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(512, 512))

    def three_base_steps():
        cur = x
        for _ in range(3):
            cur = base.apply(np.pad(cur, 1, mode="wrap"))
        return cur

    def one_fused_step():
        return fused.apply(np.pad(x, 3, mode="wrap"))

    ref = three_base_steps()
    out = benchmark(one_fused_step)
    assert np.allclose(out, ref, atol=1e-9)
    write_result(
        "fusion_equivalence",
        "3x temporally fused Box-2D9P sweep == 3 sequential sweeps "
        f"(max |diff| = {np.abs(out - ref).max():.3e})",
    )
