"""Extension analysis: roofline positions of every Fig. 8 method.

Table III gives two points of the roofline story (CT and AI); this
bench draws the whole picture — where each method sits relative to the
A100's ridge, and how far below its attainable roof it runs.
"""

from __future__ import annotations

from repro.baselines.registry import BASELINE_METHODS
from repro.experiments.footprints import cached_footprint
from repro.experiments.report import format_table
from repro.perf.roofline import ridge_intensity, roofline_point
from repro.stencil.kernels import get_kernel

KERNELS = ("Box-2D49P", "Heat-3D")


def test_roofline_positions(benchmark, write_result):
    def build():
        rows = [
            ["kernel", "method", "AI (F/B)", "achieved TF/s",
             "attainable TF/s", "bound", "roof eff"]
        ]
        points = {}
        for kname in KERNELS:
            kernel = get_kernel(kname)
            for mname, cls in BASELINE_METHODS.items():
                method = cls(kernel)
                fp = cached_footprint(method)
                pt = roofline_point(
                    fp, method.traits(), tensor_cores=method.uses_tensor_cores
                )
                points[(kname, mname)] = pt
                rows.append(
                    [
                        kname,
                        mname,
                        f"{pt.arithmetic_intensity:.2f}",
                        f"{pt.achieved_flops / 1e12:.2f}",
                        f"{pt.attainable_flops / 1e12:.2f}",
                        pt.bound,
                        f"{pt.roof_efficiency * 100:.0f}%",
                    ]
                )
        return rows, points

    rows, points = benchmark.pedantic(build, rounds=1, iterations=1)
    text = format_table(rows, "roofline — A100 FP64")
    text += (
        f"\n\nridge intensity (TCU): {ridge_intensity():.2f} FLOP/byte; "
        f"(CUDA): {ridge_intensity(tensor_cores=False):.2f} FLOP/byte"
    )
    write_result("roofline", text)

    # shape claims
    for kname in KERNELS:
        lora = points[(kname, "LoRAStencil")]
        conv = points[(kname, "ConvStencil")]
        # achieved throughput never exceeds the attainable roof
        for (kn, mn), pt in points.items():
            assert pt.achieved_flops <= pt.attainable_flops * 1.001, (kn, mn)
        # LoRAStencil runs closer to its roof than cuDNN does on 2D
        cudnn = points[("Box-2D49P", "cuDNN")]
        assert lora.roof_efficiency > cudnn.roof_efficiency or kname != "Box-2D49P"
        assert lora.arithmetic_intensity > 0 and conv.arithmetic_intensity > 0
