"""Ablation: Pyramidal Matrix Adaptation vs plain SVD decomposition.

PMA is the design choice DESIGN.md calls out for exploiting radial
symmetry: its pyramid needs at most ``h`` matrix terms plus a scalar
apex, while a symmetry-blind SVD of the same matrix can need up to
``h+1`` full-size matrix terms — and every matrix term costs 12 MMAs
per tile (Eq. 16).  This bench quantifies the MMA savings per kernel
and verifies both routes are numerically exact.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine2d import LoRAStencil2D
from repro.core.lowrank import pyramidal_decompose, svd_decompose
from repro.core.rdg import RDGTileCompute
from repro.experiments.report import format_table
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_apply
from repro.stencil.weights import radially_symmetric_weights

KERNELS_2D = ("Box-2D9P", "Box-2D49P", "Heat-2D", "Star-2D13P")


def _mma_for(decomp, radius):
    return RDGTileCompute(decomp, radius).mma_per_tile


def test_pma_vs_svd_mma_counts(benchmark, write_result):
    def build():
        rows = [["kernel", "PMA matrix terms", "SVD terms",
                 "PMA MMA/tile", "SVD MMA/tile", "saving"]]
        for name in KERNELS_2D:
            w = get_kernel(name).weights
            mat = w.as_matrix()
            try:
                pma = pyramidal_decompose(mat)
            except Exception:
                pma = None
            svd = svd_decompose(mat)
            if pma is None:
                rows.append([name, "- (star: zero pivot)", str(len(svd.terms)),
                             "-", str(_mma_for(svd, w.radius)), "-"])
                continue
            m_pma = _mma_for(pma, w.radius)
            m_svd = _mma_for(svd, w.radius)
            saving = 1 - m_pma / m_svd if m_svd else 0.0
            rows.append(
                [
                    name,
                    str(len(pma.matrix_terms)),
                    str(len(svd.terms)),
                    str(m_pma),
                    str(m_svd),
                    f"{saving * 100:.0f}%",
                ]
            )
        return rows

    rows = benchmark(build)
    write_result(
        "ablation_rank",
        format_table(rows, "ablation — PMA vs symmetry-blind SVD"),
    )


def test_pma_never_more_expensive(benchmark):
    """Across random radial kernels, PMA's tile never needs more MMAs
    than the SVD route and both are exact."""
    rng = np.random.default_rng(11)

    def check_all():
        worst = 0.0
        for h in (1, 2, 3, 4):
            w = radially_symmetric_weights(h, 2, rng=rng)
            mat = w.as_matrix()
            pma = pyramidal_decompose(mat)
            svd = svd_decompose(mat)
            assert _mma_for(pma, h) <= _mma_for(svd, h)
            x = rng.normal(size=(16 + 2 * h, 16 + 2 * h))
            ref = reference_apply(x, w)
            for d in (pma, svd):
                out = LoRAStencil2D(mat, decomposition=d).apply(x)
                worst = max(worst, float(np.abs(out - ref).max()))
        return worst

    worst = benchmark.pedantic(check_all, rounds=1, iterations=1)
    assert worst < 1e-10
