"""Telemetry overhead: free when disabled, cheap when enabled.

The observability layer's contract (docs/observability.md): every
instrumentation point costs one attribute check when telemetry is off,
so the instrumented facade sweep must track the bare engine sweep to
within measurement noise.  This benchmark pins that down on the
acceptance workload — a 256x256 Box-2D9P simulated sweep — and asserts
the disabled-path overhead stays under 2%.

Methodology: a single simulated sweep takes ~1 s here with ±40% machine
noise (shared box), so the overhead cannot be resolved by subtracting
two end-to-end timings.  Instead the facade's *wrapper* cost — the span
check, event attach/absorb gates, and attribute lookups that
``CompiledStencil.apply_simulated`` adds over a direct engine call — is
timed in isolation (the runtime underneath is stubbed out, thousands of
calls, microsecond precision) and divided by the best observed sweep
time.  End-to-end timings of all three paths are still reported for
context:

* ``engine`` — ``plan.engine.apply_simulated`` called directly, the
  PR-1 era hot path (it too passes one disabled span check inside the
  TCU sweep loop's entry);
* ``facade off`` — ``CompiledStencil.apply_simulated`` with telemetry
  disabled: the instrumented production path;
* ``facade on`` — the same call while spans and metric absorption are
  live (the span machinery is per sweep, not per tile, so it stays
  small too).
"""

from __future__ import annotations

import time

import numpy as np

from repro import telemetry
from repro.experiments.report import format_table
from repro.runtime import compile as compile_stencil
from repro.stencil.kernels import get_kernel
from repro.tcu.counters import EventCounters

GRID = 256
KERNEL = "Box-2D9P"
#: acceptance ceiling for disabled-telemetry overhead on the facade path
MAX_DISABLED_OVERHEAD = 0.02
#: calls per chunk when timing the wrapper in isolation
WRAPPER_CALLS = 2000


def _time_interleaved(fns: list, rounds: int = 4) -> list[float]:
    """Best-of-``rounds`` seconds for each fn, measured round-robin.

    Interleaving the candidates within each round cancels slow drift
    (turbo/thermal/co-tenant noise); the residual per-sweep jitter is
    why these numbers are context, not the asserted quantity.
    """
    for fn in fns:  # warm-up: page in inputs, stabilize allocations
        fn()
    best = [float("inf")] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def _wrapper_cost_seconds(compiled, padded) -> float:
    """Per-call cost the facade adds over a direct engine call.

    Stubs ``compiled.runtime.apply_simulated`` with a constant return,
    then times facade-through-stub against the stub alone; the
    difference is exactly the instrumentation layer (span machinery,
    disabled-path gates, argument plumbing).  Min over chunks discards
    scheduler interference.
    """
    out = padded[1:-1, 1:-1].copy()
    events = EventCounters()

    def stub(padded, device=None, oracle=False, profiler=None, **kwargs):
        return out, events

    real = compiled.runtime.apply_simulated
    compiled.runtime.apply_simulated = stub
    try:
        best_facade = best_stub = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(WRAPPER_CALLS):
                compiled.apply_simulated(padded)
            best_facade = min(best_facade, time.perf_counter() - start)
            start = time.perf_counter()
            for _ in range(WRAPPER_CALLS):
                stub(padded)
            best_stub = min(best_stub, time.perf_counter() - start)
    finally:
        compiled.runtime.apply_simulated = real
    return max(best_facade - best_stub, 0.0) / WRAPPER_CALLS


def test_disabled_overhead_under_2pct(benchmark, write_result):
    k = get_kernel(KERNEL)
    compiled = compile_stencil(k.weights)
    rng = np.random.default_rng(0)
    padded = rng.normal(size=(GRID + 2 * compiled.radius,) * 2)

    def engine_sweep():
        telemetry.disable()
        compiled.plan.engine.apply_simulated(padded)

    def facade_off():
        telemetry.disable()
        compiled.apply_simulated(padded)

    def facade_on():
        telemetry.enable()
        compiled.apply_simulated(padded)

    t_engine, t_facade_off, t_facade_on = _time_interleaved(
        [engine_sweep, facade_off, facade_on]
    )
    telemetry.disable()
    wrapper = _wrapper_cost_seconds(compiled, padded)
    telemetry.reset()

    #: the asserted quantity: isolated wrapper cost vs. one real sweep
    overhead_off = wrapper / t_engine
    benchmark(lambda: compiled.apply_simulated(padded))

    text = format_table(
        [
            ["path", "time / sweep", "vs engine (noisy)"],
            ["engine (direct)", f"{t_engine * 1e3:.1f} ms", "—"],
            ["facade, telemetry off", f"{t_facade_off * 1e3:.1f} ms",
             f"{(t_facade_off / t_engine - 1) * 100:+.2f}%"],
            ["facade, telemetry on", f"{t_facade_on * 1e3:.1f} ms",
             f"{(t_facade_on / t_engine - 1) * 100:+.2f}%"],
            ["facade wrapper (isolated)", f"{wrapper * 1e6:.2f} us/call",
             f"{overhead_off * 100:+.4f}%"],
        ],
        f"telemetry overhead — {GRID}x{GRID} {KERNEL} simulated sweep",
    )
    write_result("telemetry_overhead", text)

    assert overhead_off < MAX_DISABLED_OVERHEAD, (
        f"disabled telemetry costs {overhead_off * 100:.2f}% on the "
        f"facade sweep (limit {MAX_DISABLED_OVERHEAD * 100:.0f}%)"
    )
