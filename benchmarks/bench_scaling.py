"""Extension experiment: multi-GPU domain-decomposition scaling.

Strong and weak scaling of LoRAStencil across a simulated NVLink-
connected device mesh (the deployment shape of the paper's motivating
applications: weather models, RTM, wave propagation).
"""

from __future__ import annotations

import pytest

from repro.experiments.report import format_table
from repro.parallel import SimulatedCluster
from repro.stencil.kernels import get_kernel

DEVICES = (1, 2, 4, 8, 16)


def _mesh(n: int) -> tuple[int, int]:
    best = (1, n)
    for p in range(1, int(n**0.5) + 1):
        if n % p == 0:
            best = (p, n // p)
    return best


def test_strong_scaling(benchmark, write_result):
    w = get_kernel("Box-2D9P").weights

    def sweep():
        return {
            n: SimulatedCluster(w, (4096, 4096), _mesh(n)).timings()
            for n in DEVICES
        }

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = timings[1]
    rows = [["devices", "mesh", "step (ms)", "comm %", "speedup", "efficiency"]]
    for n, t in timings.items():
        s = t.speedup_over(base)
        rows.append(
            [
                str(n),
                "x".join(map(str, _mesh(n))),
                f"{t.step_s * 1e3:.3f}",
                f"{t.comm_fraction * 100:.1f}",
                f"{s:.2f}x",
                f"{100 * s / n:.0f}%",
            ]
        )
    write_result(
        "scaling_strong",
        format_table(rows, "strong scaling — Box-2D9P on 4096^2"),
    )
    # scaling is near-linear while halo traffic is small
    assert timings[4].speedup_over(base) > 3.0
    assert timings[16].speedup_over(base) > 10.0
    # efficiency decays monotonically with device count
    effs = [timings[n].speedup_over(base) / n for n in DEVICES]
    assert all(a >= b - 1e-9 for a, b in zip(effs, effs[1:]))


def test_weak_scaling(benchmark, write_result):
    """Fixed 1024^2 per device: step time should stay nearly flat."""
    w = get_kernel("Box-2D9P").weights

    def sweep():
        out = {}
        for n in (1, 4, 16):
            p, q = _mesh(n)
            out[n] = SimulatedCluster(w, (1024 * p, 1024 * q), (p, q)).timings()
        return out

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [["devices", "global grid", "step (ms)", "comm %"]]
    for n, t in timings.items():
        p, q = _mesh(n)
        rows.append(
            [
                str(n),
                f"{1024 * p}x{1024 * q}",
                f"{t.step_s * 1e3:.3f}",
                f"{t.comm_fraction * 100:.1f}",
            ]
        )
    write_result(
        "scaling_weak",
        format_table(rows, "weak scaling — 1024^2 per device, Box-2D9P"),
    )
    assert timings[16].step_s == pytest.approx(timings[1].step_s, rel=0.25)
