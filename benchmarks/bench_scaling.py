"""Extension experiment: multi-GPU domain-decomposition scaling.

Strong and weak scaling of LoRAStencil across a simulated NVLink-
connected device mesh (the deployment shape of the paper's motivating
applications: weather models, RTM, wave propagation).
"""

from __future__ import annotations

import pytest

from repro.experiments.report import format_table
from repro.parallel import SimulatedCluster
from repro.stencil.kernels import get_kernel

DEVICES = (1, 2, 4, 8, 16)


def _mesh(n: int) -> tuple[int, int]:
    best = (1, n)
    for p in range(1, int(n**0.5) + 1):
        if n % p == 0:
            best = (p, n // p)
    return best


def test_strong_scaling(benchmark, write_result):
    w = get_kernel("Box-2D9P").weights

    def sweep():
        return {
            n: SimulatedCluster(w, (4096, 4096), _mesh(n)).timings()
            for n in DEVICES
        }

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = timings[1]
    rows = [["devices", "mesh", "step (ms)", "comm %", "speedup", "efficiency"]]
    for n, t in timings.items():
        s = t.speedup_over(base)
        rows.append(
            [
                str(n),
                "x".join(map(str, _mesh(n))),
                f"{t.step_s * 1e3:.3f}",
                f"{t.comm_fraction * 100:.1f}",
                f"{s:.2f}x",
                f"{100 * s / n:.0f}%",
            ]
        )
    write_result(
        "scaling_strong",
        format_table(rows, "strong scaling — Box-2D9P on 4096^2"),
    )
    # scaling is near-linear while halo traffic is small
    assert timings[4].speedup_over(base) > 3.0
    assert timings[16].speedup_over(base) > 10.0
    # efficiency decays monotonically with device count
    effs = [timings[n].speedup_over(base) / n for n in DEVICES]
    assert all(a >= b - 1e-9 for a, b in zip(effs, effs[1:]))


def test_temporal_scaling(benchmark, write_result):
    """GStencil/s across shards × block_steps, plus the halo ledger.

    Temporal blocking amortizes the per-message exchange latency over
    ``block_steps`` local steps: the modelled per-step-equivalent comm
    time drops ~``block_steps``× while throughput climbs.  The measured
    half executes a small grid through the runtime and checks that the
    exchange *count* really drops ``block_steps``× (the byte volume per
    round grows with halo depth — corners — which is exactly why the
    win is latency, not bandwidth).
    """
    import numpy as np

    from repro.parallel import run_temporal_blocked

    w = get_kernel("Box-2D9P").weights
    blocks = (1, 2, 4, 8)
    shards = (4, 16)

    def sweep():
        return {
            (n, k): SimulatedCluster(w, (4096, 4096), _mesh(n)).timings(
                steps=16, block_steps=k
            )
            for n in shards
            for k in blocks
        }

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [["devices", "block_steps", "GStencil/s",
             "comm (us/step)", "step (ms)"]]
    for (n, k), t in timings.items():
        rows.append(
            [
                str(n),
                str(k),
                f"{t.gstencil_per_s:.2f}",
                f"{t.comm_s * 1e6:.3f}",
                f"{t.step_s * 1e3:.3f}",
            ]
        )

    # measured: execute a small grid, count rounds and bytes per config
    rng = np.random.default_rng(7)
    x = rng.normal(size=(256, 256))
    cluster = SimulatedCluster(w, (256, 256), (2, 2))
    measured = {}
    base = None
    for k in blocks:
        out, exchanged = run_temporal_blocked(cluster, x, 8, k)
        result = cluster.runtime.last_result
        measured[k] = (result.rounds, exchanged)
        if base is None:
            base = out
        else:
            assert np.array_equal(out, base)  # temporal runs stay bit-exact
    rows.append(["", "", "", "", ""])
    rows.append(["measured 4", "block_steps", "exchanges", "halo bytes", ""])
    for k, (rounds, exchanged) in measured.items():
        rows.append(["", str(k), str(rounds), f"{exchanged:,}", ""])
    write_result(
        "scaling_temporal",
        format_table(
            rows, "temporal scaling — Box-2D9P, GStencil/s vs shards x block_steps"
        ),
    )
    for n in shards:
        # latency amortization: per-step comm drops, throughput climbs
        assert timings[(n, 8)].comm_s < timings[(n, 1)].comm_s
        assert (
            timings[(n, 8)].gstencil_per_s
            >= timings[(n, 1)].gstencil_per_s
        )
    # exchange count drops block_steps× (8 steps: 8 rounds → 1 round)
    assert measured[1][0] == 8
    assert measured[8][0] == 1


def test_overlap_observatory(benchmark, write_result):
    """Measured overlap efficiency and imbalance from the observatory.

    Runs one overlapped 2x2 thread-executor sweep under capture and
    folds the trace into a :mod:`repro.telemetry.cluster` report: the
    stamped ``overlap_efficiency`` / ``imbalance_max_over_mean`` extras
    feed the same rolling trend gates CI watches, so a regression that
    stops hiding transfers behind interior sweeps shows up here first.
    """
    import numpy as np

    from repro import telemetry
    from repro.parallel.cluster import ClusterRuntime
    from repro.parallel.plan import distribute
    from repro.telemetry.cluster import build_cluster_report

    w = get_kernel("Box-2D9P").weights
    rng = np.random.default_rng(11)
    x = rng.normal(size=(128, 128))
    plan = distribute(w, x.shape, (2, 2), block_steps=2)
    runtime = ClusterRuntime(plan)

    def sweep():
        with telemetry.capture() as tracer:
            result = runtime.run(
                x, 6, block_steps=2, overlap=True, executor="thread"
            )
        return build_cluster_report(result, tracer=tracer)

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [["rank", "busy (ms)", "wait (ms)", "retry (ms)", "wall (ms)"]]
    for row in report["ranks"]:
        rows.append(
            [
                str(row["rank"]),
                f"{row['busy_s'] * 1e3:.3f}",
                f"{row['lanes']['wait_s'] * 1e3:.3f}",
                f"{row['lanes']['retry_s'] * 1e3:.3f}",
                f"{row['wall_s'] * 1e3:.3f}",
            ]
        )
    rows.append(["", "", "", "", ""])
    rows.append(
        [
            "overlap eff",
            f"{report['overlap']['efficiency']:.3f}",
            "max/mean",
            f"{report['imbalance']['max_over_mean']:.3f}",
            "",
        ]
    )
    write_result(
        "cluster_observatory",
        format_table(
            rows, "cluster observatory — Box-2D9P 2x2 threads, overlap on"
        ),
        extra={
            "overlap_efficiency": report["overlap"]["efficiency"],
            "imbalance_max_over_mean": report["imbalance"]["max_over_mean"],
            "critical_path_s": report["critical_path"]["s"],
            "halo_bytes": report["halo"]["total_bytes"],
        },
    )
    # functional interior sweeps dwarf the modeled transfers: all hidden
    assert report["overlap"]["efficiency"] > 0.0
    assert report["halo"]["reconciled"] is True
    assert report["critical_path"]["ns"] >= max(
        row["wall_ns"] for row in report["ranks"]
    )


def test_weak_scaling(benchmark, write_result):
    """Fixed 1024^2 per device: step time should stay nearly flat."""
    w = get_kernel("Box-2D9P").weights

    def sweep():
        out = {}
        for n in (1, 4, 16):
            p, q = _mesh(n)
            out[n] = SimulatedCluster(w, (1024 * p, 1024 * q), (p, q)).timings()
        return out

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [["devices", "global grid", "step (ms)", "comm %"]]
    for n, t in timings.items():
        p, q = _mesh(n)
        rows.append(
            [
                str(n),
                f"{1024 * p}x{1024 * q}",
                f"{t.step_s * 1e3:.3f}",
                f"{t.comm_fraction * 100:.1f}",
            ]
        )
    write_result(
        "scaling_weak",
        format_table(rows, "weak scaling — 1024^2 per device, Box-2D9P"),
    )
    assert timings[16].step_s == pytest.approx(timings[1].step_s, rel=0.25)
