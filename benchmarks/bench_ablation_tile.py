"""Ablation: output-tile size (8x8 default vs multi-accumulator tiles).

Section III-B's analysis argues the ideal update is ``2h x 2h`` points:
larger tiles reuse the loaded window over more outputs (fewer fragment
loads per point) at the price of more accumulators and Step-2 MMAs.
This bench maps that frontier for each radius and feeds both axes
through the cost model to find the best tile per kernel.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import FootprintScale
from repro.core.engine2d import LoRAStencil2D
from repro.experiments.report import format_table
from repro.perf.costmodel import gstencil_per_second
from repro.stencil.reference import reference_apply
from repro.stencil.weights import radially_symmetric_weights

TILES = ((8, 8), (8, 16), (16, 16), (24, 24))
RADII = (1, 2, 3, 4)


def _lora_traits():
    from repro.baselines.base import MethodTraits

    return MethodTraits(
        tcu_efficiency=0.86,
        cuda_efficiency=0.40,
        dram_efficiency=0.85,
        smem_efficiency=0.85,
        issue_efficiency=0.60,
    )


def test_tile_size_frontier(benchmark, write_result):
    rng = np.random.default_rng(0)

    def sweep():
        rows = [["h", "tile", "loads/pt", "MMA/pt", "modelled GStencil/s"]]
        best = {}
        for h in RADII:
            w = radially_symmetric_weights(h, 2, rng=np.random.default_rng(h))
            x = rng.normal(size=(48 + 2 * h, 48 + 2 * h))
            ref = reference_apply(x, w)
            for ts in TILES:
                eng = LoRAStencil2D(w.as_matrix(), tile_shape=ts)
                out, cnt = eng.apply_simulated(x)
                assert np.abs(out - ref).max() < 1e-10
                fp = FootprintScale(cnt, points=48 * 48)
                g = gstencil_per_second(fp, _lora_traits())
                rows.append(
                    [
                        str(h),
                        f"{ts[0]}x{ts[1]}",
                        f"{eng.tile.fragment_loads_per_tile / eng.tile.points_per_tile:.4f}",
                        f"{eng.tile.mma_per_tile / eng.tile.points_per_tile:.4f}",
                        f"{g:.2f}",
                    ]
                )
                key = (h,)
                if key not in best or g > best[key][1]:
                    best[key] = (ts, g)
        return rows, best

    rows, best = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [format_table(rows, "ablation — output tile size"), ""]
    for (h,), (ts, g) in sorted(best.items()):
        lines.append(f"  best tile at h={h}: {ts[0]}x{ts[1]} ({g:.2f} GStencil/s)")
    write_result("ablation_tile", "\n".join(lines))

    # structural claims: larger tiles always reduce loads per point ...
    for h in RADII:
        w = radially_symmetric_weights(h, 2, rng=np.random.default_rng(h))
        small = LoRAStencil2D(w.as_matrix(), tile_shape=(8, 8)).tile
        big = LoRAStencil2D(w.as_matrix(), tile_shape=(24, 24)).tile
        assert (
            big.fragment_loads_per_tile / big.points_per_tile
            < small.fragment_loads_per_tile / small.points_per_tile
        )
        # ... at the price of more Step-2 MMAs per point
        assert (
            big.mma_per_tile / big.points_per_tile
            >= small.mma_per_tile / small.points_per_tile
        )
