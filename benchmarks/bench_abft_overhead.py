"""ABFT verification overhead: free when disabled, bounded when on.

The fault-tolerance contract (docs/robustness.md): a sweep with no
``verify``/``faults``/``policy`` arguments never builds a guard or an
injector — the hot loop pays one ``is None`` check per block staging
and per tile, nothing more.  This benchmark pins that down on the
acceptance workload — a 256x256 Box-2D9P simulated sweep — with the
same isolated-wrapper methodology as ``bench_telemetry_overhead``:
end-to-end timings are too noisy on a shared box to resolve a sub-2%
delta, so the asserted quantity is the facade's *fault-mode dispatch*
cost measured over thousands of stubbed calls.

Three end-to-end paths are reported for context:

* ``verify off`` — the production path (guard/injector machinery
  entirely absent);
* ``verify on (clean)`` — ``verify="abft"``: every tile's checksums
  compared against an oracle replay at tolerance 0.  In the simulator
  this costs roughly one extra tile computation per tile (~2x);
  the *hardware* cost of the scheme is the checksum-row footprint
  reported at the bottom of the table — one extra accumulator row per
  8-row MMA, a 12.5% bound (``repro.core.lowering.checksum_footprint``);
* ``verify on + 1 fault`` — one injected bit flip, detected and
  recovered (adds one tile recomputation to the clean verify cost).

The stamped run-record carries the chaos run's ``faults`` section
(schema ``repro.telemetry.run-record/v2``).
"""

from __future__ import annotations

import time

import numpy as np

from repro import telemetry
from repro.core.lowering import checksum_footprint
from repro.experiments.report import format_table
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.runtime import compile as compile_stencil
from repro.stencil.kernels import get_kernel
from repro.tcu.counters import EventCounters

GRID = 256
KERNEL = "Box-2D9P"
#: acceptance ceiling for the disabled-path dispatch cost
MAX_DISABLED_OVERHEAD = 0.02
#: calls per chunk when timing the dispatch in isolation
WRAPPER_CALLS = 2000


def _best_of(fn, rounds: int = 3) -> float:
    fn()  # warm-up
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _dispatch_cost_seconds(compiled, padded) -> float:
    """Per-call cost ``verify=None`` adds to the facade dispatch.

    Stubs ``compiled.runtime.apply_simulated``, then times the facade
    with all fault arguments at their defaults against the bare stub;
    the difference bounds everything the fault-tolerance feature added
    to the disabled path (the ``fault_mode`` flag test and argument
    plumbing — no report, no snapshot, no guard).
    """
    out = padded[1:-1, 1:-1].copy()
    events = EventCounters()

    def stub(padded, device=None, oracle=False, profiler=None, **kwargs):
        return out, events

    real = compiled.runtime.apply_simulated
    compiled.runtime.apply_simulated = stub
    try:
        best_facade = best_stub = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(WRAPPER_CALLS):
                compiled.apply_simulated(padded)
            best_facade = min(best_facade, time.perf_counter() - start)
            start = time.perf_counter()
            for _ in range(WRAPPER_CALLS):
                stub(padded)
            best_stub = min(best_stub, time.perf_counter() - start)
    finally:
        compiled.runtime.apply_simulated = real
    return max(best_facade - best_stub, 0.0) / WRAPPER_CALLS


def test_abft_overhead(benchmark, write_result):
    telemetry.disable()
    k = get_kernel(KERNEL)
    compiled = compile_stencil(k.weights)
    rng = np.random.default_rng(0)
    padded = rng.normal(size=(GRID + 2 * compiled.radius,) * 2)

    t_off = _best_of(lambda: compiled.apply_simulated(padded))
    t_verify = _best_of(
        lambda: compiled.apply_simulated(padded, verify="abft")
    )

    def one_fault():
        inj = FaultInjector(
            FaultPlan(specs=(FaultSpec(kind="flip_a", site=5, lane=3),))
        )
        out, _ = compiled.apply_simulated(padded, verify="abft", faults=inj)
        assert inj.report.as_dict()["unrecovered"] == 0
        return out

    clean = compiled.apply_simulated(padded)[0]
    assert np.array_equal(one_fault(), clean)  # recovery is bit-exact
    t_fault = _best_of(one_fault)

    dispatch = _dispatch_cost_seconds(compiled, padded)
    overhead_off = dispatch / t_off
    footprint = checksum_footprint(compiled.plan.lowered)

    benchmark(lambda: compiled.apply_simulated(padded))

    text = format_table(
        [
            ["path", "time / sweep", "vs verify off"],
            ["verify off", f"{t_off * 1e3:.1f} ms", "—"],
            ["verify on (clean)", f"{t_verify * 1e3:.1f} ms",
             f"{t_verify / t_off:.2f}x (oracle replay per tile)"],
            ["verify on + 1 fault", f"{t_fault * 1e3:.1f} ms",
             f"{t_fault / t_off:.2f}x"],
            ["disabled-path dispatch (isolated)",
             f"{dispatch * 1e6:.2f} us/call",
             f"{overhead_off * 100:+.4f}%"],
            ["hardware checksum footprint",
             f"{footprint['checksum_rows']} rows / "
             f"{footprint['baseline_rows']} acc rows",
             f"{footprint['overhead_fraction'] * 100:.1f}% of MMA work"],
        ],
        f"ABFT overhead — {GRID}x{GRID} {KERNEL} simulated sweep",
    )
    write_result("abft_overhead", text)

    assert overhead_off < MAX_DISABLED_OVERHEAD, (
        f"disabled fault machinery costs {overhead_off * 100:.2f}% on the "
        f"facade sweep (limit {MAX_DISABLED_OVERHEAD * 100:.0f}%)"
    )
    assert footprint["overhead_fraction"] == 0.125
