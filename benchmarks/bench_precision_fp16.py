"""Extension experiment: FP64 LoRAStencil vs FP16 TCStencil numerics.

The paper's Section V-A / VI argument against TCStencil is qualitative
("limited to FP16 precision").  This bench quantifies it: the
TCStencil-style FP16 pipeline carries ~1e-3 relative error from the
first sweep and keeps a persistent gap from the FP64 trajectory, while
LoRAStencil's FP64 path is exact to machine precision.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine2d import LoRAStencil2D
from repro.experiments.report import format_table
from repro.precision import TCStencilFP16, precision_sweep
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_apply

KERNELS = ("Heat-2D", "Box-2D9P", "Box-2D49P")


def test_fp16_error_growth(benchmark, write_result):
    def sweep_all():
        return {
            name: precision_sweep(
                get_kernel(name).weights, grid_shape=(64, 64), steps=(1, 4, 8)
            )
            for name in KERNELS
        }

    results = benchmark.pedantic(sweep_all, rounds=1, iterations=1)
    rows = [["kernel", "steps", "max |err|", "rel L2 err"]]
    for name, pts in results.items():
        for p in pts:
            rows.append(
                [name, str(p.step), f"{p.max_abs_err:.3e}", f"{p.rel_l2_err:.3e}"]
            )
    text = format_table(
        rows, "FP16 TCStencil-style pipeline vs FP64 reference trajectory"
    )
    text += (
        "\n\nLoRAStencil's FP64 path is exact to ~1e-15 on the same "
        "trajectories (see tests); TCStencil's FP16 path cannot be."
    )
    write_result("precision_fp16", text)

    for pts in results.values():
        for p in pts:
            assert 1e-7 < p.rel_l2_err < 5e-2


def test_fp16_range_overflow_on_amplifying_kernel(benchmark, write_result):
    """Box-2D49P's weights sum to ~4.4, so the field grows each sweep;
    by ~16 steps it exceeds FP16's 65504 range and the TCStencil-style
    pipeline saturates to inf/NaN while the FP64 trajectory stays
    finite — the *range* half of the paper's precision argument."""
    import warnings

    w = get_kernel("Box-2D49P").weights

    def sweep():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return precision_sweep(w, grid_shape=(64, 64), steps=(8, 16))

    pts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    finite_at_8 = np.isfinite(pts[0].max_abs_err)
    overflow_at_16 = not np.isfinite(pts[1].max_abs_err)
    write_result(
        "precision_fp16_overflow",
        "Box-2D49P (weight sum ~4.4, amplifying):\n"
        f"  step  8: max |err| = {pts[0].max_abs_err:.3e} (finite: {finite_at_8})\n"
        f"  step 16: max |err| = {pts[1].max_abs_err} "
        f"(FP16 range overflow: {overflow_at_16})\n"
        "FP64 LoRAStencil remains finite and exact on the same trajectory.",
    )
    assert finite_at_8
    assert overflow_at_16


def test_single_sweep_error_comparison(benchmark, write_result):
    """One sweep head-to-head: FP64 engine vs FP16 pipeline."""
    rng = np.random.default_rng(0)
    w = get_kernel("Box-2D49P").weights
    x = rng.normal(size=(64 + 6, 64 + 6))
    ref = reference_apply(x, w)
    lora = LoRAStencil2D(w.as_matrix())
    tcs = TCStencilFP16(w)

    out16 = benchmark(tcs.apply, x)
    out64 = lora.apply(x)
    err64 = np.abs(out64 - ref).max()
    err16 = np.abs(out16 - ref).max()
    write_result(
        "precision_single_sweep",
        f"Box-2D49P single sweep max |err| vs reference:\n"
        f"  LoRAStencil (FP64): {err64:.3e}\n"
        f"  TCStencil   (FP16): {err16:.3e}\n"
        f"  gap: {err16 / max(err64, 1e-300):.1e}x",
    )
    assert err64 < 1e-12
    assert err16 > 1e-5
