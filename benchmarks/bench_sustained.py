"""Sustained execution: multi-step double-buffered simulated runs.

Single-sweep footprints can hide steady-state effects; this bench runs
the driver for many timesteps on one device, checks that the sustained
per-point event rates equal the single-sweep rates (no warmup drift in
the simulator), and reports sustained modelled GStencil/s.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.lorastencil import LoRAStencilMethod
from repro.core.driver import SimulationDriver
from repro.experiments.report import format_table
from repro.stencil.kernels import get_kernel
from repro.stencil.reference import reference_iterate

KERNELS_2D = ("Heat-2D", "Box-2D9P", "Box-2D49P")
STEPS = 8
GRID = (48, 48)


def test_sustained_runs(benchmark, write_result):
    rng = np.random.default_rng(0)

    def sweep():
        rows = [["kernel", "steps", "MMA/pt/step", "loads/pt/step",
                 "sustained GSt/s"]]
        reports = {}
        for name in KERNELS_2D:
            k = get_kernel(name)
            driver = SimulationDriver(k.weights)
            x0 = rng.normal(size=GRID)
            report = driver.run(x0, STEPS)
            reports[name] = (report, x0)
            traits = LoRAStencilMethod(k).traits()
            rows.append(
                [
                    name,
                    str(STEPS),
                    f"{report.counters.mma_ops / report.point_steps:.4f}",
                    f"{report.counters.shared_load_requests / report.point_steps:.4f}",
                    f"{report.sustained_gstencil(traits):.2f}",
                ]
            )
        return rows, reports

    rows, reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result("sustained_runs", format_table(rows, "sustained simulated runs"))

    for name, (report, x0) in reports.items():
        k = get_kernel(name)
        # trajectory stays exact over many steps
        ref = reference_iterate(x0, k.weights, STEPS)
        assert np.allclose(report.final, ref, atol=1e-9), name
        # steady state: per-step events equal the single-sweep events
        single = SimulationDriver(k.weights).run(x0, 1)
        assert report.counters.mma_ops == STEPS * single.counters.mma_ops
        assert (
            report.counters.shared_load_requests
            == STEPS * single.counters.shared_load_requests
        )


def test_driver_wallclock(benchmark):
    """Wall-clock of one sustained 4-step run (simulator cost)."""
    k = get_kernel("Box-2D9P")
    driver = SimulationDriver(k.weights)
    rng = np.random.default_rng(1)
    x0 = rng.normal(size=(32, 32))
    report = benchmark(driver.run, x0, 4)
    assert report.steps == 4
