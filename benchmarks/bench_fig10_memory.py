"""Fig. 10 reproduction: shared-memory requests, ConvStencil vs
LoRAStencil, measured by the simulator's counters (our Nsight Compute).
"""

from __future__ import annotations

import pytest

from repro.experiments.fig10 import FIG10_KERNELS, run_fig10
from repro.experiments.paper import PAPER
from repro.experiments.report import format_table


def test_fig10_shared_memory_requests(benchmark, write_result):
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)

    rows = [["Kernel", "Method", "Loads/Mpt", "Stores/Mpt", "Total/Mpt"]]
    for r in result.rows:
        rows.append(
            [r.kernel, r.method, f"{r.loads:.0f}", f"{r.stores:.0f}", f"{r.total:.0f}"]
        )
    lines = [
        format_table(rows, "Fig. 10 — shared-memory requests per million points"),
        "",
        "LoRAStencil / ConvStencil ratios (paper-reported in parentheses):",
    ]
    for kernel in FIG10_KERNELS:
        lines.append(
            f"  {kernel:12s} loads {result.ratio(kernel, 'loads'):.3f}  "
            f"stores {result.ratio(kernel, 'stores'):.3f}  "
            f"total {result.ratio(kernel, 'total'):.3f}"
        )
    lines += [
        f"  mean loads  ratio: {result.mean_ratio('loads'):.3f}"
        f"  (paper {PAPER['fig10_load_ratio']})",
        f"  mean stores ratio: {result.mean_ratio('stores'):.3f}"
        f"  (paper {PAPER['fig10_store_ratio']})",
        f"  mean total  ratio: {result.mean_ratio('total'):.3f}"
        f"  (paper {1 - PAPER['fig10_total_reduction']:.3f})",
    ]
    write_result("fig10_memory", "\n".join(lines))

    # shape: LoRAStencil issues fewer requests of every kind, everywhere
    for kernel in FIG10_KERNELS:
        assert result.ratio(kernel, "loads") < 1.0
        assert result.ratio(kernel, "stores") < 1.0
        assert result.ratio(kernel, "total") < 1.0
    # store ratio lands close to the paper's 47.0%
    assert result.mean_ratio("stores") == pytest.approx(
        PAPER["fig10_store_ratio"], rel=0.35
    )


def test_counter_measurement_cost(benchmark):
    """Wall-clock of one counter-measured ConvStencil sweep (2D)."""
    import numpy as np

    from repro.baselines.convstencil import ConvStencil2D
    from repro.stencil.kernels import get_kernel

    eng = ConvStencil2D(get_kernel("Star-2D13P").weights.as_matrix())
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64 + 6, 64 + 6))
    out, counters = benchmark(eng.apply_simulated, x)
    assert counters.shared_load_requests > 0
