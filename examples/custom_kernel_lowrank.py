"""Bring your own kernel: low-rank adaptation of a custom stencil.

Shows the full PMA pipeline on a user-defined radius-4 radially
symmetric kernel (a 9x9 Gaussian-like smoother):

1. verify the Section II-C rank bound,
2. peel the pyramid and print every rank-1 term,
3. compare the modelled memory/compute cost against ConvStencil
   (Eq. 12-16), and
4. execute on the TCU simulator and check exactness.

Run:  python examples/custom_kernel_lowrank.py
"""

import numpy as np

from repro import LoRAStencil2D, pyramidal_decompose, reference_apply
from repro.analysis.compute_model import lorastencil_mma_per_tile
from repro.analysis.memory_model import (
    convstencil_loads_per_tile,
    memory_ratio,
    rdg_loads_per_tile,
    redundancy_eliminated,
)
from repro.stencil.patterns import Shape, StencilPattern
from repro.stencil.weights import StencilWeights, is_radially_symmetric

H = 4  # radius -> 9x9 kernel


def gaussian_kernel(radius: int, sigma: float = 2.0) -> StencilWeights:
    """Radially symmetric Gaussian smoother (weights sum to 1)."""
    ax = np.arange(-radius, radius + 1)
    yy, xx = np.meshgrid(ax, ax, indexing="ij")
    arr = np.exp(-(xx**2 + yy**2) / (2 * sigma**2))
    arr /= arr.sum()
    return StencilWeights(StencilPattern(Shape.BOX, radius, 2), arr)


def main() -> None:
    w = gaussian_kernel(H)
    print(f"custom kernel: {w.pattern.label()}, radius {H}")
    print(f"radially symmetric: {is_radially_symmetric(w)}")
    rank = w.matrix_rank()
    print(f"rank(W) = {rank}  (Section II-C bound: h+1 = {H + 1})")
    assert rank <= H + 1

    d = pyramidal_decompose(w.as_matrix())
    print(f"\nPMA pyramid ({d.rank} terms, reconstruction error "
          f"{d.max_error(w.as_matrix()):.2e}):")
    for i, t in enumerate(d.terms, 1):
        kind = "scalar apex" if t.is_scalar else f"{t.size}x{t.size} rank-1"
        print(f"  C{i}: {kind}, pad {t.pad}")

    print("\ncost vs ConvStencil (per 8-wide output tile):")
    print(f"  fragment loads: RDG {rdg_loads_per_tile(H)} vs "
          f"ConvStencil {convstencil_loads_per_tile(H)}  "
          f"-> {memory_ratio(H):.2f}x less traffic "
          f"({redundancy_eliminated(H) * 100:.1f}% redundancy eliminated)")
    print(f"  MMA instructions per 8x8 tile: "
          f"{lorastencil_mma_per_tile(H, len(d.matrix_terms))} "
          f"(Eq. 16 trades compute for memory)")

    # run it
    engine = LoRAStencil2D(w.as_matrix())
    rng = np.random.default_rng(3)
    x = rng.normal(size=(40 + 2 * H, 40 + 2 * H))
    out, events = engine.apply_simulated(x)
    ref = reference_apply(x, w)
    print(f"\nsimulated sweep: max |err| vs reference = "
          f"{np.abs(out - ref).max():.2e}")
    print(f"events: {events.mma_ops} MMAs, "
          f"{events.shared_load_requests} fragment loads, "
          f"{events.shuffle_ops} shuffles (BVS keeps this at zero)")
    assert np.abs(out - ref).max() < 1e-10
    print("OK")


if __name__ == "__main__":
    main()
