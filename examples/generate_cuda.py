"""Emit production CUDA kernels for the whole Table II zoo.

Writes one ``.cu`` file per benchmark kernel into ``generated_cuda/``
(1D single-gather kernels, 2D RDG/PMA/BVS kernels, 3D Algorithm-2
dispatchers) and prints the structural summary — the MMA and fragment-
load counts baked into each file, which equal the simulator's counters
and the paper's Eq. 12/16.

Run:  python examples/generate_cuda.py
"""

import pathlib

from repro.codegen import (
    generate_cuda_kernel,
    generate_cuda_kernel_1d,
    generate_cuda_kernel_3d,
)
from repro.stencil.kernels import KERNELS

OUT_DIR = pathlib.Path(__file__).parent / "generated_cuda"


def main() -> None:
    OUT_DIR.mkdir(exist_ok=True)
    print(f"{'kernel':<12} {'file':<22} {'lines':>6} {'MMA/tile':>9} "
          f"{'X loads':>8}")
    for kernel in KERNELS.values():
        name = kernel.name.lower().replace("-", "_")
        path = OUT_DIR / f"{name}.cu"
        if kernel.weights.ndim == 1:
            src = generate_cuda_kernel_1d(
                kernel.weights, kernel_name=f"{name}_kernel"
            )
            text, mma, loads = src.source, src.mma_calls, src.x_fragment_loads
        elif kernel.weights.ndim == 2:
            src = generate_cuda_kernel(
                kernel.weights, kernel_name=f"{name}_kernel"
            )
            text, mma, loads = src.source, src.mma_calls, src.x_fragment_loads
        else:
            src3 = generate_cuda_kernel_3d(kernel.weights)
            text = src3.full_source
            mma = sum(s.mma_calls for s in src3.plane_sources if s)
            loads = sum(s.x_fragment_loads for s in src3.plane_sources if s)
        path.write_text(text + "\n")
        print(f"{kernel.name:<12} {path.name:<22} "
              f"{len(text.splitlines()):>6} {mma:>9} {loads:>8}")
    print(f"\nwrote {len(KERNELS)} kernels to {OUT_DIR}/")
    print("(sources target sm_80; compile with "
          "`nvcc -arch=sm_80 -c <file>` on a CUDA machine)")


if __name__ == "__main__":
    main()
