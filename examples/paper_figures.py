"""Regenerate every evaluation artifact of the paper in one run.

Drives the experiment harness for Fig. 8 (state-of-the-art comparison),
Fig. 9 (optimization breakdown), Fig. 10 (shared-memory requests) and
Table III (CT/AI), printing each next to the paper-reported numbers.

Run:  python examples/paper_figures.py         (~1 minute)
"""

from repro.experiments import (
    PAPER,
    format_table,
    run_fig8,
    run_fig9,
    run_fig10,
    run_table3,
)


def fig8() -> None:
    print("=" * 72)
    res = run_fig8()
    print(format_table(res.table_rows(), "Fig. 8 — modelled GStencil/s"))
    print("\nmean LoRAStencil speedups (paper in parentheses):")
    for method, paper in PAPER["fig8_mean_speedup"].items():
        print(f"  vs {method:12s} {res.mean_lora_speedup_over(method):6.2f}x "
              f"({paper}x)")


def fig9() -> None:
    print("=" * 72)
    res = run_fig9()
    cfgs = res.configs()
    rows = [["size"] + cfgs]
    for size in res.sizes():
        rows.append([str(size)] + [f"{res.perf(c, size):.2f}" for c in cfgs])
    print(format_table(rows, "Fig. 9 — Box-2D9P breakdown (GStencil/s)"))
    big = max(res.sizes())
    print(f"\n  TCU gain {res.gain(cfgs[1], cfgs[0], big):.2f}x "
          f"(paper {PAPER['fig9_tcu_gain']}x), "
          f"BVS gain {res.gain(cfgs[2], cfgs[1], big):.2f}x "
          f"(paper {PAPER['fig9_bvs_gain']}x), "
          f"AC gain {res.gain(cfgs[3], cfgs[2], big):.3f}x "
          f"(paper {PAPER['fig9_async_copy_gain']}x)")


def fig10() -> None:
    print("=" * 72)
    res = run_fig10()
    rows = [["kernel", "method", "loads/Mpt", "stores/Mpt", "total/Mpt"]]
    for r in res.rows:
        rows.append([r.kernel, r.method, f"{r.loads:.0f}", f"{r.stores:.0f}",
                     f"{r.total:.0f}"])
    print(format_table(rows, "Fig. 10 — shared-memory requests"))
    print(f"\n  mean LoRA/Conv ratios: loads {res.mean_ratio('loads'):.3f} "
          f"(paper {PAPER['fig10_load_ratio']}), "
          f"stores {res.mean_ratio('stores'):.3f} "
          f"(paper {PAPER['fig10_store_ratio']})")


def table3() -> None:
    print("=" * 72)
    res = run_table3()
    rows = [["kernel", "method", "CT%", "AI"]]
    for r in res.rows:
        p = PAPER["table3"][r.kernel][r.method]
        rows.append([r.kernel, r.method,
                     f"{r.ct_pct:.2f} (paper {p['ct_pct']})",
                     f"{r.ai:.2f} (paper {p['ai']})"])
    print(format_table(rows, "Table III — CT and AI"))


def main() -> None:
    fig8()
    fig9()
    fig10()
    table3()
    print("=" * 72)
    print("done — see EXPERIMENTS.md for the paper-vs-measured discussion")


if __name__ == "__main__":
    main()
