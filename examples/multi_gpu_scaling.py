"""Scale-out: LoRAStencil across a simulated multi-GPU mesh.

Decomposes a 2D heat problem over 1/4/9/16 devices, validates that the
distributed trajectory is bit-comparable with the single-grid reference,
and prints the modelled strong-scaling curve (NVLink-class halo
exchange, per-device LoRAStencil sweeps).

Run:  python examples/multi_gpu_scaling.py
"""

import numpy as np

from repro import get_kernel, reference_iterate
from repro.parallel import SimulatedCluster

GRID = 144
STEPS = 6
MESHES = [(1, 1), (2, 2), (3, 3), (4, 4)]


def main() -> None:
    kernel = get_kernel("Heat-2D")
    rng = np.random.default_rng(9)
    x0 = rng.normal(size=(GRID, GRID))
    ref = reference_iterate(x0, kernel.weights, STEPS, boundary="periodic")

    print(f"{kernel.name} on {GRID}x{GRID}, {STEPS} steps, periodic boundary\n")
    print(f"{'devices':>8} {'mesh':>6} {'max|err|':>12} {'halo MB/step':>14} "
          f"{'step time':>12} {'speedup':>8}")

    base = None
    for mesh in MESHES:
        cluster = SimulatedCluster(
            kernel.weights, (GRID, GRID), mesh, boundary="periodic"
        )
        out = cluster.run(x0, STEPS)
        err = np.abs(out - ref).max()
        assert err < 1e-9, err

        timing = SimulatedCluster(
            kernel.weights, (8192, 8192), mesh, boundary="periodic"
        ).timings(steps=1)
        if base is None:
            base = timing
        halo_mb = sum(
            cluster.halo.bytes_per_exchange(s.rank)
            for s in cluster.part.subdomains
        ) / 1e6
        print(f"{cluster.part.num_devices:>8} {mesh[0]}x{mesh[1]:<4} "
              f"{err:>12.2e} {halo_mb:>14.4f} "
              f"{timing.step_s * 1e3:>10.3f}ms "
              f"{timing.speedup_over(base):>7.2f}x")

    print("\nOK: every mesh reproduces the single-grid trajectory exactly;")
    print("scaling follows the halo-surface to block-volume ratio.")


if __name__ == "__main__":
    main()
