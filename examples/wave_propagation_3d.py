"""3D acoustic wave propagation with the plane-decomposed 3D engine.

Solves the second-order wave equation ``u_tt = c^2 laplacian(u)`` with
the classic leapfrog update

    u[t+1] = 2 u[t] - u[t-1] + (c dt/dx)^2 * L u[t]

where ``L`` is the 7-point 3D Laplacian — a Star-3D7P stencil, exactly
the shape Algorithm 2 splits between CUDA cores (single-weight planes)
and tensor cores (the middle Star-2D5P plane).

Run:  python examples/wave_propagation_3d.py
"""

import numpy as np

from repro import LoRAStencil3D, StencilPattern, StencilWeights, Shape
from repro.stencil.reference import reference_apply

N = 48          # grid points per axis
STEPS = 60
COURANT = 0.4   # c*dt/dx, stable for 3D when < 1/sqrt(3)


def laplacian_weights() -> StencilWeights:
    """7-point 3D Laplacian as a Star-3D7P stencil."""
    arr = np.zeros((3, 3, 3))
    arr[1, 1, 1] = -6.0
    for axis in range(3):
        idx = [1, 1, 1]
        for off in (0, 2):
            idx[axis] = off
            arr[tuple(idx)] = 1.0
            idx[axis] = 1
    return StencilWeights(StencilPattern(Shape.STAR, 1, 3), arr)


def main() -> None:
    lap = laplacian_weights()
    engine = LoRAStencil3D(lap)
    print("3D wave equation, leapfrog + LoRAStencil3D Laplacian")
    print(f"grid {N}^3, {STEPS} steps, Courant number {COURANT}")
    print(f"tensor-core planes: {engine.tensor_core_planes}, "
          f"CUDA-core planes: {engine.cuda_core_planes}")

    # Gaussian pressure pulse in the centre
    z, y, x = np.meshgrid(*(np.arange(N),) * 3, indexing="ij")
    r2 = (z - N / 2) ** 2 + (y - N / 2) ** 2 + (x - N / 2) ** 2
    u_prev = np.exp(-r2 / 18.0)
    u_curr = u_prev.copy()  # zero initial velocity

    c2 = COURANT**2
    front_radius = []
    for step in range(STEPS):
        lap_u = engine.apply(np.pad(u_curr, 1))
        u_next = 2.0 * u_curr - u_prev + c2 * lap_u
        u_prev, u_curr = u_curr, u_next
        if step % 15 == 14:
            # radius of the expanding wavefront: mean distance of the
            # strongest |u| shell
            mag = np.abs(u_curr)
            mask = mag > 0.25 * mag.max()
            radius = np.sqrt(r2[mask]).mean()
            front_radius.append(radius)
            print(f"  step {step + 1:3d}: max|u|={mag.max():.4f}  "
                  f"wavefront radius ~ {radius:5.2f}")

    # the front must move outward at a steady speed
    assert all(a < b for a, b in zip(front_radius, front_radius[1:])), (
        "wavefront must expand monotonically"
    )

    # cross-check one Laplacian application against the reference
    err = np.abs(
        engine.apply(np.pad(u_curr, 1)) - reference_apply(np.pad(u_curr, 1), lap)
    ).max()
    print(f"\nLaplacian max |err| vs reference: {err:.2e}")
    assert err < 1e-10
    print("OK: expanding spherical wave, tensor/CUDA-core plane split per Alg. 2.")


if __name__ == "__main__":
    main()
