"""Quickstart: run a stencil through LoRAStencil's two execution paths.

Builds the Box-2D49P engine (the paper's 7x7 working example), applies it
with the functional NumPy path and with the warp-level TCU simulation,
checks both against the reference executor, and prints the hardware
events the simulated sweep generated.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import LoRAStencil2D, get_kernel, reference_apply

def main() -> None:
    kernel = get_kernel("Box-2D49P")
    print(f"Kernel: {kernel.name}  ({kernel.points} points, radius "
          f"{kernel.weights.radius})")

    engine = LoRAStencil2D(kernel.weights.as_matrix())
    d = engine.decomposition
    print(f"Decomposition: method={d.method}, rank={d.rank}, "
          f"pyramid sizes={[t.size for t in d.terms]}")

    rng = np.random.default_rng(42)
    h = kernel.weights.radius
    x = rng.normal(size=(64 + 2 * h, 64 + 2 * h))  # padded input

    # 1. functional fast path (vectorized separable filters)
    out_fast = engine.apply(x)

    # 2. faithful warp-level path on the TCU simulator
    out_sim, events = engine.apply_simulated(x)

    ref = reference_apply(x, kernel.weights)
    print(f"functional max |err| vs reference: {np.abs(out_fast - ref).max():.2e}")
    print(f"simulated  max |err| vs reference: {np.abs(out_sim - ref).max():.2e}")

    print("\nSimulated hardware events for one 64x64 sweep:")
    for name, value in events.as_dict().items():
        if value:
            print(f"  {name:28s} {value:>10,}")
    print(f"\nMMA instructions per output point: "
          f"{events.mma_ops / out_sim.size:.3f}  (Eq. 16 predicts 36/64 = 0.5625)")
    print(f"Fragment loads per output point:   "
          f"{events.shared_load_requests / out_sim.size:.3f}")


if __name__ == "__main__":
    main()
