"""2D heat conduction with LoRAStencil — the paper's motivating workload.

Simulates an explicit finite-difference heat equation (the Heat-2D
kernel of Table II) from a hot square in a cold plate:

* integrates 300 timesteps with the LoRAStencil engine, using the
  paper's 3x temporal kernel fusion (100 fused sweeps);
* verifies the fused trajectory against 300 plain reference steps;
* checks the physics: the peak decays monotonically, heat spreads, and
  total energy only leaves through the cold boundary.

Run:  python examples/heat_diffusion_2d.py
"""

import numpy as np

from repro import Grid, LoRAStencil2D, get_kernel, reference_iterate
from repro.core.fusion import fuse_kernel

GRID = 96
STEPS = 300
FUSE = 3


def ascii_heatmap(field: np.ndarray, width: int = 48) -> str:
    """Tiny ASCII rendering of the temperature field."""
    shades = " .:-=+*#%@"
    step = max(1, field.shape[0] // (width // 2))
    rows = []
    vmax = field.max() or 1.0
    for i in range(0, field.shape[0], step * 2):
        row = ""
        for j in range(0, field.shape[1], step):
            row += shades[min(int(field[i, j] / vmax * (len(shades) - 1)), 9)]
        rows.append(row)
    return "\n".join(rows)


def main() -> None:
    kernel = get_kernel("Heat-2D")
    fused = fuse_kernel(kernel.weights, FUSE)
    engine = LoRAStencil2D(fused.fused.as_matrix())
    print(f"Heat-2D, {GRID}x{GRID} plate, {STEPS} steps "
          f"({fused.steps_for(STEPS)} fused sweeps of {FUSE})")

    # hot square in a cold plate
    t0 = np.zeros((GRID, GRID))
    t0[GRID // 2 - 8 : GRID // 2 + 8, GRID // 2 - 8 : GRID // 2 + 8] = 100.0
    print("\ninitial state:")
    print(ascii_heatmap(t0))

    grid = Grid(t0, fused.radius)  # cold (zero) boundary
    peaks = [t0.max()]
    energy = [t0.sum()]
    for _ in range(fused.steps_for(STEPS)):
        grid.step(engine.apply)
        peaks.append(grid.interior.max())
        energy.append(grid.interior.sum())

    print(f"\nafter {STEPS} steps:")
    print(ascii_heatmap(grid.interior))

    # engine exactness: the LoRAStencil sweeps must equal the reference
    # executor applied to the same fused kernel
    ref_fused = reference_iterate(t0, fused.fused, fused.steps_for(STEPS))
    err = np.abs(grid.interior - ref_fused).max()
    print(f"\nmax |err| vs fused reference trajectory: {err:.2e}")
    assert err < 1e-9

    # temporal fusion with a cold (zero) boundary is exact in the
    # interior and only approximate within the fused halo of the edge;
    # report that boundary deviation against the unfused trajectory
    ref = reference_iterate(t0, kernel.weights, STEPS)
    edge_err = np.abs(grid.interior - ref).max()
    print(f"boundary fusion deviation vs {STEPS} unfused steps: "
          f"{edge_err:.2e} (edge halo only)")
    assert edge_err < 1e-4
    interior_err = np.abs(grid.interior[6:-6, 6:-6] - ref[6:-6, 6:-6]).max()
    assert interior_err < 1e-6, interior_err

    # physics checks
    assert all(a >= b for a, b in zip(peaks, peaks[1:])), "peak must decay"
    assert all(a >= b for a, b in zip(energy, energy[1:])), (
        "energy must only leave through the cold boundary"
    )
    print(f"peak temperature: {peaks[0]:.1f} -> {peaks[-1]:.2f}")
    print(f"total energy:     {energy[0]:.0f} -> {energy[-1]:.0f} "
          f"({100 * energy[-1] / energy[0]:.1f}% retained)")
    print("\nOK: fused LoRAStencil trajectory matches the reference physics.")


if __name__ == "__main__":
    main()
