"""Verification: the LoRAStencil stack solves real physics correctly.

Runs the classic grid-refinement study for the 2D heat equation against
its analytic solution, stepping with the LoRAStencil engine.  The FTCS
scheme is second-order in dx at fixed mesh ratio; the study confirms
the full stack (decomposition -> banded MCM -> time integration)
reproduces that order, and contrasts it with the FP16 TCStencil-style
pipeline, whose rounding error puts a floor under the achievable
accuracy.

Run:  python examples/convergence_study.py
"""

from repro.precision import TCStencilFP16
from repro.validation import convergence_study, estimated_order


def main() -> None:
    print("heat equation u_t = laplacian(u), unit square, Dirichlet-0")
    print("FTCS via LoRAStencil (FP64):\n")
    pts = convergence_study(resolutions=(12, 24, 48, 96))
    print(f"{'n':>5} {'dx':>9} {'steps':>7} {'max err':>12} {'ratio':>7}")
    prev = None
    for p in pts:
        ratio = f"{prev / p.max_err:6.2f}" if prev else "     -"
        print(f"{p.n:>5} {p.dx:>9.5f} {p.steps:>7} {p.max_err:>12.3e} {ratio}")
        prev = p.max_err
    order = estimated_order(pts)
    print(f"\nobserved convergence order: {order:.3f}  (theory: 2.0)")
    assert abs(order - 2.0) < 0.1

    print("\nsame study through the FP16 TCStencil-style pipeline:")
    fp16_pts = convergence_study(
        resolutions=(12, 24, 48, 96),
        engine_factory=lambda w: TCStencilFP16(w),
    )
    for p64, p16 in zip(pts, fp16_pts):
        print(f"  n={p16.n:>3}: FP64 err {p64.max_err:.3e}   "
              f"FP16 err {p16.max_err:.3e}")
    print("\nFP16 error GROWS under refinement: finer grids need more")
    print("timesteps, and each FP16 sweep adds rounding error faster than")
    print("the finer grid removes discretization error.  Refinement is")
    print("counter-productive at half precision — which is why FP64")
    print("tensor-core stencils (this paper) matter.")
    assert fp16_pts[-1].max_err > fp16_pts[0].max_err
    assert pts[-1].max_err < pts[0].max_err


if __name__ == "__main__":
    main()
