"""CUDA source generation.

The simulator proves the algorithm; this package emits the production
artifact: CUDA C++ for a given kernel, with the banded weight fragments
baked in as constants, ``wmma``/``mma.sync`` tensor-core calls for the
two RDG gathers, Butterfly Vector Swapping as pure register aliasing
(or the ``__shfl_sync`` fallback when BVS is disabled), and ``cp.async``
global->shared copies.

The generated source cannot be compiled in this repository's offline
environment, but its structure is fully testable: instruction counts,
weight constants, and the presence/absence of shuffle intrinsics mirror
exactly what the simulator counts.
"""

from repro.codegen.cuda import CudaKernelSource, generate_cuda_kernel
from repro.codegen.cuda_nd import (
    Cuda3DSource,
    generate_cuda_kernel_1d,
    generate_cuda_kernel_3d,
)

__all__ = [
    "CudaKernelSource",
    "generate_cuda_kernel",
    "Cuda3DSource",
    "generate_cuda_kernel_1d",
    "generate_cuda_kernel_3d",
]
