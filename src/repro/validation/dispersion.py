"""Von Neumann (Fourier symbol) analysis of stencil operators.

A constant-coefficient stencil acts diagonally on Fourier modes: the
plane wave ``exp(i k.x)`` is an eigenfunction with eigenvalue

    ``g(k) = sum_o W[o] exp(i k.o)``    (the *symbol* / amplification factor)

This module computes symbols, checks von Neumann stability
(``max_k |g(k)| <= 1``), and verifies the prediction against measured
decay of plane waves run through the actual engines — tying the
linear-algebra machinery back to PDE theory.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.stencil.weights import StencilWeights

__all__ = [
    "symbol",
    "amplification_grid",
    "max_amplification",
    "is_von_neumann_stable",
    "measured_mode_decay",
]


def symbol(weights: StencilWeights, k: tuple[float, ...]) -> complex:
    """The stencil's eigenvalue ``g(k)`` for wavevector ``k`` (radians
    per grid spacing, one component per dimension)."""
    if len(k) != weights.ndim:
        raise ValueError(
            f"wavevector has {len(k)} components for a {weights.ndim}D stencil"
        )
    h = weights.radius
    g = 0.0 + 0.0j
    for idx in itertools.product(range(weights.side), repeat=weights.ndim):
        w = weights.array[idx]
        if w == 0.0:
            continue
        phase = sum(kc * (i - h) for kc, i in zip(k, idx))
        g += w * np.exp(1j * phase)
    return complex(g)


def amplification_grid(
    weights: StencilWeights, samples: int = 33
) -> np.ndarray:
    """``|g(k)|`` sampled on a uniform wavevector grid over ``[-pi, pi]^d``."""
    if samples < 2:
        raise ValueError(f"samples must be >= 2, got {samples}")
    ks = np.linspace(-np.pi, np.pi, samples)
    shape = (samples,) * weights.ndim
    out = np.empty(shape, dtype=np.float64)
    for idx in itertools.product(range(samples), repeat=weights.ndim):
        out[idx] = abs(symbol(weights, tuple(ks[i] for i in idx)))
    return out


def max_amplification(weights: StencilWeights, samples: int = 33) -> float:
    """``max_k |g(k)|`` on the sampled grid (the von Neumann quantity)."""
    return float(amplification_grid(weights, samples).max())


def is_von_neumann_stable(
    weights: StencilWeights, samples: int = 33, tol: float = 1e-9
) -> bool:
    """True iff no Fourier mode grows: ``max_k |g(k)| <= 1 + tol``."""
    return max_amplification(weights, samples) <= 1.0 + tol


def measured_mode_decay(
    weights: StencilWeights,
    k: tuple[float, ...],
    grid: int = 32,
    steps: int = 5,
    apply_fn=None,
) -> tuple[float, float]:
    """(predicted, measured) per-step amplification of one *resolvable*
    mode.

    ``k`` components must be integer multiples of ``2*pi/grid`` so the
    mode is periodic on the grid.  ``apply_fn`` defaults to the
    LoRAStencil engine of matching dimensionality.
    """
    for kc in k:
        cycles = kc * grid / (2.0 * np.pi)
        if abs(cycles - round(cycles)) > 1e-9:
            raise ValueError(
                f"wavevector component {kc} is not resolvable on a grid of {grid}"
            )
    if apply_fn is None:
        from repro.runtime import compile as compile_stencil

        apply_fn = compile_stencil(weights).apply

    from repro.stencil.grid import Grid

    axes = [np.arange(grid) for _ in range(weights.ndim)]
    mesh = np.meshgrid(*axes, indexing="ij")
    phase = sum(kc * g for kc, g in zip(k, mesh))
    field = np.cos(phase)

    g_grid = Grid(field, weights.radius, boundary="periodic")
    norm0 = np.linalg.norm(g_grid.interior)
    g_grid.run(apply_fn, steps)
    normN = np.linalg.norm(g_grid.interior)
    measured = float((normN / norm0) ** (1.0 / steps)) if norm0 else 0.0
    predicted = abs(symbol(weights, k))
    return predicted, measured
