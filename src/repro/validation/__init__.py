"""Numerical verification against analytic solutions.

The test suite proves the engines equal the *discrete* reference
operator; this package proves the whole stack solves the *continuous*
physics: explicit heat-equation runs driven by LoRAStencil converge to
the analytic solution at the scheme's theoretical order as the grid is
refined (the classic method-of-exact-solutions study).
"""

from repro.validation.dispersion import (
    amplification_grid,
    is_von_neumann_stable,
    max_amplification,
    measured_mode_decay,
    symbol,
)
from repro.validation.convergence import (
    ConvergencePoint,
    convergence_study,
    estimated_order,
    heat_analytic_solution,
    heat_kernel_for,
)

__all__ = [
    "ConvergencePoint",
    "convergence_study",
    "estimated_order",
    "heat_analytic_solution",
    "heat_kernel_for",
    "symbol",
    "amplification_grid",
    "max_amplification",
    "is_von_neumann_stable",
    "measured_mode_decay",
]
