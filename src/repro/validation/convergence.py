"""Grid-convergence study for the 2D heat equation.

Problem: ``u_t = alpha * laplacian(u)`` on the unit square with
homogeneous Dirichlet boundaries and initial condition
``u0 = sin(pi x) sin(pi y)``; the exact solution is

    ``u(x, y, t) = exp(-2 pi^2 alpha t) sin(pi x) sin(pi y)``.

Discretization: the classic FTCS scheme — exactly the Heat-2D stencil
shape of Table II — with mesh ratio ``r = alpha dt / dx^2`` held fixed,
giving a theoretical convergence order of 2 in ``dx``.  The study runs
the scheme through any stencil engine (LoRAStencil by default) and
measures the observed order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.stencil.grid import Grid
from repro.stencil.weights import StencilWeights, star_weights

__all__ = [
    "ConvergencePoint",
    "heat_kernel_for",
    "heat_analytic_solution",
    "convergence_study",
    "estimated_order",
]


@dataclass(frozen=True)
class ConvergencePoint:
    """Error of one grid resolution."""

    n: int  # interior points per axis
    dx: float
    steps: int
    max_err: float
    l2_err: float


def heat_kernel_for(r: float, ndim: int = 2) -> StencilWeights:
    """FTCS heat stencil with mesh ratio ``r``.

    Stability requires ``r <= 1/(2*ndim)`` (von Neumann bound).
    """
    if not 0 < r <= 1.0 / (2 * ndim):
        raise ValueError(
            f"FTCS in {ndim}D requires 0 < r <= {1.0 / (2 * ndim)}, got {r}"
        )
    axis = np.full((ndim, 2), r)
    return star_weights(1, ndim, axis_values=axis, center=1.0 - 2.0 * ndim * r)


def heat_analytic_solution(
    n: int, t: float, alpha: float = 1.0, ndim: int = 2
) -> np.ndarray:
    """Exact solution sampled on the ``n^ndim`` interior grid at time t.

    The fundamental mode ``prod_d sin(pi x_d)`` decays at rate
    ``ndim * pi^2 * alpha``.
    """
    dx = 1.0 / (n + 1)
    coords = dx * np.arange(1, n + 1)
    mode = np.sin(np.pi * coords)
    field = mode
    for _ in range(ndim - 1):
        field = np.multiply.outer(field, mode)
    return float(np.exp(-ndim * np.pi**2 * alpha * t)) * field


def convergence_study(
    resolutions: tuple[int, ...] = (16, 32, 64),
    t_final: float = 0.02,
    r: float = 0.2,
    alpha: float = 1.0,
    engine_factory: Callable[[StencilWeights], object] | None = None,
    ndim: int = 2,
) -> list[ConvergencePoint]:
    """Run the refinement study; returns one point per resolution.

    ``engine_factory`` builds the stepper from the FTCS weights; the
    default is the LoRAStencil engine of matching dimensionality.
    Whatever it returns must expose ``apply(padded) -> interior``.
    """
    if not 1 <= ndim <= 3:
        raise ValueError(f"ndim must be 1, 2 or 3, got {ndim}")
    if engine_factory is None:
        from repro.runtime import compile as compile_stencil

        # cached compile: every resolution of the study reuses one plan
        engine_factory = lambda w: compile_stencil(w, ndim=ndim)  # noqa: E731

    weights = heat_kernel_for(r, ndim=ndim)
    points: list[ConvergencePoint] = []
    for n in resolutions:
        dx = 1.0 / (n + 1)
        dt = r * dx * dx / alpha
        steps = max(1, round(t_final / dt))
        t_actual = steps * dt

        engine = engine_factory(weights)
        grid = Grid(heat_analytic_solution(n, 0.0, alpha, ndim), radius=1)
        final = grid.run(engine.apply, steps)

        exact = heat_analytic_solution(n, t_actual, alpha, ndim)
        diff = final - exact
        points.append(
            ConvergencePoint(
                n=n,
                dx=dx,
                steps=steps,
                max_err=float(np.abs(diff).max()),
                l2_err=float(np.linalg.norm(diff.ravel()) * dx ** (ndim / 2.0)),
            )
        )
    return points


def estimated_order(points: list[ConvergencePoint]) -> float:
    """Least-squares slope of log(err) against log(dx)."""
    if len(points) < 2:
        raise ValueError("need at least two resolutions to estimate order")
    log_dx = np.log([p.dx for p in points])
    log_err = np.log([p.max_err for p in points])
    slope, _ = np.polyfit(log_dx, log_err, 1)
    return float(slope)
