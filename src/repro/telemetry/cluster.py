"""The cluster observatory: post-processing one ``ClusterRuntime`` run.

A distributed run leaves three artifacts behind: the merged span forest
(every rank's lanes revived under the ``cluster.run`` root, across
threads and processes), the per-round exchange ledger
(:attr:`~repro.parallel.cluster.ClusterResult.round_log`, reconciling
bit-exactly with the process-wide ``repro_halo_bytes_total`` counter),
and the :class:`~repro.parallel.cluster.ClusterTimings` interconnect
model.  :func:`build_cluster_report` folds them into one
:data:`CLUSTER_REPORT_SCHEMA` document answering the questions aggregate
GStencil/s cannot:

* **per-rank timelines** — every rank's wall time attributed to lanes
  (``compute`` / ``interior`` / ``stitch`` / ``wait`` / ``retry`` /
  ``other``), with Gantt segments for rendering
  (:func:`render_gantt`, :func:`to_lane_trace`);
* **critical path** — the rounds are global barriers, so the run's
  dependency DAG is rank×round; the critical path threads each round's
  exchange plus its slowest rank, naming the straggler per round;
* **overlap efficiency** — hidden transfer time ÷ total modeled
  transfer time.  The transfer term is :func:`modeled_transfer_s`,
  the *same* formula ``ClusterTimings`` charges, so measured reports
  reconcile exactly with the scaling model;
* **load imbalance** — max/mean and MAD across ranks per round (ragged
  temporal rounds included), plus run-level headline ratios the perf
  trend gate watches;
* **halo attribution** — per-round byte volumes reconciled bit-exactly
  against ``ClusterResult.exchanged_bytes`` *and* the growth of the
  ``repro_halo_bytes_total`` counter (three accounting sources, one
  truth).

All lane arithmetic is integer nanoseconds, so the report's invariants
are exact, not approximate: per-rank lanes sum to per-rank wall time,
and the critical path dominates every rank's wall time by construction.
This module deliberately imports nothing from :mod:`repro.parallel` at
module scope — ``parallel.cluster`` imports :mod:`repro.telemetry`, and
the shared transfer model would otherwise close an import cycle.
"""

from __future__ import annotations

import itertools
import time
from typing import Any

from repro.telemetry.spans import Span, Tracer, TRACER
from repro.telemetry.validate import TelemetryError

__all__ = [
    "CLUSTER_REPORT_SCHEMA",
    "LANE_NAMES",
    "modeled_transfer_s",
    "build_cluster_report",
    "render_gantt",
    "to_lane_trace",
    "last_report",
]

#: schema identifier embedded in every emitted cluster report
CLUSTER_REPORT_SCHEMA = "repro.telemetry.cluster-report/v1"

#: child-span name → report lane (everything else folds into ``other``)
_SPAN_LANES = {
    "cluster.compute": "compute",
    "cluster.interior": "interior",
    "cluster.stitch": "stitch",
    "cluster.wait": "wait",
}

#: every lane a per-rank breakdown carries, in rendering order
LANE_NAMES = ("compute", "interior", "stitch", "wait", "retry", "other")

#: the most recent report built in this process; the Prometheus
#: exporter reads it so ``repro_cluster_*`` gauges survive scraping
#: without re-deriving the report per scrape
LAST_REPORT: dict[str, Any] | None = None


def last_report() -> dict[str, Any] | None:
    """The most recent cluster report built in this process, if any."""
    return LAST_REPORT


def modeled_transfer_s(comm_bytes: int) -> float:
    """Modeled wall time of one halo exchange round, in seconds.

    A fixed per-message NVLink hop latency plus the volume over the
    link — the exact term :meth:`ClusterRuntime.timings` charges (it
    calls this helper), so the observatory's overlap-efficiency
    denominator and the scaling model's ``comm_s`` never drift apart.
    Zero bytes means no message was sent (a single-device mesh), so no
    hop latency is charged either.
    """
    if comm_bytes <= 0:
        return 0.0
    # deferred: parallel.cluster imports repro.telemetry at module
    # scope, so importing it here at module scope would be a cycle
    from repro.parallel.cluster import NVLINK_BANDWIDTH, NVLINK_LATENCY

    return NVLINK_LATENCY + comm_bytes / NVLINK_BANDWIDTH


# ---------------------------------------------------------------------------
# span forest → lane accounting
# ---------------------------------------------------------------------------
def _find_run_span(tracer: Tracer, trace_id: str | None) -> Span | None:
    """The most recent ``cluster.run`` span of ``trace_id`` in the buffer."""
    found: Span | None = None
    for root in tracer.roots():
        for span in root.walk():
            if span.name != "cluster.run":
                continue
            if trace_id is not None and span.trace_id != trace_id:
                continue
            found = span
    return found


def _median(values: list[int]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _collect_rounds(run: Span) -> tuple[dict, dict, dict]:
    """Group the run span's children by (rank, round).

    Returns ``(attempts, waits, exchanges)``: per-(rank, round) lists of
    ``cluster.rank`` spans ordered by start (retries first, the
    successful attempt last), per-(rank, round) sibling ``cluster.wait``
    spans (the process executor waits on the dispatcher thread, outside
    the revived rank span), and per-round ``cluster.exchange`` spans.
    """
    attempts: dict[tuple[int, int], list[Span]] = {}
    waits: dict[tuple[int, int], list[Span]] = {}
    exchanges: dict[int, Span] = {}
    for child in run.children:
        if child.name == "cluster.exchange":
            exchanges[int(child.attrs.get("round", 0))] = child
            continue
        rank = child.attrs.get("rank")
        if rank is None:
            continue
        key = (int(rank), int(child.attrs.get("round", 0)))
        if child.name == "cluster.rank":
            attempts.setdefault(key, []).append(child)
        elif child.name == "cluster.wait":
            waits.setdefault(key, []).append(child)
    for spans in attempts.values():
        spans.sort(key=lambda s: s.start_ns)
    return attempts, waits, exchanges


def build_cluster_report(
    result, tracer: Tracer | None = None
) -> dict[str, Any]:
    """Fold one :class:`ClusterResult` + its trace into a report.

    ``result`` must come from a run executed under
    ``telemetry.capture()`` (or an enabled tracer): the report is
    reconstructed from the run's ``cluster.run`` span forest, found by
    ``result.trace_id`` in ``tracer`` (default: the process tracer).
    Raises :class:`~repro.telemetry.validate.TelemetryError` when the
    trace is gone — evicted from the bounded buffer or never recorded.
    """
    global LAST_REPORT
    tracer = tracer or TRACER
    if result.trace_id is None:
        raise TelemetryError(
            "cluster report: the run recorded no trace (trace_id is None); "
            "execute the run under telemetry.capture() or telemetry.enable()"
        )
    run = _find_run_span(tracer, result.trace_id)
    if run is None:
        raise TelemetryError(
            f"cluster report: no cluster.run span with trace_id "
            f"{result.trace_id!r} in the tracer buffer (evicted or cleared "
            f"before the report was built?)"
        )

    attempts, waits, exchanges = _collect_rounds(run)
    ranks = sorted({rank for rank, _ in attempts})
    rounds = sorted({r for _, r in attempts})
    t0 = run.start_ns

    def rel_s(ns: int) -> float:
        return (ns - t0) / 1e9

    # -- per-(rank, round) lane accounting, integer nanoseconds ----------
    lane_ns: dict[int, dict[str, int]] = {
        rank: {lane: 0 for lane in LANE_NAMES} for rank in ranks
    }
    round_rank_ns: dict[tuple[int, int], int] = {}
    interior_ns: dict[tuple[int, int], int] = {}
    segments: dict[int, list[dict[str, Any]]] = {rank: [] for rank in ranks}
    attempt_count: dict[int, int] = {rank: 0 for rank in ranks}
    for (rank, round_i), spans in attempts.items():
        attempt_count[rank] += len(spans)
        total = 0
        for retry in spans[:-1]:
            lane_ns[rank]["retry"] += retry.duration_ns
            total += retry.duration_ns
            segments[rank].append(
                {
                    "t0_s": rel_s(retry.start_ns),
                    "t1_s": rel_s(retry.end_ns),
                    "lane": "retry",
                    "round": round_i,
                }
            )
        success = spans[-1]
        child_total = 0
        for child in success.children:
            lane = _SPAN_LANES.get(child.name)
            if lane is None:
                continue
            lane_ns[rank][lane] += child.duration_ns
            child_total += child.duration_ns
            if lane == "interior":
                interior_ns[(rank, round_i)] = (
                    interior_ns.get((rank, round_i), 0) + child.duration_ns
                )
            segments[rank].append(
                {
                    "t0_s": rel_s(child.start_ns),
                    "t1_s": rel_s(child.end_ns),
                    "lane": lane,
                    "round": round_i,
                }
            )
        # same-thread children never exceed the parent, so the residual
        # (dispatch glue, fault hooks, uninstrumented stretches) is >= 0
        lane_ns[rank]["other"] += max(0, success.duration_ns - child_total)
        total += success.duration_ns
        for wait in waits.get((rank, round_i), ()):
            lane_ns[rank]["wait"] += wait.duration_ns
            total += wait.duration_ns
            segments[rank].append(
                {
                    "t0_s": rel_s(wait.start_ns),
                    "t1_s": rel_s(wait.end_ns),
                    "lane": "wait",
                    "round": round_i,
                }
            )
        round_rank_ns[(rank, round_i)] = total

    for segs in segments.values():
        segs.sort(key=lambda s: s["t0_s"])

    # -- critical path through the rank×round barrier DAG ----------------
    critical_ns = 0
    nodes: list[dict[str, Any]] = []
    for round_i in rounds:
        exchange = exchanges.get(round_i)
        exchange_ns = exchange.duration_ns if exchange is not None else 0
        per_rank = {
            rank: round_rank_ns.get((rank, round_i), 0) for rank in ranks
        }
        straggler = max(per_rank, key=per_rank.get) if per_rank else -1
        slowest = per_rank.get(straggler, 0)
        critical_ns += exchange_ns + slowest
        nodes.append(
            {
                "round": round_i,
                "rank": straggler,
                "exchange_s": exchange_ns / 1e9,
                "rank_s": slowest / 1e9,
            }
        )

    # -- overlap efficiency: hidden ÷ modeled transfer -------------------
    per_round_overlap: list[dict[str, Any]] = []
    hidden_total = 0.0
    transfer_total = 0.0
    for entry in result.round_log:
        round_i = entry["round"]
        transfer = modeled_transfer_s(entry["comm_bytes_max"])
        if result.overlap and ranks:
            interior_min = min(
                interior_ns.get((rank, round_i), 0) for rank in ranks
            ) / 1e9
        else:
            interior_min = 0.0
        hidden = min(transfer, interior_min)
        hidden_total += hidden
        transfer_total += transfer
        per_round_overlap.append(
            {
                "round": round_i,
                "transfer_s": transfer,
                "interior_min_s": interior_min,
                "hidden_s": hidden,
            }
        )
    efficiency = hidden_total / transfer_total if transfer_total > 0 else 0.0
    efficiency = min(1.0, max(0.0, efficiency))

    modeled = _modeled_section(result)

    # -- load imbalance across ranks, per round --------------------------
    per_round_imbalance: list[dict[str, Any]] = []
    sum_max = sum_mean = sum_mad = sum_median = 0.0
    for round_i in rounds:
        durations = [
            round_rank_ns.get((rank, round_i), 0) for rank in ranks
        ]
        peak = max(durations) if durations else 0
        mean = sum(durations) / len(durations) if durations else 0.0
        med = _median(durations)
        mad = _median([abs(d - med) for d in durations])
        sum_max += peak
        sum_mean += mean
        sum_mad += mad
        sum_median += med
        per_round_imbalance.append(
            {
                "round": round_i,
                "max_s": peak / 1e9,
                "mean_s": mean / 1e9,
                "mad_s": mad / 1e9,
                "max_over_mean": peak / mean if mean > 0 else 1.0,
            }
        )
    max_over_mean = sum_max / sum_mean if sum_mean > 0 else 1.0
    mad_frac = sum_mad / sum_median if sum_median > 0 else 0.0

    # -- halo attribution: three ledgers, one truth ----------------------
    halo_rounds = [
        {
            "round": entry["round"],
            "steps": entry["steps"],
            "depth": entry["depth"],
            "halo_bytes": entry["halo_bytes"],
            "comm_bytes_max": entry["comm_bytes_max"],
            "transfer_s": modeled_transfer_s(entry["comm_bytes_max"]),
        }
        for entry in result.round_log
    ]
    halo_total = sum(entry["halo_bytes"] for entry in halo_rounds)
    # a resumed run inherits its pre-checkpoint bytes from the manifest:
    # the per-round log and exchanged_bytes span the whole run, while
    # the process counter only grew during the resumed part
    resumed = int(getattr(result, "resumed_halo_bytes", 0))
    reconciled = (
        halo_total == result.exchanged_bytes
        and halo_total == result.halo_counter_delta + resumed
    )

    plan = getattr(result, "plan", None)
    name = f"cluster-{plan.key[:12]}" if plan is not None else "cluster"
    report: dict[str, Any] = {
        "schema": CLUSTER_REPORT_SCHEMA,
        "name": name,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "trace_id": result.trace_id,
        "run": {
            "steps": result.steps,
            "rounds": len(result.phases),
            "phases": list(result.phases),
            "devices": plan.num_devices if plan is not None else len(ranks),
            "executor": result.executor,
            "overlap": bool(result.overlap),
            "backend": result.backend,
            "wall_s": run.duration_ns / 1e9,
            "wall_ns": run.duration_ns,
        },
        "ranks": [
            {
                "rank": rank,
                "lanes": {
                    f"{lane}_s": lane_ns[rank][lane] / 1e9
                    for lane in LANE_NAMES
                },
                "lanes_ns": dict(lane_ns[rank]),
                "wall_ns": sum(
                    round_rank_ns.get((rank, r), 0) for r in rounds
                ),
                "wall_s": sum(
                    round_rank_ns.get((rank, r), 0) for r in rounds
                ) / 1e9,
                "busy_s": (
                    lane_ns[rank]["compute"]
                    + lane_ns[rank]["interior"]
                    + lane_ns[rank]["stitch"]
                ) / 1e9,
                "attempts": attempt_count[rank],
                "segments": segments[rank],
            }
            for rank in ranks
        ],
        "critical_path": {
            "s": critical_ns / 1e9,
            "ns": critical_ns,
            "nodes": nodes,
        },
        "overlap": {
            "enabled": bool(result.overlap),
            "efficiency": efficiency,
            "hidden_s": hidden_total,
            "transfer_s": transfer_total,
            "modeled": modeled,
            "per_round": per_round_overlap,
        },
        "imbalance": {
            "max_over_mean": max_over_mean,
            "mad_frac": mad_frac,
            "per_round": per_round_imbalance,
        },
        "halo": {
            "total_bytes": halo_total,
            "ledger_bytes": result.exchanged_bytes,
            "counter_delta": result.halo_counter_delta,
            "resumed_bytes": resumed,
            "reconciled": reconciled,
            "per_round": halo_rounds,
        },
    }
    LAST_REPORT = report
    return report


def _modeled_section(result) -> dict[str, Any] | None:
    """The ClusterTimings prediction for this run's configuration.

    ``None`` when the plan is unavailable or was distributed from a raw
    weight array (the cost model needs :class:`StencilWeights`).
    """
    plan = getattr(result, "plan", None)
    if plan is None:
        return None
    from repro.parallel.cluster import ClusterRuntime

    block_steps = max(result.phases) if result.phases else 1
    try:
        timings = ClusterRuntime(plan).timings(
            steps=max(1, result.steps),
            overlap=result.overlap,
            block_steps=block_steps,
        )
    except ValueError:
        return None
    efficiency = (
        min(timings.comm_s, timings.interior_s) / timings.comm_s
        if timings.comm_s > 0
        else 0.0
    )
    return {
        "compute_s": timings.compute_s,
        "comm_s": timings.comm_s,
        "interior_s": timings.interior_s,
        "boundary_s": timings.boundary_s,
        "step_s": timings.step_s,
        "efficiency": efficiency if result.overlap else 0.0,
    }


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
#: lane → (glyph, paint priority); higher priority overwrites lower when
#: segments round onto the same terminal cell
_LANE_GLYPHS = {
    "compute": ("█", 1),
    "interior": ("▓", 2),
    "stitch": ("▒", 3),
    "wait": ("░", 4),
    "retry": ("x", 5),
}


def render_gantt(report: dict[str, Any], width: int = 72) -> str:
    """ASCII Gantt of the per-rank timelines plus the headline numbers."""
    wall_s = max(report["run"]["wall_s"], 1e-12)
    lines = [
        f"cluster {report['name']}  trace={report['trace_id']}  "
        f"wall={wall_s * 1e3:.2f} ms  "
        f"{report['run']['executor']} executor  "
        f"overlap={'on' if report['run']['overlap'] else 'off'}"
    ]
    for row in report["ranks"]:
        cells = ["·"] * width
        priority = [0] * width
        for seg in row["segments"]:
            glyph, prio = _LANE_GLYPHS.get(seg["lane"], ("?", 0))
            lo = int(seg["t0_s"] / wall_s * width)
            hi = int(seg["t1_s"] / wall_s * width)
            for cell in range(max(0, lo), min(width, max(hi, lo + 1))):
                if prio > priority[cell]:
                    cells[cell] = glyph
                    priority[cell] = prio
        lines.append(
            f"rank {row['rank']:>3} |{''.join(cells)}| "
            f"busy {row['busy_s'] * 1e3:.2f} ms  "
            f"wait {row['lanes']['wait_s'] * 1e3:.2f} ms"
        )
    lines.append(
        "legend: █ compute  ▓ interior  ▒ stitch  ░ wait  x retry  · idle"
    )
    crit = report["critical_path"]
    stragglers = ", ".join(
        f"r{node['round']}→rank{node['rank']}" for node in crit["nodes"]
    )
    lines.append(
        f"critical path {crit['s'] * 1e3:.2f} ms"
        + (f"  ({stragglers})" if stragglers else "")
    )
    overlap = report["overlap"]
    lines.append(
        f"overlap efficiency {overlap['efficiency']:.3f}  "
        f"(hidden {overlap['hidden_s'] * 1e6:.2f} us of "
        f"{overlap['transfer_s'] * 1e6:.2f} us modeled transfer)"
    )
    imbalance = report["imbalance"]
    lines.append(
        f"imbalance max/mean {imbalance['max_over_mean']:.3f}  "
        f"MAD/median {imbalance['mad_frac']:.3f}"
    )
    halo = report["halo"]
    lines.append(
        f"halo {halo['total_bytes']:,} B over "
        f"{len(halo['per_round'])} rounds  "
        f"(ledger reconciled: {halo['reconciled']})"
    )
    return "\n".join(lines)


def to_lane_trace(report: dict[str, Any]) -> dict[str, Any]:
    """Chrome trace-event lanes of the report (one tid per rank).

    Unlike :func:`repro.telemetry.export.to_chrome_trace` — which emits
    the raw span forest on thread lanes — this view puts every rank on
    its own timeline row regardless of which pool thread or worker
    process executed it, which is the Gantt a straggler hunt wants.
    """
    from repro.telemetry.export import CHROME_TRACE_SCHEMA

    span_ids = itertools.count(1)
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "args": {"name": f"repro-cluster {report['name']}"},
        }
    ]
    for row in report["ranks"]:
        tid = row["rank"] + 1
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"rank {row['rank']}"},
            }
        )
        for seg in row["segments"]:
            events.append(
                {
                    "ph": "X",
                    "name": f"cluster.{seg['lane']}",
                    "cat": "parallel",
                    "ts": seg["t0_s"] * 1e6,
                    "dur": max(0.0, (seg["t1_s"] - seg["t0_s"]) * 1e6),
                    "pid": 1,
                    "tid": tid,
                    "args": {
                        "span_id": next(span_ids),
                        "parent_id": None,
                        "trace_id": report["trace_id"],
                        "attrs": {
                            "lane": seg["lane"],
                            "rank": row["rank"],
                            "round": seg["round"],
                        },
                    },
                }
            )
    return {
        "schema": CHROME_TRACE_SCHEMA,
        "displayTimeUnit": "ms",
        "traceEvents": events,
    }
