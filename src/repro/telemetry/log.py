"""Structured event log: the runtime's decision stream.

Spans say where time went and counters say how much happened, but the
*decisions* the runtime takes — a backend silently downgraded, a shard
resubmitted with backoff, a recovery ladder rung climbed, a plan
evicted from the cache, a fault injected — were invisible or scattered
across ad-hoc warnings.  This module unifies them as a leveled,
schema-validated event stream (:data:`EVENT_SCHEMA`,
``repro.telemetry.event/v1``):

* :func:`emit` appends one :class:`Event` to the process-wide
  :data:`EVENT_LOG`, a thread-safe bounded ring (``max_events`` with a
  ``dropped`` tally, like the span buffer) — a long chaos run cannot
  grow memory without bound;
* events automatically carry the emitting thread and, when tracing is
  on, the enclosing span's ``trace_id``/``span_id`` — so the event
  stream joins against the span tree and the Chrome trace;
* :func:`write_event_log` exports the ring as JSON-Lines (one
  schema-tagged event per line, the shape
  ``python -m repro.telemetry`` validates), and
  :meth:`EventLog.snapshot` is what run-records fold in as their
  ``log`` section.

The log is **always on** (unlike spans): the whole point is that a
defaulted-backend fault run or a supervised shard timeout leaves a
durable signal even when nobody enabled tracing.  Emission is
decision-frequency — per downgrade, per retry, per eviction — never
per tile, so the cost is noise next to a sweep (the
``bench_trace_propagation`` benchmark enforces the disabled-telemetry
overhead bound with this wired in).
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from typing import Any

__all__ = [
    "EVENT_SCHEMA",
    "LEVELS",
    "Event",
    "EventLog",
    "EVENT_LOG",
    "emit",
    "write_event_log",
]

#: schema identifier stamped on every serialized event
EVENT_SCHEMA = "repro.telemetry.event/v1"

#: severity levels, least to most severe
LEVELS = ("debug", "info", "warning", "error")

_LEVEL_INDEX = {level: i for i, level in enumerate(LEVELS)}


class Event:
    """One structured decision record.

    ``kind`` is a dotted, grep-able identifier (``backend.downgrade``,
    ``shard.backoff``, ``recovery.tile_retry``, ``plan_cache.evict``,
    ``fault.injected``); ``fields`` carries the decision's specifics as
    JSON-safe scalars.  ``trace_id``/``span_id`` tie the event to the
    span open on the emitting thread when tracing was enabled (else
    ``None`` — the log outlives the tracer switch).
    """

    __slots__ = (
        "ts",
        "level",
        "kind",
        "message",
        "fields",
        "trace_id",
        "span_id",
        "thread",
    )

    def __init__(
        self,
        kind: str,
        level: str = "info",
        message: str = "",
        fields: dict[str, Any] | None = None,
        trace_id: str | None = None,
        span_id: int | None = None,
    ) -> None:
        if level not in _LEVEL_INDEX:
            raise ValueError(
                f"unknown event level {level!r} (expected one of {LEVELS})"
            )
        self.ts = time.time()
        self.level = level
        self.kind = kind
        self.message = message
        self.fields = dict(fields) if fields else {}
        self.trace_id = trace_id
        self.span_id = span_id
        self.thread = threading.current_thread().name

    def as_dict(self) -> dict[str, Any]:
        """Schema-tagged JSON-ready view (the validated line shape)."""
        from repro.telemetry.export import _jsonable

        return {
            "schema": EVENT_SCHEMA,
            "ts": self.ts,
            "level": self.level,
            "kind": self.kind,
            "message": self.message,
            "fields": {k: _jsonable(v) for k, v in self.fields.items()},
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "thread": self.thread,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.level}:{self.kind} {self.fields!r})"


class EventLog:
    """Thread-safe bounded ring of :class:`Event` objects.

    ``min_level`` filters at emission (default ``"info"`` — debug
    events cost one dict lookup and vanish); ``max_events`` bounds
    memory with a :attr:`dropped` count so exporters can flag loss.
    """

    def __init__(
        self, max_events: int = 1024, min_level: str = "info"
    ) -> None:
        if min_level not in _LEVEL_INDEX:
            raise ValueError(
                f"unknown event level {min_level!r} "
                f"(expected one of {LEVELS})"
            )
        self.max_events = max_events
        self.min_level = min_level
        self.dropped = 0
        self._events: list[Event] = []
        self._lock = threading.Lock()

    def emit(
        self,
        kind: str,
        level: str = "info",
        message: str = "",
        **fields: Any,
    ) -> Event | None:
        """Record one event; returns it (or None when level-filtered).

        The enclosing span's trace identity is captured here — one
        ``enabled`` check plus a thread-local peek — so callers never
        thread trace ids by hand.
        """
        if level not in _LEVEL_INDEX:
            raise ValueError(
                f"unknown event level {level!r} (expected one of {LEVELS})"
            )
        if _LEVEL_INDEX[level] < _LEVEL_INDEX[self.min_level]:
            return None
        trace_id = span_id = None
        from repro.telemetry.spans import TRACER

        if TRACER.enabled:
            current = TRACER.current()
            if current is not None:
                trace_id = current.trace_id
                span_id = current.span_id
        event = Event(
            kind,
            level=level,
            message=message,
            fields=fields,
            trace_id=trace_id,
            span_id=span_id,
        )
        with self._lock:
            if len(self._events) >= self.max_events:
                self._events.pop(0)
                self.dropped += 1
            self._events.append(event)
        return event

    def events(self) -> list[Event]:
        """Snapshot of retained events, oldest first."""
        with self._lock:
            return list(self._events)

    def snapshot(self) -> dict[str, Any]:
        """The run-record ``log`` section: events + ring health."""
        with self._lock:
            events = list(self._events)
            dropped = self.dropped
        return {
            "events": [e.as_dict() for e in events],
            "dropped": dropped,
            "max_events": self.max_events,
        }

    def count(self, kind: str | None = None) -> int:
        """Retained events, optionally only those of one ``kind``."""
        with self._lock:
            if kind is None:
                return len(self._events)
            return sum(1 for e in self._events if e.kind == kind)

    def clear(self) -> None:
        """Drop every retained event and zero the dropped tally."""
        with self._lock:
            self._events.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


#: The process-wide event log every instrumented decision reports into.
EVENT_LOG = EventLog()


def emit(
    kind: str, level: str = "info", message: str = "", **fields: Any
) -> Event | None:
    """Emit one event into the process-wide :data:`EVENT_LOG`."""
    return EVENT_LOG.emit(kind, level=level, message=message, **fields)


def write_event_log(
    path: str | pathlib.Path, log: EventLog | None = None
) -> pathlib.Path:
    """Serialize the log as JSON-Lines (one event per line).

    Each line is a complete, schema-tagged
    ``repro.telemetry.event/v1`` document;
    ``python -m repro.telemetry file.jsonl`` validates the stream.
    """
    log = log if log is not None else EVENT_LOG
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for event in log.events():
            fh.write(json.dumps(event.as_dict(), sort_keys=True) + "\n")
    return path
