"""Run-record history and regression detection.

The missing third leg of the observatory: run-records
(``repro.telemetry.run-record/v1``) are stamped next to every benchmark
artifact, but nothing compared them across runs, so the performance
trajectory was write-only.  Three pieces close the loop:

* :class:`RunRecordStore` — an append-only history of validated
  run-records, one JSON-Lines file per record name under
  ``benchmarks/results/records/history/`` (``benchmarks/conftest``
  appends on every artifact write);
* :func:`compare_records` — counter/timing deltas between two records
  with a configurable relative threshold.  Event counters are
  **deterministic** on the simulator, so the default tolerance is tight
  and any growth is a real algorithmic regression, not noise; wall
  timings are only gated when a ``time_threshold`` is passed;
* :func:`measure_reference` — runs the reference workload (256x256
  Box-2D9P by default) and produces the joinable run-record that
  ``repro perf check --baseline BENCH_baseline.json`` gates on, exiting
  non-zero on regression (the CI ``perf-regression`` job).
"""

from __future__ import annotations

import json
import pathlib
import re
import time
from dataclasses import dataclass
from typing import Any

__all__ = [
    "DEFAULT_BASELINE",
    "DEFAULT_THRESHOLD",
    "RunRecordStore",
    "CounterDelta",
    "RecordComparison",
    "compare_records",
    "load_record",
    "measure_reference",
]

#: repo-root baseline the ``repro perf check`` gate compares against
DEFAULT_BASELINE = "BENCH_baseline.json"

#: default relative growth tolerated before a counter counts as regressed
#: (counters are deterministic; 1% headroom absorbs benign re-blocking)
DEFAULT_THRESHOLD = 0.01

#: reference workload of the committed baseline (paper Fig. 9 kernel)
REFERENCE_WORKLOAD = {"kernel": "Box-2D9P", "size": 256, "seed": 0}


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-") or "record"


class RunRecordStore:
    """Append-only JSONL history of validated run-records.

    One ``<name>.jsonl`` file per record name under ``root``; every
    appended line is a complete ``repro.telemetry.run-record/v1``
    document, validated on the way in so the history never accumulates
    malformed entries.
    """

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)

    def path_for(self, name: str) -> pathlib.Path:
        """History file that ``name``'s records append to."""
        return self.root / f"{_slug(name)}.jsonl"

    def append(self, record: dict[str, Any]) -> pathlib.Path:
        """Validate and append one record; returns the history file."""
        from repro.telemetry.validate import validate_run_record

        validate_run_record(record)
        path = self.path_for(record["name"])
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        return path

    def load(self, name: str) -> list[dict[str, Any]]:
        """Every stored record for ``name``, oldest first."""
        path = self.path_for(name)
        if not path.exists():
            return []
        return [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]

    def latest(self, name: str) -> dict[str, Any] | None:
        """Most recent record for ``name``, or None."""
        records = self.load(name)
        return records[-1] if records else None

    def names(self) -> list[str]:
        """Record names with history, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.jsonl"))

    def __len__(self) -> int:
        return len(self.names())


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CounterDelta:
    """One compared quantity (an event counter or a timing)."""

    name: str
    baseline: float
    current: float
    regressed: bool

    @property
    def rel_change(self) -> float | None:
        """Relative growth vs. baseline (None when baseline is zero)."""
        if self.baseline:
            return (self.current - self.baseline) / self.baseline
        return None if self.current else 0.0


@dataclass(frozen=True)
class RecordComparison:
    """Outcome of comparing two run-records."""

    baseline_name: str
    current_name: str
    threshold: float
    deltas: tuple[CounterDelta, ...]

    @property
    def regressions(self) -> tuple[CounterDelta, ...]:
        return tuple(d for d in self.deltas if d.regressed)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """Aligned delta table, regressions flagged."""
        lines = [
            f"baseline {self.baseline_name!r} vs current "
            f"{self.current_name!r} (threshold {self.threshold:.1%})",
            f"  {'counter':<30} {'baseline':>14} {'current':>14} "
            f"{'change':>9}",
        ]
        for d in self.deltas:
            rel = d.rel_change
            change = "new" if rel is None else f"{rel:+.2%}"
            flag = "  << REGRESSED" if d.regressed else ""
            lines.append(
                f"  {d.name:<30} {d.baseline:>14,.6g} {d.current:>14,.6g} "
                f"{change:>9}{flag}"
            )
        verdict = (
            "OK — no regressions"
            if self.ok
            else f"{len(self.regressions)} counter(s) regressed"
        )
        lines.append(f"  -> {verdict}")
        return "\n".join(lines)


def compare_records(
    baseline: dict[str, Any],
    current: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    time_threshold: float | None = None,
) -> RecordComparison:
    """Compare two run-records' event counters (and optionally timing).

    Every counter is cost-like — more MMAs, more shared traffic, more
    DRAM bytes are all worse — so a regression is growth beyond
    ``baseline * (1 + threshold)``, or any appearance of a counter the
    baseline did not have.  Wall time (``extra.timing_s``) is noisy on
    shared machines and is only compared when ``time_threshold`` is
    given.
    """
    base_events = baseline.get("events") or {}
    cur_events = current.get("events") or {}
    deltas: list[CounterDelta] = []
    for name in sorted(set(base_events) | set(cur_events)):
        b = float(base_events.get(name, 0))
        c = float(cur_events.get(name, 0))
        regressed = c > b * (1.0 + threshold) if b else c > 0
        deltas.append(
            CounterDelta(name=name, baseline=b, current=c, regressed=regressed)
        )
    if time_threshold is not None:
        b_t = (baseline.get("extra") or {}).get("timing_s")
        c_t = (current.get("extra") or {}).get("timing_s")
        if b_t is not None and c_t is not None:
            deltas.append(
                CounterDelta(
                    name="timing_s",
                    baseline=float(b_t),
                    current=float(c_t),
                    regressed=float(c_t) > float(b_t) * (1.0 + time_threshold),
                )
            )
    return RecordComparison(
        baseline_name=str(baseline.get("name", "?")),
        current_name=str(current.get("name", "?")),
        threshold=threshold,
        deltas=tuple(deltas),
    )


def load_record(path: str | pathlib.Path) -> dict[str, Any]:
    """Load one run-record from a ``.json`` file (or the most recent
    entry of a ``.jsonl`` history file) and validate it."""
    from repro.telemetry.validate import validate_run_record

    path = pathlib.Path(path)
    text = path.read_text()
    if path.suffix == ".jsonl":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError(f"{path}: empty history file")
        record = json.loads(lines[-1])
    else:
        record = json.loads(text)
    validate_run_record(record)
    return record


# ---------------------------------------------------------------------------
# the reference workload behind `repro perf check`
# ---------------------------------------------------------------------------
def measure_reference(
    kernel: str = REFERENCE_WORKLOAD["kernel"],
    size: int = REFERENCE_WORKLOAD["size"],
    seed: int = REFERENCE_WORKLOAD["seed"],
    backend: str | None = None,
    repeats: int = 1,
) -> dict[str, Any]:
    """Run the reference workload; returns its joinable run-record.

    The record's ``extra`` carries the workload parameters (so a future
    check can re-run the *same* workload the baseline measured), the
    plan hash, schedule name and execution backend (joinable with
    plan-cache entries), and the wall time of the sweep.  ``backend``
    selects the execution backend; event counters are bit-identical
    across backends, so a vectorized measurement stays comparable to an
    interpreter baseline — only ``timing_s`` moves.

    The compile + sweep runs under :func:`repro.telemetry.capture`, so
    the record's ``spans``/``tracer`` sections carry the measured
    trace (``finished_spans > 0``) instead of an empty forest.
    ``repeats > 1`` re-applies the sweep and stamps the **median**
    timing (one scheduler hiccup does not poison trend history);
    event counters come from the first application and are identical
    across repeats.
    """
    import numpy as np

    from repro import telemetry
    from repro.runtime import compile as compile_stencil
    from repro.stencil.kernels import get_kernel
    from repro.telemetry.export import run_record
    from repro.telemetry.perf.profile import profile_shape

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    k = get_kernel(kernel)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=profile_shape(k.weights.ndim, size))
    padded = np.pad(x, k.weights.radius)

    timings: list[float] = []
    with telemetry.capture():
        compiled = compile_stencil(k.weights, backend=backend)
        for _ in range(repeats):
            t0 = time.perf_counter()
            _, events = compiled.apply_simulated(padded)
            timings.append(time.perf_counter() - t0)
    timings.sort()
    mid = len(timings) // 2
    elapsed = (
        timings[mid]
        if len(timings) % 2
        else 0.5 * (timings[mid - 1] + timings[mid])
    )

    extra = {
        "command": "perf-check",
        "kernel": k.name,
        "size": size,
        "seed": seed,
        "plan_key": compiled.key,
        "schedule": compiled.schedule,
        "backend": compiled.plan.backend,
        "timing_s": elapsed,
    }
    if repeats > 1:
        extra["timing_repeats"] = repeats
    return run_record(f"perf-check-{k.name}", counters=events, extra=extra)
