"""Model-fidelity attribution: the paper's equations vs. measured events.

LoRAStencil's claims are analytical — Eq. 12 counts RDG fragment loads,
Eq. 14 bounds the memory-transfer ratio against ConvStencil, Eq. 16
counts MM instructions, and Section III-C's BVS argument is that the
accumulator split moves *zero* data between threads.  This module turns
those one-shot analytical tables into continuously checked
observability: it derives each prediction **from the plan's actual
decomposition and tile geometry** (so rank-deficient star kernels and
custom tile shapes predict correctly, not just the full-rank box case
the closed forms assume), runs one instrumented sweep, and emits a
``repro.telemetry.fidelity-report/v1`` record of predicted vs. measured
values with per-component relative error.

On the simulator the predictions are exact — the fidelity suite pins
``rel_error == 0`` for every component — so any nonzero error is a
regression in either the model or the interpreter, surfaced by the
``repro perf fidelity`` subcommand and the record consumers.

2D plans only: the equations model the 2D RDG pipeline.  1D plans have
no residual dimension and 3D plans are compositions of 2D planes —
profile those planes' plans individually.
"""

from __future__ import annotations

import math
import time
from typing import Any

import numpy as np

from repro.errors import PerfError
from repro.telemetry.export import FIDELITY_REPORT_SCHEMA
from repro.telemetry.perf.profile import PlanProfile, profile_plan

__all__ = [
    "FIDELITY_REPORT_SCHEMA",
    "predicted_components",
    "fidelity_components",
    "fidelity_report",
]


def _require_2d(plan) -> None:
    if plan.ndim != 2:
        raise PerfError(
            f"fidelity attribution models the 2D RDG pipeline "
            f"(Eq. 12-16); got a {plan.ndim}D plan — profile a 3D "
            f"plan's 2D plane kernels individually"
        )
    if not plan.config.use_tensor_cores:
        raise PerfError(
            "fidelity attribution requires a tensor-core plan"
        )


def _tiles(plan, interior: tuple[int, int]) -> int:
    """Output warp tiles one sweep executes (edge tiles included)."""
    rows, cols = interior
    t = plan.engine.tile
    return math.ceil(rows / t.out_rows) * math.ceil(cols / t.out_cols)


def predicted_components(
    plan, interior: tuple[int, int]
) -> list[dict[str, Any]]:
    """Counter predictions from the plan's decomposition and geometry.

    Each entry carries the counter ``name``, the paper ``equation`` it
    instantiates, the predicted value, and the profile ``source`` the
    measurement is read from (an opcode row, or ``"total"``).
    """
    _require_2d(plan)
    tile = plan.engine.tile
    tiles = _tiles(plan, interior)
    n_scalar = len(plan.engine.decomposition.scalar_terms)
    components = [
        {
            "name": "shared_load_requests",
            "equation": "Eq. 12 (RDG fragment loads)",
            "source": "load_x",
            "predicted": tiles * tile.fragment_loads_per_tile,
        },
        {
            "name": "mma_ops",
            "equation": "Eq. 16 (MM instruction count)",
            "source": "total",
            "predicted": tiles * tile.mma_per_tile,
        },
        {
            "name": "cuda_core_flops",
            "equation": "Sec. III-B (pyramid apex axpy)",
            "source": "apex",
            "predicted": 2 * tiles * tile.points_per_tile * n_scalar,
        },
        {
            "name": "global_store_bytes",
            "equation": "interior stores (8 B/point)",
            "source": "total",
            "predicted": 8 * interior[0] * interior[1],
        },
    ]
    if plan.config.use_bvs:
        components.append(
            {
                "name": "shuffle_ops",
                "equation": "Sec. III-C (BVS zero-shuffle split)",
                "source": "split",
                "predicted": 0,
            }
        )
    return components


def _measure(profile: PlanProfile, name: str, source: str) -> int:
    if source == "total":
        return getattr(profile.total_events, name)
    stats = profile.by_op.get(source)
    return getattr(stats.events, name) if stats is not None else 0


def _rel_error(predicted: int, measured: int) -> float | None:
    if predicted:
        return (measured - predicted) / predicted
    return 0.0 if measured == 0 else None


def fidelity_components(
    plan, profile: PlanProfile
) -> list[dict[str, Any]]:
    """Join predictions against one measured :class:`PlanProfile`."""
    out = []
    for comp in predicted_components(plan, profile.shape):
        measured = _measure(profile, comp["name"], comp["source"])
        out.append(
            {
                **comp,
                "measured": measured,
                "rel_error": _rel_error(comp["predicted"], measured),
            }
        )
    return out


def fidelity_report(
    plan,
    padded: np.ndarray | None = None,
    *,
    size: int = 64,
    seed: int = 0,
    name: str | None = None,
) -> dict[str, Any]:
    """Run one instrumented sweep and emit the fidelity record.

    Returns a ``repro.telemetry.fidelity-report/v1`` document (validated
    by :func:`repro.telemetry.validate.validate_fidelity_report`): the
    per-component predicted/measured/relative-error join, plus the
    closed-form model context — Eq. 14's memory-transfer ratio and the
    Eq. 13/16 instruction ratios for the plan's radius.
    """
    _require_2d(plan)
    profile = profile_plan(plan, padded, size=size, seed=seed)
    components = fidelity_components(plan, profile)
    errors = [
        abs(c["rel_error"]) for c in components if c["rel_error"] is not None
    ]

    # closed-form ratios assume the full-rank box kernel of radius h —
    # model *context*, not per-run predictions (lazy import: repro.analysis
    # is a leaf consumer of this package's own measurements elsewhere)
    from repro.analysis.compute_model import mma_ratio
    from repro.analysis.memory_model import memory_ratio, redundancy_eliminated

    h = plan.radius
    return {
        "schema": FIDELITY_REPORT_SCHEMA,
        "name": name or f"fidelity-{plan.key[:12]}",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "plan": {
            "key": plan.key,
            "schedule": plan.schedule,
            "ndim": plan.ndim,
            "radius": h,
            "rank": plan.rank,
            "method": plan.method,
        },
        "workload": {
            "shape": list(profile.shape),
            "seed": seed,
            "tiles": _tiles(plan, profile.shape),
        },
        "components": components,
        "model": {
            "memory_ratio_eq14": float(memory_ratio(h)),
            "mma_ratio_eq13_16": float(mma_ratio(h)),
            "redundancy_eliminated": float(redundancy_eliminated(h)),
        },
        "max_rel_error": max(errors) if errors else 0.0,
    }
