"""Performance observatory: per-instruction IR profiling, model-fidelity
attribution, and run-record history with regression gating.

Three modules, one pipeline:

* :mod:`repro.telemetry.perf.profile` — attribute a sweep's wall-time
  and event counters per TileProgram opcode, per rank-1 PMA term, and
  per lowering pass (``plan.profile()`` / ``repro profile --per-instr``);
* :mod:`repro.telemetry.perf.fidelity` — compare the paper's analytical
  predictions (Eq. 12/14/16, Sec. III-B/III-C) against measured events
  (``repro perf fidelity``);
* :mod:`repro.telemetry.perf.history` — append run-records to a JSONL
  history and gate on a committed baseline (``repro perf check/diff``);
* :mod:`repro.telemetry.perf.trend` — statistical gating of wall
  timings against the rolling median/MAD of that history
  (``repro perf trend``).

This package is imported lazily by the runtime (``StencilPlan.profile``)
and never eagerly from :mod:`repro.telemetry` — its history module
reaches back into the runtime, and an eager import would cycle.
"""

from repro.telemetry.perf.fidelity import (
    FIDELITY_REPORT_SCHEMA,
    fidelity_components,
    fidelity_report,
    predicted_components,
)
from repro.telemetry.perf.history import (
    DEFAULT_BASELINE,
    DEFAULT_THRESHOLD,
    CounterDelta,
    RecordComparison,
    RunRecordStore,
    compare_records,
    load_record,
    measure_reference,
)
from repro.telemetry.perf.profile import (
    PLAN_PROFILE_SCHEMA,
    SHARED_BUCKET,
    InstrProfiler,
    OpStats,
    PlanProfile,
    profile_plan,
    profile_shape,
)
from repro.telemetry.perf.trend import (
    DEFAULT_MAD_SCALE,
    DEFAULT_REL_FLOOR,
    DEFAULT_WINDOW,
    MIN_HISTORY,
    TrendStats,
    measure_trend_point,
    trend_gate,
)

__all__ = [
    "PLAN_PROFILE_SCHEMA",
    "SHARED_BUCKET",
    "InstrProfiler",
    "OpStats",
    "PlanProfile",
    "profile_plan",
    "profile_shape",
    "FIDELITY_REPORT_SCHEMA",
    "predicted_components",
    "fidelity_components",
    "fidelity_report",
    "DEFAULT_BASELINE",
    "DEFAULT_THRESHOLD",
    "RunRecordStore",
    "CounterDelta",
    "RecordComparison",
    "compare_records",
    "load_record",
    "measure_reference",
    "DEFAULT_WINDOW",
    "DEFAULT_MAD_SCALE",
    "DEFAULT_REL_FLOOR",
    "MIN_HISTORY",
    "TrendStats",
    "trend_gate",
    "measure_trend_point",
]
