"""Statistical trend gating over run-record history.

:func:`repro.telemetry.perf.history.compare_records` gates event
counters against one committed baseline — correct for deterministic
counters, but wall timings are noisy, and a single-point comparison
either cries wolf (tight threshold) or sleeps through slow drift
(loose threshold).  This module gates timings *statistically* against
the :class:`~repro.telemetry.perf.history.RunRecordStore` history:

* the reference is the rolling **median** of the last ``window``
  historical timings (robust to a few outlier runs);
* the allowance is the **MAD** (median absolute deviation) of that
  window, scaled to a consistent-estimator sigma and multiplied by
  ``mad_scale`` — machines with noisy clocks automatically get wider
  gates, quiet CI runners get tight ones;
* a relative floor (``rel_floor``) keeps the gate meaningful when the
  history is suspiciously quiet (MAD near zero would otherwise flag
  sub-millisecond jitter).

``repro perf trend`` drives :func:`trend_gate` (exit 0 ok / 1
regressed / 2 insufficient history) and ``repro perf trend --measure``
appends a fresh N-repeat-median measurement first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.telemetry.perf.history import RunRecordStore, measure_reference

__all__ = [
    "DEFAULT_WINDOW",
    "DEFAULT_MAD_SCALE",
    "DEFAULT_REL_FLOOR",
    "MIN_HISTORY",
    "TrendStats",
    "median",
    "mad",
    "timing_history",
    "trend_gate",
    "measure_trend_point",
]

#: rolling window of historical timings the gate is computed over
DEFAULT_WINDOW = 8

#: MAD multiplier: latest > median + mad_scale * sigma(MAD) regresses
DEFAULT_MAD_SCALE = 4.0

#: minimum relative allowance even when the history's MAD is ~zero
DEFAULT_REL_FLOOR = 0.05

#: historical points (excluding the gated one) required to gate at all
MIN_HISTORY = 3

#: consistency constant: sigma ≈ 1.4826 * MAD for normal noise
MAD_TO_SIGMA = 1.4826


def median(values: Sequence[float]) -> float:
    """The sample median (mean of the middle pair for even counts)."""
    if not values:
        raise ValueError("median of an empty sequence")
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def mad(values: Sequence[float], center: float | None = None) -> float:
    """Median absolute deviation around ``center`` (default: median)."""
    if center is None:
        center = median(values)
    return median([abs(float(v) - center) for v in values])


@dataclass(frozen=True)
class TrendStats:
    """One gated metric: rolling stats, the gated value, the verdict.

    ``ok`` is ``None`` (not a verdict) when the history is too short;
    callers map that to the distinct exit code 2, so a freshly created
    history never masquerades as a pass.
    """

    name: str
    metric: str
    n_history: int
    window: int
    center: float | None
    spread: float | None
    threshold: float | None
    latest: float | None
    ok: bool | None
    #: ``"above"`` gates values that must not rise (timings, imbalance);
    #: ``"below"`` gates values that must not fall (overlap efficiency)
    direction: str = "above"

    @property
    def insufficient(self) -> bool:
        """True when there was not enough history to gate."""
        return self.ok is None

    def render(self) -> str:
        """Multi-line human-readable verdict for the CLI."""
        lines = [
            f"trend gate for {self.name!r} ({self.metric}, "
            f"window {self.window})"
        ]
        if self.insufficient:
            lines.append(
                f"  insufficient history: {self.n_history} prior point(s), "
                f"need >= {MIN_HISTORY}"
            )
            return "\n".join(lines)
        bound = "max" if self.direction == "above" else "min"
        verdict = "  -> OK — within the rolling gate"
        if not self.ok:
            verdict = (
                "  -> REGRESSED — latest exceeds the rolling gate"
                if self.direction == "above"
                else "  -> REGRESSED — latest falls below the rolling gate"
            )
        lines += [
            f"  history   {self.n_history} point(s) in window",
            f"  median    {self.center:.6g}",
            f"  MAD       {self.spread:.6g}",
            f"  threshold {self.threshold:.6g} ({bound} allowed)",
            f"  latest    {self.latest:.6g}",
            verdict,
        ]
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (stamped into run-records / CI artifacts)."""
        return {
            "name": self.name,
            "metric": self.metric,
            "n_history": self.n_history,
            "window": self.window,
            "center": self.center,
            "spread": self.spread,
            "threshold": self.threshold,
            "latest": self.latest,
            "ok": self.ok,
            "direction": self.direction,
        }


def timing_history(
    records: Sequence[dict[str, Any]], metric: str = "timing_s"
) -> list[float]:
    """Extract ``extra.<metric>`` from run-records, oldest first.

    Records without the metric (e.g. counter-only stamps) are skipped —
    histories mix producers and the gate only cares about timed ones.
    """
    out: list[float] = []
    for record in records:
        value = (record.get("extra") or {}).get(metric)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out.append(float(value))
    return out


def trend_gate(
    store: RunRecordStore,
    name: str,
    metric: str = "timing_s",
    window: int = DEFAULT_WINDOW,
    mad_scale: float = DEFAULT_MAD_SCALE,
    rel_floor: float = DEFAULT_REL_FLOOR,
    min_history: int = MIN_HISTORY,
    latest: float | None = None,
    direction: str = "above",
) -> TrendStats:
    """Gate the newest timing against the rolling median/MAD window.

    The newest stored point is the *gated* value (override with
    ``latest``); the reference window is the up-to-``window`` points
    before it.  With ``direction="above"`` (the default: timings,
    imbalance — smaller is better) the threshold is
    ``median + max(mad_scale * 1.4826 * MAD, rel_floor * |median|)``
    and a latest above it regresses; with ``direction="below"``
    (overlap efficiency — larger is better) the threshold is the
    median *minus* the same allowance and a latest below it regresses.
    Noise-adaptive either way, with a relative floor.  Too little
    history yields ``ok=None`` (see :class:`TrendStats`).
    """
    if direction not in ("above", "below"):
        raise ValueError(
            f"direction must be 'above' or 'below', got {direction!r}"
        )
    timings = timing_history(store.load(name), metric=metric)
    if latest is None:
        if not timings:
            return TrendStats(
                name=name,
                metric=metric,
                n_history=0,
                window=window,
                center=None,
                spread=None,
                threshold=None,
                latest=None,
                ok=None,
                direction=direction,
            )
        latest = timings[-1]
        timings = timings[:-1]
    history = timings[-window:]
    if len(history) < min_history:
        return TrendStats(
            name=name,
            metric=metric,
            n_history=len(history),
            window=window,
            center=None,
            spread=None,
            threshold=None,
            latest=latest,
            ok=None,
            direction=direction,
        )
    center = median(history)
    spread = mad(history, center)
    allowance = max(
        mad_scale * MAD_TO_SIGMA * spread, rel_floor * abs(center)
    )
    if direction == "above":
        threshold = center + allowance
        ok = latest <= threshold
    else:
        threshold = center - allowance
        ok = latest >= threshold
    return TrendStats(
        name=name,
        metric=metric,
        n_history=len(history),
        window=window,
        center=center,
        spread=spread,
        threshold=threshold,
        latest=latest,
        ok=ok,
        direction=direction,
    )


def measure_trend_point(
    store: RunRecordStore,
    repeats: int = 3,
    kernel: str | None = None,
    size: int | None = None,
    seed: int | None = None,
    backend: str | None = None,
) -> dict[str, Any]:
    """Measure the reference workload and append it to the history.

    Runs :func:`~repro.telemetry.perf.history.measure_reference` with
    ``repeats`` sweep repetitions (the stamped ``timing_s`` is the
    median — one slow scheduler hiccup does not poison the history) and
    appends the validated record to ``store`` so the next
    :func:`trend_gate` call sees it.
    """
    kwargs: dict[str, Any] = {"repeats": repeats, "backend": backend}
    if kernel is not None:
        kwargs["kernel"] = kernel
    if size is not None:
        kwargs["size"] = size
    if seed is not None:
        kwargs["seed"] = seed
    record = measure_reference(**kwargs)
    store.append(record)
    return record
