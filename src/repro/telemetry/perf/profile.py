"""Per-instruction IR profiling of simulated sweeps.

The lowering pipeline (PR 3) made every sweep interpret a scheduled
:class:`~repro.tcu.program.TileProgram`; this module attributes *where*
a sweep's wall-time and hardware events go inside that program.  An
:class:`InstrProfiler` is handed to ``apply_simulated(profiler=...)``
and receives, per interpreted instruction, the wall-clock nanoseconds
and the :class:`~repro.tcu.counters.EventCounters` delta of that
instruction alone.  The aggregate is a :class:`PlanProfile` keyed by
the plan-v2 content hash:

* **per opcode** — ``load_x`` / ``mma`` / ``split`` / ``mma2`` /
  ``apex`` rows (the RDG gather, MCM steps, BVS split and pyramid apex
  of Sections III-B/III-C);
* **per rank-1 PMA term** — every instruction carrying a ``term`` in
  its metadata is charged to that pyramid layer; ``load_x`` rows land
  in a shared bucket because fragment *reuse across terms* is the point
  of RDG (Eq. 12);
* **per lowering pass** — the plan's recorded
  :attr:`~repro.core.lowering.LoweredProgram.pass_times`;
* **driver residue** — whatever the sweep booked outside the program
  (block staging ``copy_to_shared``, DRAM stores, point-wise 3D
  planes), computed as ``sweep total - sum(instruction deltas)`` so
  the profile's books close against the uninstrumented sweep total
  **bit-exactly**.

Profiling is strictly opt-in: without a profiler the interpreter runs
its bare dispatch loop, preserving the <2% disabled-telemetry overhead
bound (``benchmarks/bench_telemetry_overhead.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import PerfError
from repro.tcu.counters import EventCounters

__all__ = [
    "PLAN_PROFILE_SCHEMA",
    "OpStats",
    "InstrProfiler",
    "PlanProfile",
    "profile_plan",
    "profile_shape",
]

#: schema identifier stamped into :meth:`PlanProfile.as_dict`
PLAN_PROFILE_SCHEMA = "repro.telemetry.plan-profile/v1"

#: bucket for instructions shared across rank-1 terms (the RDG reuse)
SHARED_BUCKET = "(shared)"


class OpStats:
    """Accumulated count / wall-time / event delta of one profile row."""

    __slots__ = ("count", "time_ns", "events")

    def __init__(self) -> None:
        self.count = 0
        self.time_ns = 0
        self.events = EventCounters()

    def add(self, ns: int, delta: EventCounters, count: int = 1) -> None:
        """Fold one instruction's wall-time and event delta in.

        ``count`` lets a batched execution charge many per-tile
        instruction instances in one call (the vectorized backend runs
        each instruction once across all tiles).
        """
        self.count += count
        self.time_ns += ns
        self.events += delta

    def as_dict(self) -> dict:
        """JSON-ready view of this row."""
        return {
            "count": self.count,
            "time_ns": self.time_ns,
            "events": self.events.as_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpStats(count={self.count}, time_ns={self.time_ns})"


class InstrProfiler:
    """Collects per-instruction attribution during a sweep.

    Duck-typed against the interpreter (``record``) and the sweep
    driver (``note_sweep``) so :mod:`repro.tcu.program` never imports
    the telemetry layer.  Not thread-safe by design — one profiler per
    (single-shard) sweep.
    """

    def __init__(self) -> None:
        self.by_op: dict[str, OpStats] = {}
        self.by_term: dict[str, OpStats] = {}
        self.sweeps: list[tuple[str, int, EventCounters]] = []

    # -- interpreter hook --------------------------------------------------
    def record(
        self, ins, ns: int, delta: EventCounters, count: int = 1
    ) -> None:
        """Charge one executed instruction (called by ``_run_instrs``).

        The vectorized backend passes ``count=n_tiles``: one batched
        execution stands for that many per-tile instruction instances,
        keeping :meth:`instr_count` backend-invariant.
        """
        stats = self.by_op.get(ins.op)
        if stats is None:
            stats = self.by_op[ins.op] = OpStats()
        stats.add(ns, delta, count)
        term = ins.meta.get("term")
        if term is not None:
            key = f"term {term}"
        elif ins.op == "apex":
            key = "apex"
        else:
            key = SHARED_BUCKET
        tstats = self.by_term.get(key)
        if tstats is None:
            tstats = self.by_term[key] = OpStats()
        tstats.add(ns, delta, count)

    # -- sweep-driver hook -------------------------------------------------
    def note_sweep(self, spec, events: EventCounters) -> None:
        """Record one completed block sweep (geometry + event total)."""
        self.sweeps.append((spec.shape_label, spec.ndim, events.snapshot()))

    # -- aggregates --------------------------------------------------------
    def program_events(self) -> EventCounters:
        """Events attributed to interpreted instructions (all opcodes)."""
        total = EventCounters()
        for stats in self.by_op.values():
            total += stats.events
        return total

    def program_time_ns(self) -> int:
        """Wall-time spent inside interpreted instructions."""
        return sum(s.time_ns for s in self.by_op.values())

    def instr_count(self) -> int:
        """How many instruction executions were recorded."""
        return sum(s.count for s in self.by_op.values())


@dataclass(frozen=True)
class PlanProfile:
    """Aggregated per-instruction attribution of one profiled sweep."""

    plan_key: str
    schedule: str
    ndim: int
    shape: tuple[int, ...]
    n_sweeps: int
    wall_time_ns: int
    by_op: dict[str, OpStats] = field(repr=False)
    by_term: dict[str, OpStats] = field(repr=False)
    pass_times: tuple[tuple[str, float], ...] = field(repr=False)
    total_events: EventCounters = field(repr=False)

    # -- derived -----------------------------------------------------------
    @property
    def program_events(self) -> EventCounters:
        """Events charged to interpreted instructions."""
        total = EventCounters()
        for stats in self.by_op.values():
            total += stats.events
        return total

    @property
    def driver_events(self) -> EventCounters:
        """Sweep residue outside the program: ``total - program``.

        Block staging stores, DRAM reads/writes, and (3D) point-wise
        plane traffic.  By construction ``program + driver == total``
        bit-exactly.
        """
        return self.total_events.diff(self.program_events)

    @property
    def program_time_ns(self) -> int:
        return sum(s.time_ns for s in self.by_op.values())

    @property
    def instr_count(self) -> int:
        return sum(s.count for s in self.by_op.values())

    # -- serialization -----------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-ready view (schema :data:`PLAN_PROFILE_SCHEMA`)."""
        return {
            "schema": PLAN_PROFILE_SCHEMA,
            "plan": {
                "key": self.plan_key,
                "schedule": self.schedule,
                "ndim": self.ndim,
            },
            "shape": list(self.shape),
            "n_sweeps": self.n_sweeps,
            "wall_time_ns": self.wall_time_ns,
            "instr_count": self.instr_count,
            "by_op": {op: s.as_dict() for op, s in self.by_op.items()},
            "by_term": {t: s.as_dict() for t, s in self.by_term.items()},
            "driver": {
                "time_ns": max(self.wall_time_ns - self.program_time_ns, 0),
                "events": self.driver_events.as_dict(),
            },
            "total_events": self.total_events.as_dict(),
            "pass_times": [[name, s] for name, s in self.pass_times],
        }

    # -- reporting ---------------------------------------------------------
    def render(self) -> str:
        """Human-readable per-opcode / per-term attribution tables."""
        shape = "x".join(map(str, self.shape))
        lines = [
            f"plan {self.plan_key[:16]}…  schedule={self.schedule}  "
            f"{self.ndim}D {shape}  ({self.n_sweeps} sweep"
            f"{'s' if self.n_sweeps != 1 else ''}, "
            f"{self.instr_count:,} instructions, "
            f"{self.wall_time_ns / 1e6:.1f} ms wall)"
        ]
        if self.pass_times:
            passes = "  ".join(
                f"{name}={s * 1e3:.2f}ms" for name, s in self.pass_times
            )
            lines.append(f"lowering passes: {passes}")
        lines.append("")
        lines.append("per-opcode attribution:")
        lines += self._table(self.by_op)
        lines.append("")
        lines.append("per rank-1 PMA term:")
        lines += self._table(self.by_term, totals=False)
        return "\n".join(lines)

    def _table(self, rows: dict[str, OpStats], totals: bool = True) -> list[str]:
        header = (
            f"  {'row':<12} {'count':>9} {'time(ms)':>9} {'mma':>9} "
            f"{'sh.ld':>9} {'sh.st':>9} {'shfl':>7} {'cc.flops':>11} "
            f"{'dram(B)':>11}"
        )
        out = [header]

        def fmt(label: str, count, time_ns, ev: EventCounters) -> str:
            return (
                f"  {label:<12} {count if count != '' else '':>9} "
                f"{time_ns / 1e6:>9.2f} {ev.mma_ops:>9,} "
                f"{ev.shared_load_requests:>9,} "
                f"{ev.shared_store_requests:>9,} {ev.shuffle_ops:>7,} "
                f"{ev.cuda_core_flops:>11,} {ev.dram_bytes:>11,}"
            )

        for label in sorted(rows):
            s = rows[label]
            out.append(fmt(label, s.count, s.time_ns, s.events))
        if totals:
            out.append(
                fmt(
                    "[program]",
                    self.instr_count,
                    self.program_time_ns,
                    self.program_events,
                )
            )
            out.append(
                fmt(
                    "[driver]",
                    "",
                    max(self.wall_time_ns - self.program_time_ns, 0),
                    self.driver_events,
                )
            )
            out.append(
                fmt("[total]", "", self.wall_time_ns, self.total_events)
            )
        return out


def profile_shape(ndim: int, size: int) -> tuple[int, ...]:
    """Default grid shapes, matching the ``repro run`` conventions."""
    if ndim == 1:
        return (size * size,)
    if ndim == 2:
        return (size, size)
    return (min(size, 8), size, size)


def profile_plan(
    plan,
    padded: np.ndarray | None = None,
    *,
    size: int = 64,
    seed: int = 0,
    device=None,
    backend: str | None = None,
) -> PlanProfile:
    """Run one instrumented sweep of ``plan``; returns its profile.

    ``padded`` defaults to a seeded random grid of edge ``size`` padded
    by the plan's radius.  ``backend`` selects the profiled execution
    backend: the vectorized backend attributes the same event totals
    per instruction (derived from a one-tile probe, scaled) and charges
    ``n_tiles`` instruction instances per batched execution, so its
    per-op/per-term breakdown *and* instruction counts match the
    interpreter's bit-for-bit.  Raises
    :class:`~repro.errors.PerfError` for CUDA-core plans, which lower
    to no tensor-core program.
    """
    if not plan.config.use_tensor_cores:
        raise PerfError(
            "per-instruction profiling requires a tensor-core plan "
            "(CUDA-core configurations lower to no tile program)"
        )
    if padded is None:
        rng = np.random.default_rng(seed)
        x = rng.normal(size=profile_shape(plan.ndim, size))
        padded = np.pad(x, plan.radius)
    else:
        padded = np.asarray(padded, dtype=np.float64)

    if backend is None:
        backend = getattr(plan, "backend", None)
    profiler = InstrProfiler()
    t0 = time.perf_counter_ns()
    _, events = plan.engine.apply_simulated(
        padded, device=device, profiler=profiler, backend=backend
    )
    wall = time.perf_counter_ns() - t0

    interior = tuple(s - 2 * plan.radius for s in padded.shape)
    return PlanProfile(
        plan_key=plan.key,
        schedule=plan.schedule,
        ndim=plan.ndim,
        shape=interior,
        n_sweeps=len(profiler.sweeps),
        wall_time_ns=wall,
        by_op=profiler.by_op,
        by_term=profiler.by_term,
        pass_times=tuple(plan.lowered.pass_times),
        total_events=events.snapshot(),
    )
