"""Cross-worker trace-context propagation.

A span tree is only coherent if every worker a sweep fans out knows
*which trace it belongs to*.  Before this module, the sharded executor
passed a raw parent :class:`~repro.telemetry.spans.Span` into each
worker closure; that wires up parentage but loses the trace identity
(a retry resubmitted after the parent span closed had nothing to hang
itself on) and offers no way to collect spans produced on a tracer the
process-global one never sees.

Two primitives fix both:

* :class:`TraceContext` — an immutable ``(trace_id, parent span)``
  capture taken *once* where workers are spawned
  (``apply_simulated_sharded`` / ``apply_simulated_batch`` / the fault
  supervisor).  :meth:`TraceContext.span` opens a child span from any
  thread, any number of times (including backoff resubmissions and the
  inline-recomputation fallback), always re-parented under the
  spawning span and stamped with the spawning trace id — so one
  sharded sweep with retries renders as a single tree under a single
  ``trace_id``.
* :class:`WorkerTracer` — a private, already-enabled
  :class:`~repro.telemetry.spans.Tracer` for workers that cannot share
  the process tracer (out-of-process shards, the future serving
  layer).  The worker records spans locally; on join,
  :meth:`WorkerTracer.merge_into` re-parents every finished root under
  the captured context — rewriting the whole subtree's ``trace_id`` —
  and appends them into the target tracer's buffer, so the parent's
  ``render_tree`` / Chrome-trace export shows the worker's lane as if
  it had always been a child.

Both are zero-overhead when telemetry is off: :meth:`capture` returns
the shared :data:`NULL_CONTEXT` whose :meth:`~TraceContext.span`
returns :data:`~repro.telemetry.spans.NULL_SPAN` — one attribute
check, no allocation.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.spans import (
    NULL_SPAN,
    TRACER,
    Span,
    Tracer,
    new_trace_id,
)

__all__ = [
    "TraceContext",
    "NULL_CONTEXT",
    "WorkerTracer",
    "merge_roots",
    "revive_spans",
]


class TraceContext:
    """Immutable capture of "where spawned work belongs" in a trace.

    ``trace_id`` identifies the tree; ``parent`` is the span open at
    capture time (``None`` when captured outside any span — children
    then become roots sharing the captured trace id).  ``tracer`` is
    the tracer whose buffer re-parented spans land in.
    """

    __slots__ = ("trace_id", "parent", "tracer")

    def __init__(
        self,
        trace_id: str | None,
        parent: Span | None,
        tracer: Tracer | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.parent = parent
        self.tracer = tracer if tracer is not None else TRACER

    @property
    def is_recording(self) -> bool:
        """False only for :data:`NULL_CONTEXT` (telemetry was off)."""
        return self.trace_id is not None

    @property
    def parent_span_id(self) -> int | None:
        """The spawning span's id (None for a parentless capture)."""
        return self.parent.span_id if self.parent is not None else None

    @classmethod
    def capture(cls, tracer: Tracer | None = None) -> "TraceContext":
        """Snapshot the current span/trace for worker propagation.

        Returns :data:`NULL_CONTEXT` when the tracer is disabled;
        otherwise the innermost open span on the calling thread and its
        trace id (a fresh id when called outside any span, so all
        spawned workers still share one trace).
        """
        tracer = tracer if tracer is not None else TRACER
        if not tracer.enabled:
            return NULL_CONTEXT
        current = tracer.current()
        if current is not None:
            # the spawning span may not have entered yet under a
            # pre-seeded context; fall back to a fresh id then
            trace_id = current.trace_id or new_trace_id()
        else:
            trace_id = new_trace_id()
        return cls(trace_id, current, tracer)

    def span(
        self, name: str, category: str = "repro", **attrs: Any
    ):
        """A child span of the captured parent, from any thread.

        Returns :data:`~repro.telemetry.spans.NULL_SPAN` on the null
        context or a disabled tracer — instrumented worker code never
        branches on telemetry itself.
        """
        if self.trace_id is None or not self.tracer.enabled:
            return NULL_SPAN
        return Span(
            self.tracer,
            name,
            category=category,
            parent=self.parent,
            attrs=attrs,
            trace_id=self.trace_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.trace_id is None:
            return "NULL_CONTEXT"
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"parent_span_id={self.parent_span_id})"
        )


#: The shared do-nothing context returned while telemetry is disabled.
NULL_CONTEXT = TraceContext(None, None)


def merge_roots(
    roots: list[Span],
    context: TraceContext,
    tracer: Tracer | None = None,
) -> int:
    """Re-parent finished root spans under a captured context.

    Every span in every subtree is rewritten onto ``context.trace_id``;
    the roots become children of ``context.parent`` (or roots of the
    target ``tracer``'s buffer when the context was captured outside a
    span).  Returns the number of roots merged.  No-op on the null
    context — a worker traced against a disabled parent discards its
    spans, matching the zero-overhead contract.
    """
    if context.trace_id is None:
        return 0
    tracer = tracer if tracer is not None else context.tracer
    merged = 0
    for root in roots:
        for span in root.walk():
            span.trace_id = context.trace_id
        if context.parent is not None:
            root.parent = context.parent
            with tracer._lock:
                context.parent.children.append(root)
        else:
            root.parent = None
            with tracer._lock:
                if len(tracer.finished) >= tracer.max_finished:
                    tracer.finished.pop(0)
                    tracer.dropped += 1
                tracer.finished.append(root)
        merged += 1
    return merged


def revive_spans(
    span_dicts: list[dict],
    context: TraceContext,
    tracer: Tracer | None = None,
    rebase_ns: int = 0,
) -> int:
    """Rebuild serialized span trees and merge them under a context.

    The cross-*process* counterpart of :class:`WorkerTracer`: a worker
    process serializes its finished roots with
    :func:`repro.telemetry.export.span_to_dict`, ships them back as
    plain dicts, and the spawning side revives them here — re-parented
    under the captured context, the whole subtree rewritten onto the
    parent ``trace_id``, exactly like an in-process merge.

    ``rebase_ns`` shifts every revived timestamp (the child's
    ``perf_counter_ns`` clock is unrelated to the parent's): pass
    ``dispatch_ns - child_root_start_ns`` so the worker's lane lands at
    the moment the parent dispatched it.  Returns the number of roots
    merged; no-op on the null context.
    """
    if context.trace_id is None or not span_dicts:
        return 0
    target = tracer if tracer is not None else context.tracer
    roots = [_revive_one(d, target, rebase_ns) for d in span_dicts]
    return merge_roots(roots, context, tracer=target)


def _revive_one(d: dict, tracer: Tracer, rebase_ns: int) -> Span:
    """One serialized span (children inline) back into a Span tree."""
    from repro.tcu.counters import EventCounters

    span = Span(
        tracer,
        d.get("name", "<revived>"),
        category=d.get("category", "repro"),
        parent=None,
        attrs=d.get("attrs") or {},
    )
    span.thread_name = d.get("thread", span.thread_name)
    span.start_ns = int(d.get("start_ns", 0)) + rebase_ns
    span.end_ns = span.start_ns + int(d.get("duration_ns", 0))
    events = d.get("events")
    if events:
        span.events = EventCounters(**events)
    for child_dict in d.get("children") or ():
        child = _revive_one(child_dict, tracer, rebase_ns)
        child.parent = span
        span.children.append(child)
    return span


class WorkerTracer(Tracer):
    """A private tracer for one spawned worker, merged on join.

    The worker opens spans against *this* tracer (its roots collect
    locally, never touching the process buffer mid-flight); the
    spawning side calls :meth:`merge_into` after the join to fold the
    worker's finished trees into the parent trace.  Enabled iff the
    captured context is recording, so a worker under disabled
    telemetry pays the usual single attribute check per span.
    """

    def __init__(
        self, context: TraceContext, max_finished: int = 256
    ) -> None:
        super().__init__(max_finished=max_finished)
        self.context = context
        if context.trace_id is not None:
            self.enable()
            # share the parent's wall-clock anchor so merged spans land
            # on the same exporter timeline
            self.epoch = context.tracer.epoch

    def merge_into(self, tracer: Tracer | None = None) -> int:
        """Re-parent and hand over every finished root; returns count.

        The local buffer is cleared — merging twice cannot duplicate
        spans.
        """
        roots = self.roots()
        self.clear()
        return merge_roots(roots, self.context, tracer=tracer)
