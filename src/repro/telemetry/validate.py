"""Schema validation for emitted telemetry documents.

Pure-Python structural validation (this repository adds no third-party
dependencies, so there is no ``jsonschema``): each ``validate_*``
function walks the document and raises :class:`TelemetryError` — a
:class:`~repro.errors.ReproError` — on the first violation, naming the
offending path.  The rules here *are* the documented schema; see
``docs/observability.md`` for the prose version.

Also runnable as a module, which is what the CI smoke job calls::

    python -m repro.telemetry.validate trace.json      # auto-detects kind
    python -m repro.telemetry.validate record.json
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Any

from repro.errors import ReproError
from repro.telemetry.export import (
    CHROME_TRACE_SCHEMA,
    FIDELITY_REPORT_SCHEMA,
    RUN_RECORD_SCHEMA,
    RUN_RECORD_SCHEMAS,
)
from repro.telemetry.log import EVENT_SCHEMA, LEVELS

__all__ = [
    "TelemetryError",
    "validate_chrome_trace",
    "validate_cluster_report",
    "validate_event",
    "validate_fidelity_report",
    "validate_run_record",
    "validate_span_dict",
    "validate_file",
]


class TelemetryError(ReproError, ValueError):
    """A telemetry document does not match its declared schema."""


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise TelemetryError(f"{path}: {message}")


def _require_type(value: Any, types, path: str) -> None:
    _require(
        isinstance(value, types),
        path,
        f"expected {getattr(types, '__name__', types)}, "
        f"got {type(value).__name__}",
    )


def validate_span_dict(span: Any, path: str = "span") -> None:
    """Validate one serialized span (the ``run-record`` ``spans`` shape)."""
    _require_type(span, dict, path)
    for key, types in (
        ("name", str),
        ("category", str),
        ("span_id", int),
        ("start_ns", int),
        ("duration_ns", int),
        ("attrs", dict),
        ("children", list),
    ):
        _require(key in span, path, f"missing key {key!r}")
        _require_type(span[key], types, f"{path}.{key}")
    _require(span["duration_ns"] >= 0, f"{path}.duration_ns", "negative")
    events = span.get("events")
    if events is not None:
        _require_type(events, dict, f"{path}.events")
        for k, v in events.items():
            _require_type(v, (int, float), f"{path}.events[{k!r}]")
    trace_id = span.get("trace_id")
    if trace_id is not None:
        _require_type(trace_id, str, f"{path}.trace_id")
    for i, child in enumerate(span["children"]):
        validate_span_dict(child, f"{path}.children[{i}]")


def validate_event(event: Any, path: str = "event") -> None:
    """Validate one structured event (``repro.telemetry.event/v1``).

    The shape both the JSONL export lines and the run-record ``log``
    section entries share.
    """
    _require_type(event, dict, path)
    _require(
        event.get("schema") == EVENT_SCHEMA,
        f"{path}.schema",
        f"expected {EVENT_SCHEMA!r}, got {event.get('schema')!r}",
    )
    for key, types in (
        ("ts", (int, float)),
        ("level", str),
        ("kind", str),
        ("message", str),
        ("fields", dict),
        ("thread", str),
    ):
        _require(key in event, path, f"missing key {key!r}")
        _require_type(event[key], types, f"{path}.{key}")
    _require(
        event["level"] in LEVELS,
        f"{path}.level",
        f"unknown level {event['level']!r} (expected one of {LEVELS})",
    )
    _require(bool(event["kind"]), f"{path}.kind", "must be non-empty")
    trace_id = event.get("trace_id")
    if trace_id is not None:
        _require_type(trace_id, str, f"{path}.trace_id")
    span_id = event.get("span_id")
    if span_id is not None:
        _require_type(span_id, int, f"{path}.span_id")


def _validate_log_section(log: Any, path: str = "record.log") -> None:
    """Validate the optional ``log`` section (run-record v3)."""
    _require_type(log, dict, path)
    for key in ("events", "dropped", "max_events"):
        _require(key in log, path, f"missing key {key!r}")
    _require_type(log["events"], list, f"{path}.events")
    _require_type(log["dropped"], int, f"{path}.dropped")
    _require_type(log["max_events"], int, f"{path}.max_events")
    for i, event in enumerate(log["events"]):
        validate_event(event, f"{path}.events[{i}]")


def _validate_health_section(health: Any, path: str = "record.health") -> None:
    """Validate the optional ``health`` section (run-record v3)."""
    _require_type(health, dict, path)
    _require("sweeps" in health, path, "missing key 'sweeps'")
    _require_type(health["sweeps"], list, f"{path}.sweeps")
    for i, sweep in enumerate(health["sweeps"]):
        spath = f"{path}.sweeps[{i}]"
        _require_type(sweep, dict, spath)
        for key, types in (
            ("sweep_id", str),
            ("name", str),
            ("done", bool),
            ("shards", list),
        ):
            _require(key in sweep, spath, f"missing key {key!r}")
            _require_type(sweep[key], types, f"{spath}.{key}")
        for j, shard in enumerate(sweep["shards"]):
            hpath = f"{spath}.shards[{j}]"
            _require_type(shard, dict, hpath)
            for key, types in (
                ("shard", int),
                ("state", str),
                ("tiles_done", int),
                ("tiles_total", int),
                ("retries", int),
                ("last_beat_age_s", (int, float)),
            ):
                _require(key in shard, hpath, f"missing key {key!r}")
                _require_type(shard[key], types, f"{hpath}.{key}")


def _validate_faults_section(faults: Any, path: str = "record.faults") -> None:
    """Validate the optional ``faults`` ledger (run-record v2).

    Shape: a dict of counters, where each value is either a number or
    one nesting level of ``{kind: number}`` (the per-kind/per-mechanism
    breakdowns :meth:`repro.faults.FaultReport.as_dict` produces).
    """
    _require_type(faults, dict, path)
    for key, value in faults.items():
        sub = f"{path}[{key!r}]"
        if isinstance(value, dict):
            for k, v in value.items():
                _require_type(v, (int, float), f"{sub}[{k!r}]")
        else:
            _require_type(value, (int, float), sub)


def _validate_resilience_section(
    resilience: Any, path: str = "record.resilience"
) -> None:
    """Validate the optional ``resilience`` ledger (run-record v5).

    Shape: ``checkpoints`` (saved/restored counts), ``halo``
    (detection/retransmission counters), ``replans`` (one entry per
    elastic re-partition with the dead rank and the mesh transition),
    and the total ``reassignments`` count.
    """
    _require_type(resilience, dict, path)
    checkpoints = resilience.get("checkpoints")
    _require(checkpoints is not None, path, "missing key 'checkpoints'")
    _require_type(checkpoints, dict, f"{path}.checkpoints")
    for key in ("saved", "restored"):
        _require(
            key in checkpoints, f"{path}.checkpoints", f"missing key {key!r}"
        )
        _require_type(checkpoints[key], int, f"{path}.checkpoints.{key}")
    halo = resilience.get("halo")
    _require(halo is not None, path, "missing key 'halo'")
    _require_type(halo, dict, f"{path}.halo")
    for key, value in halo.items():
        _require_type(value, int, f"{path}.halo[{key!r}]")
    replans = resilience.get("replans")
    _require(replans is not None, path, "missing key 'replans'")
    _require_type(replans, list, f"{path}.replans")
    for i, entry in enumerate(replans):
        epath = f"{path}.replans[{i}]"
        _require_type(entry, dict, epath)
        for key, types in (
            ("round", int),
            ("dead_rank", int),
            ("old_mesh", list),
            ("new_mesh", list),
        ):
            _require(key in entry, epath, f"missing key {key!r}")
            _require_type(entry[key], types, f"{epath}.{key}")
    _require(
        "reassignments" in resilience, path, "missing key 'reassignments'"
    )
    _require_type(
        resilience["reassignments"], int, f"{path}.reassignments"
    )


def validate_run_record(record: Any) -> None:
    """Validate a run-record against :data:`RUN_RECORD_SCHEMAS`.

    v1 (no ``faults`` section), v2, v3 (optional ``log`` and ``health``
    sections), v4 (optional ``cluster`` observatory section), and v5
    (optional ``resilience`` section) records are all accepted;
    committed baselines and perf histories predate the newer versions.
    """
    _require_type(record, dict, "record")
    _require(
        record.get("schema") in RUN_RECORD_SCHEMAS,
        "record.schema",
        f"expected one of {RUN_RECORD_SCHEMAS!r}, got {record.get('schema')!r}",
    )
    for key, types in (
        ("name", str),
        ("timestamp", str),
        ("spans", list),
        ("metrics", dict),
        ("extra", dict),
    ):
        _require(key in record, "record", f"missing key {key!r}")
        _require_type(record[key], types, f"record.{key}")
    for i, span in enumerate(record["spans"]):
        validate_span_dict(span, f"record.spans[{i}]")
    for name, snap in record["metrics"].items():
        path = f"record.metrics[{name!r}]"
        _require_type(snap, dict, path)
        kind = snap.get("kind")
        _require(
            kind in ("counter", "gauge", "histogram"),
            f"{path}.kind",
            f"unknown metric kind {kind!r}",
        )
        if kind == "histogram":
            for key in ("buckets", "counts", "sum", "count"):
                _require(key in snap, path, f"missing key {key!r}")
            _require(
                len(snap["counts"]) == len(snap["buckets"]) + 1,
                f"{path}.counts",
                "must have one more entry than buckets (+Inf)",
            )
        else:
            _require("value" in snap, path, "missing key 'value'")
            _require_type(snap["value"], (int, float), f"{path}.value")
    cache = record.get("cache")
    if cache is not None:
        _require_type(cache, dict, "record.cache")
        for key in ("hits", "misses", "evictions", "size", "maxsize"):
            _require(key in cache, "record.cache", f"missing key {key!r}")
            _require_type(cache[key], int, f"record.cache.{key}")
    events = record.get("events")
    if events is not None:
        _require_type(events, dict, "record.events")
        for k, v in events.items():
            _require_type(v, (int, float), f"record.events[{k!r}]")
    tracer = record.get("tracer")
    if tracer is not None:
        _require_type(tracer, dict, "record.tracer")
        for key in ("finished_spans", "dropped_spans", "max_finished"):
            _require(key in tracer, "record.tracer", f"missing key {key!r}")
            _require_type(tracer[key], int, f"record.tracer.{key}")
        warp = tracer.get("warp_trace")
        if warp is not None:
            _require_type(warp, dict, "record.tracer.warp_trace")
            for k, v in warp.items():
                _require_type(v, int, f"record.tracer.warp_trace[{k!r}]")
    faults = record.get("faults")
    if faults is not None:
        _validate_faults_section(faults)
    log = record.get("log")
    if log is not None:
        _validate_log_section(log)
    health = record.get("health")
    if health is not None:
        _validate_health_section(health)
    cluster = record.get("cluster")
    if cluster is not None:
        validate_cluster_report(cluster, path="record.cluster")
    resilience = record.get("resilience")
    if resilience is not None:
        _validate_resilience_section(resilience)


def validate_cluster_report(report: Any, path: str = "report") -> None:
    """Validate a cluster observatory report
    (``repro.telemetry.cluster-report/v1``), standalone or as the
    ``cluster`` section of a v4 run-record."""
    from repro.telemetry.cluster import CLUSTER_REPORT_SCHEMA, LANE_NAMES

    _require_type(report, dict, path)
    _require(
        report.get("schema") == CLUSTER_REPORT_SCHEMA,
        f"{path}.schema",
        f"expected {CLUSTER_REPORT_SCHEMA!r}, got {report.get('schema')!r}",
    )
    for key, types in (
        ("name", str),
        ("timestamp", str),
        ("trace_id", str),
        ("run", dict),
        ("ranks", list),
        ("critical_path", dict),
        ("overlap", dict),
        ("imbalance", dict),
        ("halo", dict),
    ):
        _require(key in report, path, f"missing key {key!r}")
        _require_type(report[key], types, f"{path}.{key}")
    run = report["run"]
    for key, types in (
        ("steps", int),
        ("rounds", int),
        ("phases", list),
        ("devices", int),
        ("executor", str),
        ("overlap", bool),
        ("wall_s", (int, float)),
        ("wall_ns", int),
    ):
        _require(key in run, f"{path}.run", f"missing key {key!r}")
        _require_type(run[key], types, f"{path}.run.{key}")
    for i, row in enumerate(report["ranks"]):
        rpath = f"{path}.ranks[{i}]"
        _require_type(row, dict, rpath)
        for key, types in (
            ("rank", int),
            ("lanes", dict),
            ("lanes_ns", dict),
            ("wall_ns", int),
            ("wall_s", (int, float)),
            ("busy_s", (int, float)),
            ("attempts", int),
            ("segments", list),
        ):
            _require(key in row, rpath, f"missing key {key!r}")
            _require_type(row[key], types, f"{rpath}.{key}")
        for lane in LANE_NAMES:
            _require(
                f"{lane}_s" in row["lanes"],
                f"{rpath}.lanes",
                f"missing lane {lane!r}",
            )
            _require(
                lane in row["lanes_ns"],
                f"{rpath}.lanes_ns",
                f"missing lane {lane!r}",
            )
            _require_type(row["lanes_ns"][lane], int, f"{rpath}.lanes_ns.{lane}")
        _require(
            sum(row["lanes_ns"].values()) == row["wall_ns"],
            f"{rpath}.lanes_ns",
            "lane nanoseconds must sum exactly to wall_ns",
        )
        for j, seg in enumerate(row["segments"]):
            spath = f"{rpath}.segments[{j}]"
            _require_type(seg, dict, spath)
            for key, types in (
                ("t0_s", (int, float)),
                ("t1_s", (int, float)),
                ("lane", str),
                ("round", int),
            ):
                _require(key in seg, spath, f"missing key {key!r}")
                _require_type(seg[key], types, f"{spath}.{key}")
    crit = report["critical_path"]
    for key, types in (("s", (int, float)), ("ns", int), ("nodes", list)):
        _require(key in crit, f"{path}.critical_path", f"missing key {key!r}")
        _require_type(crit[key], types, f"{path}.critical_path.{key}")
    if report["ranks"]:
        _require(
            crit["ns"] >= max(r["wall_ns"] for r in report["ranks"]),
            f"{path}.critical_path.ns",
            "critical path must dominate every rank's wall time",
        )
    overlap = report["overlap"]
    for key, types in (
        ("enabled", bool),
        ("efficiency", (int, float)),
        ("hidden_s", (int, float)),
        ("transfer_s", (int, float)),
        ("per_round", list),
    ):
        _require(key in overlap, f"{path}.overlap", f"missing key {key!r}")
        _require_type(overlap[key], types, f"{path}.overlap.{key}")
    _require(
        0.0 <= overlap["efficiency"] <= 1.0,
        f"{path}.overlap.efficiency",
        f"must be in [0, 1], got {overlap['efficiency']!r}",
    )
    imbalance = report["imbalance"]
    for key, types in (
        ("max_over_mean", (int, float)),
        ("mad_frac", (int, float)),
        ("per_round", list),
    ):
        _require(key in imbalance, f"{path}.imbalance", f"missing key {key!r}")
        _require_type(imbalance[key], types, f"{path}.imbalance.{key}")
    halo = report["halo"]
    for key, types in (
        ("total_bytes", int),
        ("ledger_bytes", int),
        ("counter_delta", int),
        ("reconciled", bool),
        ("per_round", list),
    ):
        _require(key in halo, f"{path}.halo", f"missing key {key!r}")
        _require_type(halo[key], types, f"{path}.halo.{key}")
    for i, entry in enumerate(halo["per_round"]):
        epath = f"{path}.halo.per_round[{i}]"
        _require_type(entry, dict, epath)
        for key in ("round", "steps", "depth", "halo_bytes", "comm_bytes_max"):
            _require(key in entry, epath, f"missing key {key!r}")
            _require_type(entry[key], int, f"{epath}.{key}")
    _require(
        halo["total_bytes"] == sum(
            entry["halo_bytes"] for entry in halo["per_round"]
        ),
        f"{path}.halo.total_bytes",
        "must equal the sum of per-round halo bytes",
    )


def validate_fidelity_report(report: Any) -> None:
    """Validate a fidelity report against :data:`FIDELITY_REPORT_SCHEMA`."""
    _require_type(report, dict, "report")
    _require(
        report.get("schema") == FIDELITY_REPORT_SCHEMA,
        "report.schema",
        f"expected {FIDELITY_REPORT_SCHEMA!r}, got {report.get('schema')!r}",
    )
    for key, types in (
        ("name", str),
        ("timestamp", str),
        ("plan", dict),
        ("workload", dict),
        ("components", list),
        ("model", dict),
        ("max_rel_error", (int, float)),
    ):
        _require(key in report, "report", f"missing key {key!r}")
        _require_type(report[key], types, f"report.{key}")
    plan = report["plan"]
    for key, types in (
        ("key", str),
        ("schedule", str),
        ("ndim", int),
        ("radius", int),
        ("rank", int),
        ("method", str),
    ):
        _require(key in plan, "report.plan", f"missing key {key!r}")
        _require_type(plan[key], types, f"report.plan.{key}")
    workload = report["workload"]
    for key, types in (("shape", list), ("seed", int), ("tiles", int)):
        _require(key in workload, "report.workload", f"missing key {key!r}")
        _require_type(workload[key], types, f"report.workload.{key}")
    _require(
        len(report["components"]) >= 1,
        "report.components",
        "must contain at least one component",
    )
    for i, comp in enumerate(report["components"]):
        path = f"report.components[{i}]"
        _require_type(comp, dict, path)
        for key, types in (
            ("name", str),
            ("equation", str),
            ("source", str),
            ("predicted", (int, float)),
            ("measured", (int, float)),
        ):
            _require(key in comp, path, f"missing key {key!r}")
            _require_type(comp[key], types, f"{path}.{key}")
        _require("rel_error" in comp, path, "missing key 'rel_error'")
        if comp["rel_error"] is not None:
            _require_type(comp["rel_error"], (int, float), f"{path}.rel_error")
    for key, value in report["model"].items():
        _require_type(value, (int, float), f"report.model[{key!r}]")


def validate_chrome_trace(trace: Any) -> None:
    """Validate a Chrome trace-event document this package emitted."""
    _require_type(trace, dict, "trace")
    _require(
        trace.get("schema") == CHROME_TRACE_SCHEMA,
        "trace.schema",
        f"expected {CHROME_TRACE_SCHEMA!r}, got {trace.get('schema')!r}",
    )
    events = trace.get("traceEvents")
    _require_type(events, list, "trace.traceEvents")
    complete = 0
    for i, event in enumerate(events):
        path = f"trace.traceEvents[{i}]"
        _require_type(event, dict, path)
        ph = event.get("ph")
        _require(ph in ("X", "M"), f"{path}.ph", f"unsupported phase {ph!r}")
        _require("name" in event, path, "missing key 'name'")
        if ph == "M":
            continue
        complete += 1
        for key in ("ts", "dur", "pid", "tid"):
            _require(key in event, path, f"missing key {key!r}")
            _require_type(event[key], (int, float), f"{path}.{key}")
        _require(event["dur"] >= 0, f"{path}.dur", "negative duration")
        _require_type(event.get("args"), dict, f"{path}.args")
        _require(
            "span_id" in event["args"],
            f"{path}.args",
            "missing key 'span_id'",
        )
    _require(complete >= 1, "trace.traceEvents", "no complete ('X') events")


def _validate_document(document: Any, path: str | pathlib.Path) -> str:
    from repro.telemetry.cluster import CLUSTER_REPORT_SCHEMA

    schema = document.get("schema") if isinstance(document, dict) else None
    if schema == CHROME_TRACE_SCHEMA:
        validate_chrome_trace(document)
    elif schema in RUN_RECORD_SCHEMAS:
        validate_run_record(document)
    elif schema == FIDELITY_REPORT_SCHEMA:
        validate_fidelity_report(document)
    elif schema == CLUSTER_REPORT_SCHEMA:
        validate_cluster_report(document)
    elif schema == EVENT_SCHEMA:
        validate_event(document)
    else:
        raise TelemetryError(
            f"{path}: unknown or missing schema {schema!r} (expected "
            f"{CHROME_TRACE_SCHEMA!r}, one of {RUN_RECORD_SCHEMAS!r}, "
            f"{FIDELITY_REPORT_SCHEMA!r}, {CLUSTER_REPORT_SCHEMA!r} or "
            f"{EVENT_SCHEMA!r})"
        )
    return schema


def validate_file(path: str | pathlib.Path) -> str:
    """Validate a telemetry file as whatever it declares itself to be.

    ``.jsonl`` files (event-log exports, run-record histories) are
    validated line by line; plain JSON files as one document.  Returns
    the matched schema identifier (of the last line for JSONL).
    """
    path = pathlib.Path(path)
    text = path.read_text()
    if path.suffix == ".jsonl":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise TelemetryError(f"{path}: empty JSONL file")
        schema = ""
        for i, line in enumerate(lines):
            try:
                document = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetryError(
                    f"{path}: line {i + 1} is not valid JSON: {exc}"
                ) from exc
            schema = _validate_document(document, f"{path}:{i + 1}")
        return schema
    return _validate_document(json.loads(text), path)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.telemetry.validate <file> [<file> ...]``"""
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print("usage: python -m repro.telemetry.validate FILE [FILE ...]",
              file=sys.stderr)
        return 2
    for path in paths:
        try:
            schema = validate_file(path)
        except (OSError, json.JSONDecodeError, TelemetryError) as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            return 1
        print(f"{path}: ok ({schema})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
