"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

The :class:`MetricsRegistry` is the numeric companion to the span tree:
spans say *where* time went, the registry says *how much of everything*
happened — MMA instructions, shared-memory requests, DRAM bytes, plan-
cache hits — accumulated across every traced run in the process.  It
absorbs the two existing measurement sources:

* :meth:`MetricsRegistry.absorb_events` folds an
  :class:`~repro.tcu.counters.EventCounters` delta into
  ``repro_tcu_<field>_total`` counters (the simulator's Nsight-style
  ledger, see ``docs/observability.md`` for the mapping);
* :meth:`MetricsRegistry.absorb_cache_stats` mirrors a
  :class:`~repro.runtime.cache.CacheStats` snapshot into
  ``repro_plan_cache_*`` gauges (duck-typed — anything with ``hits`` /
  ``misses`` / ``evictions`` / ``size`` / ``maxsize`` works, which keeps
  this module import-free of :mod:`repro.runtime`).

Metric types follow the Prometheus data model so the text exposition in
:mod:`repro.telemetry.export` is a direct rendering: counters only go
up, gauges are set, histograms bucket observations under fixed upper
bounds.  Everything is thread-safe under one registry lock; the hot
paths only touch the registry once per sweep/compile, never per tile.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Iterable

from repro.tcu.counters import EventCounters

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_TIME_BUCKETS",
]

#: Histogram upper bounds (seconds) for span-duration observations:
#: 10 µs … 30 s in roughly 1-3-10 steps, the range a simulated sweep or
#: plan compile actually lands in.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
    0.1, 0.3, 1.0, 3.0, 10.0, 30.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Coerce ``name`` into a legal Prometheus metric name."""
    name = _NAME_RE.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        """JSON-ready ``{kind, help, value}`` view."""
        return {"kind": self.kind, "help": self.help, "value": self.value}


class Gauge:
    """A value that can go up and down (or be set outright)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)

    def snapshot(self) -> dict:
        """JSON-ready ``{kind, help, value}`` view."""
        return {"kind": self.kind, "help": self.help, "value": self.value}


class Histogram:
    """Fixed-bucket histogram (cumulative, Prometheus-style).

    ``buckets`` are inclusive upper bounds in ascending order; an
    implicit ``+Inf`` bucket catches the rest.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.sum: float = 0.0
        self.count: int = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation into its bucket, sum, and count."""
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1

    def cumulative_counts(self) -> list[int]:
        """Counts at or below each bucket bound, then the +Inf total."""
        with self._lock:
            out, running = [], 0
            for c in self.counts:
                running += c
                out.append(running)
            return out

    def snapshot(self) -> dict:
        """JSON-ready view including buckets, per-bucket counts, sum."""
        with self._lock:
            return {
                "kind": self.kind,
                "help": self.help,
                "buckets": list(self.buckets),
                "counts": list(self.counts),
                "sum": self.sum,
                "count": self.count,
            }


class MetricsRegistry:
    """Name-keyed store of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    # -- creation (get-or-create, type-checked) ---------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        """The counter named ``name``, created on first use."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge named ``name``, created on first use."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        """The histogram named ``name``, created on first use.

        ``buckets`` only applies at creation; later callers share the
        original bucket layout.
        """
        name = sanitize_metric_name(name)
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(name, help, buckets)
                self._metrics[name] = metric
            elif not isinstance(metric, Histogram):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def _get_or_create(self, cls, name: str, help: str):
        name = sanitize_metric_name(name)
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    # -- absorption --------------------------------------------------------
    def absorb_events(
        self, events: EventCounters, prefix: str = "repro_tcu_"
    ) -> None:
        """Fold an event-counter delta into ``<prefix><field>_total``."""
        for field, value in events.as_dict().items():
            if value:
                self.counter(
                    f"{prefix}{field}_total",
                    help=f"simulated hardware events: {field}",
                ).inc(value)

    def absorb_faults(self, flat: dict) -> None:
        """Fold a flat fault-counter delta into same-named counters.

        ``flat`` is a :meth:`repro.faults.FaultReport.delta` (or
        ``flatten``) mapping metric-style names
        (``repro_faults_injected_total``, ``..._detected_total``,
        ``..._recovered_total``, per-kind/per-mechanism tallies) to
        increments; zero entries are skipped.
        """
        for name, value in flat.items():
            if value:
                self.counter(
                    name, help="fault injections / detections / recoveries"
                ).inc(value)

    def absorb_cache_stats(self, stats, name: str = "plan_cache") -> None:
        """Mirror a cache-stats snapshot into ``repro_<name>_*`` gauges.

        ``stats`` is duck-typed (``hits``/``misses``/``evictions``/
        ``size``/``maxsize`` attributes) so this works for
        :class:`repro.runtime.cache.CacheStats` without importing it.
        """
        for field in ("hits", "misses", "evictions", "size", "maxsize"):
            self.gauge(
                f"repro_{name}_{field}",
                help=f"{name} lifetime {field}",
            ).set(getattr(stats, field))

    def observe_span(self, name: str, category: str, seconds: float) -> None:
        """Record one span duration in its per-name histogram."""
        self.histogram(
            f"repro_span_{sanitize_metric_name(name)}_seconds",
            help=f"duration of {category}:{name} spans",
        ).observe(seconds)

    # -- introspection -----------------------------------------------------
    def names(self) -> list[str]:
        """Sorted names of every registered metric."""
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The metric registered under ``name`` (sanitized), or None."""
        with self._lock:
            return self._metrics.get(sanitize_metric_name(name))

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready ``{name: {kind, help, ...}}`` view of every metric."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}

    def render(self) -> str:
        """Human-readable table for the ``stats`` CLI subcommand."""
        lines = []
        for name, snap in self.snapshot().items():
            if snap["kind"] == "histogram":
                mean = snap["sum"] / snap["count"] if snap["count"] else 0.0
                lines.append(
                    f"  {name:<52} n={snap['count']:<8} mean={mean:.6f}"
                )
            else:
                value = snap["value"]
                rendered = (
                    f"{value:,.0f}" if float(value).is_integer() else f"{value:g}"
                )
                lines.append(f"  {name:<52} {rendered:>16}")
        return "\n".join(lines) if lines else "  (no metrics recorded)"

    def clear(self) -> None:
        """Forget every metric (tests and CLI resets)."""
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


#: The process-wide registry the instrumented runtime reports into.
REGISTRY = MetricsRegistry()
