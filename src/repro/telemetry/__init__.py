"""``repro.telemetry`` — spans, metrics, and exporters for the runtime.

The observability layer the paper's evaluation implies: where Nsight
Compute attributes a real kernel's time and hardware events, this
package attributes the simulator's.  Three pieces:

* **spans** (:mod:`repro.telemetry.spans`): a :class:`Tracer` producing
  nestable, thread-safe :class:`Span` trees over the
  compile → plan-cache → execute → TCU-sweep pipeline.  Disabled by
  default and free when disabled;
* **metrics** (:mod:`repro.telemetry.metrics`): a process-wide
  :class:`MetricsRegistry` of counters/gauges/histograms that absorbs
  :class:`~repro.tcu.counters.EventCounters` deltas and plan-cache
  stats, so a serving process accumulates a hardware-event ledger
  across requests;
* **export** (:mod:`repro.telemetry.export`): Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto), structured run-records
  (schema-validated, stamped onto every benchmark result), and
  Prometheus text exposition.

Typical use — the ``repro profile`` subcommand in one paragraph::

    from repro import telemetry

    with telemetry.capture() as tracer:
        stencil = repro.compile(kernel.weights)
        out, events = stencil.apply_simulated(padded)
    root = tracer.last_root()
    print(root.render_tree())                       # per-phase breakdown
    telemetry.export.write_chrome_trace("trace.json")

Instrumented code uses :func:`span` (or ``TRACER.span``) directly; the
call costs one attribute check when telemetry is off.  See
``docs/observability.md`` for naming conventions and exporter formats.
"""

from __future__ import annotations

import contextlib

from repro.telemetry import (
    cluster,
    context,
    export,
    health,
    log,
    metrics,
    spans,
    validate,
)
from repro.telemetry.cluster import build_cluster_report, render_gantt
from repro.telemetry.context import (
    NULL_CONTEXT,
    TraceContext,
    WorkerTracer,
    revive_spans,
)
from repro.telemetry.export import (
    load_chrome_trace,
    run_record,
    to_chrome_trace,
    to_prometheus,
    write_chrome_trace,
    write_run_record,
)
from repro.telemetry.health import HEALTH, HealthRegistry
from repro.telemetry.log import EVENT_LOG, EventLog, emit, write_event_log
from repro.telemetry.metrics import REGISTRY, MetricsRegistry
from repro.telemetry.spans import NULL_SPAN, TRACER, Span, Tracer
from repro.telemetry.validate import (
    TelemetryError,
    validate_event,
    validate_run_record,
)

__all__ = [
    "Span",
    "Tracer",
    "TRACER",
    "NULL_SPAN",
    "TraceContext",
    "NULL_CONTEXT",
    "WorkerTracer",
    "revive_spans",
    "MetricsRegistry",
    "REGISTRY",
    "EventLog",
    "EVENT_LOG",
    "emit",
    "write_event_log",
    "HealthRegistry",
    "HEALTH",
    "TelemetryError",
    "span",
    "trace",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "capture",
    "absorb_events",
    "absorb_cache_stats",
    "absorb_faults",
    "to_chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "run_record",
    "write_run_record",
    "to_prometheus",
    "validate_event",
    "validate_run_record",
    "build_cluster_report",
    "render_gantt",
    "cluster",
    "context",
    "export",
    "health",
    "log",
    "metrics",
    "spans",
    "validate",
]

# span durations feed per-name histograms in the process registry
TRACER.registry = REGISTRY

#: alias for ``TRACER.span`` — the way runtime code opens spans
span = TRACER.span

#: alias for ``TRACER.wrap`` — decorator form
trace = TRACER.wrap


def enable() -> None:
    """Turn telemetry on process-wide (spans and metric absorption)."""
    TRACER.enable()


def disable() -> None:
    """Turn telemetry off (instrumentation reverts to no-ops)."""
    TRACER.disable()


def is_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return TRACER.enabled


def reset() -> None:
    """Clear collected spans, metrics, events and health state (the
    enabled switch is kept)."""
    TRACER.clear()
    REGISTRY.clear()
    EVENT_LOG.clear()
    HEALTH.clear()


@contextlib.contextmanager
def capture(fresh: bool = True):
    """Enable telemetry for a ``with`` block, yielding the tracer.

    Restores the previous enabled/disabled state on exit;
    ``fresh=True`` (default) clears previously collected spans and
    metrics first, so the block's trees are the only ones present.
    """
    was_enabled = TRACER.enabled
    if fresh:
        reset()
    enable()
    try:
        yield TRACER
    finally:
        if not was_enabled:
            disable()


def absorb_events(events, prefix: str = "repro_tcu_") -> None:
    """Fold a hardware-event delta into the registry (if enabled).

    The single place the instrumented facade reports counters from, so
    each sweep's events are absorbed exactly once no matter how many
    nested spans also attach them.
    """
    if TRACER.enabled:
        REGISTRY.absorb_events(events, prefix=prefix)


def absorb_cache_stats(stats, name: str = "plan_cache") -> None:
    """Mirror plan-cache stats into the registry (if enabled)."""
    if TRACER.enabled:
        REGISTRY.absorb_cache_stats(stats, name=name)


def absorb_faults(flat: dict) -> None:
    """Fold a fault-report delta into the registry (if enabled).

    ``flat`` is a :meth:`repro.faults.FaultReport.delta` dict; the
    single place the instrumented facade reports fault counters from.
    """
    if TRACER.enabled:
        REGISTRY.absorb_faults(flat)
