"""Spans: where time goes in the compile→plan→execute pipeline.

A :class:`Span` is one timed region of the runtime — a ``repro.compile``
call, a plan-cache lookup, a TCU sweep — with a name, a category, free-
form attributes, and (for simulated sweeps) the
:class:`~repro.tcu.counters.EventCounters` delta accumulated inside it.
Spans nest: the :class:`Tracer` keeps a per-thread stack, so a sweep
span opened during a ``runtime.apply_simulated`` span becomes its child
and the finished roots form trees whose children's durations account
for (almost all of) the parent's.

Tracing is **opt-in and zero-overhead when disabled**: every
instrumentation point calls :meth:`Tracer.span`, which returns the
shared :data:`NULL_SPAN` singleton unless the tracer is enabled — one
attribute check, no allocation, no locking.  Instrumented code therefore
never branches on telemetry itself::

    with TRACER.span("tcu.sweep", category="tcu") as sp:
        out, events = ...          # the hot work
        sp.add_events(events)      # no-op on NULL_SPAN
        sp.annotate(shape=str(x.shape))

Cross-thread spans (the sharded executor fans sweeps over a pool) pass
``parent=`` explicitly; the child is attached to the given parent
instead of the worker thread's (empty) stack, so shard spans appear
under the sweep that spawned them.
"""

from __future__ import annotations

import functools
import itertools
import threading
import time
import uuid
from typing import Any, Callable, Iterator

from repro.tcu.counters import EventCounters

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "TRACER",
    "new_trace_id",
]

#: sentinel distinguishing "no parent given" from "parent is None (root)"
_INHERIT = object()

_SPAN_IDS = itertools.count(1)  # itertools.count is atomic in CPython


def new_trace_id() -> str:
    """A fresh 16-hex-char trace identifier (one per span tree)."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed, attributed, nestable region.

    Use as a context manager (via :meth:`Tracer.span`); not reentrant.
    Durations come from :func:`time.perf_counter_ns`; wall-clock anchors
    for exporters come from the tracer's epoch.
    """

    __slots__ = (
        "name",
        "category",
        "attrs",
        "events",
        "children",
        "parent",
        "span_id",
        "trace_id",
        "thread_name",
        "start_ns",
        "end_ns",
        "_tracer",
        "_explicit_parent",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str = "repro",
        parent: "Span | None | object" = _INHERIT,
        attrs: dict[str, Any] | None = None,
        trace_id: str | None = None,
    ) -> None:
        self.name = name
        self.category = category
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.events: EventCounters | None = None
        self.children: list[Span] = []
        self.parent: Span | None = None
        self.span_id = next(_SPAN_IDS)
        self.trace_id = trace_id
        self.thread_name = threading.current_thread().name
        self.start_ns = 0
        self.end_ns = 0
        self._tracer = tracer
        self._explicit_parent = parent

    # -- recording ---------------------------------------------------------
    @property
    def is_recording(self) -> bool:
        """True — this is a real span (the null span reports False)."""
        return True

    def annotate(self, **attrs: Any) -> "Span":
        """Attach key/value attributes (shown in exports); returns self."""
        self.attrs.update(attrs)
        return self

    def add_events(self, events: EventCounters) -> "Span":
        """Merge a hardware-event delta into this span; returns self."""
        if self.events is None:
            self.events = events.snapshot()
        else:
            self.events += events
        return self

    # -- timing ------------------------------------------------------------
    @property
    def duration_ns(self) -> int:
        end = self.end_ns or time.perf_counter_ns()
        return max(0, end - self.start_ns)

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    @property
    def child_ns(self) -> int:
        """Total nanoseconds accounted for by direct children.

        Cross-thread children (shards) overlap in wall time, so this can
        legitimately exceed :attr:`duration_ns`; same-thread children
        never do.
        """
        return sum(c.duration_ns for c in self.children)

    @property
    def self_ns(self) -> int:
        """Nanoseconds not attributed to any child (floored at 0)."""
        return max(0, self.duration_ns - self.child_ns)

    # -- context manager ---------------------------------------------------
    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack()
        if self._explicit_parent is _INHERIT:
            self.parent = stack[-1] if stack else None
        else:
            parent = self._explicit_parent
            self.parent = parent if isinstance(parent, Span) else None
        # propagate the trace identity: a child belongs to its parent's
        # trace; a root starts one (unless a TraceContext pre-seeded it)
        if self.parent is not None and self.parent.trace_id is not None:
            self.trace_id = self.parent.trace_id
        elif self.trace_id is None:
            self.trace_id = new_trace_id()
        stack.append(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_ns = time.perf_counter_ns()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._finish(self)
        return False

    # -- traversal / rendering --------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def render_tree(self, unit: str = "ms") -> str:
        """ASCII tree with per-phase durations and % of this root."""
        scale = {"s": 1e9, "ms": 1e6, "us": 1e3}[unit]
        root_ns = max(1, self.duration_ns)
        width = max(
            len(prefix) + len(s.name)
            for s, prefix in _tree_prefixes(self)
        )
        lines = []
        for span, prefix in _tree_prefixes(self):
            pct = 100.0 * span.duration_ns / root_ns
            label = f"{prefix}{span.name}"
            extra = ""
            if span.events is not None and span.events.mma_ops:
                extra = f"  [{span.events.mma_ops:,} MMAs]"
            lines.append(
                f"{label:<{width}}  {span.duration_ns / scale:>10.3f} {unit} "
                f"{pct:>6.1f}%{extra}"
            )
        un_ns = self.self_ns if self.children else 0
        if self.children:
            lines.append(
                f"{'(unaccounted)':<{width}}  {un_ns / scale:>10.3f} {unit} "
                f"{100.0 * un_ns / root_ns:>6.1f}%"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, cat={self.category!r}, "
            f"dur={self.duration_s * 1e3:.3f}ms, "
            f"children={len(self.children)})"
        )


def _tree_prefixes(root: Span) -> list[tuple[Span, str]]:
    """(span, box-drawing prefix) pairs for :meth:`Span.render_tree`."""
    out: list[tuple[Span, str]] = []

    def visit(span: Span, prefix: str, child_prefix: str) -> None:
        out.append((span, prefix))
        for i, child in enumerate(span.children):
            last = i == len(span.children) - 1
            visit(
                child,
                child_prefix + ("└─ " if last else "├─ "),
                child_prefix + ("   " if last else "│  "),
            )

    visit(root, "", "")
    return out


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    is_recording = False
    name = "<disabled>"
    category = "null"
    children: tuple = ()
    events = None
    duration_ns = 0
    duration_s = 0.0
    span_id = 0
    trace_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def add_events(self, events: EventCounters) -> "_NullSpan":
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_SPAN"


#: The singleton every disabled instrumentation point receives.
NULL_SPAN = _NullSpan()


class Tracer:
    """Process-wide span factory and collector.

    Thread-safe: each thread has its own span stack (so nesting never
    crosses threads implicitly), and finished roots are appended to
    :attr:`finished` under a lock, bounded by ``max_finished`` with a
    :attr:`dropped` count — a long sweep cannot grow memory unboundedly.
    """

    def __init__(self, max_finished: int = 256) -> None:
        self._enabled = False
        self._local = threading.local()
        self._lock = threading.Lock()
        self.max_finished = max_finished
        self.finished: list[Span] = []
        self.dropped = 0
        #: wall-clock anchor: (time.time(), perf_counter_ns) at enable()
        self.epoch: tuple[float, int] = (0.0, 0)
        #: optional MetricsRegistry observing span durations (wired up by
        #: :mod:`repro.telemetry`; kept as an attribute to avoid imports)
        self.registry = None

    # -- switches ----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        """Turn tracing on (anchoring the wall-clock epoch)."""
        if not self._enabled:
            self.epoch = (time.time(), time.perf_counter_ns())
        self._enabled = True

    def disable(self) -> None:
        """Turn tracing off; collected spans are kept until clear()."""
        self._enabled = False

    def clear(self) -> None:
        """Drop every finished root (the epoch and switch are kept)."""
        with self._lock:
            self.finished.clear()
            self.dropped = 0

    # -- span creation -----------------------------------------------------
    def span(
        self,
        name: str,
        category: str = "repro",
        parent: Span | None | object = _INHERIT,
        **attrs: Any,
    ):
        """A context-manager span, or :data:`NULL_SPAN` when disabled.

        ``parent`` overrides the thread-local stack — pass the spawning
        span when opening spans in worker threads.
        """
        if not self._enabled:
            return NULL_SPAN
        return Span(self, name, category=category, parent=parent, attrs=attrs)

    def wrap(self, name: str | None = None, category: str = "repro") -> Callable:
        """Decorator tracing every call of the wrapped function."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or f"{fn.__module__}.{fn.__qualname__}"

            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any):
                if not self._enabled:
                    return fn(*args, **kwargs)
                with self.span(span_name, category=category):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def current(self) -> Span | None:
        """The innermost open span on this thread (None outside spans)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- results -----------------------------------------------------------
    def roots(self) -> list[Span]:
        """Snapshot of the finished root spans, oldest first."""
        with self._lock:
            return list(self.finished)

    def last_root(self) -> Span | None:
        """The most recently finished root span, if any."""
        with self._lock:
            return self.finished[-1] if self.finished else None

    def wall_time_us(self, perf_ns: int) -> float:
        """Map a perf-counter timestamp to epoch microseconds."""
        wall0, ns0 = self.epoch
        return wall0 * 1e6 + (perf_ns - ns0) / 1e3

    # -- internals ---------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish(self, span: Span) -> None:
        if self.registry is not None:
            self.registry.observe_span(span.name, span.category, span.duration_s)
        parent = span.parent
        if parent is not None:
            # same-thread children append from their own thread; shard
            # children append from pool workers — lock either way.
            with self._lock:
                parent.children.append(span)
            return
        with self._lock:
            if len(self.finished) >= self.max_finished:
                self.finished.pop(0)
                self.dropped += 1
            self.finished.append(span)


#: The process-wide tracer every instrumentation point consults.
TRACER = Tracer()
