"""``python -m repro.telemetry FILE [FILE ...]`` — validate telemetry JSON.

Thin entry point over :func:`repro.telemetry.validate.main` (running the
``validate`` submodule directly via ``-m`` would trigger the runpy
double-import warning, since the package ``__init__`` imports it).
"""

from repro.telemetry.validate import main

if __name__ == "__main__":
    raise SystemExit(main())
