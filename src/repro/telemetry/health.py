"""Live health registry: per-shard heartbeat and progress gauges.

A sharded sweep under the fault supervisor can legitimately take many
backoff rounds; from the outside it is a silent process.  This module
gives every shard a heartbeat the rest of the system can watch:

* the executor registers a :class:`SweepHealth` per sharded call and
  binds one :class:`ShardHealth` to each worker thread
  (:meth:`HealthRegistry.bind`);
* the block-sweep driver beats once per staged block
  (:func:`current_beat` — one thread-local read and one ``is not
  None`` check on the unmonitored path), advancing ``tiles_done`` /
  ``tiles_total`` and the last-beat timestamp;
* the supervisor bumps ``retries`` on every resubmission, and the bind
  context marks the terminal state (``done`` / ``failed``);
* :meth:`HealthRegistry.publish` folds aggregates into the
  :class:`~repro.telemetry.metrics.MetricsRegistry`, and the
  Prometheus exporter renders per-shard labeled gauges
  (``repro_health_shard_*{sweep=...,shard=...}``);
* when ``REPRO_HEALTH_FILE`` is set (or
  :meth:`HealthRegistry.configure_file` is called), every beat
  throttle-publishes a JSON snapshot atomically to that path — the
  file ``repro monitor`` tails to render a live progress table of a
  sweep running in another process.

Everything is bounded: finished sweeps are kept on a short ring so a
long-lived process does not accumulate history without limit.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import threading
import time
from typing import Any, Iterator

__all__ = [
    "ENV_HEALTH_FILE",
    "ShardHealth",
    "SweepHealth",
    "HealthRegistry",
    "HEALTH",
    "current_beat",
    "render_snapshot",
]

#: environment variable naming the live snapshot file to publish
ENV_HEALTH_FILE = "REPRO_HEALTH_FILE"

#: terminal shard states (anything else counts as in-flight)
_TERMINAL = ("done", "failed")

_SWEEP_IDS = itertools.count(1)


class ShardHealth:
    """One shard's progress gauges; mutated by its worker thread."""

    __slots__ = (
        "shard",
        "rows",
        "state",
        "tiles_done",
        "tiles_total",
        "retries",
        "beats",
        "started",
        "last_beat",
        "started_mono",
        "last_beat_mono",
        "_sweep",
    )

    def __init__(self, shard: int, rows: str, sweep: "SweepHealth") -> None:
        self.shard = shard
        self.rows = rows
        self.state = "pending"
        self.tiles_done = 0
        self.tiles_total = 0
        self.retries = 0
        self.beats = 0
        # staleness is judged on the monotonic clock (immune to wall-
        # clock adjustments — no negative or false-stale beat ages);
        # the wall timestamps are kept as display anchors only
        self.started = time.time()
        self.last_beat = self.started
        self.started_mono = time.monotonic()
        self.last_beat_mono = self.started_mono
        self._sweep = sweep

    def _touch(self) -> None:
        self.last_beat = time.time()
        self.last_beat_mono = time.monotonic()

    def beat(self, tiles_done: int = 0, tiles_total: int | None = None) -> None:
        """One heartbeat: advance progress and the last-beat clock.

        ``tiles_done`` is a delta; ``tiles_total`` (when given) sets
        the denominator — the driver knows it, the executor does not.
        """
        self.tiles_done += tiles_done
        if tiles_total is not None:
            self.tiles_total = tiles_total
        self.beats += 1
        self._touch()
        self._sweep.registry._maybe_write()

    def restart(self) -> None:
        """A retry is starting: progress restarts, history is kept."""
        self.state = "running"
        self.tiles_done = 0
        self.beats += 1
        self._touch()

    def bump_retries(self) -> None:
        """Count one supervisor resubmission of this shard."""
        self.retries += 1
        self.state = "retrying"
        self._sweep.registry._maybe_write()

    def age(self) -> float:
        """Monotonic seconds since this shard registered."""
        return time.monotonic() - self.started_mono

    def last_beat_age(self) -> float:
        """Monotonic seconds since the last heartbeat (never negative)."""
        return time.monotonic() - self.last_beat_mono

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready gauges; ages computed at snapshot time."""
        return {
            "shard": self.shard,
            "rows": self.rows,
            "state": self.state,
            "tiles_done": self.tiles_done,
            "tiles_total": self.tiles_total,
            "retries": self.retries,
            "beats": self.beats,
            "age_s": self.age(),
            "last_beat_age_s": self.last_beat_age(),
            "last_beat": self.last_beat,
        }


class SweepHealth:
    """One sharded sweep's shard table, registered until replaced."""

    def __init__(
        self, sweep_id: str, name: str, registry: "HealthRegistry"
    ) -> None:
        self.sweep_id = sweep_id
        self.name = name
        self.registry = registry
        self.started = time.time()
        self.shards: dict[int, ShardHealth] = {}
        self._lock = threading.Lock()

    def shard(self, shard: int, rows: str = "") -> ShardHealth:
        """The shard's health row, created on first use."""
        with self._lock:
            health = self.shards.get(shard)
            if health is None:
                health = ShardHealth(shard, rows, self)
                self.shards[shard] = health
            return health

    @property
    def done(self) -> bool:
        """True when every registered shard reached a terminal state."""
        with self._lock:
            shards = list(self.shards.values())
        return bool(shards) and all(s.state in _TERMINAL for s in shards)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready sweep snapshot with its shards in shard order."""
        with self._lock:
            shards = sorted(self.shards.values(), key=lambda s: s.shard)
        return {
            "sweep_id": self.sweep_id,
            "name": self.name,
            "started": self.started,
            "done": self.done,
            "shards": [s.as_dict() for s in shards],
        }


class HealthRegistry:
    """Process-wide table of live (and recently finished) sweeps."""

    def __init__(self, max_finished: int = 8) -> None:
        self.max_finished = max_finished
        self._sweeps: dict[str, SweepHealth] = {}
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._path: pathlib.Path | None = None
        self._min_interval_s = 0.2
        self._last_write = 0.0
        self._write_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------
    def start_sweep(self, name: str) -> SweepHealth:
        """Register a new sweep; evicts the oldest finished sweeps.

        Also picks up :data:`ENV_HEALTH_FILE` so a sweep launched with
        the variable set publishes snapshots without any code opting in.
        """
        path = os.environ.get(ENV_HEALTH_FILE, "").strip()
        if path and self._path is None:
            self.configure_file(path)
        sweep = SweepHealth(f"sweep-{next(_SWEEP_IDS)}", name, self)
        with self._lock:
            self._sweeps[sweep.sweep_id] = sweep
            finished = [
                sid for sid, s in self._sweeps.items() if s.done
            ]
            while len(self._sweeps) > self.max_finished and finished:
                del self._sweeps[finished.pop(0)]
        return sweep

    def bind(self, shard: ShardHealth) -> "_BoundShard":
        """Context manager binding ``shard`` to the calling thread.

        Inside the block, :func:`current_beat` returns the shard's
        :meth:`~ShardHealth.beat`; on exit the shard is marked ``done``
        (or ``failed`` when the block raised) and a final snapshot is
        flushed.
        """
        return _BoundShard(self, shard)

    # -- reading -----------------------------------------------------------
    def sweeps(self) -> list[SweepHealth]:
        """Registered sweeps, registration order."""
        with self._lock:
            return list(self._sweeps.values())

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of every registered sweep (the file shape)."""
        return {
            "generated": time.time(),
            "sweeps": [s.as_dict() for s in self.sweeps()],
        }

    def shard_rows(self) -> Iterator[tuple[SweepHealth, ShardHealth]]:
        """Every (sweep, shard) pair — the Prometheus label space."""
        for sweep in self.sweeps():
            with sweep._lock:
                shards = sorted(sweep.shards.values(), key=lambda s: s.shard)
            for shard in shards:
                yield sweep, shard

    def render(self) -> str:
        """Human-readable progress table (the ``repro monitor`` view)."""
        return render_snapshot(self.snapshot())

    # -- publishing --------------------------------------------------------
    def publish(self, registry=None) -> None:
        """Fold aggregate health gauges into a metrics registry."""
        if registry is None:
            from repro.telemetry.metrics import REGISTRY as registry  # noqa: N813
        sweeps = self.sweeps()
        rows = [shard for _, shard in self.shard_rows()]
        running = sum(1 for s in rows if s.state not in _TERMINAL)
        for name, help_text, value in (
            (
                "repro_health_sweeps",
                "sweeps registered in the health registry",
                len(sweeps),
            ),
            (
                "repro_health_shards_running",
                "shards not yet in a terminal state",
                running,
            ),
            (
                "repro_health_tiles_done",
                "tiles completed across all registered shards",
                sum(s.tiles_done for s in rows),
            ),
            (
                "repro_health_tiles_total",
                "tile denominator across all registered shards",
                sum(s.tiles_total for s in rows),
            ),
            (
                "repro_health_shard_retries",
                "supervisor resubmissions across all registered shards",
                sum(s.retries for s in rows),
            ),
        ):
            registry.gauge(name, help=help_text).set(value)

    def configure_file(
        self, path: str | pathlib.Path, min_interval_s: float = 0.2
    ) -> None:
        """Publish throttled JSON snapshots to ``path`` on every beat."""
        self._path = pathlib.Path(path)
        self._min_interval_s = min_interval_s
        self.write_file()

    def write_file(self) -> pathlib.Path | None:
        """Write one snapshot now (atomic rename); None when unconfigured."""
        path = self._path
        if path is None:
            return None
        with self._write_lock:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(path.suffix + ".tmp")
            tmp.write_text(json.dumps(self.snapshot(), sort_keys=True))
            tmp.replace(path)
            self._last_write = time.monotonic()
        return path

    def _maybe_write(self) -> None:
        if self._path is None:
            return
        if time.monotonic() - self._last_write >= self._min_interval_s:
            self.write_file()

    def clear(self) -> None:
        """Forget every sweep and the publish target (tests)."""
        with self._lock:
            self._sweeps.clear()
        self._path = None
        self._last_write = 0.0

    # -- thread binding ----------------------------------------------------
    def _current(self) -> ShardHealth | None:
        return getattr(self._tls, "shard", None)


class _BoundShard:
    """The context manager :meth:`HealthRegistry.bind` returns."""

    __slots__ = ("registry", "shard", "_previous")

    def __init__(self, registry: HealthRegistry, shard: ShardHealth) -> None:
        self.registry = registry
        self.shard = shard
        self._previous = None

    def __enter__(self) -> ShardHealth:
        self._previous = self.registry._current()
        self.registry._tls.shard = self.shard
        if self.shard.state in ("retrying", "failed"):
            self.shard.restart()
        else:
            self.shard.state = "running"
            self.shard._touch()
        return self.shard

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.registry._tls.shard = self._previous
        self.shard.state = "failed" if exc_type is not None else "done"
        self.shard._touch()
        self.registry._maybe_write()
        return False


def render_snapshot(snapshot: dict[str, Any]) -> str:
    """Progress table from a snapshot dict (in-process or file-loaded).

    Shared by :meth:`HealthRegistry.render` and ``repro monitor`` —
    the monitor reads the same shape from :data:`ENV_HEALTH_FILE`.
    """
    lines: list[str] = []
    for sweep in snapshot.get("sweeps", []):
        state = "done" if sweep.get("done") else "running"
        lines.append(f"{sweep['sweep_id']}  {sweep['name']}  [{state}]")
        lines.append(
            f"  {'shard':>5} {'rows':>12} {'state':>9} "
            f"{'tiles':>13} {'retries':>7} {'last beat':>10}"
        )
        for shard in sweep.get("shards", []):
            tiles = f"{shard['tiles_done']}/{shard['tiles_total']}"
            lines.append(
                f"  {shard['shard']:>5} {shard['rows']:>12} "
                f"{shard['state']:>9} {tiles:>13} "
                f"{shard['retries']:>7} "
                f"{shard['last_beat_age_s']:>9.1f}s"
            )
    return "\n".join(lines) if lines else "(no sweeps registered)"


#: The process-wide registry sharded sweeps report into.
HEALTH = HealthRegistry()


def current_beat():
    """The bound shard's ``beat`` callable, or None off the hot path.

    The block-sweep driver calls this once per sweep and then beats per
    block; an unmonitored thread pays one thread-local read.
    """
    shard = HEALTH._current()
    return shard.beat if shard is not None else None
