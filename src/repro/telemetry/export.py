"""Exporters: Chrome trace-event JSON, run-records, Prometheus text.

Three consumers, three formats, one span/metric source:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format (``{"traceEvents": [{"ph": "X", ...}]}``) that
  ``chrome://tracing`` and Perfetto load directly.  Every span becomes a
  complete ("X") event carrying its attributes and event-counter delta
  in ``args``; :func:`load_chrome_trace` reconstructs the span forest
  from the embedded ``span_id``/``parent_id`` pairs, so traces
  round-trip losslessly (timing is preserved to the microsecond the
  format stores).
* :func:`run_record` / :func:`write_run_record` — the structured JSON
  record (schema :data:`RUN_RECORD_SCHEMA`) that ``benchmarks/conftest``
  stamps next to every reproduced artifact and ``repro run --json``
  prints; validated by :func:`repro.telemetry.validate.validate_run_record`.
* :func:`to_prometheus` — the text exposition format (``# HELP`` /
  ``# TYPE`` / samples) for scraping a long-lived serving process.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Iterable

from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.spans import Span, Tracer, TRACER

__all__ = [
    "CHROME_TRACE_SCHEMA",
    "RUN_RECORD_SCHEMA",
    "RUN_RECORD_SCHEMAS",
    "FIDELITY_REPORT_SCHEMA",
    "span_to_dict",
    "to_chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "run_record",
    "write_run_record",
    "to_prometheus",
    "escape_label_value",
    "format_labels",
]

#: schema identifiers embedded in (and required of) emitted documents
CHROME_TRACE_SCHEMA = "repro.telemetry.chrome-trace/v1"
RUN_RECORD_SCHEMA = "repro.telemetry.run-record/v5"
FIDELITY_REPORT_SCHEMA = "repro.telemetry.fidelity-report/v1"

#: run-record schema versions the validator accepts: v2 added the
#: optional ``faults`` section (injection/detection/recovery ledger),
#: v3 the optional ``log`` (structured event stream) and ``health``
#: (shard heartbeat snapshot) sections, v4 the optional ``cluster``
#: section (the cluster observatory report), v5 the optional
#: ``resilience`` section (checkpoint/restart, halo retransmissions,
#: elastic re-plans); v1–v4 records (committed baselines, old
#: histories) remain valid.
RUN_RECORD_SCHEMAS = (
    "repro.telemetry.run-record/v1",
    "repro.telemetry.run-record/v2",
    "repro.telemetry.run-record/v3",
    "repro.telemetry.run-record/v4",
    RUN_RECORD_SCHEMA,
)


# ---------------------------------------------------------------------------
# span serialization
# ---------------------------------------------------------------------------
def span_to_dict(span: Span) -> dict[str, Any]:
    """Nested JSON-ready view of one span (children inline)."""
    return {
        "name": span.name,
        "category": span.category,
        "span_id": span.span_id,
        "trace_id": span.trace_id,
        "thread": span.thread_name,
        "start_ns": span.start_ns,
        "duration_ns": span.duration_ns,
        "attrs": dict(span.attrs),
        "events": span.events.as_dict() if span.events is not None else None,
        "children": [span_to_dict(c) for c in span.children],
    }


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------
def to_chrome_trace(
    roots: Iterable[Span] | None = None,
    tracer: Tracer | None = None,
    process_name: str = "repro",
) -> dict[str, Any]:
    """Trace Event Format document for ``chrome://tracing``/Perfetto.

    ``roots`` defaults to the tracer's finished root spans.  Timestamps
    are microseconds since the tracer's enable() epoch mapped onto the
    wall clock, which is what the viewers expect.
    """
    tracer = tracer or TRACER
    if roots is None:
        roots = tracer.roots()
    tids: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    for root in roots:
        for span in root.walk():
            tid = tids.setdefault(span.thread_name, len(tids) + 1)
            args: dict[str, Any] = {
                "span_id": span.span_id,
                "parent_id": span.parent.span_id if span.parent else None,
                "trace_id": span.trace_id,
            }
            if span.attrs:
                args["attrs"] = {k: _jsonable(v) for k, v in span.attrs.items()}
            if span.events is not None:
                args["events"] = span.events.as_dict()
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": span.category,
                    "ts": tracer.wall_time_us(span.start_ns),
                    "dur": span.duration_ns / 1e3,
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                }
            )
    meta = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "args": {"name": process_name},
        }
    ] + [
        {
            "ph": "M",
            "name": "thread_name",
            "pid": 1,
            "tid": tid,
            "args": {"name": thread},
        }
        for thread, tid in tids.items()
    ]
    return {
        "schema": CHROME_TRACE_SCHEMA,
        "displayTimeUnit": "ms",
        "traceEvents": meta + events,
    }


def write_chrome_trace(
    path: str | pathlib.Path,
    roots: Iterable[Span] | None = None,
    tracer: Tracer | None = None,
) -> pathlib.Path:
    """Serialize :func:`to_chrome_trace` to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(to_chrome_trace(roots, tracer), indent=1))
    return path


class LoadedSpan:
    """A span reconstructed from a Chrome trace (see
    :func:`load_chrome_trace`): timing in microseconds, attributes and
    event counts as plain dicts, children nested."""

    def __init__(self, event: dict[str, Any]) -> None:
        args = event.get("args", {})
        self.name: str = event["name"]
        self.category: str = event.get("cat", "repro")
        self.ts_us: float = float(event["ts"])
        self.dur_us: float = float(event["dur"])
        self.span_id = args.get("span_id")
        self.parent_id = args.get("parent_id")
        self.trace_id = args.get("trace_id")
        self.attrs: dict[str, Any] = args.get("attrs", {})
        self.events: dict[str, int] | None = args.get("events")
        self.children: list[LoadedSpan] = []

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LoadedSpan({self.name!r}, dur={self.dur_us:.1f}us)"


def load_chrome_trace(
    source: str | pathlib.Path | dict[str, Any],
) -> list[LoadedSpan]:
    """Rebuild the span forest from a Chrome-trace document or file.

    Only the complete ("X") events this module emits are considered;
    nesting is restored from the ``span_id``/``parent_id`` pairs in
    ``args`` (an event whose parent is absent becomes a root).
    """
    if not isinstance(source, dict):
        source = json.loads(pathlib.Path(source).read_text())
    spans = [
        LoadedSpan(e)
        for e in source.get("traceEvents", [])
        if e.get("ph") == "X"
    ]
    by_id = {s.span_id: s for s in spans if s.span_id is not None}
    roots: list[LoadedSpan] = []
    for span in spans:
        parent = by_id.get(span.parent_id)
        if parent is not None and parent is not span:
            parent.children.append(span)
        else:
            roots.append(span)
    return roots


# ---------------------------------------------------------------------------
# run-records
# ---------------------------------------------------------------------------
def run_record(
    name: str,
    *,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    cache_stats=None,
    counters=None,
    faults=None,
    log=None,
    health=None,
    cluster: dict[str, Any] | None = None,
    resilience: dict[str, Any] | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """One structured, schema-tagged record of a run.

    The record is self-describing (``schema`` key) and deliberately
    flat: ``spans`` is the serialized span forest (empty when tracing
    was off), ``metrics`` the registry snapshot, ``cache`` the plan-
    cache stats, ``events`` a raw counter dict, ``faults`` the
    injection/detection/recovery ledger (a
    :class:`repro.faults.FaultReport` or its ``as_dict()``), ``log``
    the structured event stream (defaults to the process-wide
    :data:`~repro.telemetry.log.EVENT_LOG` when it holds events; pass
    ``log=False`` to omit), ``health`` the shard heartbeat snapshot
    (same convention against
    :data:`~repro.telemetry.health.HEALTH`), ``cluster`` a cluster
    observatory report (see
    :func:`repro.telemetry.cluster.build_cluster_report`; run-record
    v4), ``resilience`` the checkpoint/halo/re-plan ledger of a
    resilient cluster run (run-record v5), and ``extra`` whatever the
    producer wants stamped (artifact paths, CLI args, figures).
    """
    from repro.tcu.trace import recorder_stats
    from repro.telemetry.health import HEALTH
    from repro.telemetry.log import EVENT_LOG, EventLog

    tracer = tracer or TRACER
    record: dict[str, Any] = {
        "schema": RUN_RECORD_SCHEMA,
        "name": name,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "spans": [span_to_dict(r) for r in tracer.roots()],
        "metrics": registry.snapshot() if registry is not None else {},
        "tracer": {
            "finished_spans": len(tracer.roots()),
            "dropped_spans": tracer.dropped,
            "max_finished": tracer.max_finished,
            "warp_trace": recorder_stats(),
        },
    }
    if cache_stats is not None:
        record["cache"] = {
            field: getattr(cache_stats, field)
            for field in ("hits", "misses", "evictions", "size", "maxsize")
        }
        record["cache"]["hit_rate"] = cache_stats.hit_rate
    if counters is not None:
        record["events"] = (
            counters if isinstance(counters, dict) else counters.as_dict()
        )
    if faults is not None:
        record["faults"] = (
            faults if isinstance(faults, dict) else faults.as_dict()
        )
    if log is None:
        log = EVENT_LOG if len(EVENT_LOG) else False
    if log is not False:
        record["log"] = log.snapshot() if isinstance(log, EventLog) else log
    if health is None:
        health = HEALTH if HEALTH.sweeps() else False
    if health is not False:
        record["health"] = (
            health if isinstance(health, dict) else health.snapshot()
        )
    if cluster is not None:
        record["cluster"] = cluster
    if resilience is not None:
        record["resilience"] = resilience
    record["extra"] = {k: _jsonable(v) for k, v in (extra or {}).items()}
    return record


def write_run_record(
    path: str | pathlib.Path, record: dict[str, Any]
) -> pathlib.Path:
    """Validate ``record`` and write it as JSON; returns the path."""
    from repro.telemetry.validate import validate_run_record

    validate_run_record(record)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=1, sort_keys=True))
    return path


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
def to_prometheus(
    registry: MetricsRegistry, tracer: Tracer | None = None
) -> str:
    """Prometheus text exposition (version 0.0.4) of the registry.

    Also exposes the span-buffer and warp-trace health gauges (finished/
    dropped spans against the ring capacity, and the recorder aggregate
    from :func:`repro.tcu.trace.recorder_stats`) so a scraper can alarm
    on trace loss — a saturated ring silently truncates the very data a
    post-mortem needs.  Pass ``tracer=None`` (the default) for the
    process-global tracer.
    """
    from repro.tcu.trace import recorder_stats

    lines: list[str] = []
    with registry._lock:
        metrics = sorted(registry._metrics.items())
    for name, metric in metrics:
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            for bound, count in zip(metric.buckets, cumulative):
                lines.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {count}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative[-1]}')
            lines.append(f"{name}_sum {_fmt(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
        else:
            lines.append(f"{name} {_fmt(metric.value)}")
    tracer = tracer or TRACER
    for gauge, help_text, value in [
        (
            "repro_tracer_finished_spans",
            "Finished root spans retained in the tracer buffer",
            len(tracer.roots()),
        ),
        (
            "repro_tracer_dropped_spans",
            "Root spans dropped by the bounded tracer buffer",
            tracer.dropped,
        ),
        (
            "repro_tracer_max_finished",
            "Capacity of the tracer's finished-span ring buffer",
            tracer.max_finished,
        ),
    ]:
        lines.append(f"# HELP {gauge} {help_text}")
        lines.append(f"# TYPE {gauge} gauge")
        lines.append(f"{gauge} {_fmt(value)}")
    for key, value in recorder_stats().items():
        gauge = f"repro_warp_trace_{key}"
        lines.append(f"# TYPE {gauge} gauge")
        lines.append(f"{gauge} {_fmt(value)}")
    lines.extend(_event_log_lines())
    lines.extend(_health_lines())
    lines.extend(_cluster_lines())
    return "\n".join(lines) + "\n"


def escape_label_value(value: str) -> str:
    """Escape a Prometheus label value per the text-format spec.

    Backslash, double-quote and newline are the three characters the
    exposition format requires escaping inside ``label="value"``.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_labels(labels: dict[str, Any]) -> str:
    """Render a ``{name="value",...}`` label set, sorted and escaped.

    Returns an empty string for an empty label set, so
    ``f"{name}{format_labels(labels)} {value}"`` is always a legal
    sample line.
    """
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _event_log_lines() -> list[str]:
    """Ring-health gauges of the process-wide structured event log."""
    from repro.telemetry.log import EVENT_LOG

    lines = []
    for key, help_text, value in (
        (
            "repro_event_log_events",
            "structured events retained in the ring buffer",
            len(EVENT_LOG),
        ),
        (
            "repro_event_log_dropped",
            "structured events dropped by the bounded ring",
            EVENT_LOG.dropped,
        ),
        (
            "repro_event_log_max_events",
            "capacity of the structured event ring buffer",
            EVENT_LOG.max_events,
        ),
    ):
        lines.append(f"# HELP {key} {help_text}")
        lines.append(f"# TYPE {key} gauge")
        lines.append(f"{key} {_fmt(value)}")
    # the dropped count again, as a *counter*: the gauge above reports
    # ring health, this is the monotone series alerting rules rate()
    lines.append(
        "# HELP repro_events_dropped_total structured events lost to "
        "ring buffer overflow since process start"
    )
    lines.append("# TYPE repro_events_dropped_total counter")
    lines.append(f"repro_events_dropped_total {_fmt(EVENT_LOG.dropped)}")
    return lines


def _health_lines() -> list[str]:
    """Per-shard labeled gauges from the live health registry.

    Output ordering is deterministic: gauge name, then sweep
    registration order, then shard index; label keys sort inside each
    sample.
    """
    from repro.telemetry.health import HEALTH

    rows = list(HEALTH.shard_rows())
    if not rows:
        return []
    gauges = (
        ("repro_health_shard_tiles_done", "tiles completed by the shard",
         lambda s: s.tiles_done),
        ("repro_health_shard_tiles_total", "shard tile denominator",
         lambda s: s.tiles_total),
        ("repro_health_shard_retries", "supervisor resubmissions of the shard",
         lambda s: s.retries),
        ("repro_health_shard_last_beat_age_seconds",
         "seconds since the shard's last heartbeat (monotonic)",
         lambda s: s.last_beat_age()),
        ("repro_health_shard_running",
         "1 while the shard is in a non-terminal state",
         lambda s: int(s.state not in ("done", "failed"))),
    )
    lines = []
    for name, help_text, value_of in gauges:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        for sweep, shard in rows:
            labels = format_labels(
                {
                    "sweep": sweep.sweep_id,
                    "name": sweep.name,
                    "shard": shard.shard,
                    "state": shard.state,
                }
            )
            lines.append(f"{name}{labels} {_fmt(value_of(shard))}")
    return lines


def _cluster_lines() -> list[str]:
    """Per-rank labeled gauges from the last cluster observatory report.

    Empty until :func:`repro.telemetry.cluster.build_cluster_report`
    has run in this process; afterwards a scraper sees the cluster-level
    headline numbers (overlap efficiency, imbalance) plus per-rank
    busy/wait/retry seconds and per-round halo volumes — the series the
    trend gates and straggler alerts watch.
    """
    from repro.telemetry.cluster import last_report

    report = last_report()
    if report is None:
        return []
    lines = []
    for name, help_text, value in (
        (
            "repro_cluster_overlap_efficiency",
            "hidden transfer time over total modeled transfer time",
            report["overlap"]["efficiency"],
        ),
        (
            "repro_cluster_imbalance_max_over_mean",
            "slowest-rank over mean-rank round time",
            report["imbalance"]["max_over_mean"],
        ),
        (
            "repro_cluster_critical_path_seconds",
            "critical path through the rank-by-round dependency DAG",
            report["critical_path"]["s"],
        ),
    ):
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(value)}")
    rank_gauges = (
        ("repro_cluster_rank_busy_seconds",
         "compute+interior+stitch time of the rank",
         lambda row: row["busy_s"]),
        ("repro_cluster_rank_wait_seconds",
         "exchange-wait time of the rank",
         lambda row: row["lanes"]["wait_s"]),
        ("repro_cluster_rank_retry_seconds",
         "time the rank spent in retried attempts",
         lambda row: row["lanes"]["retry_s"]),
    )
    for name, help_text, value_of in rank_gauges:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        for row in report["ranks"]:
            labels = format_labels({"rank": row["rank"]})
            lines.append(f"{name}{labels} {_fmt(value_of(row))}")
    name = "repro_cluster_round_halo_bytes"
    lines.append(f"# HELP {name} halo bytes moved in the exchange round")
    lines.append(f"# TYPE {name} gauge")
    for entry in report["halo"]["per_round"]:
        labels = format_labels({"round": entry["round"]})
        lines.append(f"{name}{labels} {_fmt(entry['halo_bytes'])}")
    return lines


def _fmt(value: float) -> str:
    return f"{int(value)}" if float(value).is_integer() else repr(float(value))


def _jsonable(value: Any) -> Any:
    """Best-effort coercion of attribute values to JSON-safe types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)
