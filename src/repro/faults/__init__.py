"""``repro.faults`` — fault injection, ABFT verification, recovery.

The robustness layer the paper's matrix-chain formulation earns for
free: because a stencil tile *is* ``Σ_k U_k X V_k`` on tensor-core
fragments, the Huang–Abraham checksum trick for fault-tolerant matrix
multiply detects corrupted tiles at sweep time, and the simulator can
prove detection and bit-exact recovery end-to-end.  Three pieces:

* **spec/injector** (:mod:`repro.faults.spec`,
  :mod:`repro.faults.injector`): a deterministic, seed-driven
  :class:`FaultPlan` of :class:`FaultSpec` entries armed by a
  :class:`FaultInjector` hooked into :class:`~repro.tcu.device.Device`
  warps (A/B/C fragment bit flips, NaN poison), block staging
  (corrupted shared-memory loads, dropped ``cp.async`` commit groups),
  and shard workers (crashes, hangs);
* **abft** (:mod:`repro.faults.abft`): the opt-in ``verify="abft"``
  execution mode — tolerance-0 checksum verification of every tile
  against an oracle replay, with a bounded recompute → oracle-fallback
  → :class:`~repro.errors.FaultError` recovery ladder under a
  :class:`RecoveryPolicy`;
* **report** (:mod:`repro.faults.report`): the :class:`FaultReport`
  ledger every injection/detection/recovery lands in, absorbed into
  the metrics registry and the run-record ``faults`` section.

Typical use — the ``repro chaos run`` subcommand in one paragraph::

    import repro
    from repro.faults import FaultInjector, FaultPlan, RecoveryPolicy

    stencil = repro.compile(weights)
    injector = FaultInjector(FaultPlan.random(seed=7, count=4))
    out, events = stencil.apply_simulated(
        padded, faults=injector, verify="abft",
        policy=RecoveryPolicy(max_tile_retries=2),
    )
    print(stencil.last_fault_report.describe())

See ``docs/robustness.md`` for the fault model and the ABFT math.
"""

from __future__ import annotations

from repro.errors import ExecutionError, FaultError, InputValidationError
from repro.faults.abft import (
    VERIFY_MODES,
    RecoveryPolicy,
    SweepGuard,
    halo_frame_checksums,
    make_guard,
    term_checksum_vectors,
    tile_checksums,
    validate_verify_mode,
)
from repro.faults.injector import (
    FaultInjector,
    InjectedFaultError,
    flip_float64_bit,
)
from repro.faults.report import FaultReport
from repro.faults.spec import (
    DEFAULT_FLIP_BIT,
    FAULT_KINDS,
    HALO_KINDS,
    MMA_KINDS,
    RANK_KINDS,
    SHARD_KINDS,
    STAGE_KINDS,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "FAULT_KINDS",
    "MMA_KINDS",
    "STAGE_KINDS",
    "SHARD_KINDS",
    "HALO_KINDS",
    "RANK_KINDS",
    "halo_frame_checksums",
    "DEFAULT_FLIP_BIT",
    "VERIFY_MODES",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFaultError",
    "FaultReport",
    "RecoveryPolicy",
    "SweepGuard",
    "make_guard",
    "tile_checksums",
    "term_checksum_vectors",
    "validate_verify_mode",
    "flip_float64_bit",
    "FaultError",
    "ExecutionError",
    "InputValidationError",
]


def as_injector(faults) -> FaultInjector | None:
    """Normalize a ``faults=`` argument: plan, injector, or ``None``."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultPlan):
        return FaultInjector(faults)
    raise InputValidationError(
        f"faults must be a FaultPlan or FaultInjector, got {type(faults).__name__}"
    )
