"""The fault ledger: every injection, detection, and recovery counted.

One :class:`FaultReport` accompanies a guarded run.  The injector
records what it broke, the sweep guard and the sharded executor record
what they caught and how it was repaired, and the facade folds the
result into the process :class:`~repro.telemetry.metrics.MetricsRegistry`
and the run-record ``faults`` section.  All mutation is lock-protected
— shard workers on a thread pool share one report.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["FaultReport", "RECOVERY_KEYS"]

#: Counter keys a report tracks besides the per-kind injection tallies.
RECOVERY_KEYS = (
    "tile_detections",
    "tile_retries",
    "tile_recoveries",
    "oracle_fallbacks",
    "stage_detections",
    "restages",
    "stage_recoveries",
    "shard_crashes",
    "shard_timeouts",
    "shard_retries",
    "shard_recoveries",
    "shard_inline_recoveries",
    "halo_detections",
    "halo_retransmits",
    "halo_recoveries",
    "rank_reassignments",
    "unrecovered",
)


class FaultReport:
    """Thread-safe counters for one fault-injection/verification run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.injected: dict[str, int] = {}
        self.counts: dict[str, int] = {key: 0 for key in RECOVERY_KEYS}

    # -- recording ---------------------------------------------------------
    def record_injection(self, kind: str) -> None:
        """Count one fired fault of ``kind`` (called by the injector)."""
        with self._lock:
            self.injected[kind] = self.injected.get(kind, 0) + 1

    def bump(self, key: str, n: int = 1) -> None:
        """Increment one recovery counter (a key of ``RECOVERY_KEYS``)."""
        if key not in self.counts:
            raise KeyError(f"unknown fault counter {key!r}")
        with self._lock:
            self.counts[key] += n

    # -- reading -----------------------------------------------------------
    @property
    def total_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    @property
    def total_detected(self) -> int:
        with self._lock:
            return (
                self.counts["tile_detections"]
                + self.counts["stage_detections"]
                + self.counts["halo_detections"]
            )

    @property
    def total_recovered(self) -> int:
        with self._lock:
            return (
                self.counts["tile_recoveries"]
                + self.counts["oracle_fallbacks"]
                + self.counts["stage_recoveries"]
                + self.counts["shard_recoveries"]
                + self.counts["shard_inline_recoveries"]
                + self.counts["halo_recoveries"]
            )

    def as_dict(self) -> dict[str, Any]:
        """The run-record ``faults`` section (JSON-ready, all ints)."""
        with self._lock:
            injected = dict(sorted(self.injected.items()))
            counts = dict(self.counts)
        return {
            "injected": injected,
            "injected_total": sum(injected.values()),
            "detected": {
                "tile": counts["tile_detections"],
                "stage": counts["stage_detections"],
                "halo": counts["halo_detections"],
            },
            "recovered": {
                "tile_retry": counts["tile_recoveries"],
                "oracle_fallback": counts["oracle_fallbacks"],
                "restage": counts["stage_recoveries"],
                "shard_retry": counts["shard_recoveries"],
                "shard_inline": counts["shard_inline_recoveries"],
                "halo_retransmit": counts["halo_recoveries"],
            },
            "retries": {
                "tile": counts["tile_retries"],
                "stage": counts["restages"],
                "shard": counts["shard_retries"],
                "halo": counts["halo_retransmits"],
            },
            "shard": {
                "crashes": counts["shard_crashes"],
                "timeouts": counts["shard_timeouts"],
            },
            "rank": {
                "reassignments": counts["rank_reassignments"],
            },
            "unrecovered": counts["unrecovered"],
        }

    def flatten(self, prefix: str = "repro_faults_") -> dict[str, int]:
        """Metric-style flat view (``{counter_name: value}``)."""
        with self._lock:
            flat = {
                f"{prefix}injected_total": sum(self.injected.values()),
                **{
                    f"{prefix}injected_{kind}_total": n
                    for kind, n in sorted(self.injected.items())
                },
                **{f"{prefix}{key}_total": n for key, n in self.counts.items()},
            }
        flat[f"{prefix}detected_total"] = (
            self.counts["tile_detections"]
            + self.counts["stage_detections"]
            + self.counts["halo_detections"]
        )
        flat[f"{prefix}recovered_total"] = self.total_recovered
        return flat

    def snapshot(self) -> dict[str, int]:
        """Freeze the flat view for later :meth:`delta` differencing."""
        return self.flatten()

    def delta(self, snapshot: dict[str, int]) -> dict[str, int]:
        """Flat counters accumulated since ``snapshot`` was taken."""
        now = self.flatten()
        return {
            key: value - snapshot.get(key, 0)
            for key, value in now.items()
            if value - snapshot.get(key, 0)
        }

    def merge(self, other: "FaultReport") -> None:
        """Fold another report's tallies into this one."""
        with other._lock:
            injected = dict(other.injected)
            counts = dict(other.counts)
        with self._lock:
            for kind, n in injected.items():
                self.injected[kind] = self.injected.get(kind, 0) + n
            for key, n in counts.items():
                self.counts[key] += n

    def describe(self) -> str:
        """Human-readable multi-line ledger (what ``chaos run`` prints)."""
        d = self.as_dict()
        lines = [
            f"injected   : {d['injected_total']} "
            + " ".join(f"{k}={v}" for k, v in d["injected"].items()),
            f"detected   : tile={d['detected']['tile']} "
            f"stage={d['detected']['stage']} halo={d['detected']['halo']}",
            "recovered  : "
            + " ".join(f"{k}={v}" for k, v in d["recovered"].items()),
            f"retries    : tile={d['retries']['tile']} "
            f"stage={d['retries']['stage']} shard={d['retries']['shard']} "
            f"halo={d['retries']['halo']}",
            f"shard      : crashes={d['shard']['crashes']} "
            f"timeouts={d['shard']['timeouts']}",
            f"rank       : reassignments={d['rank']['reassignments']}",
            f"unrecovered: {d['unrecovered']}",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultReport(injected={self.total_injected}, "
            f"detected={self.total_detected}, recovered={self.total_recovered})"
        )
