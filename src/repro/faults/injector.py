"""Deterministic fault injection into the TCU simulator.

A :class:`FaultInjector` arms a :class:`~repro.faults.spec.FaultPlan`
against a run.  It hooks three choke points:

* :meth:`on_mma` — called by :meth:`repro.tcu.warp.Warp.mma_sync` (and
  therefore by every ``mma`` the lowered-program interpreter executes)
  just before the tensor core fires; corrupts a *copy* of the A/B/C
  fragment's register file, so shared weight fragments are never
  permanently damaged — exactly the transient single-event-upset model;
* :meth:`on_stage` — called by
  :func:`repro.core.sweep.run_block_sweep` right after a block's
  global→shared staging copy; flips a staged element, drops the last
  ``cp.async`` commit group (zeroing its rows), or writes NaN poison;
* :meth:`on_shard` — called at the top of each sharded worker; raises
  an :class:`InjectedFaultError` (crash) or sleeps (hang) so the
  executor's timeout/retry machinery has something real to survive.

Sites are *per-thread* ordinals (see :mod:`repro.faults.spec`):
:meth:`on_shard` resets the calling thread's instruction/staging clocks
so shard N's "5th MMA" means the same instruction regardless of pool
interleaving.  Every firing is appended to :attr:`events`, tallied in
the shared :class:`~repro.faults.report.FaultReport`, and recorded as a
``fault.inject`` telemetry span when tracing is on.
"""

from __future__ import annotations

import threading
import time
from typing import Any

import numpy as np

from repro.errors import FaultError
from repro.faults.report import FaultReport
from repro.faults.spec import (
    HALO_KINDS,
    MMA_KINDS,
    STAGE_KINDS,
    FaultPlan,
    FaultSpec,
)
from repro.telemetry.spans import TRACER

__all__ = ["FaultInjector", "InjectedFaultError", "flip_float64_bit"]


class InjectedFaultError(FaultError):
    """The injector deliberately crashed a worker (``shard_crash``)."""


def flip_float64_bit(value: float, bit: int) -> float:
    """Flip one bit of a float64's IEEE-754 representation."""
    raw = np.array([value], dtype=np.float64)
    raw.view(np.uint64)[0] ^= np.uint64(1) << np.uint64(bit)
    return float(raw[0])


class _Armed:
    """One spec's firing state (lock-protected, at-most-once unless sticky)."""

    __slots__ = ("spec", "fired", "disabled")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.fired = 0
        self.disabled = False


class FaultInjector:
    """Arms a :class:`FaultPlan`; attach via ``Device(injector=...)``."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.report = FaultReport()
        self.events: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._armed = [_Armed(spec) for spec in plan.specs]
        self._tls = threading.local()

    # ------------------------------------------------------------------
    # per-thread clocks
    # ------------------------------------------------------------------
    def _state(self):
        tls = self._tls
        if not hasattr(tls, "mma_ord"):
            tls.mma_ord = 0
            tls.stage_ord = 0
            tls.shard = None
        return tls

    def reset_thread(self, shard: int | None = None) -> None:
        """Reset the calling thread's site clocks (worker start)."""
        tls = self._state()
        tls.mma_ord = 0
        tls.stage_ord = 0
        tls.shard = shard

    def mma_mark(self) -> int:
        """The calling thread's current MMA ordinal (next site)."""
        return self._state().mma_ord

    def mma_seek(self, ordinal: int) -> None:
        """Rewind the MMA clock — a recovery replay re-executes the same
        instruction span, so its MMAs must see the *same* sites (sticky
        faults re-fire there; one-shot faults stay spent; faults beyond
        the span are not consumed by the replay)."""
        self._state().mma_ord = ordinal

    def stage_site(self) -> int:
        """Allocate the calling thread's next staging-site ordinal.

        The sweep driver takes one site per block staging and re-offers
        it (``on_stage(..., site=...)``) on every re-stage of that
        block, so a sticky staging fault re-fires on the retry instead
        of silently shifting to a later site.
        """
        tls = self._state()
        site = tls.stage_ord
        tls.stage_ord += 1
        return site

    # ------------------------------------------------------------------
    # matching / firing
    # ------------------------------------------------------------------
    def _take(self, kinds, site: int, shard: int | None) -> FaultSpec | None:
        """Claim the first matching un-fired (or sticky) spec."""
        with self._lock:
            for armed in self._armed:
                spec = armed.spec
                if armed.disabled:
                    continue
                if spec.kind not in kinds or spec.site != site:
                    continue
                if spec.shard is not None and spec.shard != shard:
                    continue
                if armed.fired and not spec.sticky:
                    continue
                armed.fired += 1
                return spec
        return None

    def _fire(self, spec: FaultSpec, **detail: Any) -> None:
        tls = self._state()
        event = {
            "kind": spec.kind,
            "site": spec.site,
            "shard": tls.shard,
            "sticky": spec.sticky,
            **detail,
        }
        with self._lock:
            self.events.append(event)
        self.report.record_injection(spec.kind)
        from repro.telemetry.log import emit

        fields = {
            "fault_kind" if k == "kind" else k: v
            for k, v in event.items()
            if v is not None
        }
        emit(
            "fault.injected",
            level="warning",
            message=f"injected {spec.kind} fault at site {spec.site}",
            **fields,
        )
        if TRACER.enabled:
            with TRACER.span(
                "fault.inject",
                category="faults",
                kind=spec.kind,
                site=spec.site,
                shard=-1 if tls.shard is None else tls.shard,
            ):
                pass

    # ------------------------------------------------------------------
    # hook: mma operands (A/B/C fragment registers)
    # ------------------------------------------------------------------
    def on_mma(self, a, b, acc):
        """Possibly corrupt the operands of the next ``mma.sync``.

        Returns ``(a, b, acc)`` — corrupted operands are *copies*; the
        caller's fragments (often shared weight fragments) are intact.
        """
        tls = self._state()
        site = tls.mma_ord
        tls.mma_ord += 1
        spec = self._take(MMA_KINDS, site, tls.shard)
        if spec is None:
            return a, b, acc
        if spec.kind == "flip_a":
            a = self._flip_fragment(a, spec)
        elif spec.kind == "flip_b":
            b = self._flip_fragment(b, spec)
        elif spec.kind == "flip_acc":
            if acc is not None:
                acc = self._flip_fragment(acc, spec)
            else:  # first link of the chain has no C yet; hit A instead
                a = self._flip_fragment(a, spec)
        elif spec.kind == "nan_acc":
            target = acc if acc is not None else a
            poisoned = self._poison_fragment(target, spec)
            if acc is not None:
                acc = poisoned
            else:
                a = poisoned
        self._fire(spec, mma=site)
        return a, b, acc

    def _flip_fragment(self, frag, spec: FaultSpec):
        regs = frag.registers.copy()
        lane = spec.lane % regs.shape[0]
        reg = spec.reg % regs.shape[1]
        regs[lane, reg] = flip_float64_bit(regs[lane, reg], spec.bit)
        return type(frag)(frag.kind, regs)

    def _poison_fragment(self, frag, spec: FaultSpec):
        regs = frag.registers.copy()
        lane = spec.lane % regs.shape[0]
        reg = spec.reg % regs.shape[1]
        regs[lane, reg] = np.nan
        return type(frag)(frag.kind, regs)

    # ------------------------------------------------------------------
    # hook: shared-memory staging
    # ------------------------------------------------------------------
    def on_stage(
        self, smem, rows: int, cols: int, site: int | None = None
    ) -> None:
        """Possibly corrupt the freshly staged shared-memory region.

        ``site`` pins the staging ordinal (the sweep driver allocates
        one per block via :meth:`stage_site` and reuses it across
        re-stages); ``None`` draws from the thread clock directly.
        """
        tls = self._state()
        if site is None:
            site = tls.stage_ord
            tls.stage_ord += 1
        spec = self._take(STAGE_KINDS, site, tls.shard)
        if spec is None:
            return
        data = smem.data
        if spec.kind == "flip_smem":
            flat = spec.lane % (rows * cols)
            r, c = divmod(flat, cols)
            data[r, c] = flip_float64_bit(data[r, c], spec.bit)
            self._fire(spec, stage=site, element=[int(r), int(c)])
        elif spec.kind == "drop_commit":
            # a dropped cp.async commit group: its rows never arrive,
            # leaving the zero-initialized staging tile behind
            group = max(1, rows // 4)
            r0 = max(0, rows - group)
            data[r0:rows, :cols] = 0.0
            self._fire(spec, stage=site, rows=[int(r0), int(rows)])
        elif spec.kind == "nan_smem":
            flat = spec.lane % (rows * cols)
            r, c = divmod(flat, cols)
            data[r, c] = np.nan
            self._fire(spec, stage=site, element=[int(r), int(c)])

    # ------------------------------------------------------------------
    # hook: shard workers
    # ------------------------------------------------------------------
    def on_shard(self, shard: int) -> None:
        """Worker start: reset this thread's clocks, maybe crash/hang."""
        self.reset_thread(shard)
        spec = self._take(("shard_crash",), shard, shard)
        if spec is not None:
            self._fire(spec)
            raise InjectedFaultError(
                f"injected crash in shard {shard} ({spec.describe()})"
            )
        spec = self._take(("shard_hang",), shard, shard)
        if spec is not None:
            self._fire(spec, hang_s=spec.hang_s)
            time.sleep(spec.hang_s)

    # ------------------------------------------------------------------
    # hook: cluster ranks (round start) and exchanged halos
    # ------------------------------------------------------------------
    def on_rank(self, rank: int) -> None:
        """Rank dispatch: maybe crash or stall the whole rank's round."""
        spec = self._take(("rank_crash",), rank, rank)
        if spec is not None:
            self._fire(spec, rank=rank)
            raise InjectedFaultError(
                f"injected crash in rank {rank} ({spec.describe()})"
            )
        spec = self._take(("rank_hang",), rank, rank)
        if spec is not None:
            self._fire(spec, rank=rank, hang_s=spec.hang_s)
            time.sleep(spec.hang_s)

    def on_halo(
        self, windows: dict[int, np.ndarray], round_i: int, depth: int
    ) -> None:
        """Possibly corrupt freshly exchanged halo windows in place.

        ``round_i`` is the exchange-round ordinal a halo spec's ``site``
        addresses; ``spec.shard`` names the receiving rank (``None``
        hits the lowest-numbered rank).  Corruption happens *after* the
        sender computed its strip checksums, modelling a wire/buffer
        fault that only the receiver-side verification can catch.
        """
        if depth <= 0:
            return
        for rank in sorted(windows):
            self.on_halo_window(windows[rank], round_i, rank, depth)

    def on_halo_window(
        self, window: np.ndarray, round_i: int, rank: int, depth: int
    ) -> None:
        """Offer one rank's exchanged window at ``round_i`` (re-offered
        on every retransmit, so sticky halo faults re-corrupt the
        replacement and eventually exhaust the retransmit ladder)."""
        if depth <= 0:
            return
        spec = self._take(HALO_KINDS, round_i, rank)
        if spec is None:
            return
        self._corrupt_window(window, spec, depth)
        self._fire(spec, round=round_i, rank=rank)

    def _corrupt_window(
        self, window: np.ndarray, spec: FaultSpec, depth: int
    ) -> None:
        from repro.parallel.distributed import frame_regions

        _, strips = frame_regions(window.shape, depth)
        if not strips:
            return
        if spec.kind == "halo_corrupt":
            strip = window[strips[spec.reg % len(strips)]]
            flat = strip.reshape(-1)
            idx = spec.lane % flat.size
            flat[idx] = flip_float64_bit(float(flat[idx]), spec.bit)
        elif spec.kind == "halo_drop":
            # the strip never arrives: the receive buffer stays zeroed
            window[strips[spec.reg % len(strips)]] = 0.0
        elif spec.kind == "halo_dup":
            # a duplicated transfer: the boundary slab overwrites its
            # neighbouring interior slab along axis 0
            dup = window[(slice(0, depth),) + (slice(None),) * (window.ndim - 1)]
            window[
                (slice(depth, 2 * depth),) + (slice(None),) * (window.ndim - 1)
            ] = dup

    def disarm_rank(self, rank: int) -> None:
        """Permanently disable every spec targeting ``rank``.

        Called by the elastic re-plan after a rank is declared dead and
        the mesh shrinks: surviving ranks are renumbered, so a sticky
        ``rank_crash`` at the dead rank's old index must not transfer
        onto whichever survivor inherits that number.
        """
        with self._lock:
            for armed in self._armed:
                spec = armed.spec
                if spec.kind in HALO_KINDS + ("rank_crash", "rank_hang"):
                    if spec.shard == rank or spec.site == rank:
                        armed.disabled = True

    # ------------------------------------------------------------------
    # checkpoint round-trip
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Firing state for checkpoint manifests (specs + clocks)."""
        with self._lock:
            return {
                "specs": [a.spec.as_dict() for a in self._armed],
                "fired": [a.fired for a in self._armed],
                "disabled": [a.disabled for a in self._armed],
            }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore firing state saved by :meth:`state_dict` — resumed
        runs must not re-fire one-shot faults already spent before the
        checkpoint."""
        specs = [FaultSpec.from_dict(doc) for doc in state.get("specs", [])]
        armed = [_Armed(spec) for spec in specs]
        for a, fired in zip(armed, state.get("fired", [])):
            a.fired = int(fired)
        for a, disabled in zip(armed, state.get("disabled", [])):
            a.disabled = bool(disabled)
        with self._lock:
            self.plan = self.plan.with_specs(specs)
            self._armed = armed

    def describe(self) -> str:
        """One-line summary: the armed plan plus how many specs fired."""
        fired = sum(a.fired for a in self._armed)
        return f"FaultInjector({self.plan.describe()}; fired={fired})"
