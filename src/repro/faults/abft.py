"""ABFT verification and tile-level recovery for block sweeps.

The paper's central identity — a stencil tile is exactly the matrix
chain ``Y = Σ_k U_k X V_k`` (Eq. 12's operand set) — makes the classic
Huang–Abraham algorithm-based fault tolerance apply verbatim: with a
checksum row ``e = (1, …, 1)``,

    e · (Σ_k U_k X V_k)  =  Σ_k ((e · U_k) X) V_k,

so a checksum row carried through the same rank-1 chain must equal the
column sums of the produced tile, and any corrupted accumulator shows
up as a checksum mismatch.  On real hardware the checksum row rides as
one extra row inside the same MMAs (``O(1/m)`` overhead) and the
comparison needs a rounding tolerance.  On this FP64 *simulator* we can
do better: the schedule-equivalence guarantee (eager oracle path and
lowered-program interpretation are bit-identical — pinned by
``tests/properties/test_schedule_equivalence.py``) means the checksum
reference can be recomputed through the oracle chain on a scratch warp
and compared at **tolerance 0** — a fault-free sweep never false-
positives, and any corruption that alters a row/column sum is caught
with certainty.

:class:`SweepGuard` packages verification with the recovery ladder of
:func:`repro.core.sweep.run_block_sweep`:

* staged shared-memory blocks are scrubbed against their DRAM source
  (catches corrupted tile loads, dropped ``cp.async`` commit groups,
  and NaN poison) with bounded re-staging;
* computed tiles are checksum-verified; a mismatch triggers bounded
  recomputation, then the oracle-path fallback, then a typed
  :class:`~repro.errors.FaultError` — never a silently wrong tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import FaultError, InputValidationError
from repro.faults.report import FaultReport
from repro.tcu.counters import EventCounters
from repro.tcu.warp import Warp
from repro.telemetry.log import emit as emit_event

__all__ = [
    "VERIFY_MODES",
    "RecoveryPolicy",
    "SweepGuard",
    "make_guard",
    "tile_checksums",
    "term_checksum_vectors",
    "halo_frame_checksums",
]

#: Supported values of the ``verify=`` execution-mode argument.
VERIFY_MODES = ("abft",)


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounds on the self-healing machinery.

    ``max_tile_retries`` recomputations per corrupted tile (then the
    oracle fallback if ``oracle_fallback``, then
    :class:`~repro.errors.FaultError`); ``max_restages`` re-issues of a
    corrupted shared-memory staging copy; ``shard_retries`` resubmits
    of a crashed/hung shard with exponential backoff starting at
    ``backoff_base_s`` and capped at ``backoff_cap_s``;
    ``shard_timeout_s`` per-shard wall-clock budget (``None`` = wait
    forever); ``inline_fallback`` recomputes an exhausted shard in the
    calling thread as graceful degradation before giving up.

    ``backoff_jitter`` spreads simultaneous retries: each resubmitted
    shard's delay is scaled by ``1 + jitter * u`` where ``u ∈ [0, 1)``
    is drawn deterministically from ``(backoff_seed, attempt, shard)``
    — retries de-synchronize without sacrificing replayability.
    ``max_halo_retransmits`` bounds re-requests of a halo window that
    failed its strip-checksum verification before the receiving rank is
    declared dead.
    """

    max_tile_retries: int = 2
    oracle_fallback: bool = True
    max_restages: int = 2
    shard_retries: int = 2
    shard_timeout_s: float | None = None
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    backoff_jitter: float = 0.5
    backoff_seed: int = 0
    inline_fallback: bool = True
    max_halo_retransmits: int = 2


def validate_verify_mode(verify) -> str | None:
    """Normalize the ``verify=`` argument (``None``/``False`` off)."""
    if verify is None or verify is False:
        return None
    if verify is True:
        return "abft"
    if verify in VERIFY_MODES:
        return verify
    raise InputValidationError(
        f"unknown verify mode {verify!r}; expected one of {VERIFY_MODES}"
    )


def tile_checksums(tile: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The Huang–Abraham checksum pair ``(e·Y, Y·eᵀ)`` of one tile."""
    return np.sum(tile, axis=0), np.sum(tile, axis=1)


def _checksums_equal(tile: np.ndarray, ref: np.ndarray) -> bool:
    """Tolerance-0 checksum comparison (NaN/Inf never compare equal)."""
    col, row = tile_checksums(tile)
    col_ref, row_ref = tile_checksums(ref)
    return np.array_equal(col, col_ref) and np.array_equal(row, row_ref)


def term_checksum_vectors(
    u_matrices, v_matrices
) -> list[dict[str, np.ndarray]]:
    """Per-term ABFT checksum vectors ``e·U_k`` and ``V_k·eᵀ``.

    Given the banded gather matrices of each rank-1 term, these are the
    column sums of ``U_k`` and the row sums of ``V_k`` — the vectors
    the hardware formulation carries through the chain.  Exposed for
    inspection (``repro chaos``/``plan.abft_checksums()``); the
    simulator's tolerance-0 verification recomputes the checksums
    through the oracle chain instead (see the module docstring).
    """
    return [
        {
            "eU": np.asarray(u, dtype=np.float64).sum(axis=0),
            "Ve": np.asarray(v, dtype=np.float64).sum(axis=1),
        }
        for u, v in zip(u_matrices, v_matrices)
    ]


def halo_frame_checksums(window: np.ndarray, depth: int) -> tuple[float, ...]:
    """Per-strip sums of a halo window's frame at exchange depth.

    The Huang–Abraham identity extends to exchanged halos: the frame
    strips a receiver gathers are sub-blocks of the sender's padded
    grid, so their sums are computable on both sides of the wire from
    the same FP64 values in the same (NumPy reduction) order — the
    sender's strip sums and the receiver's strip sums of an intact
    window are **bit-identical**, and the comparison runs at tolerance
    0 exactly like tile ABFT.  A bit-62 flip, zeroed strip, or
    duplicated slab perturbs at least one strip sum by ≥ 2 in
    magnitude, so corruption can never hide inside rounding.

    Strips come from :func:`repro.parallel.distributed.frame_regions`
    (the onion decomposition used by overlapped exchange), imported
    lazily to keep ``repro.faults`` importable without the parallel
    subsystem.  ``depth <= 0`` means no frame — returns ``()``.
    """
    if depth <= 0:
        return ()
    from repro.parallel.distributed import frame_regions

    _, strips = frame_regions(window.shape, depth)
    return tuple(float(np.sum(window[s])) for s in strips)


class SweepGuard:
    """Verification + recovery hooks for one guarded block sweep.

    ``reference`` is the engine's *oracle* tile provider
    (``tile_source(oracle=True)``); the guard replays it on a private
    scratch warp with its own counter ledger, so the reference is
    immune to warp-level injection and the device's event footprint
    only grows by genuine recovery work (retries/restages).
    """

    def __init__(
        self,
        reference: Callable[..., np.ndarray],
        policy: RecoveryPolicy | None = None,
        report: FaultReport | None = None,
        label: str = "",
    ) -> None:
        self.reference = reference
        self.policy = policy or RecoveryPolicy()
        self.report = report if report is not None else FaultReport()
        self.label = label
        self._scratch = Warp(EventCounters())

    # ------------------------------------------------------------------
    # staged shared memory: scrub against the DRAM source
    # ------------------------------------------------------------------
    def check_stage(
        self,
        smem,
        padded2d: np.ndarray,
        br: int,
        bc: int,
        avail_r: int,
        avail_c: int,
        restage: Callable[[], None],
    ) -> None:
        """Verify a staging copy; re-stage (bounded) on corruption."""
        source = padded2d[br : br + avail_r, bc : bc + avail_c]

        def _clean() -> bool:
            return np.array_equal(smem.data[:avail_r, :avail_c], source)

        if _clean():
            return
        self.report.bump("stage_detections")
        emit_event(
            "recovery.stage_detected",
            level="warning",
            message=f"staged block ({br}, {bc}) differs from its DRAM source",
            block=[int(br), int(bc)],
        )
        for restages in range(self.policy.max_restages):
            self.report.bump("restages")
            emit_event(
                "recovery.restage",
                message=f"re-staging block ({br}, {bc})",
                block=[int(br), int(bc)],
                attempt=restages + 1,
            )
            restage()
            if _clean():
                self.report.bump("stage_recoveries")
                emit_event(
                    "recovery.stage_recovered",
                    message=f"block ({br}, {bc}) clean after re-stage",
                    block=[int(br), int(bc)],
                    restages=restages + 1,
                )
                return
        self.report.bump("unrecovered")
        emit_event(
            "recovery.unrecovered",
            level="error",
            message=f"staging at block ({br}, {bc}) exhausted re-stages",
            block=[int(br), int(bc)],
            restages=self.policy.max_restages,
        )
        raise FaultError(
            f"shared-memory staging at block ({br}, {bc}) stayed corrupted "
            f"after {self.policy.max_restages} re-stage attempts"
        )

    # ------------------------------------------------------------------
    # computed tiles: ABFT checksum verify + recompute ladder
    # ------------------------------------------------------------------
    def check_tile(
        self,
        out_tile: np.ndarray,
        compute_tile: Callable[..., np.ndarray],
        warp,
        smem,
        tr: int,
        tc: int,
        mma_mark: int | None = None,
    ) -> np.ndarray:
        """Verify one tile's checksums; recover or raise on mismatch.

        ``mma_mark`` is the injector's MMA ordinal at the start of the
        original tile computation: each recovery replay seeks the clock
        back there, so the replay traverses the *same* fault sites —
        one-shot faults stay spent (a retry is clean), sticky faults
        re-fire (and eventually exhaust the ladder), and faults armed
        for later sites are not consumed early.
        """
        ref = self.reference(self._scratch, smem, tr, tc)
        if _checksums_equal(out_tile, ref):
            return out_tile
        self.report.bump("tile_detections")
        emit_event(
            "recovery.tile_detected",
            level="warning",
            message=f"tile ({tr}, {tc}) failed ABFT checksum verification",
            tile=[int(tr), int(tc)],
        )
        injector = getattr(warp, "injector", None)

        def _seek() -> None:
            if injector is not None and mma_mark is not None:
                injector.mma_seek(mma_mark)

        for retries in range(self.policy.max_tile_retries):
            self.report.bump("tile_retries")
            emit_event(
                "recovery.tile_retry",
                message=f"recomputing tile ({tr}, {tc})",
                tile=[int(tr), int(tc)],
                attempt=retries + 1,
            )
            _seek()
            candidate = compute_tile(warp, smem, tr, tc)
            if _checksums_equal(candidate, ref):
                self.report.bump("tile_recoveries")
                emit_event(
                    "recovery.tile_recovered",
                    message=f"tile ({tr}, {tc}) verified after recompute",
                    tile=[int(tr), int(tc)],
                    retries=retries + 1,
                )
                return candidate
        if self.policy.oracle_fallback:
            _seek()
            candidate = self.reference(warp, smem, tr, tc)
            if _checksums_equal(candidate, ref):
                self.report.bump("oracle_fallbacks")
                emit_event(
                    "recovery.oracle_fallback",
                    level="warning",
                    message=(
                        f"tile ({tr}, {tc}) fell back to the oracle "
                        "tile computation"
                    ),
                    tile=[int(tr), int(tc)],
                )
                return candidate
        self.report.bump("unrecovered")
        emit_event(
            "recovery.unrecovered",
            level="error",
            message=f"tile ({tr}, {tc}) exhausted the recovery ladder",
            tile=[int(tr), int(tc)],
            retries=self.policy.max_tile_retries,
        )
        raise FaultError(
            f"tile at block-local ({tr}, {tc}) failed ABFT verification "
            f"after {self.policy.max_tile_retries} recomputations"
            + (" and the oracle fallback" if self.policy.oracle_fallback else "")
        )


def make_guard(
    engine,
    verify,
    policy: RecoveryPolicy | None = None,
    report: FaultReport | None = None,
    label: str = "",
) -> SweepGuard | None:
    """Build a :class:`SweepGuard` for an engine, or ``None`` if off."""
    mode = validate_verify_mode(verify)
    if mode is None:
        return None
    return SweepGuard(
        engine.tile_source(oracle=True),
        policy=policy,
        report=report,
        label=label,
    )
