"""The reusable recovery-ladder supervisor for fanned-out workers.

Extracted from ``Runtime.apply_simulated_sharded`` so every fan-out in
the repository — sharded sweeps, cluster ranks, multi-process temporal
rounds — runs under the *same* PR 5 ladder with the same structured
events and ledger semantics:

    timeout / crash → capped exponential-backoff resubmission
    (``policy.shard_retries`` rounds) → inline recomputation in the
    calling thread → typed :class:`~repro.errors.FaultError`.

Every decision the supervisor takes — a timeout, a crash, a backoff
delay, a recovery — lands in the structured event log under the
``shard.*`` kinds the monitor CLI and the chaos suite already consume;
resubmissions bump the task's live health gauges when a
:class:`~repro.telemetry.health.SweepHealth` is bound.

Workers are callables ``worker(i, *args)`` over ``tasks`` (a mapping of
index → argument tuple); the supervisor is agnostic to what a task *is*
— a shard's row range, a cluster rank, a temporal round — callers pass
``describe`` to label events (defaults to the sharded executor's
``rows s0:s1`` convention).
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Callable, Mapping

from repro.errors import ExecutionError, FaultError, ReproError
from repro.telemetry.log import emit as emit_event

__all__ = ["supervise_tasks", "backoff_delay"]


def _default_describe(args: tuple) -> str:
    if len(args) == 2:
        return f"{args[0]}:{args[1]}"
    return ":".join(str(a) for a in args)


def backoff_delay(policy, attempt: int, task: int) -> float:
    """The jittered capped-exponential delay for one resubmission.

    The base delay doubles per attempt up to ``policy.backoff_cap_s``;
    jitter scales it by ``1 + backoff_jitter * u`` with ``u ∈ [0, 1)``
    hashed from ``(backoff_seed, attempt, task)``, so two tasks failing
    in the same round back off by *different* amounts (no lockstep
    resubmission thundering into the pool) while any given
    ``(seed, attempt, task)`` triple always yields the same delay —
    chaos campaigns stay bit-reproducible.
    """
    base = min(policy.backoff_cap_s, policy.backoff_base_s * (2.0**attempt))
    jitter = getattr(policy, "backoff_jitter", 0.0)
    if base <= 0 or jitter <= 0:
        return base
    seed = getattr(policy, "backoff_seed", 0)
    digest = hashlib.sha256(
        f"{seed}:{attempt}:{task}".encode("ascii")
    ).digest()
    u = int.from_bytes(digest[:8], "big") / 2.0**64
    return base * (1.0 + jitter * u)


def supervise_tasks(
    tasks: Mapping[int, tuple],
    worker: Callable[..., Any],
    policy,
    report,
    max_workers: int | None = None,
    health=None,
    describe: Callable[[tuple], str] | None = None,
) -> dict[int, Any]:
    """Run ``worker(i, *tasks[i])`` for every task under the ladder.

    Returns ``{i: result}`` for every task or raises a typed
    :class:`~repro.errors.FaultError` once the ladder is exhausted —
    never a partial result set.  ``policy`` is a
    :class:`repro.faults.RecoveryPolicy`; ``report`` a
    :class:`repro.faults.FaultReport` the ladder's counters fold into;
    ``health`` an optional :class:`~repro.telemetry.health.SweepHealth`
    whose per-task retry gauges bump on resubmission.
    """
    describe = describe or _default_describe
    results: dict[int, Any] = {}
    pending = dict(tasks)
    failed_ever: set[int] = set()
    stagger: dict[int, float] = {}
    attempt = 0
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        while pending:
            # resubmissions are staggered: each task waits out its own
            # jittered delay before entering the pool, so retries fan
            # back in spread over time instead of in lockstep
            futures = {}
            waited = 0.0
            for i in sorted(
                pending, key=lambda j: (stagger.get(j, 0.0), j)
            ):
                delay = stagger.get(i, 0.0)
                if delay > waited:
                    time.sleep(delay - waited)
                    waited = delay
                futures[i] = pool.submit(worker, i, *pending[i])
            stagger = {}
            failed: dict[int, tuple] = {}
            for i, future in sorted(futures.items()):
                label = describe(pending[i])
                try:
                    results[i] = future.result(
                        timeout=policy.shard_timeout_s
                    )
                    if i in failed_ever:
                        report.bump("shard_recoveries")
                        emit_event(
                            "shard.recovered",
                            message=f"shard {i} recovered on resubmission",
                            shard=i,
                            rows=label,
                            attempt=attempt,
                        )
                except FutureTimeoutError:
                    report.bump("shard_timeouts")
                    emit_event(
                        "shard.timeout",
                        level="warning",
                        message=(
                            f"shard {i} exceeded the "
                            f"{policy.shard_timeout_s}s policy timeout"
                        ),
                        shard=i,
                        rows=label,
                        timeout_s=policy.shard_timeout_s,
                        attempt=attempt,
                    )
                    failed[i] = pending[i]
                except FaultError as exc:
                    # injected crash, or a task whose own recovery
                    # ladder was exhausted — worth a fresh attempt
                    report.bump("shard_crashes")
                    emit_event(
                        "shard.crash",
                        level="warning",
                        message=f"shard {i} crashed: {exc}",
                        shard=i,
                        rows=label,
                        attempt=attempt,
                    )
                    failed[i] = pending[i]
                except ReproError:
                    raise
                except Exception as exc:
                    raise ExecutionError(
                        f"shard {i} of {len(tasks)} ({label}) "
                        f"failed: {exc}"
                    ) from exc
            failed_ever.update(failed)
            pending = failed
            if not pending:
                break
            if attempt >= policy.shard_retries:
                break
            stagger = {
                i: backoff_delay(policy, attempt, i) for i in pending
            }
            max_delay = max(stagger.values(), default=0.0)
            emit_event(
                "shard.backoff",
                message=(
                    f"backing off up to {max_delay:.3f}s before "
                    f"resubmitting {len(pending)} shard(s)"
                ),
                delay_s=max_delay,
                delays={str(i): round(d, 6) for i, d in sorted(stagger.items())},
                attempt=attempt,
                shards=sorted(pending),
            )
            report.bump("shard_retries", len(pending))
            if health is not None:
                for i in pending:
                    health.shard(i).bump_retries()
            attempt += 1
    for i in sorted(pending):
        label = describe(pending[i])
        if policy.inline_fallback:
            try:
                emit_event(
                    "shard.inline_recovery",
                    level="warning",
                    message=(
                        f"recomputing shard {i} inline after "
                        f"{policy.shard_retries} backoff retries"
                    ),
                    shard=i,
                    rows=label,
                )
                results[i] = worker(i, *pending[i])
                report.bump("shard_inline_recoveries")
                continue
            except Exception as exc:
                report.bump("unrecovered")
                emit_event(
                    "shard.unrecovered",
                    level="error",
                    message=f"shard {i} exhausted the recovery ladder",
                    shard=i,
                    rows=label,
                )
                error = FaultError(
                    f"shard {i} ({label}) failed after "
                    f"{policy.shard_retries} backoff retries and "
                    f"inline recomputation: {exc}"
                )
                error.failed_task = i
                raise error from exc
        report.bump("unrecovered")
        emit_event(
            "shard.unrecovered",
            level="error",
            message=f"shard {i} exhausted the recovery ladder",
            shard=i,
            rows=label,
        )
        error = FaultError(
            f"shard {i} ({label}) failed after "
            f"{policy.shard_retries} backoff retries "
            "(inline fallback disabled)"
        )
        error.failed_task = i
        raise error
    return results
