"""Fault specifications: what to break, where, and when.

A :class:`FaultSpec` names one injectable fault — a bit flip in an
A/B/C fragment register feeding an ``mma.sync``, a corrupted
shared-memory tile load, a dropped ``cp.async`` commit group, NaN
poisoning, or a shard-worker crash/hang — pinned to a deterministic
*site* (the n-th MMA instruction, the n-th block staging, or a shard
index).  A :class:`FaultPlan` is an immutable set of specs, either
written by hand or drawn from a seeded RNG via :meth:`FaultPlan.random`
so an entire chaos campaign replays bit-for-bit from one integer seed.

Site ordinals are counted *per worker thread* (each shard resets its
own instruction/staging clocks when it starts), so a spec targeting
``site=5`` in ``shard=1`` fires at exactly the same instruction no
matter how the thread pool interleaves — the property the chaos suite's
determinism rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from repro.errors import InputValidationError

__all__ = [
    "FAULT_KINDS",
    "MMA_KINDS",
    "STAGE_KINDS",
    "SHARD_KINDS",
    "HALO_KINDS",
    "RANK_KINDS",
    "DEFAULT_FLIP_BIT",
    "FaultSpec",
    "FaultPlan",
]

#: Faults that fire on the n-th ``mma.sync`` of a worker thread.
MMA_KINDS = ("flip_a", "flip_b", "flip_acc", "nan_acc")
#: Faults that fire on the n-th shared-memory block staging.
STAGE_KINDS = ("flip_smem", "drop_commit", "nan_smem")
#: Faults that fire when the matching shard worker starts.
SHARD_KINDS = ("shard_crash", "shard_hang")
#: Faults that corrupt an exchanged halo window in flight.  ``site``
#: addresses the exchange round ordinal, ``shard`` the receiving rank
#: (``None`` hits whichever rank is visited first that round).
HALO_KINDS = ("halo_corrupt", "halo_drop", "halo_dup")
#: Faults that fire when the matching cluster rank starts a round.
#: Like shard kinds they address their target through ``site``.
RANK_KINDS = ("rank_crash", "rank_hang")
#: Every injectable fault kind.
FAULT_KINDS = MMA_KINDS + STAGE_KINDS + SHARD_KINDS + HALO_KINDS + RANK_KINDS

#: Default bit to flip: the exponent MSB.  Flipping bit 62 of *any*
#: float64 perturbs it by at least ~2 in magnitude (0.0 becomes 2.0,
#: values in [1, 2) become Inf/NaN, larger values collapse toward 0),
#: so the corruption can never be absorbed by rounding in a tile
#: checksum — the basis of the chaos suite's 100%-detection guarantee.
DEFAULT_FLIP_BIT = 62


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault.

    ``kind`` selects the mechanism (see :data:`FAULT_KINDS`); ``site``
    is the per-thread ordinal of the MMA instruction or block staging
    to hit (for shard kinds, the shard index).  ``shard`` optionally
    restricts an MMA/stage fault to one shard's worker so sharded
    campaigns stay deterministic; ``None`` fires in whichever worker
    reaches the site first (still at most once).  ``bit``/``lane``/
    ``reg`` pick the register-file element to corrupt; ``sticky``
    faults re-fire on every retry (the path that exhausts a recovery
    policy and proves the typed :class:`~repro.errors.FaultError`
    escape hatch); ``hang_s`` is the injected stall of a
    ``shard_hang``.
    """

    kind: str
    site: int = 0
    shard: int | None = None
    bit: int = DEFAULT_FLIP_BIT
    lane: int = 0
    reg: int = 0
    sticky: bool = False
    hang_s: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise InputValidationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.site < 0:
            raise InputValidationError(f"fault site must be >= 0, got {self.site}")
        if not 0 <= self.bit <= 63:
            raise InputValidationError(
                f"flip bit must be in [0, 63], got {self.bit}"
            )
        if self.kind in SHARD_KINDS + RANK_KINDS and self.shard is None:
            # shard/rank faults address their target through ``site``
            object.__setattr__(self, "shard", self.site)

    def as_dict(self) -> dict:
        """JSON-ready view (checkpoint manifests round-trip specs)."""
        return {
            "kind": self.kind,
            "site": self.site,
            "shard": self.shard,
            "bit": self.bit,
            "lane": self.lane,
            "reg": self.reg,
            "sticky": self.sticky,
            "hang_s": self.hang_s,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultSpec":
        """Rebuild a spec serialized by :meth:`as_dict`."""
        return cls(
            kind=doc["kind"],
            site=int(doc.get("site", 0)),
            shard=doc.get("shard"),
            bit=int(doc.get("bit", DEFAULT_FLIP_BIT)),
            lane=int(doc.get("lane", 0)),
            reg=int(doc.get("reg", 0)),
            sticky=bool(doc.get("sticky", False)),
            hang_s=float(doc.get("hang_s", 0.25)),
        )

    def describe(self) -> str:
        """Compact one-line rendering, e.g. ``flip_a@site=2 bit=62``."""
        where = f"site={self.site}"
        if self.shard is not None and self.kind not in SHARD_KINDS + RANK_KINDS:
            where += f" shard={self.shard}"
        extra = " sticky" if self.sticky else ""
        if self.kind.startswith("flip"):
            extra += f" bit={self.bit}"
        return f"{self.kind}@{where}{extra}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable campaign of :class:`FaultSpec` entries.

    Construct directly, or draw a seeded campaign with :meth:`random`.
    The plan itself is inert — hand it to a
    :class:`~repro.faults.injector.FaultInjector` to arm it.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int | None = None
    _kinds: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def random(
        cls,
        seed: int,
        kinds: Sequence[str] | None = None,
        count: int = 4,
        max_mma_site: int = 64,
        max_stage_site: int = 4,
        shards: int = 1,
        sticky: bool = False,
        ranks: int = 0,
        max_round: int = 4,
    ) -> "FaultPlan":
        """A deterministic campaign drawn from ``seed``.

        Each of the ``count`` faults picks a kind from ``kinds``
        (default: every kind applicable to the run — shard kinds only
        when ``shards > 1``, halo/rank kinds only when ``ranks > 0``)
        and a site uniformly inside the matching range.  ``ranks`` is
        the cluster rank count a halo/rank fault may target;
        ``max_round`` bounds the exchange-round ordinal a halo fault
        fires in.  The same arguments always produce the same plan —
        in particular the historical defaults (``ranks=0``) draw
        exactly the campaigns they always did.
        """
        if kinds is None:
            kinds = MMA_KINDS + STAGE_KINDS
            if shards > 1:
                kinds = kinds + SHARD_KINDS
            if ranks > 0:
                kinds = kinds + HALO_KINDS + RANK_KINDS
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise InputValidationError(
                    f"unknown fault kind {kind!r}; expected one of "
                    f"{sorted(FAULT_KINDS)}"
                )
        rng = np.random.default_rng(seed)
        specs = []
        for _ in range(count):
            kind = str(rng.choice(list(kinds)))
            if kind in SHARD_KINDS:
                site = int(rng.integers(0, max(1, shards)))
            elif kind in RANK_KINDS:
                site = int(rng.integers(0, max(1, ranks)))
            elif kind in HALO_KINDS:
                site = int(rng.integers(0, max(1, max_round)))
            elif kind in STAGE_KINDS:
                site = int(rng.integers(0, max(1, max_stage_site)))
            else:
                site = int(rng.integers(0, max(1, max_mma_site)))
            shard = None
            if kind in HALO_KINDS and ranks > 0:
                shard = int(rng.integers(0, ranks))
            elif shards > 1 and kind not in SHARD_KINDS + RANK_KINDS:
                shard = int(rng.integers(0, shards))
            specs.append(
                FaultSpec(
                    kind=kind,
                    site=site,
                    shard=shard,
                    lane=int(rng.integers(0, 32)),
                    reg=int(rng.integers(0, 2)),
                    sticky=sticky,
                )
            )
        return cls(specs=tuple(specs), seed=seed)

    def with_specs(self, specs: Iterable[FaultSpec]) -> "FaultPlan":
        """Copy of this plan with ``specs`` replaced (seed kept)."""
        return replace(self, specs=tuple(specs))

    def by_kind(self, *kinds: str) -> tuple[FaultSpec, ...]:
        """The subset of specs whose kind is one of ``kinds``."""
        return tuple(s for s in self.specs if s.kind in kinds)

    def describe(self) -> str:
        """Multi-line rendering: header plus one line per spec."""
        head = f"FaultPlan(seed={self.seed}, {len(self.specs)} faults)"
        return "\n".join([head] + [f"  - {s.describe()}" for s in self.specs])

    def __len__(self) -> int:
        return len(self.specs)
