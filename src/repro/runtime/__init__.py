"""``repro.runtime`` — compile-once stencil plans and their executors.

The runtime separates the two phases the engines used to fuse:

* **compile** (:func:`repro.runtime.compile`): derive everything grid-
  independent — PMA/SVD decomposition, banded ``U``/``V`` gather
  matrices, BVS row permutation, block schedule, predicted cost — into
  an immutable :class:`StencilPlan`, memoized by content hash in a
  :class:`PlanCache`;
* **execute** (:class:`Runtime` / :class:`CompiledStencil`): run that
  plan over one grid, a vectorized batch of grids, or shards of a grid
  with per-shard event-counter merging.

This is the layer production scaling work (multi-tenant serving, async
batching, multi-backend lowering) plugs into; see ``docs/runtime.md``.
"""

from repro.runtime.cache import CacheStats, PlanCache
from repro.runtime.executor import Runtime
from repro.runtime.facade import (
    DEFAULT_PLAN_CACHE,
    CompiledStencil,
    compile,
)
from repro.runtime.plan import StencilPlan, build_plan, canonical_weights, plan_key

__all__ = [
    "CacheStats",
    "PlanCache",
    "Runtime",
    "CompiledStencil",
    "DEFAULT_PLAN_CACHE",
    "compile",
    "StencilPlan",
    "build_plan",
    "canonical_weights",
    "plan_key",
]
