"""LRU plan cache.

Compiling a :class:`~repro.runtime.plan.StencilPlan` runs the PMA/SVD
decomposition and builds every banded gather matrix and register
fragment — work that is identical for identical inputs.  The
:class:`PlanCache` memoizes plans under their content hash
(:func:`repro.runtime.plan.plan_key`), so a service compiling the same
kernels over and over pays the derivation once per distinct kernel, not
once per request.

The cache is a plain LRU: bounded size, least-recently-*used* eviction,
thread-safe (one lock around the ordered map — plan builds themselves
run outside the lock so concurrent compilations of *different* keys do
not serialize).  :meth:`PlanCache.stats` exposes hit/miss/eviction
counts for the CLI ``plan`` subcommand and capacity tuning.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.runtime.plan import StencilPlan
from repro.telemetry.spans import TRACER

__all__ = ["CacheStats", "PlanCache"]


@dataclass(frozen=True)
class CacheStats:
    """Counters describing one cache's lifetime behaviour."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def lookups(self) -> int:
        """Total keyed lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        """One-line rendering for CLI output."""
        return (
            f"{self.size}/{self.maxsize} plans, {self.hits} hits, "
            f"{self.misses} misses, {self.evictions} evictions "
            f"(hit rate {self.hit_rate:.0%})"
        )


class PlanCache:
    """Bounded LRU mapping plan keys to compiled plans."""

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._plans: OrderedDict[str, StencilPlan] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- mapping ----------------------------------------------------------
    def get(self, key: str) -> StencilPlan | None:
        """Return the cached plan for ``key`` (marking it recently used),
        or None.  Counts as a hit or miss."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self._misses += 1
                return None
            self._plans.move_to_end(key)
            self._hits += 1
            return plan

    def put(self, plan: StencilPlan) -> None:
        """Insert ``plan`` under its own key, evicting the LRU entry if
        the cache is full."""
        evicted: list[str] = []
        with self._lock:
            if plan.key in self._plans:
                self._plans.move_to_end(plan.key)
                self._plans[plan.key] = plan
                return
            while len(self._plans) >= self.maxsize:
                key, _ = self._plans.popitem(last=False)
                self._evictions += 1
                evicted.append(key)
            self._plans[plan.key] = plan
        for key in evicted:
            from repro.telemetry.log import emit

            emit(
                "plan_cache.evict",
                message="LRU eviction of a compiled plan",
                evicted_key=key,
                inserted_key=plan.key,
                maxsize=self.maxsize,
            )

    def get_or_build(
        self, key: str, builder: Callable[[], StencilPlan]
    ) -> StencilPlan:
        """Cached plan for ``key``, or ``builder()``'s result, cached.

        The build runs outside the lock; if two threads race on the same
        missing key both build, and the last insert wins — plans for
        equal keys are interchangeable, so this is benign.
        """
        with TRACER.span(
            "runtime.plan_cache.get_or_build", category="runtime"
        ) as sp:
            plan = self.get(key)
            if plan is not None:
                sp.annotate(key=key[:16], outcome="hit")
                return plan
            with TRACER.span("runtime.plan_cache.build", category="runtime"):
                plan = builder()
            if plan.key != key:
                raise ValueError(
                    f"builder produced plan {plan.key[:12]}… for key {key[:12]}…"
                )
            self.put(plan)
            sp.annotate(key=key[:16], outcome="miss")
            return plan

    # -- introspection ----------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._plans

    def keys(self) -> list[str]:
        """Cached plan keys, least- to most-recently used."""
        with self._lock:
            return list(self._plans)

    def entries(self) -> list[dict[str, object]]:
        """JSON-ready ``(key, schedule, ndim, radius)`` rows, LRU first.

        This is the join table between run-records (which stamp
        ``plan_key``) and the plans that produced them.
        """
        with self._lock:
            plans = list(self._plans.values())
        return [
            {
                "key": p.key,
                "schedule": p.schedule,
                "ndim": p.ndim,
                "radius": p.radius,
            }
            for p in plans
        ]

    def stats(self) -> CacheStats:
        """Snapshot of the cache's hit/miss/eviction counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._plans),
                maxsize=self.maxsize,
            )

    def clear(self) -> None:
        """Drop every cached plan and zero the statistics."""
        with self._lock:
            self._plans.clear()
            self._hits = self._misses = self._evictions = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanCache({self.stats().summary()})"
