"""The unified ``repro.compile`` entry point.

One call replaces the three engine constructors::

    compiled = repro.compile(weights)          # ndim inferred
    out = compiled.apply(padded)               # old pad convention
    out = compiled.apply_grid(x, boundary="periodic")  # pads internally
    outs = compiled.apply_batch(grids)         # vectorized batch
    out, events = compiled.apply_simulated(x)  # faithful TCU sweep

``compile`` consults the module-level :data:`DEFAULT_PLAN_CACHE` (an LRU
keyed by a content hash of ``(weights, config, tile_shape, dtype)``), so
re-compiling an identical stencil is a dictionary lookup — no PMA/SVD,
no gather-matrix rebuild.  Pass ``cache=None`` to force a fresh build,
or your own :class:`~repro.runtime.cache.PlanCache` to isolate tenants.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import OptimizationConfig
from repro.runtime.backends import (
    ORACLE_UNSET as _ORACLE_UNSET,
    default_backend,
    get_backend,
    resolve_backend,
    shim_oracle as _shim_oracle,
)
from repro.runtime.cache import PlanCache
from repro.runtime.executor import Runtime
from repro.runtime.plan import StencilPlan, build_plan, plan_key
from repro.stencil.boundary import BoundaryCondition, parse_boundary
from repro.stencil.weights import StencilWeights
from repro.tcu.counters import EventCounters
from repro.tcu.device import Device
from repro import telemetry

__all__ = ["CompiledStencil", "compile", "DEFAULT_PLAN_CACHE"]

#: Process-wide plan cache ``repro.compile`` uses by default.
DEFAULT_PLAN_CACHE = PlanCache(maxsize=128)

_MISSING = object()


class CompiledStencil:
    """A compiled stencil: one plan plus every way to execute it.

    Thin handle over ``(StencilPlan, Runtime)``; cheap to construct,
    safe to share across threads (the plan is immutable and the engines
    are read-only after compilation).
    """

    def __init__(self, plan: StencilPlan, cache: PlanCache | None = None) -> None:
        self.plan = plan
        self.cache = cache
        self.runtime = Runtime(plan)

    # -- structure --------------------------------------------------------
    @property
    def key(self) -> str:
        """Content hash identifying the plan."""
        return self.plan.key

    @property
    def ndim(self) -> int:
        """Stencil dimensionality (1, 2 or 3)."""
        return self.plan.ndim

    @property
    def radius(self) -> int:
        """Stencil radius ``h`` (inputs must be padded by this much)."""
        return self.plan.radius

    @property
    def rank(self) -> int:
        """Number of rank-1 terms in the plan's decomposition."""
        return self.plan.rank

    @property
    def engine(self):
        """The underlying ``LoRAStencil{1,2,3}D`` engine instance."""
        return self.plan.engine

    @property
    def lowered(self):
        """The plan's :class:`~repro.core.lowering.LoweredProgram`."""
        return self.plan.lowered

    @property
    def program(self):
        """The scheduled tile program(s) the simulated sweep interprets.

        See :attr:`repro.runtime.plan.StencilPlan.program`; ``None`` for
        CUDA-core configurations.
        """
        return self.plan.program

    @property
    def schedule(self) -> str:
        """Name of the instruction schedule baked into the plan."""
        return self.plan.schedule

    # -- execution --------------------------------------------------------
    def apply(self, padded: np.ndarray) -> np.ndarray:
        """Apply to one *padded* grid; returns the interior.

        Keeps the repository-wide pad convention: the input carries a
        halo of ``radius`` ghost cells per side that the caller chose
        how to fill.  Use :meth:`apply_grid` to pad internally.
        """
        with telemetry.span(
            "runtime.apply", category="runtime", plan=self.key[:16]
        ):
            return self.runtime.apply(padded)

    def apply_grid(
        self,
        x: np.ndarray,
        boundary: str | BoundaryCondition = "constant",
    ) -> np.ndarray:
        """Apply to one *unpadded* grid, padding internally.

        ``boundary`` is a :mod:`repro.stencil.boundary` condition object
        or shorthand (``"constant"``, ``"periodic"``, ``"edge"``,
        ``"reflect"``); the output has the same shape as ``x``.
        """
        with telemetry.span(
            "runtime.apply_grid", category="runtime", plan=self.key[:16]
        ):
            cond = parse_boundary(boundary)
            padded = cond.pad(np.asarray(x, dtype=np.float64), self.radius)
            return self.runtime.apply(padded)

    def apply_batch(
        self,
        grids,
        threaded: bool = False,
        max_workers: int | None = None,
    ) -> np.ndarray:
        """Apply to many equally shaped padded grids at once.

        Vectorized over the batch axis by default; ``threaded=True``
        fans single-grid applies over a thread pool instead (for
        batches too large to stack).
        """
        with telemetry.span(
            "runtime.apply_batch",
            category="runtime",
            plan=self.key[:16],
            threaded=threaded,
        ):
            if threaded:
                return self.runtime.apply_batch_threaded(grids, max_workers)
            return self.runtime.apply_batch(grids)

    @property
    def last_fault_report(self):
        """The :class:`repro.faults.FaultReport` of the most recent
        guarded/supervised execution (``None`` if fault tolerance was
        never active on this handle)."""
        return self.runtime.last_fault_report

    def apply_simulated(
        self,
        padded: np.ndarray,
        device: Device | None = None,
        shards: int = 1,
        max_workers: int | None = None,
        oracle=_ORACLE_UNSET,
        profiler=None,
        verify=None,
        faults=None,
        policy=None,
        backend: str | None = None,
    ) -> tuple[np.ndarray, EventCounters]:
        """Faithful TCU sweep; returns ``(interior, counters)``.

        ``backend`` selects the execution backend (``"interpreter"`` |
        ``"vectorized"`` | ``"oracle"``); it defaults to the plan's
        compiled-in backend.  The interpreter steps the plan's lowered
        tile program; ``backend="oracle"`` runs the eager tile path
        instead — bit-identical by the schedule-equivalence guarantee;
        ``backend="vectorized"`` batches every tile of the sweep with
        bit-identical numerics and counters, but rejects fault-tolerant
        execution (below) with a :class:`~repro.errors.BackendError`.
        The ``oracle=`` flag is deprecated: passing it warns, and
        ``oracle=True`` maps to ``backend="oracle"``.
        ``shards > 1`` splits the sweep along the first interior axis
        over a thread pool, one simulated device per shard, and merges
        the per-shard event counters (``device`` is then ignored).
        ``profiler`` opts the single-shard sweep into per-instruction
        attribution; the profiler accumulators are not thread-safe, so
        it cannot be combined with ``shards > 1``.

        Fault tolerance (see :mod:`repro.faults` and
        ``docs/robustness.md``): ``verify="abft"`` checksum-verifies
        every tile and staging copy at tolerance 0, recovering
        corrupted work under ``policy`` (a
        :class:`repro.faults.RecoveryPolicy`, also governing shard
        timeout/retry when sharded); ``faults`` (a
        :class:`repro.faults.FaultPlan` or
        :class:`repro.faults.FaultInjector`) arms deterministic fault
        injection.  The resulting ledger is exposed as
        :attr:`last_fault_report`, folded into the metrics registry
        when telemetry is on, and stamped into run-records' ``faults``
        section.
        """
        if profiler is not None and shards > 1:
            from repro.errors import PerfError

            raise PerfError(
                "per-instruction profiling does not support sharded "
                "execution (profiler accumulators are per-thread)"
            )
        backend = _shim_oracle(oracle, backend)
        fault_mode = bool(verify) or faults is not None or policy is not None
        report = None
        before = None
        if fault_mode:
            from repro.faults import FaultReport, as_injector

            faults = as_injector(faults)
            report = faults.report if faults is not None else FaultReport()
            before = report.snapshot()
        with telemetry.span(
            "runtime.apply_simulated",
            category="runtime",
            plan=self.key[:16],
            shards=shards,
        ) as sp:
            # resolved inside the span so a backend.downgrade decision
            # joins the sweep's trace like every other decision
            backend = resolve_backend(
                backend, plan_default=self.plan.backend, fault_mode=fault_mode
            )
            if shards > 1:
                out, events = self.runtime.apply_simulated_sharded(
                    padded,
                    shards=shards,
                    max_workers=max_workers,
                    verify=verify,
                    faults=faults,
                    policy=policy,
                    report=report,
                    backend=backend,
                )
            else:
                out, events = self.runtime.apply_simulated(
                    padded,
                    device=device,
                    profiler=profiler,
                    verify=verify,
                    faults=faults,
                    policy=policy,
                    report=report,
                    backend=backend,
                )
            sp.add_events(events)
            telemetry.absorb_events(events)
            if report is not None:
                sp.annotate(
                    faults_injected=report.total_injected,
                    faults_detected=report.total_detected,
                    faults_recovered=report.total_recovered,
                )
                telemetry.absorb_faults(report.delta(before))
            return out, events

    def profile(
        self,
        padded: np.ndarray | None = None,
        size: int = 64,
        seed: int = 0,
        backend: str | None = None,
    ):
        """Per-instruction profile of one simulated sweep.

        Delegates to :meth:`repro.runtime.plan.StencilPlan.profile`;
        returns a :class:`repro.telemetry.perf.PlanProfile`.
        ``backend`` selects the profiled execution backend (vectorized
        profiles attribute the same event totals in one record per
        batched instruction).
        """
        return self.plan.profile(padded, size=size, seed=seed, backend=backend)

    def apply_simulated_batch(
        self,
        grids,
        max_workers: int | None = None,
    ) -> tuple[np.ndarray, EventCounters]:
        """Simulated sweep of a batch of grids with merged counters."""
        with telemetry.span(
            "runtime.apply_simulated_batch",
            category="runtime",
            plan=self.key[:16],
        ) as sp:
            out, events = self.runtime.apply_simulated_batch(grids, max_workers)
            sp.add_events(events)
            telemetry.absorb_events(events)
            return out, events

    def describe(self) -> str:
        """Human-readable plan summary."""
        return self.plan.describe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledStencil(key={self.key[:12]}…, ndim={self.ndim}, "
            f"radius={self.radius}, method={self.plan.method!r})"
        )


def compile(
    weights: StencilWeights | np.ndarray,
    ndim: int | None = None,
    config: OptimizationConfig | None = None,
    tile_shape: tuple[int, int] | None = None,
    dtype: np.dtype | type | str = np.float64,
    cache: PlanCache | None = _MISSING,  # type: ignore[assignment]
    backend: str | None = None,
) -> CompiledStencil:
    """Compile (or fetch from cache) a stencil execution plan.

    The single entry point unifying ``LoRAStencil1D/2D/3D``: dimension
    is inferred from the weights (or forced via ``ndim``), the heavy
    derivation work happens at most once per distinct
    ``(weights, config, tile_shape, dtype, backend)`` thanks to the
    plan cache.

    Parameters
    ----------
    weights:
        :class:`~repro.stencil.weights.StencilWeights` or a dense odd-
        sided array (vector, matrix, or cube).
    ndim:
        Optional dimensionality check/override.
    config:
        :class:`~repro.core.config.OptimizationConfig` toggles.
    tile_shape:
        2D output warp-tile shape (multiples of 8); 2D plans only.
    dtype:
        Compute dtype; only ``float64`` (the FP64 MMA pipeline) today.
    cache:
        ``PlanCache`` to consult (default: the process-wide
        :data:`DEFAULT_PLAN_CACHE`); ``None`` compiles uncached.
    backend:
        Execution backend the plan's apply paths default to
        (``"interpreter"`` | ``"vectorized"`` | ``"oracle"``); defaults
        to :func:`repro.runtime.backends.default_backend` (the
        ``REPRO_BACKEND`` environment variable, else the interpreter).
        Part of the plan key: plans compiled for different backends
        never alias in the cache.
    """
    if cache is _MISSING:
        cache = DEFAULT_PLAN_CACHE
    if backend is None:
        backend = default_backend()
    else:
        get_backend(backend)
    with telemetry.span("runtime.compile", category="runtime") as sp:
        if cache is None:
            sp.annotate(cache="bypass")
            return CompiledStencil(
                build_plan(
                    weights, ndim, config, tile_shape, dtype, backend=backend
                ),
                None,
            )
        key = plan_key(weights, ndim, config, tile_shape, dtype, backend=backend)
        plan = cache.get_or_build(
            key,
            lambda: build_plan(
                weights, ndim, config, tile_shape, dtype, backend=backend
            ),
        )
        sp.annotate(key=key[:16])
        telemetry.absorb_cache_stats(cache.stats())
        return CompiledStencil(plan, cache)
