"""Compile-once stencil plans.

A :class:`StencilPlan` captures everything about executing one stencil
kernel that is derivable from ``(weights, config, tile_shape, dtype)``
alone — independent of any particular grid:

* the rank-1 decomposition (PMA pyramid or SVD) for 2D kernels, or the
  per-plane decompositions of the 3D plane split;
* the banded ``U``/``V`` gather matrices and their register fragments
  (owned by the plan's engine);
* the BVS row permutation applied to ``V``;
* the **lowered program** — the scheduled
  :class:`~repro.tcu.program.TileProgram` artifact produced by the
  :mod:`repro.core.lowering` pass pipeline, which the sweep driver
  interprets at execution time (exposed as :attr:`StencilPlan.lowered`
  and :attr:`StencilPlan.program`);
* the block schedule (thread-block tile of the simulated sweep);
* a predicted cost from :mod:`repro.perf` (analytic per-point footprint
  pushed through the A100 roofline model).

Deriving all of this once and reusing it across sweeps is the repo-level
analogue of the paper's one-time transformation phase: related systems
(ConvStencil's stencil2row, SparStencil's planning pass) pay this per
call; LoRAStencil's RDG design exists to amortize it.  Plans are content
addressed — :func:`plan_key` hashes the inputs with SHA-256, so equal
inputs map to the same key in every process (no ``PYTHONHASHSEED``
dependence) and :class:`repro.runtime.cache.PlanCache` can deduplicate
compilations.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.core.config import OptimizationConfig
from repro.core.engine1d import DEFAULT_BLOCK_1D, LoRAStencil1D
from repro.core.engine2d import DEFAULT_BLOCK_2D, LoRAStencil2D
from repro.core.engine3d import DEFAULT_BLOCK_3D, LoRAStencil3D
from repro.core.lowering import LoweredProgram, lower
from repro.core.lowrank import Decomposition
from repro.core.uvbuild import butterfly_row_order
from repro.errors import ShapeError
from repro.stencil.weights import StencilWeights
from repro.tcu.program import TileProgram

__all__ = ["StencilPlan", "plan_key", "build_plan", "canonical_weights"]

#: Bump when the plan layout changes incompatibly — keys must not collide
#: across layouts.  v2: plans carry the lowered tile program and the key
#: covers the schedule knob.  v3: the key covers the execution backend,
#: so a vectorized plan is never served where an interpreter plan was
#: requested.
_KEY_VERSION = b"repro-stencil-plan-v3"


def canonical_weights(
    weights: StencilWeights | np.ndarray,
    ndim: int | None = None,
) -> tuple[np.ndarray, int]:
    """Normalize ``weights`` to a dense float64 array plus its ndim.

    ``ndim`` is only required when it cannot be inferred (it always can
    today: :class:`~repro.stencil.weights.StencilWeights` carries it and
    a raw array's dimensionality is its own); when given, it must agree
    with the inferred value.
    """
    if isinstance(weights, StencilWeights):
        arr = np.asarray(weights.array, dtype=np.float64)
        inferred = weights.ndim
    else:
        arr = np.asarray(weights, dtype=np.float64)
        inferred = arr.ndim
    if ndim is not None and ndim != inferred:
        raise ShapeError(
            f"ndim={ndim} does not match the {inferred}D weights provided"
        )
    if inferred not in (1, 2, 3):
        raise ShapeError(
            f"stencil weights must be 1D, 2D or 3D, got {inferred}D"
        )
    if len(set(arr.shape)) != 1 or arr.shape[0] % 2 != 1:
        raise ShapeError(
            f"weight array must be square/cubic with odd side, got {arr.shape}"
        )
    return np.ascontiguousarray(arr), inferred


def plan_key(
    weights: StencilWeights | np.ndarray,
    ndim: int | None = None,
    config: OptimizationConfig | None = None,
    tile_shape: tuple[int, int] | None = None,
    dtype: np.dtype | type | str = np.float64,
    backend: str | None = None,
) -> str:
    """Content hash of one plan's inputs (stable across processes).

    The key covers the exact weight values and shape, the optimization
    config, the output tile shape, the compute dtype and the execution
    backend (``None`` resolves through
    :func:`repro.runtime.backends.default_backend`); two plans with
    equal keys are interchangeable.
    """
    from repro.runtime.backends import default_backend, get_backend

    arr, nd = canonical_weights(weights, ndim)
    cfg = config or OptimizationConfig()
    if backend is None:
        backend = default_backend()
    else:
        get_backend(backend)
    h = hashlib.sha256()
    h.update(_KEY_VERSION)
    h.update(f"ndim={nd};shape={arr.shape}".encode())
    h.update(arr.tobytes())
    h.update(
        f"cfg=tc:{cfg.use_tensor_cores},bvs:{cfg.use_bvs},"
        f"ac:{cfg.use_async_copy},sched:{cfg.schedule}".encode()
    )
    h.update(f"tile={tuple(tile_shape) if tile_shape else None}".encode())
    h.update(f"dtype={np.dtype(dtype).name}".encode())
    h.update(f"backend={backend}".encode())
    return h.hexdigest()


@dataclass(frozen=True)
class StencilPlan:
    """One compiled stencil: decomposition, gather weights, schedule.

    Plans are immutable and grid-independent: the same plan executes any
    number of grids of any (valid) size, serially, batched, or sharded.
    Construct plans with :func:`build_plan` or — preferably — through
    :func:`repro.compile`, which consults the plan cache first.
    """

    key: str
    ndim: int
    radius: int
    weights: np.ndarray = field(repr=False)
    config: OptimizationConfig
    tile_shape: tuple[int, int] | None
    dtype: str
    engine: LoRAStencil1D | LoRAStencil2D | LoRAStencil3D = field(repr=False)
    decomposition: Decomposition | None
    block: tuple[int, ...]
    lowered: LoweredProgram = field(repr=False)
    #: execution backend the plan was compiled for (apply-path default)
    backend: str = "interpreter"

    # -- structure --------------------------------------------------------
    @property
    def method(self) -> str:
        """Decomposition route: ``"pma"``, ``"svd"``, ``"banded"`` (1D)
        or ``"planes"`` (3D)."""
        if self.decomposition is not None:
            return self.decomposition.method
        return "banded" if self.ndim == 1 else "planes"

    @property
    def rank(self) -> int:
        """Number of rank-1 terms (0 where no decomposition applies)."""
        return self.decomposition.rank if self.decomposition else 0

    @property
    def plane_decompositions(self) -> tuple[Decomposition | None, ...]:
        """Per-plane decompositions of a 3D plan (empty otherwise)."""
        if self.ndim != 3:
            return ()
        return tuple(
            t.engine.decomposition if t.engine is not None else None
            for t in self.engine.planes
        )

    @property
    def u_matrices(self) -> tuple[np.ndarray, ...]:
        """Banded vertical-gather matrices ``U`` (2D plans)."""
        if self.ndim != 2:
            return ()
        return tuple(self.engine.tile._u_mats)

    @property
    def v_matrices(self) -> tuple[np.ndarray, ...]:
        """Banded horizontal-gather matrices ``V`` (2D plans)."""
        if self.ndim != 2:
            return ()
        return tuple(self.engine.tile._v_mats)

    def abft_checksums(self) -> tuple[dict[str, np.ndarray], ...]:
        """Per-term ABFT checksum vectors for the rank-1 MM chain.

        For each rank-1 term ``U_k X V_k`` of a 2D plan, the
        Huang–Abraham encodings ``e·U_k`` (row checksum, absorbed into
        the left gather) and ``V_k·eᵀ`` (column checksum, absorbed into
        the right gather): with them the checksum of the tile result is
        one extra row/column carried through the same MMAs — the
        hardware formulation ``docs/robustness.md`` derives from
        Eq. 12.  2D plans only; the 1D banded chain and 3D plane split
        have no single ``(U, V)`` pair per term.
        """
        if self.ndim != 2:
            from repro.errors import PerfError

            raise PerfError(
                "ABFT checksum vectors are defined on the 2D rank-1 MM "
                f"chain (this plan is {self.ndim}D)"
            )
        from repro.faults.abft import term_checksum_vectors

        return term_checksum_vectors(self.u_matrices, self.v_matrices)

    @property
    def bvs_order(self) -> np.ndarray | None:
        """BVS row permutation applied to ``V`` (None when BVS is off)."""
        if self.ndim != 2 or not self.config.use_bvs:
            return None
        return butterfly_row_order(self.engine.tile.w_cols)

    @property
    def program(self) -> TileProgram | tuple[TileProgram | None, ...] | None:
        """The scheduled tile program(s) the executor interprets.

        A single :class:`~repro.tcu.program.TileProgram` for 1D/2D
        plans, a per-kernel-plane tuple for 3D plans (``None`` entries
        for the point-wise CUDA-core planes), or ``None`` for CUDA-core
        configurations, which lower to no tensor-core program.
        """
        if self.ndim == 3:
            if not self.config.use_tensor_cores:
                return None
            return tuple(
                t.program if t is not None else None for t in self.lowered.tiles
            )
        tile = self.lowered.tile
        return tile.program if tile is not None else None

    @property
    def schedule(self) -> str:
        """Name of the instruction schedule baked into the program."""
        return self.lowered.schedule

    @property
    def mma_per_tile(self) -> int:
        """MMA instructions one warp tile costs under this plan."""
        if self.ndim == 1:
            return self.engine.mma_per_tile
        if self.ndim == 2:
            return self.engine.tile.mma_per_tile
        return sum(
            t.engine.tile.mma_per_tile
            for t in self.engine.planes
            if t.engine is not None
        )

    # -- predicted cost ---------------------------------------------------
    @cached_property
    def predicted_time_per_point_s(self) -> float:
        """Modelled seconds per point-update (A100 roofline estimate).

        Uses an analytic per-point footprint of the plan's hot loop —
        MMAs, fragment loads and DRAM traffic per output point — priced
        by :func:`repro.perf.costmodel.time_per_point` with the
        LoRAStencil efficiency traits.  An estimate: the measured
        footprints of :mod:`repro.experiments` stay authoritative.
        """
        return _predict_time_per_point(self)

    @cached_property
    def predicted_gstencil_per_s(self) -> float:
        """Modelled sustained GStencil/s (1 / predicted time / 1e9)."""
        return 1.0 / self.predicted_time_per_point_s / 1e9

    # -- profiling --------------------------------------------------------
    def profile(
        self,
        padded: np.ndarray | None = None,
        size: int = 64,
        seed: int = 0,
        device=None,
        backend: str | None = None,
    ):
        """Per-instruction profile of one simulated sweep of this plan.

        Runs the sweep with the opt-in instrumented interpreter and
        returns a :class:`repro.telemetry.perf.PlanProfile` keyed by
        this plan's content hash: wall-time and event deltas per opcode
        and per rank-1 PMA term, the lowering pass times, and the
        driver residue (block staging + DRAM stores) that closes the
        books against the sweep total bit-exactly.  ``padded`` defaults
        to a seeded random grid of edge ``size`` (the ``repro run``
        shape conventions).  Lazy import keeps :mod:`repro.telemetry`
        optional on the plan's hot path.
        """
        from repro.telemetry.perf import profile_plan

        return profile_plan(
            self, padded, size=size, seed=seed, device=device,
            backend=backend,
        )

    # -- reporting --------------------------------------------------------
    def describe(self) -> str:
        """Multi-line human-readable plan summary (CLI ``plan`` output)."""
        lines = [
            f"plan {self.key[:16]}…  ({self.ndim}D, radius {self.radius}, "
            f"dtype {self.dtype})",
            f"  method          {self.method}",
            f"  rank            {self.rank}",
            f"  config          {self.config.label()}",
            f"  backend         {self.backend}",
            f"  block schedule  {'x'.join(map(str, self.block))}",
            f"  lowering        {self.lowered.describe()}",
            f"  mma per tile    {self.mma_per_tile}",
            f"  predicted       {self.predicted_gstencil_per_s:.2f} GStencil/s",
        ]
        if self.decomposition is not None:
            terms = ", ".join(
                "1x1 apex" if t.is_scalar else f"{t.size}x{t.size}"
                for t in self.decomposition.terms
            )
            lines.insert(3, f"  terms           [{terms}]")
        if self.ndim == 3:
            tc = self.engine.tensor_core_planes
            cc = self.engine.cuda_core_planes
            lines.insert(3, f"  planes          {len(tc)} TCU / {len(cc)} CUDA")
        return "\n".join(lines)


def build_plan(
    weights: StencilWeights | np.ndarray,
    ndim: int | None = None,
    config: OptimizationConfig | None = None,
    tile_shape: tuple[int, int] | None = None,
    dtype: np.dtype | type | str = np.float64,
    backend: str | None = None,
) -> StencilPlan:
    """Compile one plan from scratch (no cache consultation).

    This is the slow path :func:`repro.compile` runs on a cache miss: it
    drives the :mod:`repro.core.lowering` pass pipeline — decomposition,
    canonical tile IR, instruction scheduling, operand vectorization —
    and wraps the engine and the lowered program in an immutable plan.
    ``backend`` (default: :func:`~repro.runtime.backends.default_backend`)
    becomes the plan's apply-path default.
    """
    from repro.runtime.backends import default_backend, get_backend

    arr, nd = canonical_weights(weights, ndim)
    if np.dtype(dtype) != np.float64:
        raise ShapeError(
            f"only float64 plans are supported (the FP64 m8n8k4 pipeline), "
            f"got {np.dtype(dtype).name}"
        )
    cfg = config or OptimizationConfig()
    if backend is None:
        backend = default_backend()
    else:
        get_backend(backend)
    key = plan_key(arr, nd, cfg, tile_shape, dtype, backend=backend)

    if nd != 2 and tile_shape is not None:
        raise ShapeError("tile_shape applies to 2D plans only")
    engine, lowered = lower(arr, nd, config=cfg, tile_shape=tile_shape)
    if nd == 1:
        decomposition = None
        block: tuple[int, ...] = (DEFAULT_BLOCK_1D,)
    elif nd == 2:
        decomposition = engine.decomposition
        block = DEFAULT_BLOCK_2D
    else:
        decomposition = None
        block = DEFAULT_BLOCK_3D

    return StencilPlan(
        key=key,
        ndim=nd,
        radius=(arr.shape[0] - 1) // 2,
        weights=arr,
        config=cfg,
        tile_shape=tuple(tile_shape) if tile_shape else None,
        dtype=np.dtype(dtype).name,
        engine=engine,
        decomposition=decomposition,
        block=block,
        lowered=lowered,
        backend=backend,
    )


# ---------------------------------------------------------------------------
# cost prediction (lazy imports: repro.perf pulls in repro.baselines.base,
# whose package __init__ imports modules that import this one)
# ---------------------------------------------------------------------------
def _per_point_counters(plan: StencilPlan):
    """Analytic per-point event estimate for the plan's hot loop."""
    from repro.tcu.counters import EventCounters

    c = EventCounters()
    if plan.ndim == 1:
        tile_points = 64
        c.mma_ops = plan.engine.mma_per_tile
        c.shared_load_requests = plan.engine.k_rows // 4
        c.global_load_bytes = 8 * tile_points
        c.global_store_bytes = 8 * tile_points
        return c, tile_points
    if plan.ndim == 2:
        tile = plan.engine.tile
        tile_points = tile.points_per_tile
        c.mma_ops = tile.mma_per_tile
        c.shared_load_requests = tile.fragment_loads_per_tile
        # pyramid apex: one axpy (mul+add) per point per scalar term
        c.cuda_core_flops = (
            2 * tile_points * len(plan.engine.decomposition.scalar_terms)
        )
        c.global_load_bytes = 8 * tile_points
        c.global_store_bytes = 8 * tile_points
        return c, tile_points
    # 3D: every output point sums all kernel planes
    engine_tiles = [
        t.engine.tile for t in plan.engine.planes if t.engine is not None
    ]
    tile_points = engine_tiles[0].points_per_tile if engine_tiles else 64
    for task in plan.engine.planes:
        if task.engine is not None:
            tile = task.engine.tile
            c.mma_ops += tile.mma_per_tile
            c.shared_load_requests += tile.fragment_loads_per_tile
            c.cuda_core_flops += 2 * tile_points  # slab accumulation axpy
            c.cuda_core_flops += (
                2 * tile_points * len(task.engine.decomposition.scalar_terms)
            )
        elif task.pointwise is not None:
            c.cuda_core_flops += 2 * tile_points
    # z-streaming sweep: ~one DRAM read + one write per point
    c.global_load_bytes = 8 * tile_points
    c.global_store_bytes = 8 * tile_points
    return c, tile_points


def _predict_time_per_point(plan: StencilPlan) -> float:
    """Price the analytic footprint with the A100 roofline model."""
    from repro.baselines.base import FootprintScale, MethodTraits
    from repro.perf.costmodel import time_per_point

    counters, points = _per_point_counters(plan)
    if plan.config.use_tensor_cores:
        traits = MethodTraits(
            tcu_efficiency=0.86,
            cuda_efficiency=0.40,
            dram_efficiency=0.85,
            smem_efficiency=0.85,
            issue_efficiency=0.60,
        )
    else:
        traits = MethodTraits(
            cuda_efficiency=0.157,
            dram_efficiency=0.85,
            smem_efficiency=0.85,
            issue_efficiency=0.60,
        )
    return time_per_point(FootprintScale(counters=counters, points=points), traits)
