"""Plan execution: single grids, vectorized batches, sharded sweeps.

A :class:`Runtime` binds one compiled :class:`~repro.runtime.plan.StencilPlan`
to its execution strategies:

* :meth:`Runtime.apply` — one grid, the plan engine's functional path;
* :meth:`Runtime.apply_batch` — many same-shaped grids at once.  The
  rank-1 term loops run *once* for the whole batch with NumPy
  broadcasting over the leading batch axis, so the per-call Python
  overhead (the compile-per-call tax this subsystem exists to remove)
  is paid once per batch instead of once per grid;
* :meth:`Runtime.apply_batch_threaded` — the same batch fanned out over
  a :mod:`concurrent.futures` thread pool (NumPy releases the GIL in
  its inner loops), for batches of grids too large to stack;
* :meth:`Runtime.apply_simulated` / :meth:`Runtime.apply_simulated_batch`
  / :meth:`Runtime.apply_simulated_sharded` — the faithful TCU path.
  Sharded variants give every shard its own
  :class:`~repro.tcu.device.Device` and merge the per-shard
  :class:`~repro.tcu.counters.EventCounters` into one footprint, the
  way per-SM counters aggregate on real hardware.

Shard boundaries align to the plan's warp-tile rows, so a sharded sweep
computes exactly the same tiles as an unsharded one (identical
``mma_ops`` and fragment loads); only the DRAM halo reads duplicate at
the seams, which is the true cost of sharding.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from repro.errors import (
    ExecutionError,
    InputValidationError,
    ReproError,
    ShapeError,
)
from repro.runtime.backends import (
    ORACLE_UNSET as _ORACLE_UNSET,
    resolve_backend,
    shim_oracle as _shim_oracle,
)
from repro.runtime.plan import StencilPlan
from repro.tcu.counters import EventCounters
from repro.tcu.device import Device
from repro.telemetry.context import TraceContext
from repro.telemetry.health import HEALTH

__all__ = ["Runtime"]


def _validate_finite(arr: np.ndarray, what: str = "input grid") -> None:
    """Reject NaN/Inf poison before it enters a sweep.

    Raises :class:`~repro.errors.InputValidationError` (the
    :class:`~repro.errors.ShapeError` sibling: the shape is fine, the
    contents are not) so poison is attributable to the caller instead
    of surfacing as a silently-NaN interior ten layers down.
    """
    if not np.isfinite(arr).all():
        bad = int(arr.size - np.count_nonzero(np.isfinite(arr)))
        raise InputValidationError(
            f"{what} contains {bad} non-finite value(s) (NaN/Inf); "
            "sanitize inputs before applying the stencil"
        )


def _shard_bounds(n: int, shards: int, align: int) -> list[tuple[int, int]]:
    """Split ``[0, n)`` into ``shards`` contiguous chunks, each (except
    possibly the last) a multiple of ``align`` long."""
    if shards < 1:
        raise ShapeError(f"shards must be >= 1, got {shards}")
    shards = min(shards, max(1, n // align))
    per = -(-n // shards)  # ceil
    per = -(-per // align) * align  # round up to alignment
    bounds = []
    start = 0
    while start < n:
        end = min(start + per, n)
        bounds.append((start, end))
        start = end
    return bounds


class Runtime:
    """Executes one compiled plan over one, many, or sharded grids."""

    def __init__(self, plan: StencilPlan) -> None:
        self.plan = plan
        #: the :class:`repro.faults.FaultReport` of the most recent
        #: guarded/supervised execution (``None`` when fault tolerance
        #: was off)
        self.last_fault_report = None

    # ------------------------------------------------------------------
    # functional paths
    # ------------------------------------------------------------------
    def apply(self, padded: np.ndarray) -> np.ndarray:
        """Apply the plan to one padded grid; returns the interior."""
        padded = np.asarray(padded, dtype=np.float64)
        _validate_finite(padded)
        return self.plan.engine.apply(padded)

    def apply_batch(self, grids: Sequence[np.ndarray] | np.ndarray) -> np.ndarray:
        """Apply the plan to a batch of equally shaped padded grids.

        ``grids`` is a sequence of padded arrays (or one stacked array
        with a leading batch axis); returns the stacked interiors with
        the same leading axis.  Mathematically identical to looping
        :meth:`apply`, but the term loops broadcast over the whole batch.
        """
        batch = self._stack(grids)
        if self.plan.ndim == 1:
            return self._batch_1d(batch)
        if self.plan.ndim == 2:
            return self._batch_2d(batch)
        return self._batch_3d(batch)

    def apply_batch_threaded(
        self,
        grids: Sequence[np.ndarray] | np.ndarray,
        max_workers: int | None = None,
    ) -> np.ndarray:
        """Batch apply with one functional call per grid on a thread pool.

        Same contract as :meth:`apply_batch`; use this variant when the
        stacked batch would be too large to broadcast in one piece —
        NumPy releases the GIL inside the slice arithmetic, so the
        per-grid applies overlap.
        """
        batch = self._stack(grids)
        ctx = TraceContext.capture()

        def _apply_grid(i: int, grid: np.ndarray) -> np.ndarray:
            with ctx.span("runtime.batch_grid", category="runtime", grid=i):
                return self.plan.engine.apply(grid)

        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(_apply_grid, i, grid)
                for i, grid in enumerate(batch)
            ]
            outs = []
            for i, future in enumerate(futures):
                try:
                    outs.append(future.result())
                except ReproError:
                    raise
                except Exception as exc:
                    raise ExecutionError(
                        f"grid {i} of {len(futures)} in threaded batch "
                        f"failed: {exc}"
                    ) from exc
        return np.stack(outs)

    # ------------------------------------------------------------------
    # simulated paths
    # ------------------------------------------------------------------
    def apply_simulated(
        self,
        padded: np.ndarray,
        device: Device | None = None,
        oracle=_ORACLE_UNSET,
        profiler=None,
        verify=None,
        faults=None,
        policy=None,
        report=None,
        backend: str | None = None,
    ) -> tuple[np.ndarray, EventCounters]:
        """One faithful TCU sweep; returns ``(interior, counters)``.

        ``backend`` selects the execution backend (``"interpreter"`` |
        ``"vectorized"`` | ``"oracle"``), defaulting to the plan's
        compiled-in backend; the interpreter steps the plan's lowered
        tile program, ``"oracle"`` runs the engine's eager tile
        computation instead (the correctness oracle the schedule-
        equivalence suite compares against — results are guaranteed
        bit-identical), and ``"vectorized"`` batches every tile of the
        sweep (bit-identical grids and counters, but no fault
        tolerance).  The ``oracle=`` flag is deprecated: passing it
        warns, and ``oracle=True`` maps to ``backend="oracle"``.
        ``profiler`` opts into per-instruction attribution (see
        :mod:`repro.telemetry.perf`).

        ``verify="abft"`` checksum-verifies every tile and staging copy
        (tolerance 0) with recovery bounded by ``policy`` (a
        :class:`repro.faults.RecoveryPolicy`); ``faults`` (a
        :class:`repro.faults.FaultPlan` or armed
        :class:`repro.faults.FaultInjector`) injects deterministic
        corruption; both tally into ``report`` (a
        :class:`repro.faults.FaultReport`).
        """
        backend = _shim_oracle(oracle, backend)
        fault_mode = (
            bool(verify)
            or faults is not None
            or policy is not None
            or report is not None
        )
        backend = resolve_backend(
            backend, plan_default=self.plan.backend, fault_mode=fault_mode
        )
        padded = np.asarray(padded, dtype=np.float64)
        _validate_finite(padded)
        if faults is not None:
            from repro.faults import as_injector

            injector = as_injector(faults)
            if device is None:
                device = Device(injector=injector)
            else:
                device.injector = injector
            if report is None:
                report = injector.report
        if verify and report is None:
            from repro.faults import FaultReport

            report = FaultReport()
        if report is not None:
            self.last_fault_report = report
        return self.plan.engine.apply_simulated(
            padded,
            device=device,
            profiler=profiler,
            verify=verify,
            policy=policy,
            report=report,
            backend=backend,
        )

    def apply_simulated_batch(
        self,
        grids: Sequence[np.ndarray] | np.ndarray,
        max_workers: int | None = None,
    ) -> tuple[np.ndarray, EventCounters]:
        """Simulated sweep of every grid in the batch, grid-sharded.

        Each grid runs on its own :class:`~repro.tcu.device.Device` in a
        thread pool; the per-grid counters merge by summation into one
        batch footprint.  Returns ``(stacked interiors, merged counters)``.
        """
        batch = self._stack(grids)
        ctx = TraceContext.capture()

        def _run_grid(item):
            i, grid = item
            with ctx.span(
                "runtime.batch_grid", category="runtime", grid=i
            ) as sp:
                out, counters = self.apply_simulated(grid, device=Device())
                sp.add_events(counters)
                return out, counters

        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(_run_grid, (i, grid))
                for i, grid in enumerate(batch)
            ]
            results = []
            for i, future in enumerate(futures):
                try:
                    results.append(future.result())
                except ReproError:
                    raise
                except Exception as exc:
                    raise ExecutionError(
                        f"grid {i} of {len(futures)} in simulated batch "
                        f"failed: {exc}"
                    ) from exc
        outs = np.stack([out for out, _ in results])
        merged = EventCounters()
        for _, counters in results:
            merged += counters
        return outs, merged

    def apply_simulated_sharded(
        self,
        padded: np.ndarray,
        shards: int = 2,
        max_workers: int | None = None,
        verify=None,
        faults=None,
        policy=None,
        report=None,
        backend: str | None = None,
    ) -> tuple[np.ndarray, EventCounters]:
        """One grid's simulated sweep, tile-sharded along the first axis.

        The interior splits into ``shards`` contiguous chunks aligned to
        the plan's warp-tile rows; each shard sweeps its halo-extended
        sub-grid on a private device, and the per-shard counters merge
        into one footprint.  With ``shards=1`` this is exactly
        :meth:`apply_simulated`.

        Workers are not treated as infallible: any worker exception is
        wrapped in a typed :class:`~repro.errors.ExecutionError`
        carrying the shard index and row range.  When fault tolerance
        is active (``verify``/``faults``/``policy`` given), shards are
        *supervised*: a crashed worker or one exceeding the policy's
        per-shard timeout is resubmitted with capped exponential
        backoff, then recomputed inline in the calling thread as
        graceful degradation; only an exhausted policy raises a typed
        :class:`~repro.errors.FaultError` — never a partial grid.

        ``backend`` threads into every shard's sweep (the vectorized
        backend batches each shard's tiles on its private device; it
        rejects fault-tolerant execution with a typed
        :class:`~repro.errors.BackendError`).
        """
        fault_mode = (
            bool(verify) or faults is not None or policy is not None
        )
        backend = resolve_backend(
            backend, plan_default=self.plan.backend, fault_mode=fault_mode
        )
        padded = np.asarray(padded, dtype=np.float64)
        if padded.ndim != self.plan.ndim:
            raise ShapeError(
                f"expected {self.plan.ndim}D input, got {padded.ndim}D"
            )
        _validate_finite(padded)
        h = self.plan.radius
        n0 = padded.shape[0] - 2 * h
        if n0 <= 0:
            raise ShapeError(
                f"padded input {padded.shape} too small for radius {h}"
            )
        bounds = _shard_bounds(n0, shards, self._shard_align())
        ctx = TraceContext.capture()
        sweep_health = HEALTH.start_sweep(f"sharded-{self.plan.key[:12]}")

        injector = None
        if faults is not None:
            from repro.faults import as_injector

            injector = as_injector(faults)
            if report is None:
                report = injector.report
        supervised = (
            injector is not None or bool(verify) or policy is not None
        )
        if supervised:
            from repro.faults import FaultReport, RecoveryPolicy

            policy = policy or RecoveryPolicy()
            report = report if report is not None else FaultReport()
        self.last_fault_report = report

        def _worker(i: int, s0: int, s1: int):
            sub = padded[s0 : s1 + 2 * h]
            with ctx.span(
                "runtime.shard",
                category="runtime",
                shard=i,
                rows=f"{s0}:{s1}",
            ) as sp:
                # inside the span: an injected crash/hang renders as part
                # of this shard's lane, not as an orphan root
                if injector is not None:
                    injector.on_shard(i)
                with HEALTH.bind(sweep_health.shard(i, rows=f"{s0}:{s1}")):
                    device = Device(injector=injector)
                    out, counters = self.plan.engine.apply_simulated(
                        sub,
                        device=device,
                        verify=verify,
                        policy=policy,
                        report=report,
                        backend=backend,
                    )
                    sp.add_events(counters)
                    return out, counters

        try:
            if not supervised:
                results_list = []
                with ThreadPoolExecutor(max_workers=max_workers) as pool:
                    futures = [
                        pool.submit(_worker, i, s0, s1)
                        for i, (s0, s1) in enumerate(bounds)
                    ]
                    for i, future in enumerate(futures):
                        s0, s1 = bounds[i]
                        try:
                            results_list.append(future.result())
                        except ReproError:
                            raise
                        except Exception as exc:
                            raise ExecutionError(
                                f"shard {i} of {len(bounds)} (rows {s0}:{s1}) "
                                f"failed: {exc}"
                            ) from exc
                results = dict(enumerate(results_list))
            else:
                results = self._supervise_shards(
                    bounds, _worker, policy, report, max_workers, sweep_health
                )
        finally:
            HEALTH.publish()
            HEALTH.write_file()

        out = np.concatenate(
            [results[i][0] for i in range(len(bounds))], axis=0
        )
        merged = EventCounters()
        for i in range(len(bounds)):
            merged += results[i][1]
        return out, merged

    def _supervise_shards(
        self, bounds, worker, policy, report, max_workers, sweep_health=None
    ) -> dict[int, tuple]:
        """Run shard workers under the recovery policy.

        Delegates to the shared :func:`repro.faults.supervisor.
        supervise_tasks` ladder (timeout/crash → capped exponential-
        backoff resubmission → inline recomputation → typed
        :class:`~repro.errors.FaultError`) — the same supervisor the
        cluster runtime runs its ranks and temporal rounds under.
        """
        from repro.faults.supervisor import supervise_tasks

        return supervise_tasks(
            dict(enumerate(bounds)),
            worker,
            policy,
            report,
            max_workers=max_workers,
            health=sweep_health,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _shard_align(self) -> int:
        """Interior rows per indivisible shard unit (warp-tile rows)."""
        if self.plan.ndim == 1:
            return 64
        if self.plan.ndim == 2:
            return self.plan.engine.tile.out_rows
        return 1  # 3D shards along z: planes are independent

    def _stack(self, grids: Sequence[np.ndarray] | np.ndarray) -> np.ndarray:
        if isinstance(grids, np.ndarray) and grids.ndim == self.plan.ndim + 1:
            batch = np.asarray(grids, dtype=np.float64)
        else:
            items = [np.asarray(g, dtype=np.float64) for g in grids]
            if not items:
                raise ShapeError("apply_batch needs at least one grid")
            shapes = {g.shape for g in items}
            if len(shapes) != 1:
                raise ShapeError(
                    f"all grids in a batch must share one shape, got {shapes}"
                )
            batch = np.stack(items)
        if batch.ndim != self.plan.ndim + 1:
            raise ShapeError(
                f"batch for a {self.plan.ndim}D plan must have "
                f"{self.plan.ndim + 1} axes, got {batch.ndim}"
            )
        if batch.shape[0] == 0:
            raise ShapeError("apply_batch needs at least one grid")
        _validate_finite(batch, "input batch")
        return batch

    def _batch_1d(self, batch: np.ndarray) -> np.ndarray:
        h = self.plan.radius
        n = batch.shape[1] - 2 * h
        if n <= 0:
            raise ShapeError(
                f"padded length {batch.shape[1]} too small for radius {h}"
            )
        out = np.zeros((batch.shape[0], n), dtype=np.float64)
        for t, wt in enumerate(self.plan.engine.weight_vector):
            out += wt * batch[:, t : t + n]
        return out

    def _batch_2d(self, batch: np.ndarray) -> np.ndarray:
        return _batched_2d(self.plan.engine, batch)

    def _batch_3d(self, batch: np.ndarray) -> np.ndarray:
        h = self.plan.radius
        zs, rs, cs = (s - 2 * h for s in batch.shape[1:])
        if min(zs, rs, cs) <= 0:
            raise ShapeError(
                f"padded batch {batch.shape[1:]} too small for radius {h}"
            )
        b = batch.shape[0]
        out = np.zeros((b, zs, rs, cs), dtype=np.float64)
        for task in self.plan.engine.planes:
            if task.pointwise is not None:
                pi, pj, wt = task.pointwise
                out += wt * batch[
                    :,
                    task.index : task.index + zs,
                    pi : pi + rs,
                    pj : pj + cs,
                ]
            elif task.engine is not None:
                slabs = batch[:, task.index : task.index + zs]
                folded = slabs.reshape(b * zs, *slabs.shape[2:])
                out += _batched_2d(task.engine, folded).reshape(b, zs, rs, cs)
        return out


def _batched_2d(engine, batch: np.ndarray) -> np.ndarray:
    """Sum of separable rank-1 filters over a stack of padded 2D grids."""
    h = engine.radius
    rows, cols = batch.shape[1] - 2 * h, batch.shape[2] - 2 * h
    if rows <= 0 or cols <= 0:
        raise ShapeError(
            f"padded batch {batch.shape[1:]} too small for radius {h}"
        )
    b = batch.shape[0]
    out = np.zeros((b, rows, cols), dtype=np.float64)
    for term in engine.decomposition.matrix_terms:
        pd, s = term.pad, term.size
        tmp = np.zeros((b, rows, batch.shape[2]), dtype=np.float64)
        for t in range(s):
            tmp += term.u[t] * batch[:, pd + t : pd + t + rows, :]
        for r in range(s):
            out += term.v[r] * tmp[:, :, pd + r : pd + r + cols]
    for term in engine.decomposition.scalar_terms:
        out += term.scalar_weight * batch[:, h : h + rows, h : h + cols]
    return out
