"""Execution-backend registry behind the unified ``backend=`` API.

Three backends execute a compiled plan:

* ``interpreter`` — the per-thread :class:`~repro.tcu.program.TileProgram`
  interpreter: every m8n8k4 MMA, shuffle and shared-memory transaction is
  *measured* by stepping fragments one tile at a time.  The reference
  semantics, and the only backend that composes with ABFT verification
  and fault injection.
* ``vectorized`` — batched NumPy over whole tile sweeps: all tiles of a
  rank-1 term at once via broadcast ``matmul``, with the banded U/V
  operands materialized once per plan and staging traffic priced
  analytically.  Bit-identical grids *and* EventCounters to the
  interpreter (the schedule-equivalence suite gates this), an order of
  magnitude faster in wall-clock.
* ``oracle`` — the pre-lowering eager tile math, bypassing the scheduled
  program entirely.  The correctness oracle the property suite checks
  both other backends against; supersedes the deprecated
  ``oracle=True`` flag.

``default_backend()`` reads the ``REPRO_BACKEND`` environment variable,
so CI can run the whole suite under another backend without touching
call sites.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass

from repro.errors import BackendError

__all__ = [
    "ENV_BACKEND",
    "DEFAULT_BACKEND",
    "ORACLE_UNSET",
    "ExecutionBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "default_backend",
    "resolve_backend",
    "engine_backend",
    "shim_oracle",
]

#: environment variable consulted by :func:`default_backend`
ENV_BACKEND = "REPRO_BACKEND"

#: backend used when neither an argument nor the environment selects one
DEFAULT_BACKEND = "interpreter"


@dataclass(frozen=True)
class ExecutionBackend:
    """One registered way of executing a compiled plan."""

    name: str
    description: str
    #: "measured" — counters accumulate per simulated transaction;
    #: "derived" — counters are priced analytically (still bit-identical)
    counters: str
    #: does this backend compose with verify= / fault injection?
    supports_faults: bool


_BACKENDS: dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Register (or replace) a backend under its name."""
    _BACKENDS[backend.name] = backend
    return backend


register_backend(
    ExecutionBackend(
        name="interpreter",
        description="per-thread TileProgram interpreter (reference)",
        counters="measured",
        supports_faults=True,
    )
)
register_backend(
    ExecutionBackend(
        name="vectorized",
        description="batched NumPy over whole tile sweeps",
        counters="derived",
        supports_faults=False,
    )
)
register_backend(
    ExecutionBackend(
        name="oracle",
        description="eager pre-lowering tile math (correctness oracle)",
        counters="measured",
        supports_faults=True,
    )
)


def get_backend(name: str) -> ExecutionBackend:
    """Look up a backend; raises :class:`BackendError` on unknown names."""
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise BackendError(
            f"unknown execution backend {name!r} (known: {known})"
        ) from None


def available_backends() -> tuple[str, ...]:
    """Registered backend names, registration order."""
    return tuple(_BACKENDS)


def default_backend() -> str:
    """The session default: ``REPRO_BACKEND`` if set, else interpreter."""
    name = os.environ.get(ENV_BACKEND, "").strip()
    if not name:
        return DEFAULT_BACKEND
    if name not in _BACKENDS:
        known = ", ".join(sorted(_BACKENDS))
        raise BackendError(
            f"{ENV_BACKEND}={name!r} is not a known execution backend "
            f"(known: {known})"
        )
    return name


def resolve_backend(
    requested: str | None,
    plan_default: str | None = None,
    fault_mode: bool = False,
) -> str:
    """Resolve the backend an apply path should run.

    ``requested`` (an explicit ``backend=`` argument) wins; otherwise the
    plan's compiled-in backend, otherwise :func:`default_backend`.  Fault
    mode (verify= / faults= / policy= / report=) needs the per-thread
    interpreter: an *explicit* vectorized request is a typed error, while
    a merely *defaulted* vectorized backend (plan default or
    ``REPRO_BACKEND``) silently downgrades to the interpreter so fault
    tests keep passing under a vectorized session default.
    """
    name = requested
    if name is None:
        name = plan_default if plan_default is not None else default_backend()
    backend = get_backend(name)
    if fault_mode and not backend.supports_faults:
        if requested is not None:
            raise BackendError(
                f"backend {name!r} does not support ABFT verification or "
                "fault injection; use backend='interpreter'"
            )
        _signal_downgrade(name, DEFAULT_BACKEND)
        return DEFAULT_BACKEND
    return name


def _signal_downgrade(requested: str, resolved: str) -> None:
    """Make a defaulted-backend downgrade observable.

    A fault run under a vectorized session default (``REPRO_BACKEND``
    or a plan compiled with ``backend="vectorized"``) must fall back to
    the interpreter — but silently losing an order of magnitude of
    speedup is exactly the kind of decision the observability plane
    exists to surface.  One counter bump plus one structured warning
    event per downgrade.
    """
    from repro.telemetry.log import emit
    from repro.telemetry.metrics import REGISTRY

    REGISTRY.counter(
        "repro_backend_downgrades_total",
        help="fault-mode executions downgraded to the interpreter backend",
    ).inc()
    emit(
        "backend.downgrade",
        level="warning",
        message=(
            f"fault-tolerant execution downgraded backend {requested!r} "
            f"-> {resolved!r} (no fault support)"
        ),
        requested=requested,
        resolved=resolved,
        reason="fault_mode",
    )


#: sentinel distinguishing "oracle= not passed" from ``oracle=False`` so
#: the deprecation shim only fires on explicit use
ORACLE_UNSET = object()


def shim_oracle(oracle, backend: str | None, stacklevel: int = 3) -> str | None:
    """Map the deprecated ``oracle=`` flag onto ``backend=``.

    Returns ``backend`` untouched when ``oracle`` is :data:`ORACLE_UNSET`;
    otherwise emits a :class:`DeprecationWarning` and, when ``oracle`` is
    truthy and no explicit backend was given, selects ``"oracle"``.
    """
    if oracle is ORACLE_UNSET:
        return backend
    warnings.warn(
        "the oracle= parameter is deprecated; use backend='oracle' "
        "(or backend='interpreter') instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    if backend is None and oracle:
        return "oracle"
    return backend


def engine_backend(backend: str | None, oracle: bool = False) -> str:
    """Resolve an engine-level ``backend=``/``oracle=`` pair.

    Engines keep a plain ``oracle`` flag (they sit below the runtime
    shims); an explicit ``backend`` wins over it.
    """
    if backend is None:
        return "oracle" if oracle else "interpreter"
    get_backend(backend)
    return backend
