"""Low-rank adaptation of stencil weight matrices.

Two decomposition routes turn a ``(2h+1) x (2h+1)`` weight matrix ``W``
into rank-1 terms ``C_k = u_k (x) v_k^T`` with ``sum_k C_k == W``:

* :func:`pyramidal_decompose` — **PMA** (Section III-C).  For matrices
  symmetric under both row and column reversal (radial symmetry implies
  this), peel the border with the pivot-scaled outer product of the first
  column and first row; the remainder's border vanishes and a
  ``(2h-1) x (2h-1)`` symmetric core remains.  Produces at most ``h+1``
  terms of strictly decreasing size (Eq. 15) — the pyramid.
* :func:`svd_decompose` — the general Eq. 8 route: ``rank(W)``
  full-size terms from the singular value decomposition.

:func:`decompose` picks PMA when it applies (exact, fewest/smallest
terms) and falls back to SVD otherwise, which is how the implementation
"generalizes to various kernels" (Section I).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DecompositionError, ShapeError

__all__ = [
    "Rank1Term",
    "Decomposition",
    "PivotError",
    "pyramidal_decompose",
    "svd_decompose",
    "decompose",
]


class PivotError(DecompositionError):
    """PMA cannot proceed: zero pivot or missing flip symmetry.

    Subclasses :class:`repro.errors.DecompositionError` (itself a
    ``ValueError`` for backwards compatibility).
    """


@dataclass(frozen=True)
class Rank1Term:
    """One rank-1 summand ``C = u (x) v^T`` of the weight matrix.

    ``u``/``v`` have length ``size`` (odd).  ``pad`` is the term's border
    offset inside the full kernel: PMA's pyramid gives level ``i`` the
    size ``2h+3-2i`` and pad ``i-1``; SVD terms are full-size (pad 0).
    A ``size == 1`` term is the pyramid's scalar apex — it needs no
    matrix multiplication at all (centre-point scaling on CUDA cores).
    """

    u: np.ndarray = field(repr=False)
    v: np.ndarray = field(repr=False)
    size: int
    pad: int

    def __post_init__(self) -> None:
        u = np.asarray(self.u, dtype=np.float64)
        v = np.asarray(self.v, dtype=np.float64)
        if u.shape != (self.size,) or v.shape != (self.size,):
            raise ValueError(
                f"u/v must have shape ({self.size},), got {u.shape}/{v.shape}"
            )
        if self.size % 2 != 1:
            raise ValueError(f"term size must be odd, got {self.size}")
        if self.pad < 0:
            raise ValueError(f"pad must be >= 0, got {self.pad}")
        object.__setattr__(self, "u", u)
        object.__setattr__(self, "v", v)

    @property
    def radius(self) -> int:
        return (self.size - 1) // 2

    @property
    def is_scalar(self) -> bool:
        """True for the pyramid apex: a single self-weight, no MM needed."""
        return self.size == 1

    @property
    def scalar_weight(self) -> float:
        if not self.is_scalar:
            raise ValueError("scalar_weight is only defined for 1x1 terms")
        return float(self.u[0] * self.v[0])

    def matrix(self) -> np.ndarray:
        """The dense rank-1 matrix ``u v^T`` (size x size)."""
        return np.outer(self.u, self.v)

    def embedded(self, full_side: int) -> np.ndarray:
        """The term zero-padded to the full kernel side length."""
        if self.size + 2 * self.pad > full_side:
            raise ValueError(
                f"term of size {self.size} with pad {self.pad} does not fit "
                f"in a {full_side}x{full_side} kernel"
            )
        out = np.zeros((full_side, full_side), dtype=np.float64)
        extra = (full_side - self.size - 2 * self.pad) // 2
        off = self.pad + extra
        out[off : off + self.size, off : off + self.size] = self.matrix()
        return out


@dataclass(frozen=True)
class Decomposition:
    """A complete rank-1 decomposition of one weight matrix."""

    terms: tuple[Rank1Term, ...]
    full_side: int
    method: str  # "pma" | "svd"

    @property
    def rank(self) -> int:
        return len(self.terms)

    @property
    def matrix_terms(self) -> tuple[Rank1Term, ...]:
        """Terms that require matrix multiplication (size > 1)."""
        return tuple(t for t in self.terms if not t.is_scalar)

    @property
    def scalar_terms(self) -> tuple[Rank1Term, ...]:
        """Pyramid apex terms handled point-wise on CUDA cores."""
        return tuple(t for t in self.terms if t.is_scalar)

    def reconstruct(self) -> np.ndarray:
        """``sum_k C_k`` embedded back into the full kernel."""
        out = np.zeros((self.full_side, self.full_side), dtype=np.float64)
        for term in self.terms:
            out += term.embedded(self.full_side)
        return out

    def max_error(self, w: np.ndarray) -> float:
        """Max |reconstruction - w| (0 for an exact decomposition)."""
        return float(np.max(np.abs(self.reconstruct() - np.asarray(w))))


def _is_flip_symmetric(w: np.ndarray, tol: float) -> bool:
    scale = max(1.0, float(np.max(np.abs(w))) if w.size else 1.0)
    return (
        np.max(np.abs(w - np.flipud(w))) <= tol * scale
        and np.max(np.abs(w - np.fliplr(w))) <= tol * scale
    )


def pyramidal_decompose(
    w: np.ndarray,
    tol: float = 1e-12,
    pivot_tol: float = 1e-12,
) -> Decomposition:
    """Pyramidal Matrix Adaptation (Fig. 5).

    Requires ``w`` to be square with odd side and symmetric under both
    row and column reversal.  Zero border rings (e.g. a small kernel
    embedded in a larger one) are skipped without emitting a term.

    Raises
    ------
    PivotError
        If a corner pivot vanishes while its ring does not, or the matrix
        lacks the required flip symmetry.
    """
    w = np.asarray(w, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise ShapeError(f"weight matrix must be square, got shape {w.shape}")
    n = w.shape[0]
    if n % 2 != 1:
        raise ShapeError(f"weight matrix side must be odd, got {n}")
    if not _is_flip_symmetric(w, tol):
        raise PivotError(
            "pyramidal decomposition requires row- and column-flip symmetry "
            "(radially symmetric weights have it; see Section II-C)"
        )

    scale = max(1.0, float(np.max(np.abs(w))))
    terms: list[Rank1Term] = []
    cur = w.copy()
    pad = 0
    side = n
    while side > 1:
        border_mag = max(
            float(np.max(np.abs(cur[0, :]))), float(np.max(np.abs(cur[:, 0])))
        )
        if border_mag <= tol * scale:
            # empty ring: shrink without a term (embedded smaller kernel)
            cur = cur[1:-1, 1:-1]
            side -= 2
            pad += 1
            continue
        pivot = cur[0, 0]
        if abs(pivot) <= pivot_tol * scale:
            raise PivotError(
                f"zero corner pivot at pyramid level pad={pad} with a "
                "nonzero border ring; use svd_decompose instead"
            )
        u = cur[:, 0] / pivot
        v = cur[0, :].copy()
        terms.append(Rank1Term(u=u, v=v, size=side, pad=pad))
        cur = (cur - np.outer(u, v))[1:-1, 1:-1]
        side -= 2
        pad += 1
    if side == 1 and abs(cur[0, 0]) > tol * scale:
        terms.append(
            Rank1Term(
                u=np.array([cur[0, 0]]), v=np.array([1.0]), size=1, pad=pad
            )
        )

    decomp = Decomposition(tuple(terms), full_side=n, method="pma")
    err = decomp.max_error(w)
    if err > 1e-9 * scale:
        raise PivotError(
            f"pyramidal decomposition failed to reconstruct W exactly "
            f"(max error {err:.3e}); the matrix is likely not radially "
            "symmetric"
        )
    return decomp


def svd_decompose(w: np.ndarray, tol: float = 1e-12) -> Decomposition:
    """Generic low-rank route (Eq. 8): ``rank(W)`` full-size terms."""
    w = np.asarray(w, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise ShapeError(f"weight matrix must be square, got shape {w.shape}")
    n = w.shape[0]
    if n % 2 != 1:
        raise ShapeError(f"weight matrix side must be odd, got {n}")
    if n == 1:
        terms: tuple[Rank1Term, ...] = ()
        if w[0, 0] != 0.0:
            terms = (
                Rank1Term(u=np.array([w[0, 0]]), v=np.array([1.0]), size=1, pad=0),
            )
        return Decomposition(terms, full_side=1, method="svd")
    p, s, qt = np.linalg.svd(w)
    cutoff = tol * max(1.0, float(s[0]) if s.size else 1.0)
    term_list = [
        Rank1Term(u=p[:, k] * s[k], v=qt[k, :], size=n, pad=0)
        for k in range(len(s))
        if s[k] > cutoff
    ]
    return Decomposition(tuple(term_list), full_side=n, method="svd")


def decompose(w: np.ndarray, tol: float = 1e-12) -> Decomposition:
    """PMA when the symmetry/pivot structure allows it, SVD otherwise."""
    try:
        return pyramidal_decompose(w, tol=tol)
    except PivotError:
        return svd_decompose(w, tol=tol)
