"""Banded weight-matrix construction (Eq. 5/6) and butterfly orders.

A rank-1 term ``(u, v)`` of the kernel turns into

* ``U`` — the ``out_rows x in_rows`` *vertical gather* matrix with
  ``U[p, p + offset + t] = u[t]``: each row is the weight vector shifted
  one position right of the previous row (Fig. 4);
* ``V`` — the ``in_cols x out_cols`` *horizontal gather* matrix with
  ``V[q + offset + t, q] = v[t]``.

``offset`` is the term's pyramid pad: the inner (smaller) terms of PMA
start their band further from the window edge, so every term of a
decomposition reads the *same* input tile.

:func:`butterfly_row_order` gives the row permutation Butterfly Vector
Swapping applies to ``V`` (Eq. 17): within every 8-row block, the even
rows first (they pair with the accumulator's R0 registers) then the odd
rows (R1).
"""

from __future__ import annotations

import numpy as np

from repro.tcu.warp import BVS_EVEN_ODD_ORDER

__all__ = ["build_u_matrix", "build_v_matrix", "butterfly_row_order"]


def build_u_matrix(
    u: np.ndarray,
    out_rows: int,
    in_rows: int,
    offset: int = 0,
) -> np.ndarray:
    """The banded vertical-gather matrix ``U`` (Eq. 5).

    Row ``p`` of ``U @ X`` accumulates ``sum_t u[t] * X[p + offset + t]``,
    i.e. the vertical dependencies of output row ``p``.
    """
    u = np.asarray(u, dtype=np.float64)
    if u.ndim != 1:
        raise ValueError(f"u must be a vector, got shape {u.shape}")
    size = u.shape[0]
    if out_rows - 1 + offset + size > in_rows:
        raise ValueError(
            f"band does not fit: out_rows={out_rows}, offset={offset}, "
            f"size={size} requires in_rows >= {out_rows - 1 + offset + size}, "
            f"got {in_rows}"
        )
    mat = np.zeros((out_rows, in_rows), dtype=np.float64)
    for p in range(out_rows):
        mat[p, p + offset : p + offset + size] = u
    return mat


def build_v_matrix(
    v: np.ndarray,
    in_cols: int,
    out_cols: int,
    offset: int = 0,
) -> np.ndarray:
    """The banded horizontal-gather matrix ``V`` (Eq. 6).

    Column ``q`` of ``T @ V`` accumulates ``sum_t v[t] * T[:, q + offset + t]``.
    """
    v = np.asarray(v, dtype=np.float64)
    if v.ndim != 1:
        raise ValueError(f"v must be a vector, got shape {v.shape}")
    size = v.shape[0]
    if out_cols - 1 + offset + size > in_cols:
        raise ValueError(
            f"band does not fit: out_cols={out_cols}, offset={offset}, "
            f"size={size} requires in_cols >= {out_cols - 1 + offset + size}, "
            f"got {in_cols}"
        )
    mat = np.zeros((in_cols, out_cols), dtype=np.float64)
    for q in range(out_cols):
        mat[q + offset : q + offset + size, q] = v
    return mat


def butterfly_row_order(rows: int) -> np.ndarray:
    """Butterfly permutation of ``rows`` indices (multiple of 8).

    Within each 8-row block the order is ``0,2,4,6,1,3,5,7`` — the even
    rows feed the fragment built from R0 registers, the odd rows the one
    built from R1.  Permuting the rows of ``V`` in this order while
    reading the accumulator's register file directly leaves the product
    ``T @ V`` unchanged (Eq. 17).
    """
    if rows % 8 != 0:
        raise ValueError(f"rows must be a multiple of 8, got {rows}")
    order = np.empty(rows, dtype=np.int64)
    for blk in range(rows // 8):
        base = 8 * blk
        order[base : base + 8] = base + np.asarray(BVS_EVEN_ODD_ORDER)
    return order
