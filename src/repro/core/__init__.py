"""LoRAStencil core: the paper's primary contribution.

Pipeline (Fig. 3):

1. :mod:`repro.core.lowrank` — decompose the stencil weight matrix into
   rank-1 terms: Pyramidal Matrix Adaptation (Section III-C) for radially
   symmetric matrices, SVD (Section II-D) for the general case.
2. :mod:`repro.core.uvbuild` — expand each rank-1 pair ``(u, v)`` into
   the banded weight matrices ``U`` and ``V`` (Eq. 5/6) plus their
   fragment/butterfly layouts.
3. :mod:`repro.core.rdg` — Residual Dimension Gathering: the warp-level
   Matrix Chain Multiplication ``U X V`` on the TCU simulator
   (Section III-B), with Butterfly Vector Swapping (Section III-D)
   applied between the two gathers.
4. :mod:`repro.core.engine1d` / :mod:`repro.core.engine2d` /
   :mod:`repro.core.engine3d` — end-to-end stencil executors
   (functional NumPy fast path + faithful simulated path).
5. :mod:`repro.core.fusion` — temporal kernel fusion (Section IV-A).
"""

from repro.core.lowrank import (
    Decomposition,
    PivotError,
    Rank1Term,
    decompose,
    pyramidal_decompose,
    svd_decompose,
)
from repro.core.uvbuild import build_u_matrix, build_v_matrix, butterfly_row_order
from repro.core.config import OptimizationConfig
from repro.core.engine1d import LoRAStencil1D
from repro.core.engine2d import LoRAStencil2D
from repro.core.engine3d import LoRAStencil3D
from repro.core.fusion import FusedKernel, fuse_kernel, fragment_waste, fusion_saving

__all__ = [
    "Rank1Term",
    "Decomposition",
    "PivotError",
    "decompose",
    "pyramidal_decompose",
    "svd_decompose",
    "build_u_matrix",
    "build_v_matrix",
    "butterfly_row_order",
    "OptimizationConfig",
    "LoRAStencil1D",
    "LoRAStencil2D",
    "LoRAStencil3D",
    "FusedKernel",
    "fuse_kernel",
    "fragment_waste",
    "fusion_saving",
]
