"""LoRAStencil core: the paper's primary contribution.

Pipeline (Fig. 3):

1. :mod:`repro.core.lowrank` — decompose the stencil weight matrix into
   rank-1 terms: Pyramidal Matrix Adaptation (Section III-C) for radially
   symmetric matrices, SVD (Section II-D) for the general case.
2. :mod:`repro.core.uvbuild` — expand each rank-1 pair ``(u, v)`` into
   the banded weight matrices ``U`` and ``V`` (Eq. 5/6) plus their
   fragment/butterfly layouts.
3. :mod:`repro.core.rdg` — Residual Dimension Gathering: the warp-level
   Matrix Chain Multiplication ``U X V`` on the TCU simulator
   (Section III-B), with Butterfly Vector Swapping (Section III-D)
   applied between the two gathers.
4. :mod:`repro.core.engine1d` / :mod:`repro.core.engine2d` /
   :mod:`repro.core.engine3d` — end-to-end stencil executors
   (functional NumPy fast path + faithful simulated path).
5. :mod:`repro.core.fusion` — temporal kernel fusion (Section IV-A).
"""

import warnings

from repro.core.lowrank import Decomposition, PivotError, Rank1Term
from repro.core.uvbuild import build_u_matrix, build_v_matrix, butterfly_row_order
from repro.core.config import OptimizationConfig
from repro.core.engine1d import LoRAStencil1D
from repro.core.engine2d import LoRAStencil2D
from repro.core.engine3d import LoRAStencil3D
from repro.core.fusion import FusedKernel, fuse_kernel, fragment_waste, fusion_saving

__all__ = [
    "Rank1Term",
    "Decomposition",
    "PivotError",
    "decompose",
    "pyramidal_decompose",
    "svd_decompose",
    "build_u_matrix",
    "build_v_matrix",
    "butterfly_row_order",
    "OptimizationConfig",
    "LoRAStencil1D",
    "LoRAStencil2D",
    "LoRAStencil3D",
    "FusedKernel",
    "fuse_kernel",
    "fragment_waste",
    "fusion_saving",
]

#: names still resolvable from ``repro.core`` for backwards compatibility,
#: but deprecated in favour of the runtime facade
_DEPRECATED_REEXPORTS = ("decompose", "pyramidal_decompose", "svd_decompose")


def __getattr__(name: str):
    """Deprecated re-exports (PEP 562).

    ``repro.core.decompose`` and friends still resolve, but emit a
    :class:`DeprecationWarning`: import them from
    :mod:`repro.core.lowrank` directly, or skip the decomposition step
    entirely with ``repro.compile(...)``, which runs (and caches) it as
    part of plan construction.
    """
    if name in _DEPRECATED_REEXPORTS:
        warnings.warn(
            f"repro.core.{name} is deprecated; import it from "
            "repro.core.lowrank, or use repro.compile(...) which runs the "
            "decomposition once per cached plan",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core import lowrank

        return getattr(lowrank, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
